//! Table I — print the full decision table as implemented.
//!
//! ```text
//! cargo run --release --bin table1_decisions
//! ```
//!
//! Enumerates every `(node kind, 3-bit congestion history, BW equality)`
//! combination and prints the action `toposense::decision::decide` returns,
//! in the paper's row order. The unit tests in `toposense::decision` assert
//! each row against the printed table; this binary regenerates it for
//! side-by-side comparison with the paper.

use toposense::history::{BwEquality, CongestionHistory};
use toposense::{decision, Action, NodeKind, SupplyWindow};

fn action_str(a: Action) -> String {
    match a {
        Action::AddLayer => "Add next layer, if not backing off".into(),
        Action::DropIfLossHigh => "If loss rate is high, drop layer, set backoff timer".into(),
        Action::Maintain => "Maintain Demand".into(),
        Action::ReduceToSupply(w) => format!("Reduce demand to supply in {}", win(w)),
        Action::ReduceToHalfSupply { window, backoff } => {
            if backoff {
                format!("Reduce Demand to half the supply in {}; set backoff", win(window))
            } else {
                format!("Reduce Demand to half the supply in {}", win(window))
            }
        }
        Action::ReduceToHalfSupplyIfLossVeryHigh(w) => {
            format!("If loss is very high, reduce demand to half the supply in {}", win(w))
        }
        Action::AcceptChildren => "Accept all demands of the child nodes".into(),
    }
}

fn win(w: SupplyWindow) -> &'static str {
    match w {
        SupplyWindow::Older => "T0-Tn",
        SupplyWindow::Recent => "Tn-T2n",
    }
}

fn main() {
    println!("Table I — decision table for computing demand at each node at time T2");
    println!("(history bits: T0 at bit 2, T1 at bit 1, T2 at bit 0; CONGESTED = 1)\n");
    println!("{:<10} {:>8} {:<9} Action", "Kind", "History", "BW-Eq");
    println!("{}", "-".repeat(96));
    for kind in [NodeKind::Leaf, NodeKind::Internal] {
        for bw in [BwEquality::Lesser, BwEquality::Equal, BwEquality::Greater] {
            for h in 0..8u8 {
                let a = decision::decide(kind, CongestionHistory::from_bits(h), bw);
                println!(
                    "{:<10} {:>8} {:<9} {}",
                    format!("{kind:?}"),
                    h,
                    format!("{bw:?}"),
                    action_str(a)
                );
            }
        }
    }
}
