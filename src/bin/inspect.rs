//! Diagnostics: per-receiver change logs and controller state for the
//! three canonical topologies.
//!
//! ```text
//! cargo run --release --bin inspect -- <a2|b4|fig1> [secs] [staleness_secs]
//! ```
//!
//! * `a2`   — Topology A with 2 receivers per set (optima 2 and 4 layers)
//! * `b4`   — Topology B with 4 competing sessions (optimum 4 each)
//! * `fig1` — the Fig. 1 motivating example (optima 1 / 2 / 4)
//!
//! Set `TOPOSENSE_TRACE=1` to additionally dump, on stderr, the controller's
//! per-interval view of every session-tree node (history bits, loss,
//! goodput, cap, demand, supply) — the raw material behind every debugging
//! session of this reproduction.

use netsim::{SimDuration, SimTime};
use scenarios::{run, ControlMode, Scenario};
use topology::generators;
use traffic::TrafficModel;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(|s| s.as_str()).unwrap_or("b4");
    let secs: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(240);
    let topo = match which {
        "b4" => generators::topology_b_default(4),
        "a2" => generators::topology_a_default(2),
        "fig1" => generators::figure1(),
        _ => panic!("unknown"),
    };
    let staleness: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0);
    let s = Scenario::new(topo, TrafficModel::Vbr { p: 3.0 }, 1)
        .with_control(ControlMode::TopoSense { staleness: SimDuration::from_secs(staleness) })
        .with_duration(SimDuration::from_secs(secs));
    let r = run(&s);
    for rec in &r.receivers {
        println!(
            "receiver set={} session={} node={:?} optimal={} final={} bytes={} sugg={} unilateral={}",
            rec.set,
            rec.session,
            rec.node,
            rec.optimal,
            rec.stats.final_level(),
            rec.stats.bytes_total,
            rec.stats.suggestions_received,
            rec.stats.unilateral_actions,
        );
        let ch: Vec<String> = rec
            .stats
            .changes
            .iter()
            .map(|&(t, o, n)| format!("{:.0}s:{}->{}", t.as_secs_f64(), o, n))
            .collect();
        println!("  changes: {}", ch.join(" "));
        let late_loss = rec.mean_loss(SimTime::from_secs(secs / 2), SimTime::from_secs(secs));
        println!("  late mean loss: {late_loss:.4}");
    }
    if let Some(c) = &r.controller {
        println!(
            "controller: intervals={} suggestions={} registered={}",
            c.intervals, c.suggestions_sent, c.registered
        );
        if let Some(o) = &c.last_outputs {
            println!("  last estimates: {:?}", o.estimated_links);
            println!("  last root supplies: {:?}", o.root_supply);
        }
    }
    println!("total drops: {}", r.total_drops);
}
