//! Diagnostics: scenario change logs, plus a query CLI over recorded
//! telemetry (the JSONL decision audit trail).
//!
//! ```text
//! cargo run --release --bin inspect -- <a2|b4|fig1> [secs] [staleness_secs]
//! cargo run --release --bin inspect -- validate <trail.jsonl>
//! cargo run --release --bin inspect -- summary  <trail.jsonl>
//! cargo run --release --bin inspect -- timeline <trail.jsonl> <session> <node>
//! cargo run --release --bin inspect -- diff     <trail.jsonl> <seqA> <seqB>
//! cargo run --release --bin inspect -- counters <trail.jsonl> [top_n]
//! cargo run --release --bin inspect -- trace    <trail.jsonl> <session> <receiver>
//! cargo run --release --bin inspect -- profile  <trail.jsonl>
//! cargo run --release --bin inspect -- federation <trail.jsonl>
//! cargo run --release --bin inspect -- blackbox <blackbox.json>
//! cargo run --release --bin inspect -- snapshot validate <ckpt.json>
//! cargo run --release --bin inspect -- snapshot summary  <ckpt.json>
//! cargo run --release --bin inspect -- snapshot diff     <a.json> <b.json>
//! ```
//!
//! Scenario mode (the original tool):
//!
//! * `a2`   — Topology A with 2 receivers per set (optima 2 and 4 layers)
//! * `b4`   — Topology B with 4 competing sessions (optimum 4 each)
//! * `fig1` — the Fig. 1 motivating example (optima 1 / 2 / 4)
//!
//! Set `TOPOSENSE_TRACE=1` to additionally dump, on stderr, the controller's
//! per-interval view of every session-tree node (history bits, loss,
//! goodput, cap, demand, supply) — the raw material behind every debugging
//! session of this reproduction.
//!
//! Telemetry mode reads a trail recorded with e.g.
//! `QUICKSTART_TELEMETRY=trail.jsonl cargo run --release --example quickstart`.

use netsim::{SimDuration, SimTime};
use scenarios::{run, ControlMode, Scenario};
use telemetry::{Record, StageBody};
use topology::generators;
use traffic::TrafficModel;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(|s| s.as_str()) {
        Some("validate") => validate(&args[2..]),
        Some("summary") => summary(&args[2..]),
        Some("timeline") => timeline(&args[2..]),
        Some("diff") => diff(&args[2..]),
        Some("counters") => counters(&args[2..]),
        Some("trace") => trace(&args[2..]),
        Some("profile") => profile(&args[2..]),
        Some("federation") => federation(&args[2..]),
        Some("blackbox") => blackbox(&args[2..]),
        Some("snapshot") => snapshot(&args[2..]),
        Some("a2" | "b4" | "fig1") => scenario_mode(&args),
        Some(other) => usage(&format!("unknown subcommand '{other}'")),
        None => usage("no subcommand given"),
    }
}

// --- telemetry queries -------------------------------------------------

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("usage: inspect <a2|b4|fig1> [secs] [staleness]");
    eprintln!("       inspect validate|summary <trail.jsonl>");
    eprintln!("       inspect timeline <trail.jsonl> <session> <node>");
    eprintln!("       inspect diff <trail.jsonl> <seqA> <seqB>");
    eprintln!("       inspect counters <trail.jsonl> [top_n]");
    eprintln!("       inspect trace <trail.jsonl> <session> <receiver>");
    eprintln!("       inspect profile <trail.jsonl>");
    eprintln!("       inspect federation <trail.jsonl>");
    eprintln!("       inspect blackbox <blackbox.json>");
    eprintln!("       inspect snapshot validate|summary <ckpt.json>");
    eprintln!("       inspect snapshot diff <a.json> <b.json>");
    std::process::exit(2);
}

// --- checkpoint files ---------------------------------------------------

/// `snapshot <validate|summary|diff> ...`: query `toposense.checkpoint.v1`
/// files (written by [`toposense::checkpoint::Snapshot::save`] and carried
/// by the replication layer's `CheckpointTransfer`).
fn snapshot(args: &[String]) {
    use toposense::checkpoint::Snapshot;
    let load = |path: &String| -> Snapshot {
        match Snapshot::load(std::path::Path::new(path)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
        }
    };
    match args.first().map(|s| s.as_str()) {
        Some("validate") => {
            let [_, path] = args else { usage("snapshot validate needs a file") };
            let snap = load(path);
            // The canonical rendering must round-trip byte-identically —
            // the same gate `validate` applies to telemetry trails.
            let reencoded = snap.encode();
            let on_disk = std::fs::read_to_string(path).expect("already read once");
            if on_disk.trim_end() != reencoded {
                eprintln!("{path}: decode/re-encode mismatch (non-canonical rendering)");
                std::process::exit(1);
            }
            println!(
                "{path}: valid {} checkpoint ({} estimates, {} memories, {} backoffs, {} runs)",
                toposense::checkpoint::SCHEMA,
                snap.estimates.len(),
                snap.memories.len(),
                snap.backoffs.len(),
                snap.runs
            );
        }
        Some("summary") => {
            let [_, path] = args else { usage("snapshot summary needs a file") };
            print!("{}", load(path).summary());
        }
        Some("diff") => {
            let [_, a, b] = args else { usage("snapshot diff needs two files") };
            let (sa, sb) = (load(a), load(b));
            let lines = sa.diff(&sb);
            for line in &lines {
                println!("{line}");
            }
            println!("{} differences between {a} and {b}", lines.len());
        }
        _ => usage("snapshot needs validate, summary, or diff"),
    }
}

/// Read and decode every line of a trail; exits on unreadable files.
fn load(path: &str) -> Vec<(usize, String, Record)> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => usage(&format!("cannot read {path}: {e}")),
    };
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| match Record::from_jsonl(l) {
            Ok(r) => (i + 1, l.to_string(), r),
            Err(e) => {
                eprintln!("{path}:{}: {e}", i + 1);
                std::process::exit(1);
            }
        })
        .collect()
}

/// `validate <file>`: every line must decode against the current schema
/// AND re-encode byte-identically (the round-trip CI gate).
fn validate(args: &[String]) {
    let path = args.first().unwrap_or_else(|| usage("validate needs a file"));
    let records = load(path);
    let mut kinds = std::collections::BTreeMap::new();
    for (line_no, line, record) in &records {
        let reencoded = record.to_jsonl();
        if &reencoded != line {
            eprintln!("{path}:{line_no}: decode/re-encode mismatch");
            eprintln!("  file:      {line}");
            eprintln!("  re-encode: {reencoded}");
            std::process::exit(1);
        }
        let kind = match record {
            Record::Run { .. } => "run".to_string(),
            Record::Stage { body, .. } => format!("stage.{}", body.stage_name()),
            Record::Counters { .. } => "counters".to_string(),
            Record::Timers { .. } => "timers".to_string(),
            Record::Trace { phase, .. } => format!("trace.{phase}"),
        };
        *kinds.entry(kind).or_insert(0u64) += 1;
    }
    println!("{path}: {} records valid (schema v{})", records.len(), telemetry::SCHEMA_VERSION);
    for (kind, count) in kinds {
        println!("  {kind:<20} {count}");
    }
}

/// `summary <file>`: the run header, interval span, and closing stats.
fn summary(args: &[String]) {
    let path = args.first().unwrap_or_else(|| usage("summary needs a file"));
    let records = load(path);
    let mut intervals: Vec<u64> = Vec::new();
    for (_, _, record) in &records {
        match record {
            Record::Run { label, seed, duration_ns } => {
                println!("run '{label}' seed={seed} duration={:.0}s", *duration_ns as f64 / 1e9);
            }
            Record::Stage { seq, body, .. } => {
                if matches!(body, StageBody::Congestion(_)) {
                    intervals.push(*seq);
                }
            }
            Record::Counters { t_ns, entries } => {
                println!("counters at {:.0}s:", *t_ns as f64 / 1e9);
                for (name, value) in entries {
                    println!("  {name:<34} {value}");
                }
            }
            Record::Timers { entries } => {
                println!("stage timers:");
                for t in entries {
                    let mean = t.sum_ns.checked_div(t.count).unwrap_or(0);
                    println!(
                        "  {:<22} n={:<6} mean={:>9}ns min={:>9}ns max={:>9}ns",
                        t.name, t.count, mean, t.min_ns, t.max_ns
                    );
                }
            }
            Record::Trace { .. } => {}
        }
    }
    match (intervals.first(), intervals.last()) {
        (Some(first), Some(last)) => {
            println!("audited intervals: {} (seq {first}..={last})", intervals.len());
        }
        _ => println!("audited intervals: 0"),
    }
}

/// The five stage records of interval `seq`, in pipeline order.
fn interval_stages(records: &[(usize, String, Record)], seq: u64) -> Vec<&StageBody> {
    records
        .iter()
        .filter_map(|(_, _, r)| match r {
            Record::Stage { seq: s, body, .. } if *s == seq => Some(body),
            _ => None,
        })
        .collect()
}

/// `timeline <file> <session> <node>`: one row per interval with the full
/// decision context of one tree node.
fn timeline(args: &[String]) {
    let [path, session, node] = args else { usage("timeline needs <file> <session> <node>") };
    let session: u64 = session.parse().unwrap_or_else(|_| usage("session must be a number"));
    let node: u64 = node.parse().unwrap_or_else(|_| usage("node must be a number"));
    let records = load(path);
    println!(
        "{:>6} {:>8} {:>7} {:>5} {:>11} {:>6} {:>6} {:>5}  branch",
        "seq", "t", "loss", "cong", "cap_bps", "dem", "sup", "sugg"
    );
    let mut shown = 0usize;
    for (_, _, record) in &records {
        let Record::Stage { seq, t_ns, body: StageBody::Congestion(sessions) } = record else {
            continue;
        };
        let Some(cn) = sessions
            .iter()
            .filter(|s| s.session == session)
            .flat_map(|s| &s.nodes)
            .find(|n| n.node == node)
        else {
            continue;
        };
        // Pull the matching bottleneck + subscription entries of the same
        // interval for the rest of the row.
        let stages = interval_stages(&records, *seq);
        let cap = stages.iter().find_map(|b| match b {
            StageBody::Bottleneck(ss) => ss
                .iter()
                .filter(|s| s.session == session)
                .flat_map(|s| &s.nodes)
                .find(|n| n.node == node)
                .map(|n| n.bottleneck_bps),
            _ => None,
        });
        let sub = stages.iter().find_map(|b| match b {
            StageBody::Subscription(ss) => ss
                .iter()
                .filter(|s| s.session == session)
                .flat_map(|s| &s.nodes)
                .find(|n| n.node == node),
            _ => None,
        });
        let cap = match cap {
            Some(c) if c.is_finite() => format!("{c:.0}"),
            Some(_) => "inf".to_string(),
            None => "-".to_string(),
        };
        let (branch, dem, sup, sugg) = match sub {
            Some(s) => (
                s.branch.as_str(),
                s.demand.to_string(),
                s.supply.to_string(),
                s.suggested.map(|l| l.to_string()).unwrap_or_else(|| "-".to_string()),
            ),
            None => ("-", "-".to_string(), "-".to_string(), "-".to_string()),
        };
        println!(
            "{:>6} {:>7.1}s {:>7.3} {:>5} {:>11} {:>6} {:>6} {:>5}  {}",
            seq,
            *t_ns as f64 / 1e9,
            cn.loss,
            if cn.congested { "C" } else { "." },
            cap,
            dem,
            sup,
            sugg,
            branch,
        );
        shown += 1;
    }
    if shown == 0 {
        eprintln!("no audit rows for session {session} node {node} in {path}");
        std::process::exit(1);
    }
}

/// `diff <file> <seqA> <seqB>`: what changed between two intervals.
fn diff(args: &[String]) {
    let [path, a, b] = args else { usage("diff needs <file> <seqA> <seqB>") };
    let a: u64 = a.parse().unwrap_or_else(|_| usage("seqA must be a number"));
    let b: u64 = b.parse().unwrap_or_else(|_| usage("seqB must be a number"));
    let records = load(path);
    let (sa, sb) = (interval_stages(&records, a), interval_stages(&records, b));
    if sa.is_empty() || sb.is_empty() {
        eprintln!("interval {a} or {b} not present in {path}");
        std::process::exit(1);
    }
    let mut changes = 0usize;
    for (xa, xb) in sa.iter().zip(&sb) {
        match (xa, xb) {
            (StageBody::Congestion(va), StageBody::Congestion(vb)) => {
                for (na, nb) in nodes_of(va).zip(nodes_of(vb)) {
                    if na.1.congested != nb.1.congested {
                        println!(
                            "congestion   s{} n{}: {} -> {}",
                            na.0,
                            na.1.node,
                            flag(na.1.congested),
                            flag(nb.1.congested)
                        );
                        changes += 1;
                    }
                }
            }
            (StageBody::Capacity(va), StageBody::Capacity(vb)) => {
                for ea in va {
                    let eb = vb.iter().find(|e| e.link == ea.link);
                    match eb {
                        Some(eb) if (eb.bps - ea.bps).abs() > 1e-9 || eb.event != ea.event => {
                            println!(
                                "capacity     link {}: {:.0} bps ({}) -> {:.0} bps ({})",
                                ea.link, ea.bps, ea.event, eb.bps, eb.event
                            );
                            changes += 1;
                        }
                        None => {
                            println!("capacity     link {}: gone in seq {b}", ea.link);
                            changes += 1;
                        }
                        _ => {}
                    }
                }
            }
            (StageBody::Subscription(va), StageBody::Subscription(vb)) => {
                for (na, nb) in nodes_of(va).zip(nodes_of(vb)) {
                    if na.1.supply != nb.1.supply || na.1.branch != nb.1.branch {
                        println!(
                            "subscription s{} n{}: supply {} ({}) -> {} ({})",
                            na.0, na.1.node, na.1.supply, na.1.branch, nb.1.supply, nb.1.branch
                        );
                        changes += 1;
                    }
                }
            }
            _ => {}
        }
    }
    println!("{changes} differences between interval {a} and {b}");
}

fn flag(b: bool) -> &'static str {
    if b {
        "congested"
    } else {
        "clear"
    }
}

fn nodes_of<T>(sessions: &[telemetry::SessionNodes<T>]) -> impl Iterator<Item = (u64, &T)> + '_ {
    sessions.iter().flat_map(|s| s.nodes.iter().map(move |n| (s.session, n)))
}

/// `counters <file> [top_n]`: the last counters snapshot, largest first.
fn counters(args: &[String]) {
    let path = args.first().unwrap_or_else(|| usage("counters needs a file"));
    let top: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let records = load(path);
    let last = records.iter().rev().find_map(|(_, _, r)| match r {
        Record::Counters { entries, .. } => Some(entries.clone()),
        _ => None,
    });
    let Some(mut entries) = last else {
        eprintln!("no counters record in {path}");
        std::process::exit(1);
    };
    entries.sort_by(|x, y| y.1.cmp(&x.1).then_with(|| x.0.cmp(&y.0)));
    for (name, value) in entries.into_iter().take(top) {
        println!("{value:>12}  {name}");
    }
}

/// `trace <trail.jsonl> --session <S> --receiver <R>` (flags may also be
/// given positionally): reconstruct every report → decide → apply chain of
/// one (session, receiver) pair from the trail's `"trace"` records.
fn trace(args: &[String]) {
    let mut positional: Vec<&String> = Vec::new();
    let mut session: Option<u64> = None;
    let mut receiver: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--session" => {
                session = args.get(i + 1).and_then(|s| s.parse().ok());
                if session.is_none() {
                    usage("--session needs a number");
                }
                i += 2;
            }
            "--receiver" => {
                receiver = args.get(i + 1).and_then(|s| s.parse().ok());
                if receiver.is_none() {
                    usage("--receiver needs a number");
                }
                i += 2;
            }
            _ => {
                positional.push(&args[i]);
                i += 1;
            }
        }
    }
    let mut positional = positional.into_iter();
    let Some(path) = positional.next() else { usage("trace needs a trail file") };
    let session = session
        .or_else(|| positional.next().and_then(|s| s.parse().ok()))
        .unwrap_or_else(|| usage("trace needs --session <n>"));
    let receiver = receiver
        .or_else(|| positional.next().and_then(|s| s.parse().ok()))
        .unwrap_or_else(|| usage("trace needs --receiver <n>"));
    let records: Vec<Record> = load(path).into_iter().map(|(_, _, r)| r).collect();
    let chains = telemetry::causal::reconstruct(&records, session, receiver);
    if chains.is_empty() {
        eprintln!("no trace records for session {session} receiver {receiver} in {path}");
        std::process::exit(1);
    }
    let complete = chains.iter().filter(|c| c.is_complete()).count();
    for c in &chains {
        println!(
            "cause {:016x} — {} hop{} ({})",
            c.cause,
            c.hops.len(),
            if c.hops.len() == 1 { "" } else { "s" },
            if c.is_complete() { "complete" } else { "incomplete" },
        );
        for h in &c.hops {
            println!(
                "  {:<7} seq={:<5} t={:>8.1}s level={}",
                h.phase,
                h.seq,
                h.t_ns as f64 / 1e9,
                h.level,
            );
        }
    }
    println!(
        "{} chains ({complete} complete) for session {session} receiver {receiver}",
        chains.len()
    );
}

/// `profile <trail.jsonl>`: the simulator's per-event-type counters, drop
/// reasons, and high-water marks from the trail's closing counters record.
fn profile(args: &[String]) {
    let path = args.first().unwrap_or_else(|| usage("profile needs a file"));
    let records = load(path);
    let last = records.iter().rev().find_map(|(_, _, r)| match r {
        Record::Counters { entries, .. } => Some(entries.clone()),
        _ => None,
    });
    let Some(entries) = last else {
        eprintln!("no counters record in {path}");
        std::process::exit(1);
    };
    let mut shown = 0usize;
    for (name, value) in &entries {
        if let Some(short) = name.strip_prefix("netsim.profile.") {
            println!("{value:>12}  {short}");
            shown += 1;
        }
    }
    if shown == 0 {
        eprintln!("no netsim.profile.* counters in {path} (recorded before the profiler?)");
        std::process::exit(1);
    }
    for key in ["netsim.events", "netsim.events_per_sec"] {
        if let Some((_, v)) = entries.iter().find(|(n, _)| n == key) {
            println!("{v:>12}  {}", key.strip_prefix("netsim.").unwrap());
        }
    }
}

/// `federation <trail.jsonl>`: the control plane's federation counters
/// (`federation.*`) from the trail's last counters record — how many
/// domains the run sharded into, how many border summaries crossed the
/// wire, and how many the parent aggregator folded.
fn federation(args: &[String]) {
    let path = args.first().unwrap_or_else(|| usage("federation needs a file"));
    let records = load(path);
    let last = records.iter().rev().find_map(|(_, _, r)| match r {
        Record::Counters { entries, .. } => Some(entries.clone()),
        _ => None,
    });
    let Some(entries) = last else {
        eprintln!("no counters record in {path}");
        std::process::exit(1);
    };
    let mut shown = 0usize;
    for (name, value) in &entries {
        if let Some(short) = name.strip_prefix("federation.") {
            println!("{value:>12}  {short}");
            shown += 1;
        }
    }
    if shown == 0 {
        eprintln!("no federation.* counters in {path} (single-domain run?)");
        std::process::exit(1);
    }
    // Summaries and folds should stay in lock-step: every summary sent is
    // folded exactly once by the parent. Call out a mismatch loudly.
    let get = |key: &str| entries.iter().find(|(n, _)| n == key).map(|(_, v)| *v);
    if let (Some(sent), Some(folds)) =
        (get("federation.summaries_sent"), get("federation.border_folds"))
    {
        if sent != folds {
            println!("warning: summaries_sent ({sent}) != border_folds ({folds})");
        }
    }
}

/// `blackbox <blackbox.json>`: validate a failure dump (schema + canonical
/// round-trip) and print its story.
fn blackbox(args: &[String]) {
    let path = args.first().unwrap_or_else(|| usage("blackbox needs a file"));
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => usage(&format!("cannot read {path}: {e}")),
    };
    let bb = match telemetry::Blackbox::decode(text.trim_end()) {
        Ok(bb) => bb,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    };
    if bb.encode() != text.trim_end() {
        eprintln!("{path}: decode/re-encode mismatch (non-canonical rendering)");
        std::process::exit(1);
    }
    println!("{path}: valid {} dump", telemetry::BLACKBOX_SCHEMA);
    println!("  reason  {}", bb.reason);
    println!("  label   {}", bb.label);
    println!("  seed    {}", bb.seed);
    println!("  config  {}", bb.config_fingerprint);
    println!("  at      {:.1}s", bb.t_ns as f64 / 1e9);
    println!("  counters ({}):", bb.counters.len());
    for (name, value) in &bb.counters {
        println!("    {name:<34} {value}");
    }
    println!("  occurrences ({}, {} rolled off):", bb.occurrences.len(), bb.ring_dropped);
    for o in &bb.occurrences {
        let detail = if o.detail.is_empty() { String::new() } else { format!("  ({})", o.detail) };
        println!("    {:>8.1}s  {:<15} seq={}{detail}", o.t_ns as f64 / 1e9, o.kind, o.seq);
    }
}

// --- scenario mode (the original tool) ---------------------------------

fn scenario_mode(args: &[String]) {
    let which = args.get(1).map(|s| s.as_str()).unwrap_or("b4");
    let secs: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(240);
    let topo = match which {
        "b4" => generators::topology_b_default(4),
        "a2" => generators::topology_a_default(2),
        "fig1" => generators::figure1(),
        other => usage(&format!("unknown subcommand or topology '{other}'")),
    };
    let staleness: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0);
    let s = Scenario::new(topo, TrafficModel::Vbr { p: 3.0 }, 1)
        .with_control(ControlMode::TopoSense { staleness: SimDuration::from_secs(staleness) })
        .with_duration(SimDuration::from_secs(secs));
    let r = run(&s);
    for rec in &r.receivers {
        println!(
            "receiver set={} session={} node={:?} optimal={} final={} bytes={} sugg={} unilateral={}",
            rec.set,
            rec.session,
            rec.node,
            rec.optimal,
            rec.stats.final_level(),
            rec.stats.bytes_total,
            rec.stats.suggestions_received,
            rec.stats.unilateral_actions,
        );
        let ch: Vec<String> = rec
            .stats
            .changes
            .iter()
            .map(|&(t, o, n)| format!("{:.0}s:{}->{}", t.as_secs_f64(), o, n))
            .collect();
        println!("  changes: {}", ch.join(" "));
        let late_loss = rec.mean_loss(SimTime::from_secs(secs / 2), SimTime::from_secs(secs));
        println!("  late mean loss: {late_loss:.4}");
    }
    if let Some(c) = &r.controller {
        println!(
            "controller: intervals={} suggestions={} registered={}",
            c.intervals, c.suggestions_sent, c.registered
        );
        if let Some(o) = &c.last_outputs {
            println!("  last estimates: {:?}", o.estimated_links);
            println!("  last root supplies: {:?}", o.root_supply);
        }
    }
    println!("total drops: {}", r.total_drops);
}
