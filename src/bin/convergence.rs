//! §IV prior-work claims re-validated: convergence to optimal subscription
//! and intra-session fairness on Topology A.
//!
//! ```text
//! cargo run --release --bin convergence [-- --quick] [-- --json]
//! ```
//!
//! For each receiver set of Topology A (optima 2 and 4 layers), prints the
//! time-weighted mean subscription over the second half of the run, the
//! relative deviation from optimal, and the spread between co-set receivers
//! (intra-session fairness: should be near zero).

use netsim::SimDuration;
use scenarios::experiments::convergence_topology_a;
use traffic::TrafficModel;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let duration = if quick { SimDuration::from_secs(240) } else { SimDuration::from_secs(1200) };
    let models = [TrafficModel::Cbr, TrafficModel::Vbr { p: 3.0 }, TrafficModel::Vbr { p: 6.0 }];

    let mut all = Vec::new();
    for model in models {
        let rows = convergence_topology_a(4, model, duration, 1);
        for r in rows {
            all.push((model.label(), r));
        }
    }

    if json {
        let out: Vec<serde_json::Value> = all
            .iter()
            .map(|(m, r)| {
                serde_json::json!({
                    "model": m,
                    "set": r.set,
                    "optimal": r.optimal,
                    "mean_level_late": r.mean_level_late,
                    "deviation_late": r.deviation_late,
                    "intra_set_spread": r.intra_set_spread,
                })
            })
            .collect();
        println!("{}", serde_json::to_string_pretty(&out).unwrap());
        return;
    }

    println!("Convergence & intra-session fairness — Topology A, 4 receivers/set\n");
    println!(
        "{:<10} {:>4} {:>8} {:>16} {:>14} {:>12}",
        "traffic", "set", "optimal", "mean lvl (late)", "rel. dev.", "set spread"
    );
    println!("{}", "-".repeat(70));
    for (m, r) in &all {
        println!(
            "{:<10} {:>4} {:>8} {:>16.2} {:>14.4} {:>12.3}",
            m, r.set, r.optimal, r.mean_level_late, r.deviation_late, r.intra_set_spread
        );
    }
    println!(
        "\nShape check (paper §IV, citing [5]): TopoSense converges to the optimal\n\
         subscription in a heterogeneous environment and treats same-set receivers\n\
         identically (small spread = intra-session fairness)."
    );
}
