//! Fig. 6 — stability in Topology A.
//!
//! ```text
//! cargo run --release --bin fig6_stability_a [-- --quick] [-- --json]
//! ```
//!
//! For CBR, VBR(P=3) and VBR(P=6) traffic and a growing number of receivers
//! per set, prints the maximum number of subscription changes by any
//! receiver over 1200 simulated seconds and the mean time between
//! successive changes for that receiver — the two panels of the paper's
//! Fig. 6.

use netsim::SimDuration;
use scenarios::experiments::{fig6_stability_a, paper_traffic_models};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let duration = if quick { SimDuration::from_secs(200) } else { SimDuration::from_secs(1200) };
    let counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 6, 8] };

    let rows = fig6_stability_a(counts, &paper_traffic_models(), duration, 1);

    if json {
        let out: Vec<serde_json::Value> = rows
            .iter()
            .map(|r| {
                serde_json::json!({
                    "model": r.model,
                    "receivers_per_set": r.x,
                    "max_changes": r.max_changes,
                    "mean_gap_secs": r.mean_gap_secs,
                })
            })
            .collect();
        println!("{}", serde_json::to_string_pretty(&out).unwrap());
        return;
    }

    println!(
        "Fig. 6 — Stability in Topology A ({} s, 6 layers, base 32 kb/s)",
        duration.as_secs_f64()
    );
    println!(
        "{:<10} {:>14} {:>14} {:>22}",
        "traffic", "receivers/set", "max changes", "mean gap (s)"
    );
    println!("{}", "-".repeat(64));
    for r in &rows {
        println!("{:<10} {:>14} {:>14} {:>22.1}", r.model, r.x, r.max_changes, r.mean_gap_secs);
    }
    println!(
        "\nShape check (paper): subscription shows long stable spells; changes are\n\
         join-probe/leave pairs whose frequency is controlled by the backoff interval."
    );
}
