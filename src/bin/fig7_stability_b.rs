//! Fig. 7 — stability in Topology B.
//!
//! ```text
//! cargo run --release --bin fig7_stability_b [-- --quick] [-- --json]
//! ```
//!
//! For CBR, VBR(P=3) and VBR(P=6) traffic and a growing number of competing
//! sessions over one shared link (scaled to 500 kb/s per session), prints
//! the maximum number of subscription changes in any session and the mean
//! time between successive changes for that session.

use netsim::SimDuration;
use scenarios::experiments::{fig7_stability_b, paper_traffic_models};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let duration = if quick { SimDuration::from_secs(200) } else { SimDuration::from_secs(1200) };
    let counts: &[usize] = if quick { &[2, 4] } else { &[1, 2, 4, 8, 12, 16] };

    let rows = fig7_stability_b(counts, &paper_traffic_models(), duration, 1);

    if json {
        let out: Vec<serde_json::Value> = rows
            .iter()
            .map(|r| {
                serde_json::json!({
                    "model": r.model,
                    "sessions": r.x,
                    "max_changes": r.max_changes,
                    "mean_gap_secs": r.mean_gap_secs,
                })
            })
            .collect();
        println!("{}", serde_json::to_string_pretty(&out).unwrap());
        return;
    }

    println!(
        "Fig. 7 — Stability in Topology B ({} s, shared link = 500 kb/s x sessions)",
        duration.as_secs_f64()
    );
    println!("{:<10} {:>10} {:>14} {:>22}", "traffic", "sessions", "max changes", "mean gap (s)");
    println!("{}", "-".repeat(60));
    for r in &rows {
        println!("{:<10} {:>10} {:>14} {:>22.1}", r.model, r.x, r.max_changes, r.mean_gap_secs);
    }
    println!(
        "\nShape check (paper): high variability stems from the random backoff\n\
         interval; most changes are bandwidth-exploration joins followed by leaves."
    );
}
