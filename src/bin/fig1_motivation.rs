//! Fig. 1 — the motivating example, quantified.
//!
//! ```text
//! cargo run --release --bin fig1_motivation [-- --quick] [-- --json]
//! ```
//!
//! On the Fig. 1 tree, a receiver at node 4 that over-subscribes congests
//! the shared link into node 2 and causes losses for the slower sibling at
//! node 3. A topology-blind scheme (the RLM baseline) keeps re-running that
//! failed experiment; TopoSense, knowing nodes 3 and 4 share a bottleneck,
//! caps the subtree and protects the innocent receiver.

use netsim::SimDuration;
use scenarios::experiments::fig1_motivation;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let duration = if quick { SimDuration::from_secs(200) } else { SimDuration::from_secs(1200) };

    let rows = fig1_motivation(duration, 1);

    if json {
        let out: Vec<serde_json::Value> = rows
            .iter()
            .map(|r| {
                serde_json::json!({
                    "mode": r.mode,
                    "n3_loss": r.n3_loss,
                    "n3_mean_level": r.n3_mean_level,
                    "n4_mean_level": r.n4_mean_level,
                    "n5_mean_level": r.n5_mean_level,
                })
            })
            .collect();
        println!("{}", serde_json::to_string_pretty(&out).unwrap());
        return;
    }

    println!("Fig. 1 — motivating example (optima: n3 = 1 layer, n4 = 2, n5 = 4)\n");
    println!(
        "{:<12} {:>14} {:>14} {:>14} {:>14}",
        "control", "n3 loss", "n3 mean lvl", "n4 mean lvl", "n5 mean lvl"
    );
    println!("{}", "-".repeat(74));
    for r in &rows {
        println!(
            "{:<12} {:>14.4} {:>14.2} {:>14.2} {:>14.2}",
            r.mode, r.n3_loss, r.n3_mean_level, r.n4_mean_level, r.n5_mean_level
        );
    }
    println!(
        "\nShape check (paper): without topology awareness the slow receiver n3\n\
         suffers loss caused by its sibling's exploration; TopoSense keeps n3's\n\
         loss near zero while n5 (a disjoint subtree) is unaffected in both modes."
    );
}
