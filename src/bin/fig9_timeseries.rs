//! Fig. 9 — layer subscription and loss history, 4 competing VBR sessions.
//!
//! ```text
//! cargo run --release --bin fig9_timeseries [-- --quick] [-- --json]
//! ```
//!
//! Reproduces the paper's sample plot: the per-session subscription level
//! and loss rate over time for four VBR(P=3) sessions sharing a 2 Mb/s
//! link. Prints a 10-second excerpt as an ASCII strip chart plus summary
//! statistics; `--json` dumps the full series for external plotting.

use netsim::SimDuration;
use scenarios::experiments::fig9_timeseries;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let duration = if quick { SimDuration::from_secs(120) } else { SimDuration::from_secs(1200) };

    let out = fig9_timeseries(duration, 1);

    if json {
        let v = serde_json::json!({
            "levels": out.levels,
            "losses": out.losses,
            "oversubscription_seen": out.oversubscription_seen,
        });
        println!("{}", serde_json::to_string_pretty(&v).unwrap());
        return;
    }

    println!("Fig. 9 — Layer subscription and loss, 4 competing VBR(P=3) sessions\n");

    // A 10 s window from the middle of the run, as in the paper's excerpt.
    let mid = duration.as_secs_f64() / 2.0;
    let (w0, w1) = (mid, mid + 10.0);
    println!("Subscription levels over the window {w0:.0}-{w1:.0} s:");
    println!("{:<8} levels per session  s0 s1 s2 s3", "time(s)");
    let mut t = w0;
    while t < w1 {
        let mut line = format!("{t:<8.0}");
        for s in &out.levels {
            let level =
                s.iter().take_while(|&&(ts, _)| ts <= t).last().map(|&(_, l)| l).unwrap_or(0);
            line.push_str(&format!(" {level:>4}"));
        }
        println!("{line}");
        t += 1.0;
    }

    println!("\nPer-session summary over the full run:");
    println!("{:<8} {:>12} {:>12} {:>14}", "session", "mean level", "max level", "mean loss");
    for (i, (levels, losses)) in out.levels.iter().zip(&out.losses).enumerate() {
        let mean_level =
            levels.iter().map(|&(_, l)| l as f64).sum::<f64>() / levels.len().max(1) as f64;
        let max_level = levels.iter().map(|&(_, l)| l).max().unwrap_or(0);
        let mean_loss = losses.iter().map(|&(_, l)| l).sum::<f64>() / losses.len().max(1) as f64;
        println!("{i:<8} {mean_level:>12.2} {max_level:>12} {mean_loss:>14.4}");
    }
    println!(
        "\nShape check (paper): sessions transiently over-subscribe to layers 5/6 when\n\
         the capacity estimate resets or bursts mask loss; heavy loss then re-teaches\n\
         the estimate and the system returns to the 4-layer fair state.\n\
         Over-subscription above optimum observed this run: {}",
        out.oversubscription_seen
    );
}
