//! §V ablations — the paper's open questions, answered empirically.
//!
//! ```text
//! cargo run --release --bin ablations [-- --quick] [-- --json]
//! ```
//!
//! Runs five parameter sweeps on Topology A and prints, for each knob
//! value: mean relative deviation, mean loss, max subscription changes,
//! and control bytes.

use netsim::SimDuration;
use scenarios::ablations::{self, AblationRow};

fn print_table(title: &str, note: &str, rows: &[AblationRow]) {
    println!("[{title}]");
    println!(
        "{:<22} {:>10} {:>10} {:>9} {:>14}",
        "knob", "rel.dev", "mean loss", "changes", "control bytes"
    );
    println!("{}", "-".repeat(70));
    for r in rows {
        println!(
            "{:<22} {:>10.4} {:>10.4} {:>9} {:>14}",
            r.knob, r.deviation, r.mean_loss, r.max_changes, r.control_bytes
        );
    }
    println!("  -> {note}\n");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let duration = if quick { SimDuration::from_secs(200) } else { SimDuration::from_secs(900) };
    let seed = 1;

    let sections: Vec<(&str, &str, Vec<AblationRow>)> = vec![
        (
            "interval size (§V)",
            "small intervals react fast but misread bursts; large ones react slowly",
            ablations::interval_size(&[1, 2, 4, 8], duration, seed),
        ),
        (
            "group-leave latency (§V)",
            "a slow IGMP leave prolongs every failed probe's congestion",
            ablations::leave_latency(&[100, 500, 1000, 2000, 4000], duration, seed),
        ),
        (
            "layer granularity (§V)",
            "finer layers bound the per-probe damage but take longer to climb",
            ablations::layer_granularity(duration, seed),
        ),
        (
            "queue discipline",
            "priority dropping shields base layers during neighbours' probes",
            ablations::queue_discipline(duration, seed),
        ),
        (
            "control traffic (§V)",
            "control bytes grow linearly with the number of receivers",
            ablations::control_traffic(&[1, 2, 4, 8], duration, seed),
        ),
    ];

    if json {
        let out: Vec<serde_json::Value> = sections
            .iter()
            .map(|(title, _, rows)| {
                serde_json::json!({
                    "ablation": title,
                    "rows": rows.iter().map(|r| serde_json::json!({
                        "knob": r.knob,
                        "deviation": r.deviation,
                        "mean_loss": r.mean_loss,
                        "max_changes": r.max_changes,
                        "control_bytes": r.control_bytes,
                    })).collect::<Vec<_>>(),
                })
            })
            .collect();
        println!("{}", serde_json::to_string_pretty(&out).unwrap());
        return;
    }

    println!("Ablations over Topology A ({} s per point)\n", duration.as_secs_f64());
    for (title, note, rows) in &sections {
        print_table(title, note, rows);
    }

    // §V "Estimating link capacity": estimator accuracy vs. ground truth.
    let acc = ablations::estimator_accuracy(
        if quick { &[2, 4][..] } else { &[2, 4, 8, 16][..] },
        duration,
        seed,
    );
    println!("[capacity-estimator accuracy (§V), Topology B]");
    println!(
        "{:<10} {:>10} {:>16} {:>16}",
        "sessions", "coverage", "mean rel. err", "max rel. err"
    );
    println!("{}", "-".repeat(56));
    for r in &acc {
        println!(
            "{:<10} {:>9.0}% {:>16.4} {:>16.4}",
            r.sessions,
            r.coverage * 100.0,
            r.mean_rel_error,
            r.max_rel_error
        );
    }
    println!(
        "  -> each congested interval re-learns the capacity from observed\n\
        throughput; between congestion events the estimate deliberately creeps\n\
        upward (the paper's probe mechanism), which dominates the mean error."
    );
}
