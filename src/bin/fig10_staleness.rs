//! Fig. 10 — impact of stale topology information (Topology A, VBR P=3).
//!
//! ```text
//! cargo run --release --bin fig10_staleness [-- --quick] [-- --json]
//! ```
//!
//! Sweeps the discovery tool's snapshot age from 0 to 18 s for sessions
//! with different receiver counts and prints the mean relative deviation
//! from the optimal subscription.

use netsim::SimDuration;
use scenarios::experiments::fig10_staleness;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let duration = if quick { SimDuration::from_secs(200) } else { SimDuration::from_secs(1200) };
    let receivers: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let staleness: &[u64] = if quick { &[0, 4, 8] } else { &[0, 2, 4, 6, 8, 10, 12, 14, 16, 18] };

    let rows = fig10_staleness(receivers, staleness, duration, 1);

    if json {
        let out: Vec<serde_json::Value> = rows
            .iter()
            .map(|r| {
                serde_json::json!({
                    "receivers_per_set": r.receivers_per_set,
                    "staleness_secs": r.staleness_secs,
                    "mean_relative_deviation": r.mean_relative_deviation,
                    "mean_loss": r.mean_loss,
                })
            })
            .collect();
        println!("{}", serde_json::to_string_pretty(&out).unwrap());
        return;
    }

    println!("Fig. 10 — Impact of stale topology information (Topology A, VBR P=3)");
    println!("rows: staleness (s); columns: receivers per set\n");
    for (title, get) in [("mean relative deviation", 0usize), ("mean loss rate", 1usize)] {
        println!("[{title}]");
        print!("{:>12}", "staleness");
        for &n in receivers {
            print!("{:>12}", format!("{}/set", n));
        }
        println!();
        println!("{}", "-".repeat(12 + 12 * receivers.len()));
        for &st in staleness {
            print!("{st:>12}");
            for &n in receivers {
                let v = rows
                    .iter()
                    .find(|r| r.receivers_per_set == n && r.staleness_secs == st)
                    .map(|r| if get == 0 { r.mean_relative_deviation } else { r.mean_loss })
                    .unwrap_or(f64::NAN);
                print!("{v:>12.4}");
            }
            println!();
        }
        println!();
    }
    println!(
        "\nShape check (paper): performance deteriorates with staleness; the session\n\
         with the fewest receivers is least affected; deterioration shows after ~4 s\n\
         and plateaus around 10 s (max source-receiver latency here is 600 ms)."
    );
}
