//! Deterministic evaluation campaign over the scenario zoo (DESIGN.md §13).
//!
//! ```text
//! cargo run --release --bin campaign -- --smoke [--seed-index N] [--out DIR]
//! cargo run --release --bin campaign -- --full  [--seed-index N] [--out DIR]
//! ```
//!
//! Expands the scenario matrix from the seed-index, runs every cell, checks
//! the pass/fail gates, and writes `campaign.json` / `campaign.md` plus one
//! JSON artifact per run under `--out` (default `target/campaign/<profile>`).
//! The artifacts are byte-identical across reruns with the same seed-index.
//!
//! Exit codes: `0` all gates passed (skips allowed, each with a logged
//! reason), `2` at least one gate failed, `3` coverage-cap audit failure —
//! the profile truncated the matrix without recording it in the artifact
//! (the `SILENT-CAP` line below is what CI greps for).

use scenarios::campaign::{self, CampaignSpec, GateStatus, Profile};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut profile = Profile::Smoke;
    let mut seed_index = 1u64;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => profile = Profile::Smoke,
            "--full" => profile = Profile::Full,
            "--seed-index" => {
                let v = args.next().expect("--seed-index needs a value");
                seed_index = v.parse().expect("--seed-index must be a u64");
            }
            "--out" => out = Some(PathBuf::from(args.next().expect("--out needs a path"))),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: campaign [--smoke|--full] [--seed-index N] [--out DIR]");
                return ExitCode::from(1);
            }
        }
    }
    let out = out.unwrap_or_else(|| PathBuf::from("target/campaign").join(profile.label()));

    let spec = CampaignSpec::new("zoo", seed_index, profile);
    let report = campaign::run_campaign(&spec);

    // Coverage-cap audit: every cap the profile applies must be recorded
    // in the artifact. A mismatch means some truncation went unlogged.
    let expected = campaign::expected_caps(&spec);
    if report.coverage_caps.len() != expected {
        eprintln!(
            "SILENT-CAP: profile {} applied {expected} coverage caps but recorded {}",
            profile.label(),
            report.coverage_caps.len()
        );
        return ExitCode::from(3);
    }
    for cap in &report.coverage_caps {
        println!("coverage-cap: {cap}");
    }

    match report.write_artifacts(&out) {
        Ok(paths) => {
            for p in &paths {
                println!("wrote {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("failed to write artifacts under {}: {e}", out.display());
            return ExitCode::from(1);
        }
    }

    println!(
        "campaign `{}` ({}) seed-index {}: {} runs, {} gates passed, {} failed, {} skipped",
        report.name,
        profile.label(),
        seed_index,
        report.runs.len(),
        report.gates_passed(),
        report.gates_failed(),
        report.gates_skipped(),
    );
    for r in &report.runs {
        for g in &r.gates {
            if g.status != GateStatus::Pass {
                println!(
                    "  {} :: {} -> {}{}",
                    r.id,
                    g.name,
                    match g.status {
                        GateStatus::Fail => "FAIL",
                        _ => "skipped",
                    },
                    if g.reason.is_empty() { String::new() } else { format!(" ({})", g.reason) },
                );
            }
        }
    }
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        eprintln!("gate failure: {} gate(s) violated their bound", report.gates_failed());
        ExitCode::from(2)
    }
}
