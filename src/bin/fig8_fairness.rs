//! Fig. 8 — inter-session fairness in Topology B.
//!
//! ```text
//! cargo run --release --bin fig8_fairness [-- --quick] [-- --json]
//! ```
//!
//! Up to 16 sessions compete over one shared link whose capacity allows an
//! ideal 4 layers (480 kb/s) each. Prints the mean relative deviation from
//! that optimum for the first and second halves of the run (the paper's
//! 0–600 s and 600–1200 s intervals), plus a Jain fairness index over
//! per-session bytes.

use netsim::SimDuration;
use scenarios::experiments::{fig8_fairness, paper_traffic_models};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let duration = if quick { SimDuration::from_secs(240) } else { SimDuration::from_secs(1200) };
    let counts: &[usize] = if quick { &[2, 4] } else { &[1, 2, 4, 8, 12, 16] };

    let rows = fig8_fairness(counts, &paper_traffic_models(), duration, 1);

    if json {
        let out: Vec<serde_json::Value> = rows
            .iter()
            .map(|r| {
                serde_json::json!({
                    "model": r.model,
                    "sessions": r.sessions,
                    "dev_first_half": r.dev_first_half,
                    "dev_second_half": r.dev_second_half,
                    "jain": r.jain,
                })
            })
            .collect();
        println!("{}", serde_json::to_string_pretty(&out).unwrap());
        return;
    }

    let half = duration.as_secs_f64() / 2.0;
    println!("Fig. 8 — Fairness in Topology B (optimal = 4 layers per session)");
    println!(
        "{:<10} {:>10} {:>16} {:>16} {:>8}",
        "traffic",
        "sessions",
        format!("dev 0-{half:.0}s"),
        format!("dev {half:.0}-{:.0}s", duration.as_secs_f64()),
        "jain"
    );
    println!("{}", "-".repeat(66));
    for r in &rows {
        println!(
            "{:<10} {:>10} {:>16.4} {:>16.4} {:>8.4}",
            r.model, r.sessions, r.dev_first_half, r.dev_second_half, r.jain
        );
    }
    println!(
        "\nShape check (paper): small relative deviation in BOTH halves for up to 16\n\
         competing sessions — TopoSense imposes fairness irrespective of the interval."
    );
}
