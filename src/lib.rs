//! # toposense-repro
//!
//! Umbrella crate for the reproduction of *"Using Tree Topology for
//! Multicast Congestion Control"* (Jagannathan & Almeroth, ICPP 2001).
//!
//! Re-exports every workspace crate under one roof so examples, integration
//! tests, and the per-figure experiment binaries have a single import point:
//!
//! * [`netsim`] — the discrete-event network simulator substrate.
//! * [`topology`] — tree structures, generators, and topology discovery.
//! * [`traffic`] — layered CBR/VBR source models.
//! * [`toposense`] — the TopoSense algorithm and its agents.
//! * [`baselines`] — RLM-style receiver-driven control, oracle, strawmen.
//! * [`metrics`] — the paper's evaluation metrics.
//! * [`scenarios`] — end-to-end experiment runners for every figure.

pub use baselines;
pub use metrics;
pub use netsim;
pub use scenarios;
pub use topology;
pub use toposense;
pub use traffic;
