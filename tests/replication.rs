//! Differential coverage for the replicated controller state machine
//! (DESIGN.md §14): every replica of a [`Cluster`] is a byte-exact twin of
//! the primary, failover resumes the suggestion stream with zero
//! re-learning, silent divergence (a bit flip) is caught and quarantined
//! the interval it first surfaces, a partitioned replica rejoins through
//! the real `toposense.checkpoint.v1` JSON resync path, and
//! checkpoint→restore→resume is byte-identical to an uninterrupted run —
//! for the full and the change-driven pipeline alike.
//!
//! Comparisons are exact (`==` on floats included), same contract as
//! `tests/incremental.rs`.

use netsim::{
    AppId, DirLinkId, GroupId, GroupSnapshot, NodeId, RngStream, SessionId, SimDuration, SimTime,
};
use proptest::prelude::*;
use topology::discovery::{LinkView, TopologyView};
use topology::SessionTree;
use toposense::algorithm::{AlgorithmInputs, AlgorithmOutputs, AlgorithmState, ReceiverReport};
use toposense::replication::Cluster;
use toposense::{fingerprint_outputs, Config, Snapshot};
use traffic::LayerSpec;

/// Build a session tree from a parent vector: node `i + 1` attaches under
/// node `parents[i] % (i + 1)` (same generator as `tests/incremental.rs`).
fn session_tree(parents: &[usize], session: u32) -> SessionTree {
    let mut links = Vec::new();
    let mut active = Vec::new();
    for (i, &p) in parents.iter().enumerate() {
        let child = NodeId(i as u32 + 1);
        let parent = NodeId((p % (i + 1)) as u32);
        let id = DirLinkId(i as u32);
        links.push(LinkView { id, from: parent, to: child });
        active.push(id);
    }
    let all: Vec<NodeId> = (0..=parents.len() as u32).map(NodeId).collect();
    let view = TopologyView {
        time: SimTime::ZERO,
        links,
        groups: vec![GroupSnapshot {
            group: GroupId(0),
            root: NodeId(0),
            active_links: active,
            member_nodes: all,
        }],
    };
    SessionTree::build(&view, SessionId(session), &[GroupId(0)]).unwrap()
}

fn leaf_receivers(tree: &SessionTree) -> Vec<NodeId> {
    tree.tree().leaves().filter(|&n| n != tree.tree().root()).collect()
}

fn reports_for(leaves: &[NodeId]) -> Vec<ReceiverReport> {
    leaves
        .iter()
        .enumerate()
        .map(|(i, &node)| ReceiverReport {
            receiver: AppId(500 + i as u32),
            node,
            session: SessionId(0),
            level: 3,
            // Every other receiver starts lossy so congestion histories
            // carry information from the first interval on.
            received: if i % 2 == 0 { 100 } else { 90 },
            lost: if i % 2 == 0 { 0 } else { 10 },
            bytes: 25_000,
        })
        .collect()
}

fn registry_for(leaves: &[NodeId]) -> Vec<(AppId, NodeId, SessionId)> {
    leaves
        .iter()
        .enumerate()
        .map(|(i, &node)| (AppId(500 + i as u32), node, SessionId(0)))
        .collect()
}

/// Randomly perturb report values in place (keys stay stable).
fn churn(reports: &mut [ReceiverReport], rng: &mut RngStream) {
    for r in reports.iter_mut() {
        let x = rng.f64();
        if x < 0.30 {
            r.bytes = 10_000 + (rng.f64() * 40_000.0) as u64;
        } else if x < 0.50 {
            let lossy = rng.f64() < 0.5;
            r.received = if lossy { 90 } else { 100 };
            r.lost = if lossy { 10 } else { 0 };
        } else if x < 0.60 {
            r.level = 1 + (rng.f64() * 5.0) as u8;
        }
    }
}

fn inputs_at<'a>(
    now_secs: u64,
    trees: &'a [SessionTree],
    specs: &'a [&'a LayerSpec],
    registry: &'a [(AppId, NodeId, SessionId)],
    reports: &'a [ReceiverReport],
) -> AlgorithmInputs<'a> {
    AlgorithmInputs {
        now: SimTime::from_secs(now_secs),
        interval: SimDuration::from_secs(2),
        trees,
        specs,
        registry,
        reports,
    }
}

/// Field-wise byte-identity on everything except the path diagnostics.
macro_rules! assert_outputs_eq {
    ($assert:ident, $a:expr, $b:expr, $ctx:expr) => {{
        let (a, b) = (&$a, &$b);
        $assert!(a.suggestions == b.suggestions, "suggestions diverged at {}", $ctx);
        $assert!(a.estimated_links == b.estimated_links, "estimates diverged at {}", $ctx);
        $assert!(a.congested_nodes == b.congested_nodes, "congested count diverged at {}", $ctx);
        $assert!(a.root_supply == b.root_supply, "root supply diverged at {}", $ctx);
    }};
}

/// The oracle: a single never-interrupted `AlgorithmState` fed the same
/// inputs the cluster gets.
fn oracle_run(
    state: &mut AlgorithmState,
    cfg: &Config,
    inputs: &AlgorithmInputs<'_>,
) -> AlgorithmOutputs {
    if cfg.incremental {
        state.run_incremental(inputs)
    } else {
        state.run(inputs)
    }
}

/// Crash the primary mid-stream: the promoted replica must resume the
/// suggestion stream byte-identically to a no-crash oracle from the first
/// post-takeover interval onward — zero re-learning, the ISSUE 7
/// acceptance bound.
#[test]
fn failover_resumes_byte_identical_to_no_crash_oracle() {
    let parents = [0usize, 0, 1, 1, 2, 3, 3, 4];
    let trees = vec![session_tree(&parents, 0)];
    let leaves = leaf_receivers(&trees[0]);
    let spec = LayerSpec::paper_default();
    let specs: Vec<&LayerSpec> = vec![&spec];
    let registry = registry_for(&leaves);
    let mut reports = reports_for(&leaves);
    let mut rng = RngStream::derive(11, "replication/failover");

    let cfg = Config::default();
    let mut cluster = Cluster::new(cfg, 11, 3);
    let mut oracle = AlgorithmState::new(cfg, 11);

    for round in 1..=16u64 {
        if round == 8 {
            cluster.crash_primary();
            assert_eq!(cluster.primary(), 1, "smallest-id live replica is promoted");
            assert_eq!(cluster.view_changes, 1);
        }
        churn(&mut reports, &mut rng);
        let inputs = inputs_at(2 * round, &trees, &specs, &registry, &reports);
        let want = oracle_run(&mut oracle, &cfg, &inputs);
        let got = cluster.tick(&inputs);
        assert_outputs_eq!(assert, want, got.outputs, format_args!("round {round}"));
        assert_eq!(got.fingerprint, fingerprint_outputs(&want), "round {round}");
        assert!(got.newly_quarantined.is_empty(), "round {round}: healthy run quarantined someone");
    }
    assert_eq!(cluster.divergences, 0);
}

/// A single silent bit flip in a replica's state is caught by the
/// fingerprint cross-check within one interval and the replica is
/// quarantined; the cluster's answer never wavers from the oracle.
#[test]
fn bit_flip_divergence_is_detected_and_quarantined_within_one_interval() {
    let parents = [0usize, 0, 1, 2, 2, 3];
    let trees = vec![session_tree(&parents, 0)];
    let leaves = leaf_receivers(&trees[0]);
    let spec = LayerSpec::paper_default();
    let specs: Vec<&LayerSpec> = vec![&spec];
    let registry = registry_for(&leaves);
    let mut reports = reports_for(&leaves);
    let mut rng = RngStream::derive(23, "replication/bitflip");

    let cfg = Config::default();
    let mut cluster = Cluster::new(cfg, 23, 3);
    let mut oracle = AlgorithmState::new(cfg, 23);

    for round in 1..=4u64 {
        churn(&mut reports, &mut rng);
        let inputs = inputs_at(2 * round, &trees, &specs, &registry, &reports);
        let want = oracle_run(&mut oracle, &cfg, &inputs);
        let got = cluster.tick(&inputs);
        assert_outputs_eq!(assert, want, got.outputs, format_args!("warmup round {round}"));
    }

    // Corrupt follower 1's congestion memory by one bit.
    cluster.bit_flip(1);
    churn(&mut reports, &mut rng);
    let inputs = inputs_at(10, &trees, &specs, &registry, &reports);
    let want = oracle_run(&mut oracle, &cfg, &inputs);
    let got = cluster.tick(&inputs);
    assert_eq!(got.newly_quarantined, vec![1], "divergence must be caught the same interval");
    assert!(!got.view_changed, "a follower's divergence must not depose the primary");
    assert!(cluster.replica(1).quarantined);
    assert_eq!(cluster.divergences, 1);
    assert_outputs_eq!(assert, want, got.outputs, "divergence round");

    // The quarantined replica stays out; the survivors keep matching.
    for round in 6..=9u64 {
        churn(&mut reports, &mut rng);
        let inputs = inputs_at(2 * round, &trees, &specs, &registry, &reports);
        let want = oracle_run(&mut oracle, &cfg, &inputs);
        let got = cluster.tick(&inputs);
        assert_outputs_eq!(assert, want, got.outputs, format_args!("round {round}"));
        assert!(got.newly_quarantined.is_empty());
    }
    assert_eq!(cluster.divergences, 1, "one flip, one divergence");
}

/// When the *primary's* state is the one corrupted, the majority vote
/// deposes it: the cross-check quarantines the primary, a clean follower
/// is promoted, and the cluster's answer is still the oracle's.
#[test]
fn corrupted_primary_is_deposed_by_the_majority() {
    let parents = [0usize, 0, 1, 2, 2, 3];
    let trees = vec![session_tree(&parents, 0)];
    let leaves = leaf_receivers(&trees[0]);
    let spec = LayerSpec::paper_default();
    let specs: Vec<&LayerSpec> = vec![&spec];
    let registry = registry_for(&leaves);
    let mut reports = reports_for(&leaves);
    let mut rng = RngStream::derive(29, "replication/depose");

    let cfg = Config::default();
    let mut cluster = Cluster::new(cfg, 29, 3);
    let mut oracle = AlgorithmState::new(cfg, 29);

    for round in 1..=3u64 {
        churn(&mut reports, &mut rng);
        let inputs = inputs_at(2 * round, &trees, &specs, &registry, &reports);
        let want = oracle_run(&mut oracle, &cfg, &inputs);
        let got = cluster.tick(&inputs);
        assert_outputs_eq!(assert, want, got.outputs, format_args!("warmup round {round}"));
    }

    // The flip corrupts state silently; the cross-check deposes the
    // primary the *first interval the corruption alters an output* — which
    // is exactly the guarantee that matters: no decision ever leaves the
    // cluster carrying the corruption, because the healthy majority's
    // answer wins every interval including the detection one.
    cluster.bit_flip(0);
    let mut deposed_at = None;
    for round in 4..=8u64 {
        churn(&mut reports, &mut rng);
        let inputs = inputs_at(2 * round, &trees, &specs, &registry, &reports);
        let want = oracle_run(&mut oracle, &cfg, &inputs);
        let got = cluster.tick(&inputs);
        assert_outputs_eq!(assert, want, got.outputs, format_args!("round {round}"));
        if got.view_changed {
            assert_eq!(got.newly_quarantined, vec![0], "the corrupted primary is the minority");
            deposed_at = Some(round);
            break;
        }
    }
    deposed_at.expect("corrupted primary was never deposed — the flip stayed invisible");
    assert_eq!(cluster.primary(), 1);
    assert!(cluster.replica(0).quarantined);
    assert_eq!(cluster.divergences, 1);
}

/// A partitioned replica misses batches, falls behind, and rejoins through
/// a checkpoint resync over the real JSON encode/decode path. The restored
/// replica is a true twin: promoted later, it carries the stream on.
#[test]
fn partitioned_replica_resyncs_through_checkpoint_json_and_can_lead() {
    let parents = [0usize, 0, 1, 1, 2, 3, 4];
    let trees = vec![session_tree(&parents, 0)];
    let leaves = leaf_receivers(&trees[0]);
    let spec = LayerSpec::paper_default();
    let specs: Vec<&LayerSpec> = vec![&spec];
    let registry = registry_for(&leaves);
    let mut reports = reports_for(&leaves);
    let mut rng = RngStream::derive(47, "replication/partition");

    let cfg = Config::default();
    let mut cluster = Cluster::new(cfg, 47, 3);
    let mut oracle = AlgorithmState::new(cfg, 47);
    let drive = |cluster: &mut Cluster,
                 oracle: &mut AlgorithmState,
                 reports: &mut Vec<ReceiverReport>,
                 rng: &mut RngStream,
                 round: u64| {
        churn(reports, rng);
        let inputs = inputs_at(2 * round, &trees, &specs, &registry, reports);
        let want = oracle_run(oracle, &cfg, &inputs);
        let got = cluster.tick(&inputs);
        assert_outputs_eq!(assert, want, got.outputs, format_args!("round {round}"));
    };

    for round in 1..=3u64 {
        drive(&mut cluster, &mut oracle, &mut reports, &mut rng, round);
    }
    cluster.partition(2);
    for round in 4..=6u64 {
        drive(&mut cluster, &mut oracle, &mut reports, &mut rng, round);
    }
    assert_eq!(cluster.replica(2).next_seq, 3, "partitioned replica missed the batches");

    cluster.heal(2).expect("checkpoint resync round-trips");
    assert_eq!(cluster.replica(2).next_seq, cluster.seq(), "resync lands at the primary's seq");

    for round in 7..=9u64 {
        drive(&mut cluster, &mut oracle, &mut reports, &mut rng, round);
    }
    assert_eq!(cluster.divergences, 0, "a resynced replica votes with the majority");

    // Promote the resynced replica by crashing everyone ahead of it — the
    // restored state must carry the stream without a hiccup.
    cluster.crash_primary();
    assert_eq!(cluster.primary(), 1);
    cluster.crash_primary();
    assert_eq!(cluster.primary(), 2, "the healed replica is the last one standing");
    for round in 10..=13u64 {
        drive(&mut cluster, &mut oracle, &mut reports, &mut rng, round);
    }
    assert_eq!(cluster.divergences, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// checkpoint → encode → decode → restore → resume is byte-identical
    /// to the uninterrupted twin, wherever the cut lands and on either
    /// pipeline (full or change-driven), with or without membership churn
    /// mid-stream.
    #[test]
    fn checkpoint_restore_resume_matches_uninterrupted_twin(
        parents in prop::collection::vec(0usize..10, 3..12),
        seed in 0u64..500,
        cut in 1u64..7,
        incremental in any::<bool>(),
        member_churn in any::<bool>(),
    ) {
        let trees = vec![session_tree(&parents, 0)];
        let leaves = leaf_receivers(&trees[0]);
        let spec = LayerSpec::paper_default();
        let specs: Vec<&LayerSpec> = vec![&spec];
        let all_registry = registry_for(&leaves);
        let all_reports = reports_for(&leaves);
        let half_registry: Vec<_> = all_registry.iter().step_by(2).copied().collect();
        let half_reports: Vec<_> = all_reports.iter().step_by(2).cloned().collect();
        let mut rng = RngStream::derive(seed, "replication/ckpt-resume");
        let cfg = Config { incremental, ..Config::default() };

        let mut uninterrupted = AlgorithmState::new(cfg, seed);
        let mut resumed = AlgorithmState::new(cfg, seed);

        for round in 1..=10u64 {
            // Membership churn mid-stream exercises the full-run fallback
            // (and a checkpoint cut right on the flip boundary).
            let (registry, mut reports) = if member_churn && (5..=7).contains(&round) {
                (&half_registry, half_reports.clone())
            } else {
                (&all_registry, all_reports.clone())
            };
            churn(&mut reports, &mut rng);
            let inputs = inputs_at(2 * round, &trees, &specs, registry, &reports);
            let a = oracle_run(&mut uninterrupted, &cfg, &inputs);
            let b = oracle_run(&mut resumed, &cfg, &inputs);
            assert_outputs_eq!(prop_assert, a, b, format_args!("round {round} (cut {cut})"));

            if round == cut {
                // Interrupt the twin: serialize, parse, restore.
                let snap = resumed.checkpoint();
                let blob = snap.encode();
                let parsed = Snapshot::decode(&blob).expect("canonical blob parses");
                prop_assert!(parsed == snap, "JSON round-trip must be the identity");
                resumed = AlgorithmState::restore(cfg, &parsed).expect("same-config restore");
                prop_assert!(resumed.runs() == round, "restore must resume at the cut");
            }
        }
    }

    /// The checkpoint is config-bound: restoring under a different Config
    /// is refused instead of silently misinterpreting the state.
    #[test]
    fn restore_refuses_a_foreign_config(
        seed in 0u64..200,
    ) {
        let state = AlgorithmState::new(Config::default(), seed);
        let snap = state.checkpoint();
        let other = Config { capacity_creep: 2.0, ..Config::default() };
        prop_assert!(AlgorithmState::restore(other, &snap).is_err());
    }
}

// ---------------------------------------------------------------- wire level

/// End-to-end over the simulator: with replication on (the default), the
/// warm standby applies the primary's input batches, acks fingerprints,
/// and takes over inside the heartbeat bound when the primary dies
/// mid-interval.
#[test]
fn wire_failover_standby_is_input_synced_and_takes_over_in_bound() {
    let (scenario, crash_at) = scenarios::chaos::primary_crash_mid_interval(5);
    let cfg = scenario.cfg;
    let r = scenarios::run(&scenario);

    let ctrl = r.controller.as_ref().expect("primary stats");
    let standby = r.standby.as_ref().expect("standby stats");

    // Before the crash the pair ran the replication protocol for real.
    assert!(standby.replica_applied > 0, "standby never applied a batch");
    assert!(ctrl.replica_acks > 0, "primary never saw a matching ack");
    assert_eq!(ctrl.replica_divergences, 0);
    assert!(!ctrl.replica_quarantined);

    // Takeover within failover_after + one interval of the mid-interval
    // crash (heartbeat silence is only observable at the next check).
    let at = standby.failover_at.expect("standby must take over");
    let bound = cfg.failover_after + cfg.interval;
    assert!(
        at.since(crash_at) <= bound,
        "takeover at {at:?} missed the bound {bound:?} after the {crash_at:?} crash"
    );

    // The promoted standby kept steering: its own first interval followed
    // within one control interval of the takeover.
    let first_steer = standby
        .suggestion_series
        .iter()
        .find(|(t, s)| *t >= at && !s.is_empty())
        .map(|&(t, _)| t)
        .expect("promoted standby never sent a suggestion");
    assert!(
        first_steer.since(at) <= cfg.interval,
        "first post-takeover steer at {first_steer:?} is later than one interval after {at:?}"
    );
}

/// End-to-end over the simulator: a partitioned standby misses batches and
/// rejoins through a `CheckpointTransfer` when its uplink heals.
#[test]
fn wire_partitioned_standby_resyncs_via_checkpoint_transfer() {
    let (scenario, _heal) = scenarios::chaos::replica_partition(3);
    let r = scenarios::run(&scenario);

    let ctrl = r.controller.as_ref().expect("primary stats");
    let standby = r.standby.as_ref().expect("standby stats");

    assert!(standby.replica_applied > 0, "standby applied batches before/after the partition");
    assert!(ctrl.replica_resyncs > 0, "primary never served a checkpoint resync");
    assert!(standby.replica_resyncs > 0, "standby never applied a checkpoint resync");
    assert_eq!(ctrl.replica_divergences, 0, "a resynced replica must not diverge");
    assert!(!ctrl.replica_quarantined);
}
