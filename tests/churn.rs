//! Receiver churn: the paper's architecture registers receivers whenever
//! they appear and forgets them when their nodes leave the tree; the
//! long-lived session must keep serving everyone else undisturbed.

use netsim::sim::{NetworkBuilder, SimConfig};
use netsim::{GroupId, LinkConfig, NodeId, SessionId, SimDuration, SimTime};
use std::sync::Arc;
use toposense::receiver::ReceiverHandle;
use toposense::{Config, Controller, Receiver};
use traffic::session::SessionDef;
use traffic::{LayerSpec, LayeredSource, SessionCatalog, TrafficModel};

/// Shared-bottleneck star: src -- [cap kbps] -- hub -- receivers.
fn build(
    cap_kbps: f64,
    n_receivers: usize,
    lifetimes: &[(u64, Option<u64>)],
    seed: u64,
) -> (netsim::Simulator, Vec<ReceiverHandle>) {
    assert_eq!(lifetimes.len(), n_receivers);
    let mut b = NetworkBuilder::new(SimConfig { seed, ..SimConfig::default() });
    let src = b.add_node("src");
    let hub = b.add_node("hub");
    b.add_link(src, hub, LinkConfig::kbps(cap_kbps));
    let leaves: Vec<NodeId> = (0..n_receivers)
        .map(|i| {
            let n = b.add_node(format!("r{i}"));
            b.add_link(hub, n, LinkConfig::kbps(10_000.0));
            n
        })
        .collect();
    let mut sim = b.build();
    let spec = LayerSpec::paper_default();
    let groups: Vec<GroupId> = (0..spec.layer_count()).map(|_| sim.create_group(src)).collect();
    let def = SessionDef { id: SessionId(0), source: src, groups, spec };
    let mut catalog = SessionCatalog::new();
    catalog.add(def.clone());
    let catalog = catalog.share();
    let cfg = Config::default();
    let (ctrl, _) = Controller::new(Arc::clone(&catalog), cfg, SimDuration::ZERO, 1);
    sim.add_app(src, Box::new(ctrl));
    sim.add_app(src, Box::new(LayeredSource::new(def.clone(), TrafficModel::Cbr, 2)));
    let mut handles = Vec::new();
    for (i, (&leaf, &(start, stop))) in leaves.iter().zip(lifetimes).enumerate() {
        let (rx, h) = Receiver::new(def.clone(), src, cfg, 100 + i as u64, &format!("r{i}"));
        let rx = rx.with_lifetime(SimTime::from_secs(start), stop.map(SimTime::from_secs));
        sim.add_app(leaf, Box::new(rx));
        handles.push(h);
    }
    (sim, handles)
}

#[test]
fn late_joiner_is_steered_like_everyone_else() {
    // 600 kb/s bottleneck, optimum 4 layers. Receiver 1 joins at t=120.
    let (mut sim, handles) = build(600.0, 2, &[(0, None), (120, None)], 3);
    sim.run_until(SimTime::from_secs(400));
    let early = handles[0].lock().unwrap().clone();
    let late = handles[1].lock().unwrap().clone();
    // The late joiner produced nothing before its start.
    assert!(late.changes.first().unwrap().0 >= SimTime::from_secs(120));
    // Both sit near the optimum at the end.
    for (name, s) in [("early", &early), ("late", &late)] {
        let series = metrics::StepSeries::from_changes(&s.changes);
        let mean = series.mean(SimTime::from_secs(300), SimTime::from_secs(400));
        assert!((mean - 4.0).abs() < 1.0, "{name}: late mean {mean:.2}");
        assert!(s.suggestions_received > 0, "{name} heard from the controller");
    }
}

#[test]
fn departure_releases_the_tree() {
    // One receiver leaves mid-run; the stayer keeps its subscription and
    // the departed node's groups stop flowing (no more bytes for it).
    let (mut sim, handles) = build(600.0, 2, &[(0, None), (0, Some(150))], 7);
    sim.run_until(SimTime::from_secs(400));
    let stayer = handles[0].lock().unwrap().clone();
    let leaver = handles[1].lock().unwrap().clone();
    assert_eq!(leaver.final_level(), 0, "departed receiver left all groups");
    // No loss/level samples after departure (+ one report window slack).
    let last_sample = leaver.level_series.last().unwrap().0;
    assert!(last_sample <= SimTime::from_secs(152));
    // The stayer is unaffected late in the run.
    let series = metrics::StepSeries::from_changes(&stayer.changes);
    let mean = series.mean(SimTime::from_secs(300), SimTime::from_secs(400));
    assert!((mean - 4.0).abs() < 1.0, "stayer mean {mean:.2}");
}

#[test]
fn rolling_churn_does_not_wedge_the_controller() {
    // Five receivers with staggered, overlapping lifetimes.
    let lifetimes =
        [(0u64, Some(200u64)), (50, Some(250)), (100, Some(300)), (150, None), (200, None)];
    let (mut sim, handles) = build(600.0, 5, &lifetimes, 11);
    sim.run_until(SimTime::from_secs(420));
    // The survivors converge.
    for (i, h) in handles.iter().enumerate().skip(3) {
        let s = h.lock().unwrap().clone();
        let series = metrics::StepSeries::from_changes(&s.changes);
        let mean = series.mean(SimTime::from_secs(350), SimTime::from_secs(420));
        assert!(
            (mean - 4.0).abs() < 1.2,
            "survivor r{i}: late mean {mean:.2}; changes {:?}",
            s.changes
        );
    }
    // The departed are all at level 0.
    for h in handles.iter().take(3) {
        assert_eq!(h.lock().unwrap().final_level(), 0);
    }
}
