//! Observability-layer invariants (DESIGN.md §15).
//!
//! Three hard guarantees, each pinned here:
//!
//! 1. **Pure observer, everything armed.** A run with the telemetry sink
//!    attached *and* the simulator trace ring enabled is byte-identical
//!    (in everything the simulation can observe about itself) to a plain
//!    run. The recorder may count, it may never steer.
//! 2. **Causal chains close.** Every subscription change a receiver
//!    applies is reconstructible from the audit trail as a complete
//!    report → decide → apply chain under one cause id, causally ordered
//!    in simulated time.
//! 3. **Failures carry forensics.** A quarantined replica and a failed
//!    campaign gate each yield a `blackbox.v1` dump that decodes against
//!    its schema and re-encodes byte-identically.

use netsim::{
    AppId, DirLinkId, GroupId, GroupSnapshot, NodeId, RngStream, SessionId, SimDuration, SimTime,
};
use scenarios::campaign::{run_campaign, CampaignSpec, Profile};
use scenarios::{chaos, run, ControlMode, Scenario};
use telemetry::{Blackbox, Record, Telemetry};
use topology::discovery::{LinkView, TopologyView};
use topology::{generators, SessionTree};
use toposense::algorithm::{AlgorithmInputs, ReceiverReport};
use toposense::replication::Cluster;
use toposense::Config;
use traffic::{LayerSpec, TrafficModel};

fn scenario(seed: u64) -> Scenario {
    Scenario::new(generators::topology_a_default(2), TrafficModel::Vbr { p: 3.0 }, seed)
        .with_control(ControlMode::TopoSense { staleness: SimDuration::ZERO })
        .with_duration(SimDuration::from_secs(90))
}

/// Everything observable about a run that must not depend on the
/// observability layer (same contract as `tests/telemetry.rs`).
type Fingerprint = (u64, u64, Vec<Vec<(SimTime, u8, u8)>>, u64);

fn fingerprint(r: &scenarios::ScenarioResult) -> Fingerprint {
    (
        r.events,
        r.total_drops,
        r.receivers.iter().map(|x| x.stats.changes.clone()).collect(),
        r.controller.as_ref().map(|c| c.suggestions_sent).unwrap_or(0),
    )
}

/// Arming *all* of it at once — telemetry sink, simulator trace ring,
/// profile harvest, flight recorder — must leave the simulation
/// event-for-event identical to a plain run.
#[test]
fn fully_armed_recorder_is_a_pure_observer() {
    let plain = run(&scenario(17));
    let (tel, store) = Telemetry::memory();
    let armed = run(&scenario(17).with_telemetry(tel).with_trace(1 << 14));
    assert_eq!(fingerprint(&plain), fingerprint(&armed), "instrumentation steered the run");

    // The armed run must have actually observed something, or the
    // equality above is vacuous.
    let records = store.records();
    assert!(
        records.iter().any(|r| matches!(r, Record::Trace { .. })),
        "no causal trace records were emitted"
    );
    assert!(armed.profile.events_total > 0, "profiler counted nothing");
    assert!(!armed.trace_overflowed || armed.trace_dropped > 0);
    let flight = armed.controller.as_ref().expect("toposense run").flight.occurrences();
    assert!(!flight.is_empty(), "flight recorder saw no control-plane occurrences");
    assert!(flight.iter().any(|o| o.kind == "interval_start"));
}

/// Every applied subscription change reconstructs from the audit trail
/// as a complete report → decide → apply chain under its cause id, and
/// the hops of each complete chain are causally ordered.
#[test]
fn causal_chains_close_report_decide_apply() {
    let (tel, store) = Telemetry::memory();
    let result = run(&scenario(11).with_telemetry(tel));
    let records = store.records();

    let r = result
        .receivers
        .iter()
        .find(|r| r.stats.applies.iter().any(|&(_, cause, _, _)| cause != 0))
        .expect("scenario steered nobody — nothing to trace");
    let chains = telemetry::causal::reconstruct(&records, r.session as u64, r.app.0 as u64);
    assert!(chains.iter().any(|c| c.is_complete()), "no complete chain for receiver");

    for &(when, cause, _old, new) in r.stats.applies.iter().filter(|&&(_, c, _, _)| c != 0) {
        let chain = chains
            .iter()
            .find(|c| c.cause == cause)
            .unwrap_or_else(|| panic!("apply with cause {cause:016x} has no chain"));
        assert!(chain.is_complete(), "chain {cause:016x} missing a phase");
        assert!(
            chain
                .hops
                .iter()
                .any(|h| h.phase == "apply" && h.t_ns == when.nanos() && h.level == new as u64),
            "chain {cause:016x} does not record the applied level {new} at {}ns",
            when.nanos()
        );
        let t = |phase: &str| {
            chain.hops.iter().find(|h| h.phase == phase).map(|h| h.t_ns).unwrap_or(u64::MAX)
        };
        assert!(
            t("report") <= t("decide") && t("decide") <= t("apply"),
            "chain {cause:016x} hops are not causally ordered"
        );
    }
}

// ---- forced replica quarantine (same harness as tests/replication.rs) ----

fn session_tree(parents: &[usize]) -> SessionTree {
    let mut links = Vec::new();
    let mut active = Vec::new();
    for (i, &p) in parents.iter().enumerate() {
        let id = DirLinkId(i as u32);
        links.push(LinkView { id, from: NodeId((p % (i + 1)) as u32), to: NodeId(i as u32 + 1) });
        active.push(id);
    }
    let all: Vec<NodeId> = (0..=parents.len() as u32).map(NodeId).collect();
    let view = TopologyView {
        time: SimTime::ZERO,
        links,
        groups: vec![GroupSnapshot {
            group: GroupId(0),
            root: NodeId(0),
            active_links: active,
            member_nodes: all,
        }],
    };
    SessionTree::build(&view, SessionId(0), &[GroupId(0)]).unwrap()
}

/// A bit-flipped replica is quarantined, and the cluster's black box
/// dump records the divergence and quarantine, decodes against the
/// `blackbox.v1` schema, and re-encodes byte-identically.
#[test]
fn forced_quarantine_produces_a_validating_blackbox() {
    let parents = [0usize, 0, 1, 2, 2, 3];
    let trees = vec![session_tree(&parents)];
    let leaves: Vec<NodeId> =
        trees[0].tree().leaves().filter(|&n| n != trees[0].tree().root()).collect();
    let spec = LayerSpec::paper_default();
    let specs: Vec<&LayerSpec> = vec![&spec];
    let registry: Vec<(AppId, NodeId, SessionId)> = leaves
        .iter()
        .enumerate()
        .map(|(i, &node)| (AppId(500 + i as u32), node, SessionId(0)))
        .collect();
    let mut reports: Vec<ReceiverReport> = leaves
        .iter()
        .enumerate()
        .map(|(i, &node)| ReceiverReport {
            receiver: AppId(500 + i as u32),
            node,
            session: SessionId(0),
            level: 3,
            received: if i % 2 == 0 { 100 } else { 90 },
            lost: if i % 2 == 0 { 0 } else { 10 },
            bytes: 25_000,
        })
        .collect();
    // Same churn as tests/replication.rs — keys stay stable, values move
    // enough that corrupted congestion memory must alter an output.
    let mut churn = |reports: &mut [ReceiverReport], rng: &mut RngStream| {
        for r in reports.iter_mut() {
            let x = rng.f64();
            if x < 0.30 {
                r.bytes = 10_000 + (rng.f64() * 40_000.0) as u64;
            } else if x < 0.50 {
                let lossy = rng.f64() < 0.5;
                r.received = if lossy { 90 } else { 100 };
                r.lost = if lossy { 10 } else { 0 };
            } else if x < 0.60 {
                r.level = 1 + (rng.f64() * 5.0) as u8;
            }
        }
    };
    let mut rng = RngStream::derive(23, "replication/bitflip");

    let cfg = Config::default();
    let mut cluster = Cluster::new(cfg, 23, 3);
    for round in 1..=4u64 {
        churn(&mut reports, &mut rng);
        let inputs = AlgorithmInputs {
            now: SimTime::from_secs(2 * round),
            interval: SimDuration::from_secs(2),
            trees: &trees,
            specs: &specs,
            registry: &registry,
            reports: &reports,
        };
        cluster.tick(&inputs);
    }

    // The corruption is silent until it first alters an output; churn the
    // reports until the cross-check catches it.
    cluster.bit_flip(1);
    let mut caught_at = None;
    for round in 5..=16u64 {
        churn(&mut reports, &mut rng);
        let inputs = AlgorithmInputs {
            now: SimTime::from_secs(2 * round),
            interval: SimDuration::from_secs(2),
            trees: &trees,
            specs: &specs,
            registry: &registry,
            reports: &reports,
        };
        if cluster.tick(&inputs).newly_quarantined == vec![1] {
            caught_at = Some(2 * round);
            break;
        }
    }
    let caught_at = caught_at.expect("bit flip never surfaced — scenario too quiet");

    let bb = cluster.blackbox("replica_quarantine", "observability-bitflip");
    assert_eq!(bb.reason, "replica_quarantine");
    assert_eq!(
        bb.t_ns,
        SimTime::from_secs(caught_at).nanos(),
        "dump stamped at the failing interval"
    );
    assert!(
        bb.counters.iter().any(|(k, v)| k == "repl.divergences" && *v == 1),
        "dump must carry the divergence counter"
    );
    for kind in ["divergence", "quarantine"] {
        assert!(
            bb.occurrences.iter().any(|o| o.kind == kind && o.detail.contains("replica 1")),
            "flight window missing a {kind} occurrence for replica 1"
        );
    }
    let text = bb.encode();
    let back = Blackbox::decode(&text).expect("dump must decode against blackbox.v1");
    assert_eq!(back.encode(), text, "decode/re-encode must be byte-identical");
}

/// A deliberately broken config fails campaign gates, and every failed
/// run yields a black box — in the report and on disk — that validates
/// against the schema.
#[test]
fn failed_campaign_gates_produce_validating_blackboxes() {
    // Same sabotage as tests/campaign.rs: creep capacity up while gating
    // everything else shut, so gates must fail.
    let broken = Config {
        capacity_creep: 2.0,
        capacity_loss_threshold: 1.0,
        p_threshold: 0.98,
        high_loss: 0.98,
        very_high_loss: 0.99,
        unilateral_drop_loss: 10.0,
        incremental: false,
        ..chaos::chaos_config()
    };
    let spec = CampaignSpec::new("zoo-broken-bb", 1, Profile::Smoke).with_config_override(broken);
    let report = run_campaign(&spec);
    assert!(!report.passed(), "broken config unexpectedly passed all gates");
    assert!(!report.blackboxes.is_empty(), "failed gates produced no black boxes");

    let failed: Vec<&str> =
        report.runs.iter().filter(|r| r.failed()).map(|r| r.id.as_str()).collect();
    for (id, bb) in &report.blackboxes {
        assert!(failed.contains(&id.as_str()), "black box for {id} but that run passed");
        assert_eq!(bb.reason, "campaign_gate_failure");
        let text = bb.encode();
        let back = Blackbox::decode(&text).unwrap_or_else(|e| panic!("dump for {id}: {e}"));
        assert_eq!(back.encode(), text, "dump for {id} not byte-identical after round trip");
    }

    // The artifact tree carries one decodable dump per failed run.
    let dir =
        std::env::temp_dir().join(format!("toposense-observability-bb-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    report.write_artifacts(&dir).expect("write artifacts");
    let mut on_disk = 0usize;
    for entry in std::fs::read_dir(dir.join("runs")).expect("runs dir") {
        let p = entry.expect("dir entry").path();
        if p.file_name().is_some_and(|n| n.to_string_lossy().ends_with(".blackbox.json")) {
            let text = std::fs::read_to_string(&p).expect("readable dump");
            Blackbox::decode(&text).unwrap_or_else(|e| panic!("{}: {e}", p.display()));
            on_disk += 1;
        }
    }
    assert_eq!(on_disk, report.blackboxes.len(), "every black box must land on disk");
    let _ = std::fs::remove_dir_all(&dir);
}
