//! Property-based tests over the TopoSense algorithm stages: invariants
//! that must hold for *any* tree shape and any report pattern.

use netsim::{AppId, DirLinkId, GroupId, GroupSnapshot, NodeId, SessionId, SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::HashMap;
use topology::discovery::{LinkView, TopologyView};
use topology::SessionTree;
use toposense::algorithm::{AlgorithmInputs, AlgorithmState, ReceiverReport};
use toposense::Config;
use traffic::LayerSpec;

/// Build a random tree: node `i + 1` attaches under some node `0..=i`.
fn random_session_tree(parents: &[usize]) -> (SessionTree, Vec<NodeId>) {
    let mut links = Vec::new();
    let mut active = Vec::new();
    for (i, &p) in parents.iter().enumerate() {
        let child = NodeId(i as u32 + 1);
        let parent = NodeId((p % (i + 1)) as u32);
        let id = DirLinkId(i as u32);
        links.push(LinkView { id, from: parent, to: child });
        active.push(id);
    }
    let all: Vec<NodeId> = (0..=parents.len() as u32).map(NodeId).collect();
    let view = TopologyView {
        time: SimTime::ZERO,
        links,
        groups: vec![GroupSnapshot {
            group: GroupId(0),
            root: NodeId(0),
            active_links: active,
            member_nodes: all.clone(),
        }],
    };
    let tree = SessionTree::build(&view, SessionId(0), &[GroupId(0)]).unwrap();
    let leaves: Vec<NodeId> = tree.tree().leaves().filter(|&n| n != tree.tree().root()).collect();
    (tree, leaves)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any random tree and any random report pattern, across several
    /// intervals:
    /// * every suggestion stays within [1, max_level];
    /// * supply is monotone down the tree (a child never gets more than
    ///   its parent's supply would allow — verified via the root bound);
    /// * the algorithm never panics and stays deterministic.
    #[test]
    fn suggestions_always_in_range(
        parents in prop::collection::vec(0usize..12, 1..12),
        losses in prop::collection::vec(0u64..40, 1..12),
        levels in prop::collection::vec(1u8..=6, 1..12),
        seed in 0u64..500,
    ) {
        let (tree, leaves) = random_session_tree(&parents);
        prop_assume!(!leaves.is_empty());
        let spec = LayerSpec::paper_default();
        let mut state = AlgorithmState::new(Config::default(), seed);
        let trees = vec![tree];
        let registry: Vec<(AppId, NodeId, SessionId)> = leaves
            .iter()
            .enumerate()
            .map(|(i, &n)| (AppId(i as u32), n, SessionId(0)))
            .collect();
        for round in 0..4u64 {
            let reports: Vec<ReceiverReport> = leaves
                .iter()
                .enumerate()
                .map(|(i, &n)| {
                    let lost = losses[i % losses.len()] + round % 2;
                    let level = levels[i % levels.len()];
                    ReceiverReport {
                        receiver: AppId(i as u32),
                        node: n,
                        session: SessionId(0),
                        level,
                        received: 100,
                        lost,
                        bytes: 25_000 * level as u64,
                    }
                })
                .collect();
            let inputs = AlgorithmInputs {
                now: SimTime::from_secs(2 * (round + 1)),
                interval: SimDuration::from_secs(2),
                trees: &trees,
                specs: &[&spec],
                registry: &registry,
                reports: &reports,
            };
            let out = state.run(&inputs);
            // One suggestion per registered receiver (all nodes in tree).
            prop_assert_eq!(out.suggestions.len(), leaves.len());
            for s in &out.suggestions {
                prop_assert!(s.level >= 1, "below base: {:?}", s);
                prop_assert!(s.level <= spec.max_level(), "above max: {:?}", s);
            }
            // Root supply bounds every suggestion (supply is monotone
            // down the tree).
            let root_supply = out.root_supply[0];
            for s in &out.suggestions {
                prop_assert!(
                    s.level <= root_supply,
                    "suggestion {} above root supply {}",
                    s.level,
                    root_supply
                );
            }
        }
    }

    /// With zero loss everywhere, the algorithm never *reduces* a
    /// receiver's level below what it reports (no spurious drops).
    #[test]
    fn clean_network_never_reduces(
        parents in prop::collection::vec(0usize..8, 1..8),
        level in 1u8..=5,
        seed in 0u64..100,
    ) {
        let (tree, leaves) = random_session_tree(&parents);
        prop_assume!(!leaves.is_empty());
        let spec = LayerSpec::paper_default();
        let mut state = AlgorithmState::new(Config::default(), seed);
        let trees = vec![tree];
        let registry: Vec<(AppId, NodeId, SessionId)> = leaves
            .iter()
            .enumerate()
            .map(|(i, &n)| (AppId(i as u32), n, SessionId(0)))
            .collect();
        for round in 0..3u64 {
            let reports: Vec<ReceiverReport> = leaves
                .iter()
                .enumerate()
                .map(|(i, &n)| ReceiverReport {
                    receiver: AppId(i as u32),
                    node: n,
                    session: SessionId(0),
                    level,
                    received: 100,
                    lost: 0,
                    bytes: (spec.cumulative_rate(level) / 4.0) as u64,
                })
                .collect();
            let inputs = AlgorithmInputs {
                now: SimTime::from_secs(2 * (round + 1)),
                interval: SimDuration::from_secs(2),
                trees: &trees,
                specs: &[&spec],
                registry: &registry,
                reports: &reports,
            };
            let out = state.run(&inputs);
            for s in &out.suggestions {
                prop_assert!(
                    s.level >= level,
                    "clean network reduced {} -> {}",
                    level,
                    s.level
                );
            }
        }
    }

    /// Determinism: same seed and inputs produce identical suggestion
    /// sequences.
    #[test]
    fn algorithm_is_deterministic(
        parents in prop::collection::vec(0usize..6, 1..6),
        seed in 0u64..100,
    ) {
        let run_all = || {
            let (tree, leaves) = random_session_tree(&parents);
            let spec = LayerSpec::paper_default();
            let mut state = AlgorithmState::new(Config::default(), seed);
            let trees = vec![tree];
            let registry: Vec<(AppId, NodeId, SessionId)> = leaves
                .iter()
                .enumerate()
                .map(|(i, &n)| (AppId(i as u32), n, SessionId(0)))
                .collect();
            let mut all = Vec::new();
            for round in 0..5u64 {
                let reports: Vec<ReceiverReport> = leaves
                    .iter()
                    .enumerate()
                    .map(|(i, &n)| ReceiverReport {
                        receiver: AppId(i as u32),
                        node: n,
                        session: SessionId(0),
                        level: 3,
                        received: 90,
                        lost: (round * 7 + i as u64) % 25,
                        bytes: 20_000,
                    })
                    .collect();
                let inputs = AlgorithmInputs {
                    now: SimTime::from_secs(2 * (round + 1)),
                    interval: SimDuration::from_secs(2),
                    trees: &trees,
                    specs: &[&spec],
                    registry: &registry,
                    reports: &reports,
                };
                all.push(state.run(&inputs).suggestions);
            }
            all
        };
        prop_assert_eq!(run_all(), run_all());
    }
}

/// Deterministic (non-proptest) check: the congestion stage's internal
/// loss is never larger than the smallest child loss — for a chain of any
/// length the root's loss equals the leaf's.
#[test]
fn chain_loss_propagates_to_root() {
    use toposense::stages::congestion::{self, LeafObs};
    for len in 1..8usize {
        let parents: Vec<usize> = (0..len).map(|i| i.saturating_sub(0)).collect();
        // A pure chain: node i+1 under node i.
        let chain: Vec<usize> = (0..len).collect();
        let _ = parents;
        let (tree, leaves) = random_session_tree(&chain);
        assert_eq!(leaves.len(), 1);
        let obs = HashMap::from([(leaves[0], LeafObs { loss: 0.2, bytes: 1000, level: 2 })]);
        let sc = congestion::compute(&tree, &obs, &Config::default());
        let root_state = sc.node(tree.tree().root());
        assert!((root_state.loss - 0.2).abs() < 1e-12, "chain length {len}");
        assert!(root_state.congested);
    }
}
