//! The paper's Fig. 3: hierarchical control with multiple per-domain
//! controller agents, each managing its own subtree and unaware of the
//! others.
//!
//! Topology (capacities in kb/s):
//!
//! ```text
//!            src ──10000── core
//!                     ┌──────┴──────┐
//!                  [150]         [600]
//!                  gwA            gwB          <- domain gateways
//!                 /    \         /    \
//!               ra1    ra2     rb1    rb2      <- receivers (fat last hops)
//! ```
//!
//! Domain A = {gwA, ra1, ra2} with its controller at gwA; domain B likewise
//! at gwB. Optima: 2 layers in A, 4 in B. Each controller sees only its
//! domain (restricted topology views, domain-local registrations) and must
//! converge its own receivers.

use netsim::sim::{NetworkBuilder, SimConfig};
use netsim::{GroupId, LinkConfig, SessionId, SimDuration, SimTime};
use scenarios::chaos::chaos_config;
use scenarios::largetree::{federated_domains, reports_behind_border};
use std::sync::Arc;
use toposense::algorithm::ReceiverReport;
use toposense::federation::Federation;
use toposense::{Config, Controller, Receiver};
use traffic::session::SessionDef;
use traffic::{LayerSpec, LayeredSource, SessionCatalog, TrafficModel};

/// One round of a federated drive: the level snapshot receivers obeyed
/// afterwards, the caps computed that interval, and whether any report in
/// the round carried loss.
struct FedRound {
    levels: Vec<Vec<u8>>,
    caps: Vec<u8>,
    lossy: bool,
}

/// Drive a federation for `rounds` intervals with the border-capacity
/// oracle: domain `d`'s whole audience sits behind `caps_bps[d]` of border
/// bandwidth. Receivers obey their latest suggestion.
fn drive_federation(
    fed: &mut Federation,
    leaves: &[netsim::NodeId],
    caps_bps: &[f64],
    spec: &LayerSpec,
    rounds: u64,
) -> Vec<FedRound> {
    let k = caps_bps.len();
    let mut levels = vec![vec![1u8; leaves.len()]; k];
    let mut trajectory = Vec::new();
    for round in 1..=rounds {
        let reports: Vec<Vec<ReceiverReport>> = (0..k)
            .map(|d| {
                reports_behind_border(
                    0,
                    leaves,
                    &levels[d],
                    caps_bps[d],
                    spec,
                    SimDuration::from_secs(2),
                )
            })
            .collect();
        let lossy = reports.iter().flatten().any(|r| r.lost > 0);
        let out =
            fed.run_interval(SimTime::from_secs(2 * round), SimDuration::from_secs(2), reports);
        for d in 0..k {
            for s in &out.domain_outputs[d].suggestions {
                levels[d][(s.receiver.0 - 1000) as usize] = s.level;
            }
        }
        trajectory.push(FedRound { levels: levels.clone(), caps: out.caps, lossy });
    }
    trajectory
}

/// Rounds in `window` where every receiver of domain `d` sat at `level`.
fn rounds_at(window: &[FedRound], d: usize, level: u8) -> usize {
    window.iter().filter(|r| r.levels[d].iter().all(|&l| l == level)).count()
}

#[test]
fn two_domain_controllers_each_converge_their_subtree() {
    let mut b = NetworkBuilder::new(SimConfig { seed: 5, ..SimConfig::default() });
    let src = b.add_node("src");
    let core = b.add_node("core");
    let gw_a = b.add_node("gwA");
    let gw_b = b.add_node("gwB");
    b.add_link(src, core, LinkConfig::kbps(10_000.0));
    b.add_link(core, gw_a, LinkConfig::kbps(150.0));
    b.add_link(core, gw_b, LinkConfig::kbps(600.0));
    let ra: Vec<_> = (0..2)
        .map(|i| {
            let n = b.add_node(format!("ra{i}"));
            b.add_link(gw_a, n, LinkConfig::kbps(10_000.0));
            n
        })
        .collect();
    let rb: Vec<_> = (0..2)
        .map(|i| {
            let n = b.add_node(format!("rb{i}"));
            b.add_link(gw_b, n, LinkConfig::kbps(10_000.0));
            n
        })
        .collect();
    let mut sim = b.build();

    let spec = LayerSpec::paper_default();
    let groups: Vec<GroupId> = (0..spec.layer_count()).map(|_| sim.create_group(src)).collect();
    let def = SessionDef { id: SessionId(0), source: src, groups, spec };
    let mut catalog = SessionCatalog::new();
    catalog.add(def.clone());
    let catalog = catalog.share();
    let cfg = Config::default();

    // Two controllers, each clipped to its domain, sitting on the gateway.
    let (ctrl_a, shared_a) = Controller::new(Arc::clone(&catalog), cfg, SimDuration::ZERO, 1);
    let ctrl_a = ctrl_a.with_domain([gw_a, ra[0], ra[1]]);
    sim.add_app(gw_a, Box::new(ctrl_a));
    let (ctrl_b, shared_b) = Controller::new(Arc::clone(&catalog), cfg, SimDuration::ZERO, 2);
    let ctrl_b = ctrl_b.with_domain([gw_b, rb[0], rb[1]]);
    sim.add_app(gw_b, Box::new(ctrl_b));

    sim.add_app(src, Box::new(LayeredSource::new(def.clone(), TrafficModel::Cbr, 3)));

    // Receivers register with *their* domain's controller node.
    let mut handles = Vec::new();
    for (i, &n) in ra.iter().enumerate() {
        let (rx, h) = Receiver::new(def.clone(), gw_a, cfg, 10 + i as u64, &format!("a{i}"));
        sim.add_app(n, Box::new(rx));
        handles.push((0u32, h));
    }
    for (i, &n) in rb.iter().enumerate() {
        let (rx, h) = Receiver::new(def.clone(), gw_b, cfg, 20 + i as u64, &format!("b{i}"));
        sim.add_app(n, Box::new(rx));
        handles.push((1u32, h));
    }

    sim.run_until(SimTime::from_secs(600));

    // Both controllers ran and manage exactly their own two receivers.
    let a = shared_a.lock().unwrap();
    let b_ = shared_b.lock().unwrap();
    assert!(a.intervals > 250 && b_.intervals > 250);
    assert_eq!(a.registered, 2, "domain A sees only its receivers");
    assert_eq!(b_.registered, 2, "domain B sees only its receivers");

    // Per-domain convergence to the per-domain optimum (2 vs 4 layers).
    for (domain, handle) in &handles {
        let stats = handle.lock().unwrap().clone();
        let series = metrics::StepSeries::from_changes(&stats.changes);
        let mean = series.mean(SimTime::from_secs(300), SimTime::from_secs(600));
        let optimal = if *domain == 0 { 2.0 } else { 4.0 };
        assert!(
            (mean - optimal).abs() < 0.8,
            "domain {domain}: late mean level {mean:.2}, expected ~{optimal}"
        );
        assert!(stats.suggestions_received > 0, "domain {domain} receiver steered");
    }
}

/// ISSUE 9 tentpole: the same Fig. 3 regime on the federated path. Two
/// sharded domains behind 150 and 600 kb/s borders must each converge to
/// their own optimum (2 and 4 layers), and the parent aggregator's border
/// caps must land on exactly those fitting levels.
#[test]
fn federated_domains_converge_to_per_domain_optima() {
    let cfg = chaos_config();
    let spec = LayerSpec::paper_default();
    let (domains, leaves) = federated_domains(2, 2, 2, cfg, 11);
    let mut fed = Federation::new(cfg, 11, domains, spec.clone());
    let caps_bps = [150_000.0, 600_000.0];
    let trajectory = drive_federation(&mut fed, &leaves, &caps_bps, &spec, 30);
    // Steady state (last 10 rounds): each domain sits at its own border
    // fit, leaving at most a few rounds for capacity-creep probes one
    // layer up — the paper's deliberate probing, not a convergence miss.
    let late = &trajectory[20..];
    assert!(rounds_at(late, 0, 2) >= 7, "domain A must mostly sit at its optimum of 2");
    assert!(rounds_at(late, 1, 4) >= 7, "domain B must mostly sit at its optimum of 4");
    for r in late {
        assert!(r.levels[0].iter().all(|&l| (2..=3).contains(&l)), "A probes at most one up");
        assert!(r.levels[1].iter().all(|&l| (4..=5).contains(&l)), "B probes at most one up");
    }
    // The parent's caps landed on exactly the per-domain fitting levels.
    let final_caps = &trajectory.last().unwrap().caps;
    assert_eq!(final_caps[0], 2, "parent caps domain A at its border fit");
    assert_eq!(final_caps[1], 4, "parent caps domain B at its border fit");
    assert_eq!(fed.summaries_sent(), 60, "2 domains x 30 intervals");
}

/// ISSUE 9 tentpole: a saturated core link above both gateways shows in
/// both domains' border caps within one interval of the first lossy
/// summary, steering both sides of the border consistently.
#[test]
fn saturated_core_is_reflected_in_both_domains_within_one_interval() {
    let cfg = chaos_config();
    let spec = LayerSpec::paper_default();
    let (domains, leaves) = federated_domains(2, 2, 2, cfg, 23);
    let mut fed = Federation::new(cfg, 23, domains, spec.clone());
    // Both domains share a 300 kb/s core: each sees the same ceiling.
    let caps_bps = [300_000.0, 300_000.0];
    let trajectory = drive_federation(&mut fed, &leaves, &caps_bps, &spec, 20);
    // The one-interval bound: the very interval whose summaries first
    // carry loss already hands both domains the core's fitting cap of 3.
    let first_lossy = trajectory.iter().position(|r| r.lossy).expect("the climb must overshoot");
    assert_eq!(
        trajectory[first_lossy].caps,
        vec![3, 3],
        "first lossy summary must cap both domains at the core fit in the same interval"
    );
    // Consistent cross-border steering: the two domains see identical caps
    // and identical levels every single round — neither ever out-runs the
    // other across the shared bottleneck.
    for r in &trajectory {
        assert_eq!(r.caps[0], r.caps[1], "caps diverged across the shared core");
        assert_eq!(r.levels[0], r.levels[1], "levels diverged across the shared core");
    }
    // Steady state: mostly at the core fit of 3, probing at most one up.
    let late = &trajectory[10..];
    assert!(rounds_at(late, 0, 3) >= 7 && rounds_at(late, 1, 3) >= 7);
    for r in late {
        assert!(r.levels.iter().flatten().all(|&l| (3..=4).contains(&l)));
    }
}

#[test]
fn domain_controller_ignores_outside_receivers() {
    // A receiver that (mis)registers with a foreign domain's controller
    // gets no suggestions — its node is not in any restricted tree.
    let mut b = NetworkBuilder::new(SimConfig { seed: 8, ..SimConfig::default() });
    let src = b.add_node("src");
    let gw = b.add_node("gw");
    let inside = b.add_node("inside");
    let outside = b.add_node("outside");
    b.add_link(src, gw, LinkConfig::kbps(10_000.0));
    b.add_link(gw, inside, LinkConfig::kbps(500.0));
    b.add_link(src, outside, LinkConfig::kbps(500.0));
    let mut sim = b.build();
    let spec = LayerSpec::paper_default();
    let groups: Vec<GroupId> = (0..spec.layer_count()).map(|_| sim.create_group(src)).collect();
    let def = SessionDef { id: SessionId(0), source: src, groups, spec };
    let mut catalog = SessionCatalog::new();
    catalog.add(def.clone());
    let catalog = catalog.share();
    let cfg = Config::default();

    let (ctrl, _) = Controller::new(Arc::clone(&catalog), cfg, SimDuration::ZERO, 1);
    let ctrl = ctrl.with_domain([gw, inside]);
    sim.add_app(gw, Box::new(ctrl));
    sim.add_app(src, Box::new(LayeredSource::new(def.clone(), TrafficModel::Cbr, 3)));
    let (rx_in, h_in) = Receiver::new(def.clone(), gw, cfg, 1, "in");
    sim.add_app(inside, Box::new(rx_in));
    // The outside receiver wrongly reports to this controller.
    let (rx_out, h_out) = Receiver::new(def, gw, cfg, 2, "out");
    sim.add_app(outside, Box::new(rx_out));

    sim.run_until(SimTime::from_secs(120));
    assert!(h_in.lock().unwrap().suggestions_received > 0);
    assert_eq!(
        h_out.lock().unwrap().suggestions_received,
        0,
        "outside-node receiver is invisible to a domain-restricted controller"
    );
}

/// Acceptance-scale smoke (ignored by default; the CI `federation` job
/// covers the smoke-profile equivalent): 10 domains x 10^4 receivers =
/// 100k receivers, every federated control interval inside the 2 s
/// budget on one machine.
#[test]
#[ignore = "full acceptance scale; run with -- --ignored"]
fn hundred_k_receiver_federation_meets_the_interval_budget() {
    let cfg = chaos_config();
    let (domains, leaves) = federated_domains(10, 10, 4, cfg, 42);
    assert_eq!(leaves.len(), 10_000);
    let spec = LayerSpec::paper_default();
    let mut fed = Federation::new(cfg, 42, domains, spec.clone());
    let mut worst = std::time::Duration::ZERO;
    for round in 1..=3u64 {
        let reports: Vec<Vec<ReceiverReport>> = (0..10)
            .map(|d| {
                reports_behind_border(
                    0,
                    &leaves,
                    &vec![1u8; leaves.len()],
                    150_000.0 * (1 + d % 3) as f64,
                    &spec,
                    SimDuration::from_secs(2),
                )
            })
            .collect();
        let t0 = std::time::Instant::now();
        fed.run_interval(SimTime::from_secs(2 * round), SimDuration::from_secs(2), reports);
        worst = worst.max(t0.elapsed());
    }
    assert!(
        worst < std::time::Duration::from_secs(2),
        "federated interval over 100k receivers took {worst:?} (budget 2 s)"
    );
}
