//! The paper's Fig. 3: hierarchical control with multiple per-domain
//! controller agents, each managing its own subtree and unaware of the
//! others.
//!
//! Topology (capacities in kb/s):
//!
//! ```text
//!            src ──10000── core
//!                     ┌──────┴──────┐
//!                  [150]         [600]
//!                  gwA            gwB          <- domain gateways
//!                 /    \         /    \
//!               ra1    ra2     rb1    rb2      <- receivers (fat last hops)
//! ```
//!
//! Domain A = {gwA, ra1, ra2} with its controller at gwA; domain B likewise
//! at gwB. Optima: 2 layers in A, 4 in B. Each controller sees only its
//! domain (restricted topology views, domain-local registrations) and must
//! converge its own receivers.

use netsim::sim::{NetworkBuilder, SimConfig};
use netsim::{GroupId, LinkConfig, SessionId, SimDuration, SimTime};
use std::sync::Arc;
use toposense::{Config, Controller, Receiver};
use traffic::session::SessionDef;
use traffic::{LayerSpec, LayeredSource, SessionCatalog, TrafficModel};

#[test]
fn two_domain_controllers_each_converge_their_subtree() {
    let mut b = NetworkBuilder::new(SimConfig { seed: 5, ..SimConfig::default() });
    let src = b.add_node("src");
    let core = b.add_node("core");
    let gw_a = b.add_node("gwA");
    let gw_b = b.add_node("gwB");
    b.add_link(src, core, LinkConfig::kbps(10_000.0));
    b.add_link(core, gw_a, LinkConfig::kbps(150.0));
    b.add_link(core, gw_b, LinkConfig::kbps(600.0));
    let ra: Vec<_> = (0..2)
        .map(|i| {
            let n = b.add_node(format!("ra{i}"));
            b.add_link(gw_a, n, LinkConfig::kbps(10_000.0));
            n
        })
        .collect();
    let rb: Vec<_> = (0..2)
        .map(|i| {
            let n = b.add_node(format!("rb{i}"));
            b.add_link(gw_b, n, LinkConfig::kbps(10_000.0));
            n
        })
        .collect();
    let mut sim = b.build();

    let spec = LayerSpec::paper_default();
    let groups: Vec<GroupId> = (0..spec.layer_count()).map(|_| sim.create_group(src)).collect();
    let def = SessionDef { id: SessionId(0), source: src, groups, spec };
    let mut catalog = SessionCatalog::new();
    catalog.add(def.clone());
    let catalog = catalog.share();
    let cfg = Config::default();

    // Two controllers, each clipped to its domain, sitting on the gateway.
    let (ctrl_a, shared_a) = Controller::new(Arc::clone(&catalog), cfg, SimDuration::ZERO, 1);
    let ctrl_a = ctrl_a.with_domain([gw_a, ra[0], ra[1]]);
    sim.add_app(gw_a, Box::new(ctrl_a));
    let (ctrl_b, shared_b) = Controller::new(Arc::clone(&catalog), cfg, SimDuration::ZERO, 2);
    let ctrl_b = ctrl_b.with_domain([gw_b, rb[0], rb[1]]);
    sim.add_app(gw_b, Box::new(ctrl_b));

    sim.add_app(src, Box::new(LayeredSource::new(def.clone(), TrafficModel::Cbr, 3)));

    // Receivers register with *their* domain's controller node.
    let mut handles = Vec::new();
    for (i, &n) in ra.iter().enumerate() {
        let (rx, h) = Receiver::new(def.clone(), gw_a, cfg, 10 + i as u64, &format!("a{i}"));
        sim.add_app(n, Box::new(rx));
        handles.push((0u32, h));
    }
    for (i, &n) in rb.iter().enumerate() {
        let (rx, h) = Receiver::new(def.clone(), gw_b, cfg, 20 + i as u64, &format!("b{i}"));
        sim.add_app(n, Box::new(rx));
        handles.push((1u32, h));
    }

    sim.run_until(SimTime::from_secs(600));

    // Both controllers ran and manage exactly their own two receivers.
    let a = shared_a.lock().unwrap();
    let b_ = shared_b.lock().unwrap();
    assert!(a.intervals > 250 && b_.intervals > 250);
    assert_eq!(a.registered, 2, "domain A sees only its receivers");
    assert_eq!(b_.registered, 2, "domain B sees only its receivers");

    // Per-domain convergence to the per-domain optimum (2 vs 4 layers).
    for (domain, handle) in &handles {
        let stats = handle.lock().unwrap().clone();
        let series = metrics::StepSeries::from_changes(&stats.changes);
        let mean = series.mean(SimTime::from_secs(300), SimTime::from_secs(600));
        let optimal = if *domain == 0 { 2.0 } else { 4.0 };
        assert!(
            (mean - optimal).abs() < 0.8,
            "domain {domain}: late mean level {mean:.2}, expected ~{optimal}"
        );
        assert!(stats.suggestions_received > 0, "domain {domain} receiver steered");
    }
}

#[test]
fn domain_controller_ignores_outside_receivers() {
    // A receiver that (mis)registers with a foreign domain's controller
    // gets no suggestions — its node is not in any restricted tree.
    let mut b = NetworkBuilder::new(SimConfig { seed: 8, ..SimConfig::default() });
    let src = b.add_node("src");
    let gw = b.add_node("gw");
    let inside = b.add_node("inside");
    let outside = b.add_node("outside");
    b.add_link(src, gw, LinkConfig::kbps(10_000.0));
    b.add_link(gw, inside, LinkConfig::kbps(500.0));
    b.add_link(src, outside, LinkConfig::kbps(500.0));
    let mut sim = b.build();
    let spec = LayerSpec::paper_default();
    let groups: Vec<GroupId> = (0..spec.layer_count()).map(|_| sim.create_group(src)).collect();
    let def = SessionDef { id: SessionId(0), source: src, groups, spec };
    let mut catalog = SessionCatalog::new();
    catalog.add(def.clone());
    let catalog = catalog.share();
    let cfg = Config::default();

    let (ctrl, _) = Controller::new(Arc::clone(&catalog), cfg, SimDuration::ZERO, 1);
    let ctrl = ctrl.with_domain([gw, inside]);
    sim.add_app(gw, Box::new(ctrl));
    sim.add_app(src, Box::new(LayeredSource::new(def.clone(), TrafficModel::Cbr, 3)));
    let (rx_in, h_in) = Receiver::new(def.clone(), gw, cfg, 1, "in");
    sim.add_app(inside, Box::new(rx_in));
    // The outside receiver wrongly reports to this controller.
    let (rx_out, h_out) = Receiver::new(def, gw, cfg, 2, "out");
    sim.add_app(outside, Box::new(rx_out));

    sim.run_until(SimTime::from_secs(120));
    assert!(h_in.lock().unwrap().suggestions_received > 0);
    assert_eq!(
        h_out.lock().unwrap().suggestions_received,
        0,
        "outside-node receiver is invisible to a domain-restricted controller"
    );
}
