//! Pinned behavior baselines — THE one place to re-baseline.
//!
//! Every entry is an FNV-1a digest of a canned run's deterministic
//! fingerprint. The digests change whenever simulation behavior changes —
//! including *intentional* changes like a new seed-derivation scheme (the
//! splitmix64 stream deriver replaced the old XOR folds here) or a
//! controller-stage fix. That is the point: a PR that shifts behavior must
//! update `BASELINES` below, in this file and nowhere else, and the diff
//! makes the behavioral change explicit in review.
//!
//! To re-baseline after an intentional change, run:
//!
//! ```text
//! cargo test --test baselines -- --nocapture
//! ```
//!
//! and copy the `("name", 0x...)` lines the failing test prints into the
//! `BASELINES` table.

use netsim::SimDuration;
use netsim::SimTime;
use scenarios::largetree::{
    balanced_session_tree, churn_fraction, federated_domains, registry_for_leaves,
    reports_behind_border, reports_for_leaves,
};
use scenarios::{chaos, runner};
use toposense::algorithm::{AlgorithmInputs, AlgorithmState, ReceiverReport};
use toposense::federation::Federation;
use traffic::LayerSpec;

/// (name, FNV-1a 64 digest of the canned fingerprint).
const BASELINES: &[(&str, u64)] = &[
    ("chaos/link_flap/s1", 0x945c6a287dd5f7a7),
    // The three node-crash plans re-pinned for PR 10: arrivals into a dead
    // node now count as down-drops on the feeding link (owning-shard drop
    // attribution, DESIGN.md §17), which moves total_drops. Link-only
    // plans are untouched.
    ("chaos/router_crash/s1", 0x984db0a1753b6307),
    ("chaos/discovery_outage/s1", 0xd0db415f3085ed08),
    ("chaos/controller_failover/s1", 0x6dbf784d8a3495b0),
    ("chaos/random_chaos/s7", 0x4f2ff4298cd6a333),
    ("incremental/diurnal_1k/s1", 0x9a6a1869cc0331fe),
    ("federation/border_aggregation/s1", 0x6cc9e582868478ea),
];

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Digest of a canned incremental drive: 1k-leaf tree, 12 rounds of
/// deterministic churn, rendering every round's suggestion set and
/// recompute stats.
fn incremental_fingerprint(seed: u64) -> String {
    use std::fmt::Write;
    let (tree, leaves) = balanced_session_tree(0, 10, 3);
    let layer_spec = LayerSpec::paper_default();
    let trees = [tree];
    let specs = [&layer_spec];
    let cfg = toposense::Config { incremental: true, ..chaos::chaos_config() };
    let mut state = AlgorithmState::new(cfg, netsim::derive_stream_seed(seed, "baseline-inc", 0));
    let registry = registry_for_leaves(0, &leaves);
    let mut reports = reports_for_leaves(0, &leaves, 2, 9);
    let mut out_text = String::new();
    for round in 0..12u64 {
        churn_fraction(&mut reports, 0.1, round);
        let inputs = AlgorithmInputs {
            now: SimTime::from_secs(2 * (round + 1)),
            interval: SimDuration::from_secs(2),
            trees: &trees,
            specs: &specs,
            registry: &registry,
            reports: &reports,
        };
        let out = state.run_incremental(&inputs);
        write!(out_text, "r{round} inc={} slots={} sugg=[", out.incremental, out.slots_recomputed)
            .unwrap();
        for s in &out.suggestions {
            write!(out_text, "{}:{},", s.receiver.0, s.level).unwrap();
        }
        out_text.push_str("]\n");
    }
    out_text
}

/// Digest of a canned federated drive: three 4-leaf domains behind
/// heterogeneous border bandwidth, ten intervals, rendering each
/// interval's federation fingerprint and the caps the parent handed back.
fn federation_fingerprint(seed: u64) -> String {
    use std::fmt::Write;
    let cfg = chaos::chaos_config();
    let (domains, leaves) = federated_domains(3, 2, 2, cfg, seed);
    let spec = LayerSpec::paper_default();
    let caps_bps = [150_000.0, 300_000.0, 600_000.0];
    let mut fed = Federation::new(cfg, seed, domains, spec.clone());
    let mut levels = vec![vec![1u8; leaves.len()]; caps_bps.len()];
    let mut out_text = String::new();
    for round in 1..=10u64 {
        let reports: Vec<Vec<ReceiverReport>> = (0..caps_bps.len())
            .map(|d| {
                reports_behind_border(
                    0,
                    &leaves,
                    &levels[d],
                    caps_bps[d],
                    &spec,
                    SimDuration::from_secs(2),
                )
            })
            .collect();
        let out =
            fed.run_interval(SimTime::from_secs(2 * round), SimDuration::from_secs(2), reports);
        for (d, dom) in out.domain_outputs.iter().enumerate() {
            for s in &dom.suggestions {
                levels[d][(s.receiver.0 - 1000) as usize] = s.level;
            }
        }
        write!(out_text, "r{round} fp={:#018x} caps=[", out.fingerprint()).unwrap();
        for c in &out.caps {
            write!(out_text, "{c},").unwrap();
        }
        out_text.push_str("]\n");
    }
    out_text
}

fn compute(name: &str) -> u64 {
    let text = match name {
        "chaos/link_flap/s1" => chaos::fingerprint(&runner::run(&chaos::link_flap(1).0)),
        "chaos/router_crash/s1" => chaos::fingerprint(&runner::run(&chaos::router_crash(1).0)),
        "chaos/discovery_outage/s1" => {
            chaos::fingerprint(&runner::run(&chaos::discovery_outage(1).0))
        }
        "chaos/controller_failover/s1" => {
            chaos::fingerprint(&runner::run(&chaos::controller_failover(1).0))
        }
        "chaos/random_chaos/s7" => chaos::fingerprint(&runner::run(&chaos::random_chaos(7).0)),
        "incremental/diurnal_1k/s1" => incremental_fingerprint(1),
        "federation/border_aggregation/s1" => federation_fingerprint(1),
        other => panic!("unknown baseline {other}"),
    };
    fnv1a(text.as_bytes())
}

#[test]
fn canned_fingerprints_match_pinned_baselines() {
    let mut mismatches = Vec::new();
    for &(name, pinned) in BASELINES {
        let got = compute(name);
        if got != pinned {
            println!("    (\"{name}\", {got:#018x}),");
            mismatches.push(name);
        }
    }
    assert!(
        mismatches.is_empty(),
        "baseline drift in {mismatches:?} — if the behavior change is intentional, copy the \
         `(\"...\", 0x...)` lines printed above into BASELINES in tests/baselines.rs"
    );
}
