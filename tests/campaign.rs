//! Campaign harness regression tests (DESIGN.md §13).
//!
//! The smoke campaign must (a) finish fast, (b) produce byte-identical
//! artifacts across two runs with the same seed-index, (c) cover all four
//! zoo workloads with at least one gate each, and (d) actually *fail*
//! gates when handed a deliberately broken configuration — a gate that
//! cannot fail is not a gate.

use scenarios::campaign::{run_campaign, CampaignSpec, GateStatus, Profile};
use scenarios::chaos;
use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("toposense-campaign-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

/// Read every artifact under `dir` into (relative path, bytes), sorted.
fn artifact_bytes(dir: &PathBuf) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let mut stack = vec![dir.clone()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d).expect("readable artifact dir") {
            let p = entry.expect("dir entry").path();
            if p.is_dir() {
                stack.push(p);
            } else {
                let rel = p.strip_prefix(dir).expect("under root").display().to_string();
                out.push((rel, fs::read(&p).expect("readable artifact")));
            }
        }
    }
    out.sort();
    out
}

#[test]
fn smoke_campaign_is_deterministic_and_covers_the_zoo() {
    let spec = CampaignSpec::new("zoo", 1, Profile::Smoke);
    let report_a = run_campaign(&spec);
    let report_b = run_campaign(&spec);

    // Every zoo workload is represented and every run carries gates.
    let workloads: BTreeSet<&str> = report_a.runs.iter().map(|r| r.workload.as_str()).collect();
    for w in [
        "flash-crowd",
        "diurnal-churn",
        "het-lastmile",
        "mixed-sessions",
        "primary-crash-mid-interval",
        "federation",
        "federation-packet",
    ] {
        assert!(workloads.contains(w), "workload {w} missing from campaign");
    }
    for r in &report_a.runs {
        assert!(!r.gates.is_empty(), "run {} has no gates", r.id);
    }

    // The healthy smoke campaign passes; skips are allowed but must carry
    // a reason.
    assert!(report_a.passed(), "healthy smoke campaign failed gates");
    // The failover workload's gates are hard measurements — a skip there
    // would mean the standby never replicated or never took over.
    for r in report_a.runs.iter().filter(|r| r.workload == "primary-crash-mid-interval") {
        for g in &r.gates {
            assert_eq!(
                g.status,
                GateStatus::Pass,
                "failover gate {} on {} did not pass: {}",
                g.name,
                r.id,
                g.reason
            );
        }
    }
    for r in &report_a.runs {
        for g in &r.gates {
            if g.status == GateStatus::Skipped {
                assert!(
                    g.reason.contains("skipped"),
                    "skipped gate {} on {} has no reason",
                    g.name,
                    r.id
                );
            }
        }
    }

    // Smoke truncates the matrix, and every truncation is on the record.
    assert!(!report_a.coverage_caps.is_empty(), "smoke profile must record its coverage caps");

    // Byte-identical artifacts across two same-seed-index runs.
    let dir_a = scratch_dir("a");
    let dir_b = scratch_dir("b");
    report_a.write_artifacts(&dir_a).expect("write artifacts A");
    report_b.write_artifacts(&dir_b).expect("write artifacts B");
    let bytes_a = artifact_bytes(&dir_a);
    let bytes_b = artifact_bytes(&dir_b);
    assert!(!bytes_a.is_empty());
    assert_eq!(bytes_a.len(), bytes_b.len(), "artifact sets differ");
    for ((name_a, a), (name_b, b)) in bytes_a.iter().zip(&bytes_b) {
        assert_eq!(name_a, name_b);
        assert_eq!(a, b, "artifact {name_a} differs between same-seed runs");
    }
    let _ = fs::remove_dir_all(&dir_a);
    let _ = fs::remove_dir_all(&dir_b);
}

#[test]
fn different_seed_index_changes_the_matrix_seeds() {
    let r1 = run_campaign(&CampaignSpec::new("zoo", 1, Profile::Smoke));
    let r2 = run_campaign(&CampaignSpec::new("zoo", 2, Profile::Smoke));
    let seeds1: Vec<u64> = r1.runs.iter().map(|r| r.seed).collect();
    let seeds2: Vec<u64> = r2.runs.iter().map(|r| r.seed).collect();
    assert_eq!(seeds1.len(), seeds2.len());
    assert_ne!(seeds1, seeds2, "seed-index must re-derive every cell seed");
}

#[test]
fn broken_config_fails_gates() {
    // Blind the controller to loss and re-enable aggressive capacity
    // creep: lossy intervals count as clean, estimates inflate 200 % per
    // interval, and congestion is never classified — receivers get pushed
    // to the top layer and stay there, so the deviation gates must catch
    // it. Turning `incremental` off breaks the diurnal workload's
    // incremental-fraction gate as well.
    let broken = toposense::Config {
        capacity_creep: 2.0,
        capacity_loss_threshold: 1.0,
        p_threshold: 0.98,
        high_loss: 0.98,
        very_high_loss: 0.99,
        unilateral_drop_loss: 10.0,
        incremental: false,
        ..chaos::chaos_config()
    };
    let spec = CampaignSpec::new("zoo-broken", 1, Profile::Smoke).with_config_override(broken);
    let report = run_campaign(&spec);
    assert!(!report.passed(), "campaign with capacity_creep = 2.0 must fail at least one gate");
    assert!(report.gates_failed() >= 1);
    // The failure is reported with a concrete reason, not silently.
    let failed: Vec<_> = report
        .runs
        .iter()
        .flat_map(|r| r.gates.iter().map(move |g| (r, g)))
        .filter(|(_, g)| g.status == GateStatus::Fail)
        .collect();
    for (r, g) in &failed {
        assert!(!g.reason.is_empty(), "failed gate {} on {} lacks a reason", g.name, r.id);
    }
}
