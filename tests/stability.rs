//! Stability (the paper's Figs. 6–7): long stable spells, changes driven by
//! occasional bandwidth probes, frequency controlled by the backoff.

use metrics::StepSeries;
use netsim::{SimDuration, SimTime};
use scenarios::experiments;
use scenarios::{run, Scenario};
use topology::generators;
use traffic::TrafficModel;

#[test]
fn change_counts_are_bounded_on_topology_a() {
    let rows = experiments::fig6_stability_a(
        &[1, 4],
        &[TrafficModel::Cbr, TrafficModel::Vbr { p: 6.0 }],
        SimDuration::from_secs(600),
        1,
    );
    for row in &rows {
        // 600 s at one controller interval of 2 s = 300 opportunities;
        // a stable system uses only a few percent of them.
        assert!(
            row.max_changes < 60,
            "{} x{}: {} changes in 600 s",
            row.model,
            row.x,
            row.max_changes
        );
        assert!(
            row.mean_gap_secs > 5.0,
            "{} x{}: changes only {:.1}s apart",
            row.model,
            row.x,
            row.mean_gap_secs
        );
    }
}

#[test]
fn burstier_traffic_changes_more() {
    // The paper's Figs. 6-7 show VBR traffic with higher change counts than
    // CBR. Aggregate across sizes to smooth the seed noise.
    let rows = experiments::fig7_stability_b(
        &[2, 4, 8],
        &[TrafficModel::Cbr, TrafficModel::Vbr { p: 6.0 }],
        SimDuration::from_secs(600),
        1,
    );
    let total = |label: &str| -> usize {
        rows.iter().filter(|r| r.model == label).map(|r| r.max_changes).sum()
    };
    let cbr = total("CBR");
    let vbr = total("VBR(P=6)");
    assert!(vbr > cbr, "expected VBR(P=6) ({vbr}) to change more than CBR ({cbr})");
}

#[test]
fn subscription_has_long_stable_spells() {
    // "The subscription consists of long stable spells interspersed with
    // very small intervals of joins/leaves": the single longest stable
    // spell should dominate the run.
    let s = Scenario::new(generators::topology_a_default(2), TrafficModel::Cbr, 29)
        .with_duration(SimDuration::from_secs(600));
    let result = run(&s);
    for r in &result.receivers {
        let series = StepSeries::from_changes(&r.stats.changes);
        let mut change_times: Vec<f64> = series.points().map(|(t, _)| t.as_secs_f64()).collect();
        change_times.push(600.0);
        let longest = change_times.windows(2).map(|w| w[1] - w[0]).fold(0.0f64, f64::max);
        assert!(
            longest > 100.0,
            "node {:?}: longest stable spell only {longest:.0}s; changes {:?}",
            r.node,
            r.stats.changes
        );
    }
}

#[test]
fn probe_excursions_are_brief() {
    // Time spent above the optimum (failed probes) must be a small slice of
    // the run.
    let s = Scenario::new(generators::topology_a_default(2), TrafficModel::Cbr, 31)
        .with_duration(SimDuration::from_secs(600));
    let result = run(&s);
    for r in &result.receivers {
        let series = StepSeries::from_changes(&r.stats.changes);
        let above = series.integrate(SimTime::from_secs(30), SimTime::from_secs(600), |v| {
            (v > r.optimal) as u8 as f64
        });
        let frac = above / 570.0;
        assert!(
            frac < 0.25,
            "node {:?} spent {:.0}% of the run over-subscribed",
            r.node,
            frac * 100.0
        );
    }
}

#[test]
fn stability_improves_with_longer_backoff() {
    // The paper: changes "can be controlled using the back-off interval".
    let short = toposense::Config {
        backoff_min: SimDuration::from_secs(4),
        backoff_max: SimDuration::from_secs(8),
        ..Default::default()
    };
    let long = toposense::Config {
        backoff_min: SimDuration::from_secs(30),
        backoff_max: SimDuration::from_secs(60),
        ..Default::default()
    };

    let count = |cfg: toposense::Config| -> usize {
        let s = Scenario::new(generators::topology_a_default(2), TrafficModel::Cbr, 37)
            .with_config(cfg)
            .with_duration(SimDuration::from_secs(600));
        let result = run(&s);
        let (changes, _) = result.stability(SimTime::from_secs(5), SimTime::from_secs(600));
        changes
    };
    let short_changes = count(short);
    let long_changes = count(long);
    assert!(
        long_changes <= short_changes,
        "longer backoff must not increase changes: short {short_changes}, long {long_changes}"
    );
}
