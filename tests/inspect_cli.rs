//! Smoke tests for the `inspect` binary's CLI contract: no args or an
//! unknown subcommand exit 2 with a usage message naming every
//! subcommand, and the telemetry-trail queries (`validate`, `trace`,
//! `profile`) and the `blackbox` validator work end-to-end against
//! artifacts recorded by a real run.

use netsim::SimDuration;
use scenarios::{run, ControlMode, Scenario};
use std::process::Command;
use telemetry::{Blackbox, Occurrence, Record, Telemetry};
use topology::generators;
use traffic::TrafficModel;

const BIN: &str = env!("CARGO_BIN_EXE_inspect");

fn inspect(args: &[&str]) -> std::process::Output {
    Command::new(BIN).args(args).output().expect("spawn inspect")
}

#[test]
fn no_args_and_unknown_subcommand_exit_two_with_usage() {
    let none = inspect(&[]);
    assert_eq!(none.status.code(), Some(2), "no subcommand must exit 2");
    let err = String::from_utf8_lossy(&none.stderr);
    assert!(err.contains("no subcommand given"));
    assert!(err.contains("usage:"));
    for sub in [
        "validate",
        "summary",
        "timeline",
        "diff",
        "counters",
        "trace",
        "profile",
        "federation",
        "blackbox",
        "snapshot",
    ] {
        assert!(err.contains(sub), "usage must mention '{sub}'");
    }

    let unknown = inspect(&["frobnicate"]);
    assert_eq!(unknown.status.code(), Some(2), "unknown subcommand must exit 2");
    assert!(String::from_utf8_lossy(&unknown.stderr).contains("unknown subcommand 'frobnicate'"));
}

/// Record a real trail, then drive `validate`, `trace`, and `profile`
/// over it exactly as a debugging session would.
#[test]
fn trail_queries_work_against_a_recorded_run() {
    let path = std::env::temp_dir().join(format!("toposense-inspect-{}.jsonl", std::process::id()));
    let tel = Telemetry::jsonl_file(&path).expect("create trail file");
    let scenario =
        Scenario::new(generators::topology_a_default(2), TrafficModel::Vbr { p: 3.0 }, 9)
            .with_control(ControlMode::TopoSense { staleness: SimDuration::ZERO })
            .with_duration(SimDuration::from_secs(90))
            .with_telemetry(tel);
    run(&scenario);
    let trail = path.to_str().expect("utf8 temp path");

    // validate: every record decodes and the trace kinds are on the books.
    let v = inspect(&["validate", trail]);
    assert_eq!(v.status.code(), Some(0), "validate failed: {}", String::from_utf8_lossy(&v.stderr));
    let out = String::from_utf8_lossy(&v.stdout);
    assert!(out.contains("records valid"));
    for kind in ["trace.report", "trace.decide", "trace.apply"] {
        assert!(out.contains(kind), "validate must count {kind} records");
    }

    // Pull a real (session, receiver) pair from an apply record so the
    // trace query below cannot be vacuous.
    let text = std::fs::read_to_string(&path).expect("trail written");
    let (session, receiver) = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| Record::from_jsonl(l).ok())
        .find_map(|r| match r {
            Record::Trace { phase, session, receiver, cause, .. }
                if phase == "apply" && cause != 0 =>
            {
                Some((session, receiver))
            }
            _ => None,
        })
        .expect("run recorded no apply trace");

    let t = inspect(&[
        "trace",
        trail,
        "--session",
        &session.to_string(),
        "--receiver",
        &receiver.to_string(),
    ]);
    assert_eq!(t.status.code(), Some(0), "trace failed: {}", String::from_utf8_lossy(&t.stderr));
    let out = String::from_utf8_lossy(&t.stdout);
    assert!(out.contains("(complete)"), "no complete chain rendered:\n{out}");
    for phase in ["report", "decide", "apply"] {
        assert!(out.contains(phase), "chain output missing the {phase} hop");
    }

    // profile: the closing counters carry the simulator profile.
    let p = inspect(&["profile", trail]);
    assert_eq!(p.status.code(), Some(0), "profile failed: {}", String::from_utf8_lossy(&p.stderr));
    let out = String::from_utf8_lossy(&p.stdout);
    for counter in ["ev_link_deliver", "slab_hwm", "pending_events_hwm"] {
        assert!(out.contains(counter), "profile output missing {counter}:\n{out}");
    }
    assert!(out.contains("events_per_sec"));

    // An absent (session, receiver) pair is a hard miss, not silence.
    let miss = inspect(&["trace", trail, "--session", "999", "--receiver", "999"]);
    assert_eq!(miss.status.code(), Some(1));

    let _ = std::fs::remove_file(&path);
}

/// Record a federated run's counters, then summarize them with the
/// `federation` subcommand; a trail without federation counters is a
/// hard miss.
#[test]
fn federation_subcommand_summarizes_border_counters() {
    use netsim::SimTime;
    use scenarios::largetree::{federated_domains, reports_behind_border};
    use toposense::federation::Federation;
    use traffic::LayerSpec;

    let path =
        std::env::temp_dir().join(format!("toposense-inspect-fed-{}.jsonl", std::process::id()));
    let tel = Telemetry::jsonl_file(&path).expect("create trail file");
    let cfg = scenarios::chaos::chaos_config();
    let (domains, leaves) = federated_domains(2, 2, 2, cfg, 3);
    let spec = LayerSpec::paper_default();
    let mut fed = Federation::new(cfg, 3, domains, spec.clone()).with_telemetry(tel.clone());
    for round in 1..=4u64 {
        let reports = (0..2)
            .map(|_| {
                reports_behind_border(
                    0,
                    &leaves,
                    &vec![1u8; leaves.len()],
                    300_000.0,
                    &spec,
                    SimDuration::from_secs(2),
                )
            })
            .collect();
        fed.run_interval(SimTime::from_secs(2 * round), SimDuration::from_secs(2), reports);
    }
    tel.emit_counters(8_000_000_000);
    tel.flush();
    let trail = path.to_str().expect("utf8 temp path");

    let f = inspect(&["federation", trail]);
    assert_eq!(
        f.status.code(),
        Some(0),
        "federation failed: {}",
        String::from_utf8_lossy(&f.stderr)
    );
    let out = String::from_utf8_lossy(&f.stdout);
    for counter in ["domains", "summaries_sent", "border_folds"] {
        assert!(out.contains(counter), "federation output missing {counter}:\n{out}");
    }
    // 2 domains x 4 intervals, every summary folded exactly once.
    assert!(out.contains("           8"), "expected 8 summaries in:\n{out}");
    assert!(!out.contains("warning:"), "summary/fold ledgers out of lock-step:\n{out}");

    // A trail with no federation counters must exit 1, not print nothing.
    let bare = std::env::temp_dir()
        .join(format!("toposense-inspect-fed-bare-{}.jsonl", std::process::id()));
    let tel2 = Telemetry::jsonl_file(&bare).expect("create trail file");
    tel2.incr("netsim.events", 1);
    tel2.emit_counters(1_000_000_000);
    tel2.flush();
    let miss = inspect(&["federation", bare.to_str().expect("utf8 temp path")]);
    assert_eq!(miss.status.code(), Some(1), "federation-free trail must exit 1");

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&bare);
}

#[test]
fn blackbox_subcommand_validates_and_rejects() {
    let bb = Blackbox {
        reason: "campaign_gate_failure".to_string(),
        label: "inspect-cli-smoke".to_string(),
        seed: 7,
        config_fingerprint: "00000000deadbeef".to_string(),
        t_ns: 2_000_000_000,
        counters: vec![("gates_failed".to_string(), 3)],
        occurrences: vec![Occurrence {
            t_ns: 1_500_000_000,
            kind: "gate_failure",
            seq: 1,
            detail: "loss_late".to_string(),
        }],
        ring_dropped: 0,
    };
    let path =
        std::env::temp_dir().join(format!("toposense-inspect-bb-{}.json", std::process::id()));
    bb.write(&path).expect("write dump");
    let p = path.to_str().expect("utf8 temp path");

    let ok = inspect(&["blackbox", p]);
    assert_eq!(
        ok.status.code(),
        Some(0),
        "blackbox failed: {}",
        String::from_utf8_lossy(&ok.stderr)
    );
    let out = String::from_utf8_lossy(&ok.stdout);
    assert!(out.contains(telemetry::BLACKBOX_SCHEMA));
    assert!(out.contains("campaign_gate_failure"));
    assert!(out.contains("gate_failure"));

    // A truncated dump must be rejected, not half-rendered.
    let text = std::fs::read_to_string(&path).expect("dump readable");
    std::fs::write(&path, &text[..text.len() / 2]).expect("truncate dump");
    let bad = inspect(&["blackbox", p]);
    assert_eq!(bad.status.code(), Some(1), "corrupt dump must exit 1");

    let _ = std::fs::remove_file(&path);
}
