//! Stress test: multiple sessions interleaved across one random tiered
//! tree (Fig. 2-style topology), so almost every interior link is shared
//! by several sessions — the hardest case for the capacity estimator and
//! the fair-share stage at once.

use netsim::{RngStream, SimDuration, SimTime};
use scenarios::{run, Scenario};
use topology::generators::{self, TieredParams};
use traffic::TrafficModel;

#[test]
fn three_sessions_on_a_tiered_tree_stay_sane() {
    let mut rng = RngStream::derive(21, "tiered-ms-test");
    let params = TieredParams { tiers: 3, fanout: (2, 3), top_kbps: 8000.0, capacity_decay: 3.0 };
    let topo = generators::tiered_multisession(&mut rng, params, 3);
    let n_receivers = topo.receivers().len();
    assert!(n_receivers >= 6, "want a real tree, got {n_receivers} receivers");

    let s = Scenario::new(topo, TrafficModel::Cbr, 9).with_duration(SimDuration::from_secs(400));
    let result = run(&s);
    assert_eq!(result.receivers.len(), n_receivers);

    let half = SimTime::from_secs(200);
    let end = SimTime::from_secs(400);
    let mut worst = 0.0f64;
    for r in &result.receivers {
        // Sanity: every receiver holds a valid level and was steered.
        let f = r.stats.final_level();
        assert!((1..=6).contains(&f), "receiver {:?} at level {f}", r.node);
        assert!(r.stats.suggestions_received > 0, "receiver {:?} unsteered", r.node);
        worst = worst.max(r.relative_deviation(half, end).expect("window and optimum are valid"));
    }
    // Loose bound: random shared-tier topology with interleaved sessions;
    // the point is no receiver is starved or runaway.
    assert!(worst < 1.2, "worst receiver deviation {worst:.2}");
    let mean = result.mean_relative_deviation(half, end).expect("scenario has receivers");
    assert!(mean < 0.6, "mean deviation {mean:.3}");

    // No session is starved relative to the others beyond a factor of ~20
    // (they have different tree placements, so shares legitimately differ).
    let bytes: Vec<f64> = result.session_bytes().iter().map(|&(_, b)| b as f64).collect();
    assert_eq!(bytes.len(), 3);
    let max = bytes.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = bytes.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(min > 0.0, "a session was fully starved: {bytes:?}");
    assert!(max / min < 20.0, "extreme session imbalance: {bytes:?}");
}

#[test]
fn deterministic_under_multisession_stress() {
    let go = || {
        let mut rng = RngStream::derive(5, "tiered-ms-det");
        let params = TieredParams::default();
        let topo = generators::tiered_multisession(&mut rng, params, 2);
        let s = Scenario::new(topo, TrafficModel::Vbr { p: 3.0 }, 77)
            .with_duration(SimDuration::from_secs(200));
        let r = run(&s);
        (r.events, r.total_drops)
    };
    assert_eq!(go(), go());
}
