//! Property-based tests over the core data structures and invariants.

use metrics::StepSeries;
use netsim::{EventQueue, NodeId, SimTime};
use proptest::prelude::*;
use topology::Tree;
use traffic::LayerSpec;

proptest! {
    /// The event queue pops in non-decreasing time order regardless of the
    /// insertion pattern, with ties broken by insertion order.
    #[test]
    fn event_queue_is_monotone(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(
                SimTime::from_millis(t),
                netsim::Event::Timer { app: netsim::AppId(0), token: i as u64 },
            );
        }
        let mut last_time = SimTime::ZERO;
        let mut seen_at_time: Vec<u64> = Vec::new();
        while let Some((t, ev)) = q.pop() {
            prop_assert!(t >= last_time);
            let token = match ev {
                netsim::Event::Timer { token, .. } => token,
                _ => unreachable!(),
            };
            if t == last_time {
                // FIFO among equal timestamps: tokens increase.
                if let Some(&prev) = seen_at_time.last() {
                    prop_assert!(token > prev);
                }
                seen_at_time.push(token);
            } else {
                seen_at_time.clear();
                seen_at_time.push(token);
            }
            last_time = t;
        }
    }

    /// Random parent assignments either build a valid tree (parents precede
    /// children in index order, so no cycles) with consistent invariants.
    #[test]
    fn random_trees_have_consistent_structure(parents in prop::collection::vec(0usize..20, 1..20)) {
        // Node i+1 gets parent chosen among 0..=i => always a valid tree.
        let edges: Vec<(NodeId, NodeId)> = parents
            .iter()
            .enumerate()
            .map(|(i, &p)| (NodeId((p % (i + 1)) as u32), NodeId(i as u32 + 1)))
            .collect();
        let tree = Tree::from_edges(NodeId(0), &edges).expect("valid by construction");
        prop_assert_eq!(tree.len(), edges.len() + 1);
        // Top-down visits every parent before its children.
        let order: Vec<NodeId> = tree.top_down().collect();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        for n in tree.top_down() {
            if let Some(p) = tree.parent(n) {
                prop_assert!(pos(p) < pos(n));
                // children() and parent() agree.
                prop_assert!(tree.children(p).contains(&n));
            }
        }
        // Every node's subtree leaves are leaves of the whole tree.
        for n in tree.top_down() {
            for leaf in tree.subtree_leaves(n) {
                prop_assert!(tree.is_leaf(leaf));
                prop_assert!(tree.is_ancestor(n, leaf));
            }
        }
        // Depth is consistent with the parent chain.
        for n in tree.top_down() {
            let d = tree.depth(n);
            prop_assert_eq!(tree.path_from_root(n).len(), d + 1);
        }
    }

    /// `level_fitting` is the inverse of `cumulative_rate` up to bracketing:
    /// the chosen level fits, the next one does not.
    #[test]
    fn level_fitting_brackets_cumulative_rate(bw in 0.0f64..3_000_000.0) {
        let spec = LayerSpec::paper_default();
        let level = spec.level_fitting(bw);
        prop_assert!(spec.cumulative_rate(level) <= bw || level == 0);
        if level < spec.max_level() {
            prop_assert!(spec.cumulative_rate(level + 1) > bw);
        }
    }

    /// Relative deviation is zero iff the series sits at the optimum, and
    /// scales linearly with a constant offset.
    #[test]
    fn relative_deviation_properties(opt in 1u8..=6, held in 0u8..=6) {
        let mut s = StepSeries::new();
        s.push(SimTime::ZERO, held);
        let dev = metrics::relative_deviation(
            &s, opt, SimTime::ZERO, SimTime::from_secs(100),
        ).expect("positive optimum and non-empty window");
        let expect = (held as f64 - opt as f64).abs() / opt as f64;
        prop_assert!((dev - expect).abs() < 1e-9);
    }

    /// Step series time-weighted mean always lies within [min, max] of the
    /// values it passes through.
    #[test]
    fn step_series_mean_is_bounded(
        changes in prop::collection::vec((0u64..600, 0u8..=6), 1..30)
    ) {
        let mut sorted = changes.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut s = StepSeries::new();
        for &(t, v) in &sorted {
            s.push(SimTime::from_secs(t), v);
        }
        let mean = s.mean(SimTime::ZERO, SimTime::from_secs(700));
        prop_assert!(mean >= 0.0);
        prop_assert!(mean <= 6.0);
    }

    /// Jain's index is always in (0, 1] and is exactly 1 for equal shares.
    #[test]
    fn jain_index_bounds(shares in prop::collection::vec(0.0f64..1e9, 1..40)) {
        let j = metrics::jain_index(&shares);
        prop_assert!(j > 0.0 - 1e-12);
        prop_assert!(j <= 1.0 + 1e-12);
    }

    /// The VBR packet-count distribution takes only its two design values
    /// and long-run-averages to A.
    #[test]
    fn vbr_two_point_distribution(p in 2.0f64..10.0, a in 4.0f64..64.0, seed in 0u64..1000) {
        let model = traffic::TrafficModel::Vbr { p };
        let mut rng = netsim::RngStream::derive(seed, "prop-vbr");
        let peak = (p * a + 1.0 - p).round().max(1.0) as u32;
        let mut total = 0u64;
        let n = 2000;
        for _ in 0..n {
            let k = model.packets_in_frame(a, &mut rng);
            prop_assert!(k == 1 || k == peak, "unexpected count {}", k);
            total += k as u64;
        }
        let mean = total as f64 / n as f64;
        // Loose bound: two-point distribution has high variance.
        prop_assert!((mean - a).abs() < a * 0.35, "mean {} vs A {}", mean, a);
    }

    /// The oracle never allocates below the base layer, never above the
    /// max, and its allocation actually fits every link.
    #[test]
    fn oracle_allocations_fit(seed in 0u64..500) {
        let mut rng = netsim::RngStream::derive(seed, "prop-oracle");
        let params = topology::generators::TieredParams {
            tiers: 2,
            fanout: (1, 3),
            top_kbps: 4000.0,
            capacity_decay: 3.0,
        };
        let spec = topology::generators::tiered(&mut rng, params);
        let layer_spec = LayerSpec::paper_default();
        let optima = baselines::oracle::optimal_levels(&spec, &layer_spec, 1.0);
        prop_assert_eq!(optima.len(), spec.receivers().len());
        for e in &optima {
            prop_assert!(e.level >= 1);
            prop_assert!(e.level <= layer_spec.max_level());
        }
        // Greedy max-min is maximal: no receiver can be incremented without
        // breaking some link. Verified indirectly: re-running is stable.
        let again = baselines::oracle::optimal_levels(&spec, &layer_spec, 1.0);
        prop_assert_eq!(optima, again);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Loss tracking: for any loss pattern, received + lost equals the
    /// sequence span, and the loss rate is within [0, 1].
    #[test]
    fn seq_tracker_accounting(drops in prop::collection::vec(any::<bool>(), 1..500)) {
        let mut tracker = netsim::SeqTracker::new();
        let mut sent = 0u64;
        let mut delivered = 0u64;
        for (seq, &dropped) in drops.iter().enumerate() {
            sent += 1;
            if !dropped {
                tracker.on_packet(seq as u64, 1000);
                delivered += 1;
            }
        }
        let w = tracker.take_window();
        prop_assert_eq!(w.received, delivered);
        prop_assert!(w.loss_rate() >= 0.0 && w.loss_rate() <= 1.0);
        if delivered > 0 {
            // Everything between the first and last delivered packet is
            // accounted for.
            prop_assert!(w.received + w.lost <= sent);
        }
    }
}
