//! End-to-end convergence: TopoSense steers every receiver to the
//! oracle-optimal subscription level (the paper's §IV premise, validated
//! from its earlier work and re-validated here).

use metrics::StepSeries;
use netsim::{SimDuration, SimTime};
use scenarios::{run, ControlMode, Scenario, ScenarioResult};
use topology::generators;
use traffic::TrafficModel;

fn late_mean_level(r: &scenarios::ReceiverOutcome, result: &ScenarioResult) -> f64 {
    let end = SimTime::ZERO + result.duration;
    let half = SimTime::ZERO + result.duration / 2;
    StepSeries::from_changes(&r.stats.changes).mean(half, end)
}

#[test]
fn topology_a_both_sets_converge_to_optimal() {
    let s = Scenario::new(generators::topology_a_default(2), TrafficModel::Cbr, 11)
        .with_duration(SimDuration::from_secs(600));
    let result = run(&s);
    for r in &result.receivers {
        let mean = late_mean_level(r, &result);
        assert!(
            (mean - r.optimal as f64).abs() < 0.7,
            "set {} receiver at node {:?}: late mean level {mean:.2} vs optimal {}",
            r.set,
            r.node,
            r.optimal
        );
    }
}

#[test]
fn chain_bottleneck_converges() {
    // A 4-hop chain at 250 kb/s: optimum 3 layers.
    let s = Scenario::new(generators::chain(4, 250.0), TrafficModel::Cbr, 3)
        .with_duration(SimDuration::from_secs(400));
    let result = run(&s);
    assert_eq!(result.receivers.len(), 1);
    let r = &result.receivers[0];
    assert_eq!(r.optimal, 3);
    let mean = late_mean_level(r, &result);
    assert!((2.3..=3.5).contains(&mean), "late mean level {mean}");
}

#[test]
fn star_heterogeneous_receivers_each_find_their_level() {
    // Legs sized for 1, 2, and 4 layers.
    let s = Scenario::new(generators::star(&[40.0, 110.0, 500.0]), TrafficModel::Cbr, 5)
        .with_duration(SimDuration::from_secs(500));
    let result = run(&s);
    let expected = [1u8, 2, 4];
    for (r, &want) in result.receivers.iter().zip(&expected) {
        assert_eq!(r.optimal, want, "oracle sanity");
        let mean = late_mean_level(r, &result);
        assert!(
            (mean - want as f64).abs() < 0.8,
            "leg with optimum {want}: late mean level {mean:.2}"
        );
    }
}

#[test]
fn intra_set_fairness_on_topology_a() {
    // Receivers in the same set get near-identical treatment.
    let s = Scenario::new(generators::topology_a_default(4), TrafficModel::Cbr, 17)
        .with_duration(SimDuration::from_secs(600));
    let result = run(&s);
    for set in [0u32, 1] {
        let means: Vec<f64> = result
            .receivers
            .iter()
            .filter(|r| r.set == set)
            .map(|r| late_mean_level(r, &result))
            .collect();
        assert_eq!(means.len(), 4);
        let spread = means.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - means.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(spread < 0.8, "set {set} level spread {spread:.2}: {means:?}");
    }
}

#[test]
fn unconstrained_receiver_reaches_the_top_layer() {
    let s = Scenario::new(generators::chain(2, 5000.0), TrafficModel::Cbr, 2)
        .with_duration(SimDuration::from_secs(120));
    let result = run(&s);
    assert_eq!(result.receivers[0].optimal, 6);
    assert_eq!(result.receivers[0].stats.final_level(), 6);
}

#[test]
fn vbr_traffic_still_converges_near_optimal() {
    let s = Scenario::new(generators::topology_a_default(2), TrafficModel::Vbr { p: 3.0 }, 23)
        .with_duration(SimDuration::from_secs(600));
    let result = run(&s);
    for r in &result.receivers {
        let mean = late_mean_level(r, &result);
        // VBR bursts keep receivers up to a layer and a bit below the CBR
        // optimum (late means of 2.8-3.2 against an optimum of 4 across
        // seeds under the splitmix64 stream deriver).
        assert!(
            (mean - r.optimal as f64).abs() < 1.3,
            "set {}: late mean level {mean:.2} vs optimal {}",
            r.set,
            r.optimal
        );
    }
}

#[test]
fn no_controller_fixed_mode_suffers_where_toposense_does_not() {
    // A fixed over-subscription at level 4 through a 150 kb/s bottleneck
    // loses heavily; TopoSense on the same topology does not.
    let topo = generators::chain(2, 150.0);
    let fixed = run(&Scenario::new(topo.clone(), TrafficModel::Cbr, 3)
        .with_control(ControlMode::Fixed(4))
        .with_duration(SimDuration::from_secs(200)));
    let topo_sense =
        run(&Scenario::new(topo, TrafficModel::Cbr, 3).with_duration(SimDuration::from_secs(200)));
    let window = (SimTime::from_secs(100), SimTime::from_secs(200));
    let fixed_loss = fixed.receivers[0].mean_loss(window.0, window.1);
    let ts_loss = topo_sense.receivers[0].mean_loss(window.0, window.1);
    assert!(fixed_loss > 0.4, "fixed over-subscription must lose: {fixed_loss}");
    assert!(ts_loss < 0.15, "TopoSense must avoid sustained loss: {ts_loss}");
}
