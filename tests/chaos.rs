//! Chaos suite (DESIGN.md §9): the failure-hardening invariants, end to
//! end. Under every canned fault plan the run must complete without a
//! panic; after the last fault heals, every surviving receiver must return
//! to within one layer of its oracle level within 10 control intervals;
//! and a fault-free run must be byte-identical to one carrying an inert
//! fault plan.

use netsim::{SimDuration, SimTime};
use scenarios::chaos::{
    self, chaos_config, controller_blackout, controller_failover, discovery_outage, link_flap,
    partial_discovery_outage, random_chaos, router_crash, verify_recovery,
};
use scenarios::{run, ControlMode, Scenario, SpecFault};
use topology::generators;
use traffic::TrafficModel;

/// The acceptance bound: back within one layer of oracle within 10
/// control intervals of the last fault healing.
const RECOVERY_INTERVALS: u64 = 10;

#[test]
fn link_flap_recovers_within_bound() {
    let (s, heal_at) = link_flap(1);
    let r = run(&s);
    verify_recovery(&r, &s.cfg, heal_at, RECOVERY_INTERVALS).unwrap();
    // The flaps were real: the bottleneck dropped traffic on the floor.
    assert!(r.total_drops > 0);
    assert!(r.controller.as_ref().unwrap().suggestions_sent > 0);
}

#[test]
fn router_crash_recovers_within_bound() {
    let (s, heal_at) = router_crash(1);
    let r = run(&s);
    verify_recovery(&r, &s.cfg, heal_at, RECOVERY_INTERVALS).unwrap();
    // The crashed router lost its grafts; the set-0 receivers behind it
    // must have repaired the tree via the dead-air re-join.
    let rejoins: u64 = r.receivers.iter().filter(|x| x.set == 0).map(|x| x.stats.rejoins).sum();
    assert!(rejoins >= 1, "no dead-air repair happened");
}

#[test]
fn discovery_outage_degrades_then_suspends_then_recovers() {
    let (s, heal_at) = discovery_outage(2);
    let r = run(&s);
    verify_recovery(&r, &s.cfg, heal_at, RECOVERY_INTERVALS).unwrap();
    let c = r.controller.as_ref().unwrap();
    // 20 s outage vs a 10 s max-degradation age: both phases must show.
    assert!(c.degraded_intervals > 0, "never ran on last-known-good");
    assert!(c.suspended_intervals > 0, "never suspended on stale topology");
    assert!(c.intervals > c.degraded_intervals, "never resumed normal operation");
}

#[test]
fn partial_discovery_outage_keeps_visible_receivers_steered() {
    let (s, heal_at) = partial_discovery_outage(3);
    let r = run(&s);
    verify_recovery(&r, &s.cfg, heal_at, RECOVERY_INTERVALS).unwrap();
    let c = r.controller.as_ref().unwrap();
    assert!(c.partial_intervals > 0, "partial views never served");
    assert_eq!(c.suspended_intervals, 0, "partial answers must not suspend the controller");
}

#[test]
fn controller_failover_keeps_steering_receivers() {
    let (s, heal_at) = controller_failover(4);
    let r = run(&s);
    verify_recovery(&r, &s.cfg, heal_at, RECOVERY_INTERVALS).unwrap();
    let primary = r.controller.as_ref().unwrap();
    let standby = r.standby.as_ref().unwrap();
    assert!(primary.suggestions_sent > 0, "primary steered before the crash");
    assert!(primary.failover_at.is_none());
    let at = standby.failover_at.expect("standby must take over");
    assert!(
        at > SimTime::from_secs(40) && at <= SimTime::from_secs(56),
        "takeover at {at:?} outside the failover window"
    );
    assert!(standby.suggestions_sent > 0, "standby steered after takeover");
    assert!(standby.acks_sent >= r.receivers.len() as u64, "receivers re-ACKed on takeover");
    // ISSUE 9 satellite: takeover re-anchors the silence clocks — nobody
    // is evicted for quiet accrued while the standby was passive.
    assert_eq!(standby.evicted, 0, "takeover evicted receivers for failover-window silence");
    // Receivers followed the standby: suggestions kept arriving after the
    // primary died, so they reported (and listened) to the new controller.
    for rec in &r.receivers {
        assert!(rec.stats.suggestions_received > 0);
    }
}

/// ISSUE 9 satellite: a solo controller restarting after an outage longer
/// than `evict_after` must not evict (or quarantine) receivers whose only
/// silence was the controller's own downtime. The blackout plan slows
/// reports to one per 10 s, so the first post-restart tick at +2 s runs on
/// silence clocks no report could have refreshed — with the restart
/// re-anchor missing, that tick evicted the whole registry.
#[test]
fn controller_restart_does_not_evict_quiet_receivers() {
    let (s, heal_at) = controller_blackout(3);
    let r = run(&s);
    let c = r.controller.as_ref().unwrap();
    assert!(c.suggestions_sent > 0, "controller steered");
    assert_eq!(c.evicted, 0, "restart evicted receivers silent only during the outage");
    assert_eq!(c.registered, r.receivers.len(), "registry must survive the blackout intact");
    verify_recovery(&r, &s.cfg, heal_at, RECOVERY_INTERVALS).unwrap();
    for rec in &r.receivers {
        assert!(rec.stats.suggestions_received > 0, "receiver kept being steered");
    }
}

/// The ISSUE 7 takeover bound, pinned next to the §9 first-return bound:
/// with input replication on (the default), a mid-interval primary crash
/// hands over to a state-synced twin. The promoted standby takes over
/// within `failover_after` + one interval of the crash and re-arms the
/// change-driven engine with **at most one** full-fallback interval —
/// zero re-learning, not an invalidate-driven fallback storm.
#[test]
fn mid_interval_crash_takeover_is_zero_relearning() {
    let tel = telemetry::Telemetry::collecting();
    let (s, crash_at) = chaos::primary_crash_mid_interval(6);
    let cfg = s.cfg;
    let r = run(&s.with_telemetry(tel.clone()));

    let primary = r.controller.as_ref().unwrap();
    let standby = r.standby.as_ref().unwrap();
    // The standby was an input-synced twin before the crash, and the
    // cross-check saw it matching.
    assert!(standby.replica_applied > 0, "standby never applied a replicated batch");
    assert!(primary.replica_acks > 0, "primary never saw a matching fingerprint ack");
    assert_eq!(primary.replica_divergences, 0);

    let at = standby.failover_at.expect("standby must take over");
    assert!(
        at.since(crash_at) <= cfg.failover_after + cfg.interval,
        "takeover at {at:?} missed the one-interval bound after the {crash_at:?} crash"
    );
    // Receivers are back at their oracle levels within the §9 bound of
    // the takeover instant.
    verify_recovery(&r, &cfg, at, RECOVERY_INTERVALS).unwrap();

    // Zero re-learning, by the counters (shared by both controllers): the
    // only full-pipeline intervals in the whole run are the primary's
    // cold-start interval and at most one on the standby's first
    // self-observed tick. Everything else stays on the incremental path.
    let counters = tel.counters_snapshot();
    let get = |name: &str| counters.iter().find(|(k, _)| k == name).map(|&(_, v)| v).unwrap_or(0);
    let intervals = get("controller.intervals");
    let incremental = get("controller.intervals_incremental");
    let fallbacks = get("controller.full_fallbacks");
    assert!(intervals > 0);
    assert!(
        fallbacks <= 2,
        "fallback storm: {fallbacks} full fallbacks (cold start + one takeover allowed)"
    );
    assert_eq!(
        intervals - incremental,
        fallbacks,
        "every non-incremental interval must be an accounted fallback"
    );
    assert!(get("controller.replicate_sent") > 0);
    assert!(get("controller.replica_applied") > 0);
}

/// A partitioned standby misses batches and rejoins through the
/// `CheckpointTransfer` resync when its uplink heals — and the healed
/// replica keeps matching the primary's fingerprints afterwards.
#[test]
fn replica_partition_heals_through_checkpoint_resync() {
    let (s, heal_at) = chaos::replica_partition(2);
    let cfg = s.cfg;
    let r = run(&s);
    let primary = r.controller.as_ref().unwrap();
    let standby = r.standby.as_ref().unwrap();
    assert!(primary.replica_resyncs > 0, "primary never served a checkpoint");
    assert!(standby.replica_resyncs > 0, "standby never applied a checkpoint");
    assert_eq!(primary.replica_divergences, 0, "resynced replica must match");
    assert!(!primary.replica_quarantined);
    verify_recovery(&r, &cfg, heal_at, RECOVERY_INTERVALS).unwrap();
}

#[test]
fn random_chaos_is_panic_free_and_deterministic() {
    let go = || chaos::fingerprint(&run(&random_chaos(7).0));
    let a = go();
    let b = go();
    assert_eq!(a, b, "chaos run must be bit-reproducible");
    // And a different seed exercises a different history.
    assert_ne!(a, chaos::fingerprint(&run(&random_chaos(8).0)));
}

#[test]
fn fault_free_run_is_byte_identical_with_inert_plan() {
    let base = Scenario::new(generators::topology_a_default(2), TrafficModel::Cbr, 42)
        .with_duration(SimDuration::from_secs(90));
    // The same scenario carrying a plan whose only event fires after the
    // run ends: installing it must not perturb a single event.
    let inert = base.clone().with_fault(SpecFault::LinkOutage {
        link: 1,
        from: SimTime::from_secs(500),
        until: SimTime::from_secs(510),
    });
    let a = chaos::fingerprint(&run(&base));
    let b = chaos::fingerprint(&run(&inert));
    assert_eq!(a, b, "an inert fault plan changed the run");
}

/// Satellite: controller cold start. With a discovery tool too stale to
/// have answered, no interval completes and no suggestion is ever sent —
/// there is no tree to steer from.
#[test]
fn cold_start_scenario_sends_no_suggestions() {
    let s = Scenario::new(generators::topology_a_default(2), TrafficModel::Cbr, 5)
        .with_control(ControlMode::TopoSense { staleness: SimDuration::from_secs(30) })
        .with_duration(SimDuration::from_secs(12));
    let r = run(&s);
    let c = r.controller.as_ref().unwrap();
    assert_eq!(c.intervals, 0);
    assert_eq!(c.suggestions_sent, 0);
    for rec in &r.receivers {
        assert_eq!(rec.stats.suggestions_received, 0);
        assert_eq!(rec.stats.final_level(), 1, "receivers stay at the base layer");
    }
}

/// The chaos config only relaxes the re-add backoff; everything else must
/// match the defaults so chaos results stay comparable to the main runs.
#[test]
fn chaos_config_only_touches_backoff() {
    let c = chaos_config();
    let d = toposense::Config::default();
    assert_eq!(c.interval, d.interval);
    assert_eq!(c.quarantine_after, d.quarantine_after);
    assert_eq!(c.evict_after, d.evict_after);
    assert_eq!(c.failover_after, d.failover_after);
    assert!(c.backoff_max < d.backoff_min, "chaos backoff must be far shorter");
}
