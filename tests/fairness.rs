//! Inter-session fairness (the paper's Fig. 8 claims) as executable
//! assertions.

use netsim::{SimDuration, SimTime};
use scenarios::experiments;
use scenarios::{run, Scenario};
use topology::generators;
use traffic::TrafficModel;

#[test]
fn four_cbr_sessions_share_equitably() {
    let s = Scenario::new(generators::topology_b_default(4), TrafficModel::Cbr, 1)
        .with_duration(SimDuration::from_secs(600));
    let result = run(&s);
    // Byte shares: Jain close to 1.
    let bytes: Vec<f64> = result.session_bytes().iter().map(|&(_, b)| b as f64).collect();
    let jain = metrics::jain_index(&bytes);
    assert!(jain > 0.9, "jain {jain}: {bytes:?}");
    // Everyone near the 4-layer optimum in the second half.
    let dev = result
        .mean_relative_deviation(SimTime::from_secs(300), SimTime::from_secs(600))
        .expect("scenario has receivers");
    assert!(dev < 0.35, "second-half deviation {dev}");
}

#[test]
fn fairness_holds_at_sixteen_sessions() {
    let s = Scenario::new(generators::topology_b_default(16), TrafficModel::Vbr { p: 3.0 }, 1)
        .with_duration(SimDuration::from_secs(600));
    let result = run(&s);
    let bytes: Vec<f64> = result.session_bytes().iter().map(|&(_, b)| b as f64).collect();
    let jain = metrics::jain_index(&bytes);
    assert!(jain > 0.85, "jain {jain} at 16 sessions");
    let dev = result
        .mean_relative_deviation(SimTime::from_secs(300), SimTime::from_secs(600))
        .expect("scenario has receivers");
    assert!(dev < 0.45, "deviation {dev} at 16 sessions");
}

#[test]
fn deviation_does_not_grow_in_the_second_half() {
    // The paper's point: small deviation in BOTH halves — fairness is not a
    // transient.
    let rows =
        experiments::fig8_fairness(&[2, 4], &[TrafficModel::Cbr], SimDuration::from_secs(600), 1);
    for row in &rows {
        assert!(
            row.dev_second_half < row.dev_first_half + 0.15,
            "{} sessions: second half {:.3} much worse than first {:.3}",
            row.sessions,
            row.dev_second_half,
            row.dev_first_half
        );
        assert!(row.dev_second_half < 0.4, "{row:?}");
    }
}

#[test]
fn mixed_bottleneck_sessions_get_proportional_shares() {
    // Two sessions share a 1 Mb/s link, but session 1's receiver sits
    // behind a private 100 kb/s tail: it can only ever use 2 layers, and
    // session 0 should be allowed to grow into the slack (the paper's
    // "every session must get as much bandwidth as can possibly be used").
    let mut spec = topology::TopoSpec::new("mixed");
    use netsim::LinkConfig;
    use topology::NodeRole;
    let agg = spec.node("agg", vec![NodeRole::Router]);
    let dist = spec.node("dist", vec![NodeRole::Router]);
    spec.link(agg, dist, LinkConfig::kbps(1000.0));
    let s0 = spec.node("s0", vec![NodeRole::Source { session: 0 }, NodeRole::Controller]);
    let s1 = spec.node("s1", vec![NodeRole::Source { session: 1 }]);
    spec.link(s0, agg, LinkConfig::kbps(100_000.0));
    spec.link(s1, agg, LinkConfig::kbps(100_000.0));
    let r0 = spec.node("r0", vec![NodeRole::Receiver { session: 0, set: 0 }]);
    let r1 = spec.node("r1", vec![NodeRole::Receiver { session: 1, set: 0 }]);
    spec.link(dist, r0, LinkConfig::kbps(100_000.0));
    spec.link(dist, r1, LinkConfig::kbps(100.0));

    let scenario =
        Scenario::new(spec, TrafficModel::Cbr, 9).with_duration(SimDuration::from_secs(600));
    let result = run(&scenario);
    let by_session = |sess: u32| {
        result.receivers.iter().find(|r| r.session == sess).expect("both sessions present")
    };
    // Oracle: r1 capped at 2 layers by its tail; r0 free to take 4
    // (992k + 96k > 1M rules out 5).
    assert_eq!(by_session(1).optimal, 2);
    assert_eq!(by_session(0).optimal, 4);
    let half = SimTime::from_secs(300);
    let end = SimTime::from_secs(600);
    let m0 = by_session(0).level_series().mean(half, end);
    let m1 = by_session(1).level_series().mean(half, end);
    assert!(m1 < 2.8, "capped session stays near 2, got {m1:.2}");
    assert!(m0 > 3.0, "free session grows into the slack, got {m0:.2}");
}
