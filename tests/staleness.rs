//! Robustness to stale topology/loss information (the paper's Fig. 10).

use netsim::{SimDuration, SimTime};
use scenarios::{run, ControlMode, Scenario};
use topology::generators;
use traffic::TrafficModel;

fn run_with_staleness(staleness_secs: u64, seed: u64) -> scenarios::ScenarioResult {
    let s = Scenario::new(generators::topology_a_default(2), TrafficModel::Vbr { p: 3.0 }, seed)
        .with_control(ControlMode::TopoSense { staleness: SimDuration::from_secs(staleness_secs) })
        .with_duration(SimDuration::from_secs(600));
    run(&s)
}

fn mean_loss(result: &scenarios::ScenarioResult) -> f64 {
    result
        .receivers
        .iter()
        .map(|r| r.mean_loss(SimTime::ZERO, SimTime::from_secs(600)))
        .sum::<f64>()
        / result.receivers.len() as f64
}

#[test]
fn stale_information_costs_loss() {
    // Average over seeds: the staleness signal is smaller than single-run
    // noise. Fresh info must beat very stale info on mean loss.
    let seeds = [1u64, 42, 99];
    let fresh: f64 = seeds.iter().map(|&s| mean_loss(&run_with_staleness(0, s))).sum::<f64>() / 3.0;
    let stale: f64 =
        seeds.iter().map(|&s| mean_loss(&run_with_staleness(16, s))).sum::<f64>() / 3.0;
    assert!(stale > fresh, "16 s staleness should cost loss: fresh {fresh:.4}, stale {stale:.4}");
}

#[test]
fn system_still_converges_under_heavy_staleness() {
    // "TopoSense does appear to perform well even with information as old
    // as 8 seconds": receivers still end up near their optima.
    let result = run_with_staleness(8, 1);
    for r in &result.receivers {
        let mean = r.level_series().mean(SimTime::from_secs(300), SimTime::from_secs(600));
        assert!(
            (mean - r.optimal as f64).abs() < 1.2,
            "set {}: mean level {mean:.2} vs optimal {} at 8 s staleness",
            r.set,
            r.optimal
        );
    }
}

#[test]
fn deviation_stays_bounded_across_the_staleness_sweep() {
    for st in [0u64, 6, 12, 18] {
        let result = run_with_staleness(st, 7);
        let dev = result
            .mean_relative_deviation(SimTime::ZERO, SimTime::from_secs(600))
            .expect("scenario has receivers");
        assert!(dev < 0.5, "staleness {st}: deviation {dev:.3} out of control");
    }
}

#[test]
fn fewest_receivers_least_affected() {
    // The paper: "The session with only 2 receivers appears to be least
    // affected" — fewer receivers, less control traffic, less to go stale.
    let loss_for = |receivers_per_set: usize| -> f64 {
        let seeds = [1u64, 42, 99];
        seeds
            .iter()
            .map(|&sd| {
                let s = Scenario::new(
                    generators::topology_a_default(receivers_per_set),
                    TrafficModel::Vbr { p: 3.0 },
                    sd,
                )
                .with_control(ControlMode::TopoSense { staleness: SimDuration::from_secs(12) })
                .with_duration(SimDuration::from_secs(600));
                mean_loss(&run(&s))
            })
            .sum::<f64>()
            / 3.0
    };
    let small = loss_for(1);
    let large = loss_for(6);
    assert!(
        small < large + 0.01,
        "1/set ({small:.4}) should not fare worse than 6/set ({large:.4})"
    );
}
