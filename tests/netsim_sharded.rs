//! Deterministic tests for the sharded parallel runner (DESIGN.md §17):
//! fault/handoff interactions, drop attribution across shard boundaries,
//! and the release-profile regression gates the CI `netsim-sharded` job
//! runs with `--ignored` (single-shard overhead, 1M-receiver wall budget).

use std::time::Instant;

use netsim::{DirLinkId, FaultPlan, QueueBackend, SimDuration, SimTime};
use scenarios::largetree::{
    federated_media_sharded, federated_media_world, media_sim, FederationWorldParams,
};

/// A fault that lands *during* a handoff: the destination border crashes
/// while packets are crossing the inter-domain mailbox. The injected
/// arrivals die at the dead border, the domain's tree links flush, and the
/// drop accounting must stay attributed to the owning shard's `LinkStats` —
/// bit-identical to the sequential oracle through the id map.
#[test]
fn fault_during_handoff_keeps_drop_attribution_per_shard() {
    let mut w = federated_media_world(FederationWorldParams {
        domains: 2,
        fanout: 2,
        depth: 2,
        sink_stride: 1,
        rate_pps: 200,
        handoff_delay: SimDuration::from_millis(10),
        backend: QueueBackend::CalendarWheel,
        trace_cap: 1 << 16,
    });
    // Crash a mid-tier router while media is flowing (its upstream keeps
    // forwarding into the blackhole — dead arrivals must be charged to the
    // feeding link), then the border itself across several barrier epochs
    // while handoffs keep arriving at the dead node.
    let border = w.domain_nodes[0][0];
    let mid = w.domain_nodes[0][1];
    let plan = FaultPlan::new()
        .node_outage(mid, SimTime::from_millis(300), SimTime::from_millis(800))
        .node_outage(border, SimTime::from_millis(1200), SimTime::from_millis(1600));
    w.install_faults(&plan);
    w.run_until(SimTime::from_secs(2));

    // Every per-link counter matches the oracle through the id map, and the
    // faulted domain recorded fault loss in its *own* shard's stats.
    let mut domain0_down_drops = 0;
    for (oid, &(shard, local)) in w.link_map.iter().enumerate() {
        let o = w.oracle.network().link(DirLinkId(oid as u32)).stats;
        let s = w.sharded.shard(shard).network().link(local).stats;
        assert_eq!(s, o, "stats diverged on oracle link {oid} (shard {shard})");
        if shard == 1 {
            domain0_down_drops += s.down_dropped_packets;
        }
    }
    assert!(
        domain0_down_drops > 0,
        "the crashed domain must charge its fault loss to its own shard's links"
    );
    assert_eq!(w.sharded.events_processed(), w.oracle.events_processed());
    let (s, o) = w.delivered();
    assert_eq!(s, o);
    let p = w.sharded.profile();
    assert!(p.shard_handoffs > 0, "traffic must actually have crossed shards");
    assert!(p.shard_barrier_epochs > 100, "2 s at 10 ms lookahead spans many epochs");
}

/// Handoffs captured in the final epoch are still injected (at a time past
/// the deadline) rather than silently lost: resuming the run must deliver
/// them exactly like the oracle does.
#[test]
fn resumed_run_delivers_tail_handoffs() {
    let mut w = federated_media_world(FederationWorldParams::default());
    w.run_until(SimTime::from_millis(700));
    w.run_until(SimTime::from_millis(1400));
    w.run_until(SimTime::from_secs(2));
    let (s, o) = w.delivered();
    assert_eq!(s, o);
    assert!(s > 0);
    assert_eq!(w.sharded.events_processed(), w.oracle.events_processed());
}

/// Profile plumbing: the shard counters surface through the merged profile
/// with per-shard event extremes folded in.
#[test]
fn sharded_profile_reports_barrier_counters() {
    let mut w = federated_media_sharded(FederationWorldParams::default());
    w.sharded.run_until(SimTime::from_secs(1));
    let p = w.sharded.profile();
    assert_eq!(p.shards, 4);
    assert!(p.shard_handoffs > 0);
    assert!(p.shard_barrier_epochs >= 50, "1 s at 20 ms lookahead");
    assert!(p.shard_events_min <= p.shard_events_max);
    assert!(p.shard_events_max <= p.events_total);
    let names: Vec<&str> = p.counter_entries().iter().map(|&(n, _)| n).collect();
    for want in ["shard.count", "shard.handoffs", "shard.barrier_epochs", "shard.lookahead_stalls"]
    {
        assert!(names.contains(&want), "profile must export {want}");
    }
}

/// Release-profile gate (CI `netsim-sharded` job): on a 1-shard topology the
/// sharded runner is the plain wheel plus one epoch check — it must not be
/// slower than the bare simulator beyond noise.
#[test]
#[ignore = "release-profile regression gate; run with --ignored"]
fn single_shard_is_not_slower_than_bare_wheel() {
    let horizon = SimTime::from_secs(20);
    let bare_t = {
        let mut m = media_sim(8, 3, 2, 400, QueueBackend::CalendarWheel);
        let start = Instant::now();
        m.sim.run_until(horizon);
        (start.elapsed(), m.sim.events_processed())
    };
    let sharded_t = {
        let m = media_sim(8, 3, 2, 400, QueueBackend::CalendarWheel);
        let mut s = netsim::ShardedSim::new(vec![m.sim]);
        let start = Instant::now();
        s.run_until(horizon);
        (start.elapsed(), s.events_processed())
    };
    assert_eq!(bare_t.1, sharded_t.1, "same world, same events");
    // Generous noise margin: the wrapper adds one clock comparison per run.
    assert!(
        sharded_t.0 < bare_t.0.mul_f64(1.5),
        "1-shard sharded run regressed: {:?} vs bare {:?}",
        sharded_t.0,
        bare_t.0
    );
}

/// Release-profile gate (CI `netsim-sharded` job): the full federation
/// campaign world — 10 domains x fanout 10 x depth 5 = 1,000,000 receivers
/// — builds and carries packet-level media end to end inside the wall
/// budget. The batched join grafts each domain's 111,110-link tree in one
/// sweep; the per-domain wheels then run the media fan-out.
#[test]
#[ignore = "release-profile wall-budget gate; run with --ignored"]
fn million_receiver_federation_within_wall_budget() {
    let start = Instant::now();
    let mut w = federated_media_sharded(FederationWorldParams {
        domains: 10,
        fanout: 10,
        depth: 5,
        sink_stride: 1,
        rate_pps: 40,
        handoff_delay: SimDuration::from_millis(20),
        backend: QueueBackend::CalendarWheel,
        trace_cap: 0,
    });
    assert_eq!(w.params.receivers(), 1_000_000);
    let built = start.elapsed();
    w.sharded.run_until(SimTime::from_millis(1500));
    let ran = start.elapsed() - built;
    let events = w.sharded.events_processed();
    let delivered = w.delivered_total();
    eprintln!(
        "1M-receiver federation: build {built:?}, run {ran:?}, {events} events, \
         {delivered} delivered, {:.1} Mevents/s",
        events as f64 / ran.as_secs_f64() / 1e6
    );
    assert!(delivered > 0, "media must reach the receivers");
    for d in 1..w.sharded.shard_count() {
        w.sharded.shard(d).network().multicast_audit().unwrap();
    }
    // Wall budget for the whole thing (build + run) on one core.
    assert!(start.elapsed().as_secs() < 300, "1M-receiver campaign blew the wall budget");
}
