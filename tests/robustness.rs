//! Robustness: topology awareness protecting innocents (Fig. 1), lossy
//! control channels, transient non-conforming traffic, determinism.

use netsim::{SimDuration, SimTime};
use scenarios::experiments;
use scenarios::{run, ControlMode, Scenario};
use topology::generators;
use traffic::TrafficModel;

#[test]
fn fig1_toposense_protects_the_innocent_receiver() {
    let rows = experiments::fig1_motivation(SimDuration::from_secs(900), 1);
    let by_mode = |m: &str| rows.iter().find(|r| r.mode == m).expect("both modes run");
    let ts = by_mode("TopoSense");
    let rlm = by_mode("RLM");
    // n3 (optimal 1) must not suffer materially more loss under TopoSense
    // than under the receiver-driven baseline...
    assert!(
        ts.n3_loss < rlm.n3_loss + 0.03,
        "TopoSense n3 loss {:.4} vs RLM {:.4}",
        ts.n3_loss,
        rlm.n3_loss
    );
    // ...while delivering at least as much subscription to n4 and n5.
    assert!(
        ts.n4_mean_level >= rlm.n4_mean_level - 0.1,
        "n4: TopoSense {:.2} vs RLM {:.2}",
        ts.n4_mean_level,
        rlm.n4_mean_level
    );
    assert!(ts.n5_mean_level > 3.0, "n5 should enjoy its disjoint subtree");
    // Everyone ends up in the neighbourhood of their optimum (1, 2, 4).
    assert!((0.9..=1.6).contains(&ts.n3_mean_level), "n3 {:.2}", ts.n3_mean_level);
    assert!((1.6..=2.6).contains(&ts.n4_mean_level), "n4 {:.2}", ts.n4_mean_level);
}

#[test]
fn survives_a_transient_background_flood() {
    // A non-conforming unicast flood crosses the bottleneck mid-run; the
    // receiver must shed layers during the flood and recover afterwards.
    // Built via the low-level API so the flood app can be attached.
    use netsim::sim::{NetworkBuilder, SimConfig};
    use netsim::LinkConfig;
    use std::sync::Arc;
    use traffic::session::SessionDef;
    let mut b = NetworkBuilder::new(SimConfig { seed: 3, ..SimConfig::default() });
    let n_src = b.add_node("src");
    let n_mid = b.add_node("mid");
    let n_rcv = b.add_node("rcv");
    b.add_link(n_src, n_mid, LinkConfig::kbps(100_000.0));
    b.add_link(n_mid, n_rcv, LinkConfig::kbps(600.0));
    let mut sim = b.build();
    let groups: Vec<netsim::GroupId> = (0..6).map(|_| sim.create_group(n_src)).collect();
    let def = SessionDef {
        id: netsim::SessionId(0),
        source: n_src,
        groups,
        spec: traffic::LayerSpec::paper_default(),
    };
    let mut catalog = traffic::SessionCatalog::new();
    catalog.add(def.clone());
    let catalog = catalog.share();
    let cfg = toposense::Config::default();
    let (ctrl, _) = toposense::Controller::new(Arc::clone(&catalog), cfg, SimDuration::ZERO, 1);
    sim.add_app(n_src, Box::new(ctrl));
    sim.add_app(n_src, Box::new(traffic::LayeredSource::new(def.clone(), TrafficModel::Cbr, 2)));
    let (rx, stats) = toposense::Receiver::new(def, n_src, cfg, 3, "r0");
    sim.add_app(n_rcv, Box::new(rx));
    // 400 kb/s flood from src to rcv between t=200 and t=280: the 600 kb/s
    // bottleneck momentarily fits only 200 kb/s of media (2 layers).
    let flood = traffic::background::OnOffFlood::new(
        n_rcv,
        400_000.0,
        SimTime::from_secs(200),
        SimTime::from_secs(280),
    );
    sim.add_app(n_src, Box::new(flood));
    sim.run_until(SimTime::from_secs(500));

    let s = stats.lock().unwrap();
    let series = metrics::StepSeries::from_changes(&s.changes);
    let before = series.mean(SimTime::from_secs(120), SimTime::from_secs(200));
    let during = series.mean(SimTime::from_secs(220), SimTime::from_secs(280));
    let after = series.mean(SimTime::from_secs(400), SimTime::from_secs(500));
    assert!(before > 3.0, "pre-flood level {before:.2} (optimum 4)");
    assert!(during < before - 0.2, "must shed during the flood: {during:.2} vs {before:.2}");
    assert!(after > 2.8, "must recover after the flood: {after:.2}");
}

#[test]
fn receivers_keep_functioning_when_registration_is_flaky() {
    // Even with a pathologically lossy first mile, re-registration and
    // reports eventually connect every receiver to the controller.
    let s = Scenario::new(generators::topology_b_default(3), TrafficModel::Cbr, 77)
        .with_duration(SimDuration::from_secs(300));
    let result = run(&s);
    let ctrl = result.controller.expect("controller present");
    assert_eq!(ctrl.registered, 3, "all receivers known to the controller");
    for r in &result.receivers {
        assert!(r.stats.suggestions_received > 0, "receiver {:?} never heard back", r.node);
    }
}

#[test]
fn whole_scenario_is_deterministic() {
    let go = || {
        let s =
            Scenario::new(generators::topology_b_default(4), TrafficModel::Vbr { p: 6.0 }, 1234)
                .with_duration(SimDuration::from_secs(300));
        let r = run(&s);
        (
            r.events,
            r.total_drops,
            r.receivers.iter().map(|x| x.stats.changes.clone()).collect::<Vec<_>>(),
            r.receivers.iter().map(|x| x.stats.bytes_total).collect::<Vec<_>>(),
        )
    };
    assert_eq!(go(), go());
}

#[test]
fn rlm_baseline_shows_the_topology_blind_pathology() {
    // Under RLM, the n4 receiver's failed experiments at layer 3 leak loss
    // onto n3 over the shared 110 kb/s link — the Fig. 1 argument.
    let s = Scenario::new(generators::figure1(), TrafficModel::Cbr, 13)
        .with_control(ControlMode::Rlm(baselines::rlm::RlmParams::default()))
        .with_duration(SimDuration::from_secs(600));
    let result = run(&s);
    let n3 = result.receivers.iter().find(|r| r.set == 0).unwrap();
    // n3's own optimum is 1 layer; any loss it sees beyond its own probes
    // is collateral. It must see *some* loss (the pathology exists).
    let loss = n3.mean_loss(SimTime::from_secs(60), SimTime::from_secs(600));
    assert!(loss > 0.005, "expected collateral/probe loss at n3, got {loss}");
}
