//! Telemetry-layer invariants (DESIGN.md §10).
//!
//! The two hard guarantees: telemetry is a *pure observer* (attaching a
//! sink changes nothing about the simulation), and the audit trail is
//! *faithful* (the subscription decisions it records are exactly the
//! levels the controller applied).

use netsim::{SimDuration, SimTime};
use scenarios::{run, ControlMode, Scenario};
use telemetry::{Record, StageBody, Telemetry};
use topology::generators;
use traffic::TrafficModel;

fn scenario(seed: u64) -> Scenario {
    Scenario::new(generators::topology_a_default(2), TrafficModel::Vbr { p: 3.0 }, seed)
        .with_control(ControlMode::TopoSense { staleness: SimDuration::ZERO })
        .with_duration(SimDuration::from_secs(90))
}

/// Everything observable about a run that must not depend on telemetry.
type Fingerprint = (u64, u64, Vec<Vec<(SimTime, u8, u8)>>, u64);

fn fingerprint(r: &scenarios::ScenarioResult) -> Fingerprint {
    (
        r.events,
        r.total_drops,
        r.receivers.iter().map(|x| x.stats.changes.clone()).collect(),
        r.controller.as_ref().map(|c| c.suggestions_sent).unwrap_or(0),
    )
}

/// Attaching a sink or running with telemetry disabled must produce the
/// same simulation, event for event — telemetry is write-only.
#[test]
fn sinks_attached_or_detached_simulation_is_identical() {
    let plain = run(&scenario(7));
    let (tel, store) = Telemetry::memory();
    let audited = run(&scenario(7).with_telemetry(tel));
    assert_eq!(fingerprint(&plain), fingerprint(&audited));
    assert!(
        store.records().iter().any(|r| matches!(r, Record::Stage { .. })),
        "the audited run must actually have recorded something"
    );
}

/// Every controller interval emits exactly one audit record per stage,
/// and the subscription decisions recorded are exactly the levels the
/// controller applied (its `suggestion_series` ground truth).
#[test]
fn audit_trail_matches_applied_suggestions() {
    let (tel, store) = Telemetry::memory();
    let result = run(&scenario(11).with_telemetry(tel));
    let controller = result.controller.as_ref().expect("TopoSense run has a controller");
    let records = store.records();

    // One record per stage per interval.
    let count = |name: &str| {
        records
            .iter()
            .filter(|r| matches!(r, Record::Stage { body, .. } if body.stage_name() == name))
            .count() as u64
    };
    assert!(controller.intervals > 20, "scenario too short to be meaningful");
    for stage in ["congestion", "capacity", "bottleneck", "sharing", "subscription"] {
        assert_eq!(count(stage), controller.intervals, "one {stage} record per interval");
    }

    // The audited subscription levels, interval by interval (aligned with
    // the series by simulated timestamp), must equal the applied ones.
    let mut audited: Vec<(u64, Vec<(u64, u8)>)> = records
        .iter()
        .filter_map(|r| match r {
            Record::Stage { t_ns, body: StageBody::Subscription(sessions), .. } => {
                let mut levels: Vec<(u64, u8)> = sessions
                    .iter()
                    .flat_map(|s| {
                        s.nodes.iter().filter_map(move |n| n.suggested.map(|l| (s.session, l)))
                    })
                    .collect();
                levels.sort_unstable();
                Some((*t_ns, levels))
            }
            _ => None,
        })
        .collect();
    audited.sort_unstable();
    assert_eq!(audited.len() as u64, controller.intervals);
    assert_eq!(controller.suggestion_series.len() as u64, controller.intervals);
    for ((t_ns, levels), (at, applied)) in audited.iter().zip(&controller.suggestion_series) {
        assert_eq!(*t_ns, at.nanos(), "audit and series must cover the same intervals");
        let mut applied: Vec<(u64, u8)> =
            applied.iter().map(|s| (s.session.0 as u64, s.level)).collect();
        applied.sort_unstable();
        assert_eq!(
            levels, &applied,
            "interval at {t_ns}ns: audited subscription decisions diverge from applied levels"
        );
    }
    // The scenario steers somebody somewhere: the cross-check must not be
    // vacuously comparing empty sets forever.
    assert!(
        audited.iter().any(|(_, levels)| !levels.is_empty()),
        "no interval carried any suggestion"
    );
}

/// A trail recorded to a real JSONL file decodes against the schema and
/// re-encodes byte-identically, and the wall-clock stage timers are
/// populated for all five kernels.
#[test]
fn recorded_trail_round_trips_and_timers_are_populated() {
    let path = std::env::temp_dir().join(format!("toposense-trail-{}.jsonl", std::process::id()));
    let tel = Telemetry::jsonl_file(&path).expect("create trail file");
    let result = run(&scenario(3).with_telemetry(tel));
    let text = std::fs::read_to_string(&path).expect("trail written");
    let _ = std::fs::remove_file(&path);

    let mut stage_records = 0u64;
    let mut timer_names = Vec::new();
    for (i, line) in text.lines().filter(|l| !l.trim().is_empty()).enumerate() {
        let record = Record::from_jsonl(line)
            .unwrap_or_else(|e| panic!("line {}: schema violation: {e}", i + 1));
        assert_eq!(record.to_jsonl(), line, "line {}: decode/re-encode not byte-identical", i + 1);
        match &record {
            Record::Stage { .. } => stage_records += 1,
            Record::Timers { entries } => {
                timer_names.extend(entries.iter().map(|t| t.name.clone()));
                for t in entries {
                    assert!(t.count > 0, "timer {} recorded no spans", t.name);
                    assert!(t.min_ns <= t.max_ns);
                    assert_eq!(
                        t.buckets.iter().map(|&(_, n)| n).sum::<u64>(),
                        t.count,
                        "histogram buckets of {} must account for every span",
                        t.name
                    );
                }
            }
            _ => {}
        }
    }
    let intervals = result.controller.as_ref().map(|c| c.intervals).unwrap_or(0);
    assert_eq!(stage_records, intervals * 5);
    for stage in [
        "stage1_congestion",
        "stage2_capacity",
        "stage3_bottleneck",
        "stage4_sharing",
        "stage5_subscription",
        "interval",
        "scenario_setup",
        "scenario_run",
        "scenario_harvest",
    ] {
        assert!(timer_names.iter().any(|n| n == stage), "timer '{stage}' missing: {timer_names:?}");
    }
    // Phase wall times surfaced on the result as well (satellite: runner
    // phase timing) — wall clocks are positive even for a fast run.
    assert!(result.run_wall_ns > 0);
    assert!(result.setup_wall_ns > 0);
}
