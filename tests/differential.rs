//! Differential tests: the dense slot-indexed stage cores must reproduce
//! the pre-refactor `HashMap`-indexed implementations bit for bit.
//!
//! The originals are preserved verbatim in `toposense::stages::reference`
//! and act as the oracle; every comparison below is exact (`==` on floats
//! included), because the refactor promises identical iteration and
//! float-summation order, not merely "close" results.

use netsim::{
    AppId, DirLinkId, GroupId, GroupSnapshot, NodeId, RngStream, SessionId, SimDuration, SimTime,
};
use proptest::prelude::*;
use std::collections::HashMap;
use topology::discovery::{LinkView, TopologyView};
use topology::SessionTree;
use toposense::history::{BwEquality, CongestionHistory};
use toposense::stages::congestion::LeafObs;
use toposense::stages::subscription::{BackoffTable, DemandContext, NodeInputs};
use toposense::stages::{bottleneck, congestion, reference, sharing, subscription};
use toposense::Config;
use traffic::LayerSpec;

/// Build a session tree from a parent vector: node `i + 1` attaches under
/// node `parents[i] % (i + 1)`, link ids offset so several sessions can
/// either share or disjointly own their links.
fn session_tree(parents: &[usize], session: u32, link_offset: u32) -> SessionTree {
    let mut links = Vec::new();
    let mut active = Vec::new();
    for (i, &p) in parents.iter().enumerate() {
        let child = NodeId(i as u32 + 1);
        let parent = NodeId((p % (i + 1)) as u32);
        let id = DirLinkId(link_offset + i as u32);
        links.push(LinkView { id, from: parent, to: child });
        active.push(id);
    }
    let all: Vec<NodeId> = (0..=parents.len() as u32).map(NodeId).collect();
    let view = TopologyView {
        time: SimTime::ZERO,
        links,
        groups: vec![GroupSnapshot {
            group: GroupId(0),
            root: NodeId(0),
            active_links: active,
            member_nodes: all,
        }],
    };
    SessionTree::build(&view, SessionId(session), &[GroupId(0)]).unwrap()
}

/// Deterministic pseudo-random observations over a subset of nodes.
fn random_obs(tree: &SessionTree, seed: u64) -> HashMap<NodeId, LeafObs> {
    let mut rng = RngStream::derive(seed, "differential/obs");
    let mut obs = HashMap::new();
    for node in tree.tree().top_down() {
        if rng.f64() < 0.7 {
            obs.insert(
                node,
                LeafObs {
                    loss: rng.f64() * 0.4,
                    bytes: (rng.f64() * 200_000.0) as u64,
                    level: 1 + (rng.f64() * 5.0) as u8,
                },
            );
        }
    }
    obs
}

/// Deterministic pseudo-random capacity table over a subset of links.
fn random_capacities(trees: &[SessionTree], seed: u64) -> HashMap<DirLinkId, f64> {
    let mut rng = RngStream::derive(seed, "differential/caps");
    let mut caps = HashMap::new();
    for tree in trees {
        for (_, link, _) in tree.edges() {
            if rng.f64() < 0.5 {
                caps.entry(link).or_insert(50_000.0 + rng.f64() * 2_000_000.0);
            }
        }
    }
    caps
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Stage 1: identical `NodeState` for every node, including exact
    /// float equality on the loss field (same summation order).
    #[test]
    fn congestion_matches_reference(
        parents in prop::collection::vec(0usize..16, 1..16),
        seed in 0u64..1000,
    ) {
        let tree = session_tree(&parents, 0, 0);
        let obs = random_obs(&tree, seed);
        let cfg = Config::default();
        let dense = congestion::compute(&tree, &obs, &cfg);
        let oracle = reference::congestion_compute(&tree, &obs, &cfg);
        for node in tree.tree().top_down() {
            let a = dense.node(node);
            let b = oracle.node(node);
            prop_assert_eq!(a.loss, b.loss);
            prop_assert_eq!(a.self_congested, b.self_congested);
            prop_assert_eq!(a.congested, b.congested);
            prop_assert_eq!(a.parent_congested, b.parent_congested);
            prop_assert_eq!(a.max_bytes, b.max_bytes);
        }
    }

    /// Stage 3: identical bottleneck and max-handle values per node.
    #[test]
    fn bottleneck_matches_reference(
        parents in prop::collection::vec(0usize..16, 1..16),
        seed in 0u64..1000,
    ) {
        let tree = session_tree(&parents, 0, 0);
        let trees = [tree];
        let caps = random_capacities(&trees, seed);
        let cap = |l: DirLinkId| caps.get(&l).copied();
        let dense = bottleneck::compute(&trees[0], cap);
        let oracle = reference::bottleneck_compute(&trees[0], cap);
        for node in trees[0].tree().top_down() {
            prop_assert_eq!(dense.bottleneck(node), oracle.bottleneck(node));
            prop_assert_eq!(dense.max_handle(node), oracle.max_handle(node));
        }
    }

    /// Stage 4 with several sessions sharing every link: identical allowed
    /// bandwidth per (session, node) — the proportional-share arithmetic
    /// must sum the crossing sessions in the same order.
    #[test]
    fn sharing_matches_reference(
        parents in prop::collection::vec(0usize..12, 1..12),
        nsess in 1usize..4,
        seed in 0u64..1000,
    ) {
        // Same parent vector and link ids: all sessions share all links.
        let trees: Vec<SessionTree> =
            (0..nsess).map(|s| session_tree(&parents, s as u32, 0)).collect();
        let spec = LayerSpec::paper_default();
        let specs: Vec<&LayerSpec> = trees.iter().map(|_| &spec).collect();
        let caps = random_capacities(&trees, seed);
        let cap = |l: DirLinkId| caps.get(&l).copied();
        let dense = sharing::compute(&trees, &specs, cap);
        let oracle = reference::sharing_compute(&trees, &specs, cap);
        for (i, tree) in trees.iter().enumerate() {
            for node in tree.tree().top_down() {
                prop_assert_eq!(dense.allowed(i, node), oracle.allowed(i, node));
            }
        }
    }

    /// Stage 4 with disjoint links (nothing shared): the fallback
    /// "allowed = capacity" path must also match.
    #[test]
    fn sharing_matches_reference_disjoint_links(
        parents in prop::collection::vec(0usize..10, 1..10),
        seed in 0u64..1000,
    ) {
        let trees =
            vec![session_tree(&parents, 0, 0), session_tree(&parents, 1, 100)];
        let spec = LayerSpec::paper_default();
        let specs: Vec<&LayerSpec> = trees.iter().map(|_| &spec).collect();
        let caps = random_capacities(&trees, seed);
        let cap = |l: DirLinkId| caps.get(&l).copied();
        let dense = sharing::compute(&trees, &specs, cap);
        let oracle = reference::sharing_compute(&trees, &specs, cap);
        for (i, tree) in trees.iter().enumerate() {
            for node in tree.tree().top_down() {
                prop_assert_eq!(dense.allowed(i, node), oracle.allowed(i, node));
            }
        }
    }

    /// Stage 5 over several rounds with persistent backoff tables and RNG
    /// streams on both sides: demand and supply must stay identical, which
    /// also proves the RNG draw order (backoff arming) is unchanged.
    #[test]
    fn subscription_matches_reference(
        parents in prop::collection::vec(0usize..12, 1..12),
        seed in 0u64..1000,
    ) {
        let tree = session_tree(&parents, 0, 0);
        let t = tree.tree();
        let spec = LayerSpec::paper_default();
        let cfg = Config::default();
        let mut dense_backoffs = BackoffTable::new();
        let mut oracle_backoffs = BackoffTable::new();
        let mut dense_rng = RngStream::derive(seed, "differential/sub");
        let mut oracle_rng = RngStream::derive(seed, "differential/sub");
        let mut gen = RngStream::derive(seed, "differential/sub-inputs");

        for round in 0..3u64 {
            let mut inputs: HashMap<NodeId, NodeInputs> = HashMap::new();
            let mut caps: HashMap<NodeId, u8> = HashMap::new();
            for node in t.top_down() {
                let mut hist = CongestionHistory::new();
                for _ in 0..3 {
                    hist.push(gen.f64() < 0.4);
                }
                let bytes_older = (gen.f64() * 120_000.0) as u64;
                let bytes_recent = (gen.f64() * 120_000.0) as u64;
                inputs.insert(
                    node,
                    NodeInputs {
                        hist,
                        parent_congested: gen.f64() < 0.2,
                        sibling_congested: gen.f64() < 0.2,
                        bw: BwEquality::classify(
                            bytes_older,
                            bytes_recent,
                            cfg.bw_equal_tolerance,
                        ),
                        loss: gen.f64() * 0.4,
                        supply_older: 1 + (gen.f64() * 5.0) as u8,
                        supply_recent: 1 + (gen.f64() * 5.0) as u8,
                        demand_prev: (gen.f64() < 0.8)
                            .then(|| 1 + (gen.f64() * 5.0) as u8),
                        current_level: (gen.f64() < 0.8)
                            .then(|| 1 + (gen.f64() * 5.0) as u8),
                        goodput_bps: gen.f64() * 1_500_000.0,
                    },
                );
                caps.insert(node, 1 + (gen.f64() * 6.0) as u8);
            }
            let level_cap = |n: NodeId| caps[&n];
            let level_cap: &dyn Fn(NodeId) -> u8 = &level_cap;
            let ctx = DemandContext {
                tree: &tree,
                spec: &spec,
                cfg: &cfg,
                now: SimTime::from_secs(2 * (round + 1)),
                inputs: &inputs,
                level_cap,
            };
            let dense = subscription::compute(&ctx, &mut dense_backoffs, &mut dense_rng);
            let oracle =
                reference::subscription_compute(&ctx, &mut oracle_backoffs, &mut oracle_rng);
            for node in t.top_down() {
                prop_assert_eq!(dense.demand[&node], oracle.demand[&node]);
                prop_assert_eq!(dense.supply[&node], oracle.supply[&node]);
            }
            prop_assert_eq!(dense_backoffs.len(), oracle_backoffs.len());
        }
    }
}

/// End-to-end determinism: two identical `scenarios::run` invocations with
/// the same seed must produce byte-identical results (the dense scratch
/// reuse and rayon fan-out must not introduce any ordering dependence).
#[test]
fn scenario_results_are_byte_identical_for_fixed_seeds() {
    use scenarios::{run, Scenario};
    use topology::generators;
    use traffic::TrafficModel;

    for seed in [1u64, 7, 42] {
        let go = || {
            let s = Scenario::new(
                generators::topology_b_default(4),
                TrafficModel::Vbr { p: 3.0 },
                seed,
            )
            .with_duration(SimDuration::from_secs(60));
            let r = run(&s);
            format!(
                "{:?}|{:?}|{:?}|{:?}|{:?}",
                r.receivers, r.duration, r.total_drops, r.control_bytes, r.events
            )
        };
        let a = go();
        let b = go();
        assert_eq!(a, b, "seed {seed} produced diverging bytes");
    }
}

/// The algorithm driver must not care whether sessions are processed in
/// parallel (≥ 2 sessions) or serially (1 session): a two-session run where
/// the sessions do not interact must give each session the same suggestions
/// it gets when run alone.
#[test]
fn parallel_fanout_matches_serial_per_session() {
    use toposense::{AlgorithmInputs, AlgorithmState, ReceiverReport};

    let parents = [0usize, 0, 1, 1, 2];
    // Disjoint link id spaces: the sessions never interact through stage 2/4.
    let t0 = session_tree(&parents, 0, 0);
    let t1 = session_tree(&parents, 1, 100);
    let spec = LayerSpec::paper_default();

    let leaves: Vec<NodeId> = t0.tree().leaves().filter(|&n| n != t0.tree().root()).collect();
    let mk_reports = |sid: u32| -> Vec<ReceiverReport> {
        leaves
            .iter()
            .enumerate()
            .map(|(i, &n)| ReceiverReport {
                receiver: AppId(sid * 100 + i as u32),
                node: n,
                session: SessionId(sid),
                level: 2,
                received: 90,
                // Clean reports: stage 5 then consumes no RNG (no backoff
                // arming), so the solo and paired controllers stay in
                // lockstep across rounds and the comparison is exact.
                lost: 0,
                bytes: 25_000,
            })
            .collect()
    };
    let registry_for = |sid: u32| -> Vec<(AppId, NodeId, SessionId)> {
        leaves
            .iter()
            .enumerate()
            .map(|(i, &n)| (AppId(sid * 100 + i as u32), n, SessionId(sid)))
            .collect()
    };

    // Paired run: both sessions in one controller (parallel stage 1/3).
    let mut paired = AlgorithmState::new(Config::default(), 5);
    // Solo run: session 0 alone (serial path).
    let mut solo = AlgorithmState::new(Config::default(), 5);

    for round in 1..=4u64 {
        let now = SimTime::from_secs(2 * round);
        let interval = SimDuration::from_secs(2);

        let trees = vec![t0.clone(), t1.clone()];
        let mut registry = registry_for(0);
        registry.extend(registry_for(1));
        let mut reports = mk_reports(0);
        reports.extend(mk_reports(1));
        let out_paired = paired.run(&AlgorithmInputs {
            now,
            interval,
            trees: &trees,
            specs: &[&spec, &spec],
            registry: &registry,
            reports: &reports,
        });

        let trees_solo = vec![t0.clone()];
        let out_solo = solo.run(&AlgorithmInputs {
            now,
            interval,
            trees: &trees_solo,
            specs: &[&spec],
            registry: &registry_for(0),
            reports: &mk_reports(0),
        });

        let paired_s0: Vec<_> =
            out_paired.suggestions.iter().filter(|s| s.session == SessionId(0)).collect();
        let solo_s0: Vec<_> = out_solo.suggestions.iter().collect();
        assert_eq!(paired_s0.len(), solo_s0.len(), "round {round}");
        for (a, b) in paired_s0.iter().zip(&solo_s0) {
            assert_eq!(a.receiver, b.receiver, "round {round}");
            assert_eq!(a.level, b.level, "round {round}");
        }
    }
}
