//! Differential coverage for the change-driven (incremental) pipeline of
//! DESIGN.md §11: `AlgorithmState::run_incremental` must reproduce
//! `AlgorithmState::run` byte for byte — suggestions, capacity estimates,
//! congestion counts and root supply — across randomized report churn,
//! membership churn (the fallback path), every canned chaos plan through
//! the full simulator, and a large balanced domain.
//!
//! Comparisons are exact (`==` on floats included): the incremental path
//! promises identical arithmetic on the slots it recomputes and untouched
//! cached values everywhere else, not merely "close" results.

use netsim::{
    AppId, DirLinkId, GroupId, GroupSnapshot, NodeId, RngStream, SessionId, SimDuration, SimTime,
};
use proptest::prelude::*;
use topology::discovery::{LinkView, TopologyView};
use topology::SessionTree;
use toposense::algorithm::{AlgorithmInputs, AlgorithmOutputs, AlgorithmState, ReceiverReport};
use toposense::Config;
use traffic::LayerSpec;

/// Build a session tree from a parent vector: node `i + 1` attaches under
/// node `parents[i] % (i + 1)` (same generator as `tests/differential.rs`).
fn session_tree(parents: &[usize], session: u32, link_offset: u32) -> SessionTree {
    let mut links = Vec::new();
    let mut active = Vec::new();
    for (i, &p) in parents.iter().enumerate() {
        let child = NodeId(i as u32 + 1);
        let parent = NodeId((p % (i + 1)) as u32);
        let id = DirLinkId(link_offset + i as u32);
        links.push(LinkView { id, from: parent, to: child });
        active.push(id);
    }
    let all: Vec<NodeId> = (0..=parents.len() as u32).map(NodeId).collect();
    let view = TopologyView {
        time: SimTime::ZERO,
        links,
        groups: vec![GroupSnapshot {
            group: GroupId(0),
            root: NodeId(0),
            active_links: active,
            member_nodes: all,
        }],
    };
    SessionTree::build(&view, SessionId(session), &[GroupId(0)]).unwrap()
}

fn leaf_receivers(tree: &SessionTree) -> Vec<NodeId> {
    tree.tree().leaves().filter(|&n| n != tree.tree().root()).collect()
}

fn reports_for(leaves: &[NodeId], session: u32) -> Vec<ReceiverReport> {
    leaves
        .iter()
        .enumerate()
        .map(|(i, &node)| ReceiverReport {
            receiver: AppId(500 + i as u32),
            node,
            session: SessionId(session),
            level: 3,
            received: 100,
            lost: 0,
            bytes: 25_000,
        })
        .collect()
}

fn registry_for(leaves: &[NodeId], session: u32) -> Vec<(AppId, NodeId, SessionId)> {
    leaves
        .iter()
        .enumerate()
        .map(|(i, &node)| (AppId(500 + i as u32), node, SessionId(session)))
        .collect()
}

/// Randomly perturb the report values in place: byte-counter drift, loss
/// toggles (which flip congestion labels and arm/expire backoffs) and
/// level changes. Keys are left alone so the incremental path stays on.
fn churn(reports: &mut [ReceiverReport], rng: &mut RngStream) {
    for r in reports.iter_mut() {
        let x = rng.f64();
        if x < 0.30 {
            r.bytes = 10_000 + (rng.f64() * 40_000.0) as u64;
        } else if x < 0.45 {
            let lossy = rng.f64() < 0.5;
            r.received = if lossy { 90 } else { 100 };
            r.lost = if lossy { 10 } else { 0 };
        } else if x < 0.55 {
            r.level = 1 + (rng.f64() * 5.0) as u8;
        }
    }
}

/// Next interval's reports carry the level the controller just suggested
/// (suggestions come out in registry order, so this is a straight zip).
fn follow_suggestions(out: &AlgorithmOutputs, reports: &mut [ReceiverReport]) {
    for (r, s) in reports.iter_mut().zip(&out.suggestions) {
        assert_eq!(r.receiver, s.receiver);
        r.level = s.level;
    }
}

fn inputs_at<'a>(
    now_secs: u64,
    trees: &'a [SessionTree],
    specs: &'a [&'a LayerSpec],
    registry: &'a [(AppId, NodeId, SessionId)],
    reports: &'a [ReceiverReport],
) -> AlgorithmInputs<'a> {
    AlgorithmInputs {
        now: SimTime::from_secs(now_secs),
        interval: SimDuration::from_secs(2),
        trees,
        specs,
        registry,
        reports,
    }
}

/// Field-wise byte-identity on everything except the diagnostics that are
/// *supposed* to differ (`incremental`, `slots_recomputed`).
macro_rules! assert_outputs_eq {
    ($assert:ident, $full:expr, $inc:expr, $ctx:expr) => {{
        let (a, b) = (&$full, &$inc);
        $assert!(a.suggestions == b.suggestions, "suggestions diverged at {}", $ctx);
        $assert!(a.estimated_links == b.estimated_links, "estimates diverged at {}", $ctx);
        $assert!(a.congested_nodes == b.congested_nodes, "congested count diverged at {}", $ctx);
        $assert!(a.root_supply == b.root_supply, "root supply diverged at {}", $ctx);
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Report churn only (stable keys, stable topology): after the first
    /// cache-priming interval every run must take the incremental path and
    /// still match a twin that recomputes everything.
    #[test]
    fn incremental_matches_full_across_report_churn(
        parents in prop::collection::vec(0usize..12, 2..14),
        seed in 0u64..1000,
    ) {
        let trees = vec![session_tree(&parents, 0, 0)];
        let leaves = leaf_receivers(&trees[0]);
        let spec = LayerSpec::paper_default();
        let specs: Vec<&LayerSpec> = vec![&spec];
        let registry = registry_for(&leaves, 0);
        let mut reports = reports_for(&leaves, 0);
        let mut rng = RngStream::derive(seed, "incremental/churn");

        let mut full = AlgorithmState::new(Config::default(), seed);
        let mut inc = AlgorithmState::new(Config::default(), seed);

        for round in 1..=8u64 {
            churn(&mut reports, &mut rng);
            let inputs = inputs_at(2 * round, &trees, &specs, &registry, &reports);
            let a = full.run(&inputs);
            let b = inc.run_incremental(&inputs);
            assert_outputs_eq!(prop_assert, a, b, format_args!("round {round}"));
            if round >= 2 {
                prop_assert!(b.incremental, "round {} should be incremental", round);
            }
            // Some intervals the receivers obey the controller, so the
            // domain converges and clean (skippable) slots actually appear.
            if rng.f64() < 0.5 {
                follow_suggestions(&b, &mut reports);
            }
        }
    }

    /// Join/leave churn: receivers leave mid-run and later rejoin. The
    /// registry change must force a full-run fallback (the cached report
    /// → slot attribution no longer applies) and the outputs must stay
    /// identical through the transition — including the report-less
    /// subtrees the departures leave behind.
    #[test]
    fn incremental_matches_full_across_membership_churn(
        parents in prop::collection::vec(0usize..10, 4..12),
        seed in 0u64..500,
    ) {
        let trees = vec![session_tree(&parents, 0, 0)];
        let leaves = leaf_receivers(&trees[0]);
        let spec = LayerSpec::paper_default();
        let specs: Vec<&LayerSpec> = vec![&spec];
        let all_registry = registry_for(&leaves, 0);
        let all_reports = reports_for(&leaves, 0);
        // After the leave, only every other receiver remains: the pruned
        // half's subtrees go report-less.
        let half_registry: Vec<_> =
            all_registry.iter().step_by(2).copied().collect();
        let half_reports: Vec<_> =
            all_reports.iter().step_by(2).cloned().collect();
        let mut rng = RngStream::derive(seed, "incremental/membership");

        let mut full = AlgorithmState::new(Config::default(), seed);
        let mut inc = AlgorithmState::new(Config::default(), seed);

        for round in 1..=9u64 {
            let (registry, mut reports) = match round {
                1..=3 => (&all_registry, all_reports.clone()),
                4..=6 => (&half_registry, half_reports.clone()),
                _ => (&all_registry, all_reports.clone()),
            };
            churn(&mut reports, &mut rng);
            let inputs = inputs_at(2 * round, &trees, &specs, registry, &reports);
            let a = full.run(&inputs);
            let b = inc.run_incremental(&inputs);
            assert_outputs_eq!(prop_assert, a, b, format_args!("round {round}"));
            match round {
                // Cache priming (1) and each membership flip (4, 7) must
                // fall back to the full path...
                1 | 4 | 7 => prop_assert!(
                    !b.incremental,
                    "round {} must fall back on membership change", round
                ),
                // ...and every steady round must be served incrementally.
                _ => prop_assert!(
                    b.incremental,
                    "round {} should be incremental", round
                ),
            }
        }
    }
}

/// Every canned chaos plan, simulated end to end twice — once with the
/// change-driven pipeline, once with it disabled — must produce identical
/// controller decisions and receiver behaviour. This exercises the
/// fallback triggers the unit tests cannot reach: topology changes from
/// link flaps and router crashes, degraded-discovery intervals, capacity
/// resets, and the failover-promoted standby's `invalidate()`.
#[test]
fn chaos_plans_match_with_and_without_incremental() {
    use scenarios::chaos;

    let plans = [
        ("link_flap", chaos::link_flap(1).0),
        ("router_crash", chaos::router_crash(1).0),
        ("discovery_outage", chaos::discovery_outage(2).0),
        ("partial_discovery_outage", chaos::partial_discovery_outage(3).0),
        ("controller_failover", chaos::controller_failover(4).0),
    ];
    for (name, scenario) in plans {
        let mut with_inc = scenario.clone();
        with_inc.cfg.incremental = true;
        let mut without = scenario;
        without.cfg.incremental = false;

        let a = scenarios::run(&with_inc);
        let b = scenarios::run(&without);

        for (ca, cb) in [(&a.controller, &b.controller), (&a.standby, &b.standby)] {
            assert_eq!(ca.is_some(), cb.is_some(), "{name}: controller presence diverged");
            if let (Some(ca), Some(cb)) = (ca, cb) {
                assert_eq!(
                    ca.suggestion_series, cb.suggestion_series,
                    "{name}: suggestion series diverged"
                );
                assert_eq!(
                    ca.congestion_series, cb.congestion_series,
                    "{name}: congestion series diverged"
                );
            }
        }
        assert_eq!(a.receivers.len(), b.receivers.len(), "{name}");
        for (ra, rb) in a.receivers.iter().zip(&b.receivers) {
            assert_eq!(
                ra.stats.changes, rb.stats.changes,
                "{name}: receiver {:?} level changes diverged",
                ra.node
            );
        }
    }
}

/// Large-tree smoke test: an 11,111-slot balanced domain (fanout 10,
/// depth 4 — 10,000 receivers) under 1 % report churn. Incremental and
/// full twins must agree byte for byte every interval, and once the
/// domain converges the incremental path must recompute far fewer slots
/// than the full path touches.
#[test]
fn large_tree_smoke_incremental_matches_full() {
    use scenarios::largetree::{
        balanced_session_tree, churn_fraction, registry_for_leaves, reports_for_leaves,
    };

    let (tree, leaves) = balanced_session_tree(0, 10, 4);
    let trees = vec![tree];
    let spec = LayerSpec::paper_default();
    let specs: Vec<&LayerSpec> = vec![&spec];
    let registry = registry_for_leaves(0, &leaves);
    let mut reports = reports_for_leaves(0, &leaves, 3, 0);

    let mut full = AlgorithmState::new(Config::default(), 7);
    let mut inc = AlgorithmState::new(Config::default(), 7);

    let mut t = 0u64;
    for round in 1..=24u64 {
        t += 2;
        churn_fraction(&mut reports, 0.01, t);
        let inputs = inputs_at(t, &trees, &specs, &registry, &reports);
        let a = full.run(&inputs);
        let b = inc.run_incremental(&inputs);
        assert_outputs_eq!(assert, a, b, format_args!("round {round}"));
        if round >= 2 {
            assert!(b.incremental, "round {round} should be incremental");
        }
        // Past warm-up the domain has converged and only the churned 1 %
        // (plus their ancestor paths) should be recomputed.
        if round >= 14 {
            assert!(
                b.slots_recomputed * 4 < a.slots_recomputed,
                "round {round}: incremental recomputed {} slots vs {} on the full path",
                b.slots_recomputed,
                a.slots_recomputed
            );
        }
        follow_suggestions(&b, &mut reports);
    }
}
