//! Differential twin for the netsim fast path (DESIGN.md §12).
//!
//! The calendar-wheel event queue is the fast default; the binary heap it
//! replaced stays behind `SimConfig::queue` as the ordering oracle. These
//! tests pin the contract that makes that switch safe: for any topology,
//! traffic load, and fault plan, the two backends must produce **the same
//! run** — same event count, same deliveries, same structured trace, same
//! per-link counters — because both implement the identical
//! `(time, insertion-seq)` order. A divergence anywhere is a wheel bug, not
//! a tolerance to calibrate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use netsim::sim::{NetworkBuilder, SimConfig};
use netsim::trace::TraceEvent;
use netsim::{
    App, Ctx, DirLinkId, FaultPlan, GroupId, LinkConfig, LinkStats, NodeId, Packet, QueueBackend,
    SessionId, SimDuration, SimTime,
};
use proptest::prelude::*;
use scenarios::chaos::{
    self, discovery_outage, link_flap, partial_discovery_outage, random_chaos, router_crash,
};
use scenarios::largetree::{federated_media_world, FederatedMediaWorld, FederationWorldParams};
use scenarios::{run, runner, Scenario};
use topology::generators;
use traffic::TrafficModel;

/// Timer-driven CBR source multicasting from the tree root.
struct Source {
    group: GroupId,
    rate_pps: u64,
    size: u32,
    seq: u64,
}

impl App for Source {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_millis(1), 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        ctx.send_media(self.group, SessionId(0), 0, self.seq, self.size);
        self.seq += 1;
        ctx.set_timer(SimDuration(1_000_000_000 / self.rate_pps), 0);
    }
}

/// Counting receiver.
struct Sink {
    group: GroupId,
    delivered: Arc<AtomicU64>,
}

impl App for Sink {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.join(self.group);
    }
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: &Packet) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
    }
}

/// Everything observable about one finished run.
#[derive(Debug, PartialEq)]
struct Digest {
    events: u64,
    delivered: u64,
    live: usize,
    trace: Vec<TraceEvent>,
    links: Vec<LinkStats>,
}

/// Link capacities mixed so some worlds congest and some do not.
const CAPS_KBPS: [f64; 4] = [150.0, 500.0, 2_000.0, 10_000.0];

/// Build a random world from raw proptest vectors and run it for 3 s.
///
/// `parents[i]` (mod `i+1`) is node `i+1`'s parent, so any input is a valid
/// tree; `caps`/`sinks` are indexed cyclically. Each raw fault is
/// `(target, kind, from_ms, len_ms)` with kind 0 = duplex link outage,
/// 1 = node outage, 2 = permanent node crash.
#[allow(clippy::too_many_arguments)]
fn run_world(
    parents: &[usize],
    caps: &[usize],
    sinks: &[bool],
    rate_pps: u64,
    size: u32,
    faults: &[(u64, usize, u64, u64)],
    backend: QueueBackend,
) -> Digest {
    let n = parents.len() + 1;
    let mut nb = NetworkBuilder::new(SimConfig { queue: backend, ..SimConfig::default() });
    let mut nodes = vec![nb.add_node("root")];
    let mut links = Vec::new();
    for (i, &p) in parents.iter().enumerate() {
        let node = nb.add_node("n");
        let parent = nodes[p % (i + 1)];
        let cfg = LinkConfig::kbps(CAPS_KBPS[caps[i % caps.len()] % CAPS_KBPS.len()]);
        links.push(nb.add_link(parent, node, cfg));
        nodes.push(node);
    }
    let mut sim = nb.build();
    sim.trace.enable(1 << 20);
    let group = sim.create_group(nodes[0]);
    let delivered = Arc::new(AtomicU64::new(0));
    let mut any_sink = false;
    for i in 1..n {
        if sinks[(i - 1) % sinks.len()] {
            sim.add_app(nodes[i], Box::new(Sink { group, delivered: Arc::clone(&delivered) }));
            any_sink = true;
        }
    }
    if !any_sink {
        sim.add_app(nodes[n - 1], Box::new(Sink { group, delivered: Arc::clone(&delivered) }));
    }
    sim.add_app(nodes[0], Box::new(Source { group, rate_pps, size, seq: 0 }));

    let mut plan = FaultPlan::new();
    for &(target, kind, from_ms, len_ms) in faults {
        let from = SimTime::from_millis(from_ms);
        let until = SimTime::from_millis(from_ms + len_ms);
        match kind {
            0 => plan = plan.link_outage(links[target as usize % links.len()], from, until),
            1 => plan = plan.node_outage(nodes[1 + target as usize % (n - 1)], from, until),
            _ => plan = plan.node_crash(nodes[1 + target as usize % (n - 1)], from),
        }
    }
    if !plan.is_empty() {
        sim.install_faults(&plan);
    }

    sim.run_until(SimTime::from_secs(3));
    let net = sim.network();
    Digest {
        events: sim.events_processed(),
        delivered: delivered.load(Ordering::Relaxed),
        live: sim.packets_live(),
        trace: sim.trace.events().to_vec(),
        links: (0..net.link_count() as u32).map(|i| net.link(netsim::DirLinkId(i)).stats).collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The twin itself: random topology + traffic + fault plan, run under
    /// both backends — every observable must match exactly.
    #[test]
    fn wheel_matches_heap_on_random_worlds(
        parents in prop::collection::vec(0usize..1000, 3..24),
        caps in prop::collection::vec(0usize..4, 1..8),
        sinks in prop::collection::vec(any::<bool>(), 1..8),
        rate_pps in 20u64..200,
        size in 200u32..1400,
        faults in prop::collection::vec(
            (0u64..1000, 0usize..3, 200u64..2500, 100u64..1500),
            0..4,
        ),
    ) {
        let wheel = run_world(
            &parents, &caps, &sinks, rate_pps, size, &faults, QueueBackend::CalendarWheel,
        );
        let heap = run_world(
            &parents, &caps, &sinks, rate_pps, size, &faults, QueueBackend::BinaryHeap,
        );
        prop_assert_eq!(wheel.events, heap.events);
        prop_assert_eq!(wheel.delivered, heap.delivered);
        prop_assert_eq!(wheel.live, heap.live);
        prop_assert_eq!(&wheel.links, &heap.links);
        prop_assert_eq!(&wheel.trace, &heap.trace);
        // The workload was real: something got delivered unless a fault cut
        // every sink off (which links-stats equality already covers).
        prop_assert!(wheel.events > 0);
    }
}

/// Far-future events (beyond the wheel's ~52-day horizon, in its overflow
/// bucket) must obey the same `(time, seq)` total order as everything else
/// — in particular when the cursor advances to within the horizon of an
/// overflow entry while the wheel is still busy, and later events are then
/// scheduled in-wheel at or after the overflow entry's time. The old code
/// only respilled the bucket once the wheel drained, letting those later
/// events jump the queue.
#[test]
fn far_future_events_keep_total_order_against_heap_oracle() {
    use netsim::rng::RngStream;
    use netsim::{Event, EventQueue};
    let timer = |token: u64| Event::Timer { app: netsim::AppId(0), token };
    let horizon = 1u64 << 52;
    let mut rng = RngStream::derive(0xFA2F, "differential/far-future");
    let mut wheel = EventQueue::with_backend(QueueBackend::CalendarWheel);
    let mut heap = EventQueue::with_backend(QueueBackend::BinaryHeap);
    let mut now = 0u64;
    let mut token = 0u64;
    let sched = |w: &mut EventQueue, h: &mut EventQueue, t: u64, tok: u64| {
        w.schedule(SimTime(t), timer(tok));
        h.schedule(SimTime(t), timer(tok));
    };
    for _ in 0..6_000 {
        if rng.chance(0.55) || wheel.is_empty() {
            // Heavy tail past the horizon, plus exact-collision times so
            // the seq tie-break is exercised across the overflow boundary.
            let t = match rng.range_u64(0, 100) {
                0..=29 => now + rng.range_u64(0, 1 << 20),
                30..=54 => now + horizon + rng.range_u64(0, 1 << 24),
                55..=74 => now + horizon + (1 << 22), // deliberate collisions
                _ => now + rng.range_u64(0, horizon / 2),
            };
            sched(&mut wheel, &mut heap, t, token);
            token += 1;
        } else {
            let a = wheel.pop();
            let b = heap.pop();
            assert_eq!(a, b, "wheel diverged from heap oracle mid-run");
            if let Some((t, _)) = a {
                now = t.nanos();
            }
        }
    }
    loop {
        let a = wheel.pop();
        let b = heap.pop();
        assert_eq!(a, b, "wheel diverged from heap oracle during drain");
        if a.is_none() {
            break;
        }
    }
}

/// Every canned chaos plan — the full controller/receiver stack under
/// faults — produces a byte-identical fingerprint (events, drops, control
/// counters, and each receiver's full suggestion/level-change series) under
/// both backends.
#[test]
fn chaos_plans_are_backend_identical() {
    type Plan = fn(u64) -> (Scenario, SimTime);
    let plans: [(&str, Plan); 5] = [
        ("link_flap", link_flap),
        ("router_crash", router_crash),
        ("discovery_outage", discovery_outage),
        ("partial_discovery_outage", partial_discovery_outage),
        ("random_chaos", random_chaos),
    ];
    for (name, plan) in plans {
        let (s, _heal) = plan(7);
        let wheel =
            chaos::fingerprint(&run(&s.clone().with_queue_backend(QueueBackend::CalendarWheel)));
        let heap = chaos::fingerprint(&run(&s.with_queue_backend(QueueBackend::BinaryHeap)));
        assert_eq!(wheel, heap, "{name}: wheel and heap runs diverged");
    }
}

/// The rayon seed sweep returns exactly what a sequential loop over the
/// same seeds would, in input order.
#[test]
fn parallel_seed_sweep_matches_sequential() {
    let base = Scenario::new(generators::topology_b_default(4), TrafficModel::Vbr { p: 3.0 }, 1)
        .with_duration(SimDuration::from_secs(30));
    let seeds = [11u64, 12, 13, 14];
    let swept = runner::run_seeds(&base, &seeds);
    assert_eq!(swept.len(), seeds.len());
    for (i, r) in swept.iter().enumerate() {
        let solo = run(&base.clone().with_seed(seeds[i]));
        assert_eq!(
            chaos::fingerprint(r),
            chaos::fingerprint(&solo),
            "sweep result {i} (seed {}) diverged from a solo run",
            seeds[i]
        );
    }
}

// ---------------------------------------------------------------------------
// Sharded parallel runner vs the sequential oracle (DESIGN.md §17)
// ---------------------------------------------------------------------------

/// Canonically ordered trace: `(time, rendered event)` sorted, so the merged
/// per-shard streams compare against the oracle's single stream without
/// depending on the interleaving of same-instant events across shards.
fn canonical_trace(events: Vec<TraceEvent>) -> Vec<(u64, String)> {
    let mut v: Vec<(u64, String)> =
        events.into_iter().map(|e| (e.time().nanos(), format!("{e:?}"))).collect();
    v.sort();
    v
}

/// Run both halves of a federated twin and require every observable to
/// match: event totals, live packets, per-domain deliveries, per-link stats
/// through the id map, and the merged-stream trace fingerprint with shard
/// ids remapped to oracle ids. Finishes with a full SoA multicast audit of
/// every simulator.
fn assert_federated_twin_matches(w: &mut FederatedMediaWorld, until: SimTime) {
    w.run_until(until);

    assert_eq!(w.sharded.events_processed(), w.oracle.events_processed(), "event totals diverged");
    assert_eq!(w.sharded.packets_live(), w.oracle.packets_live(), "live packets diverged");
    for (d, (s, o)) in w.delivered_sharded.iter().zip(&w.delivered_oracle).enumerate() {
        assert_eq!(
            s.load(Ordering::Relaxed),
            o.load(Ordering::Relaxed),
            "domain {d} deliveries diverged"
        );
    }

    for (oid, &(shard, local)) in w.link_map.iter().enumerate() {
        let o = w.oracle.network().link(DirLinkId(oid as u32)).stats;
        let s = w.sharded.shard(shard).network().link(local).stats;
        assert_eq!(s, o, "stats diverged on oracle link {oid} (shard {shard})");
    }

    let shards = w.sharded.shard_count();
    let mut node_inv: Vec<Vec<u32>> =
        (0..shards).map(|s| vec![u32::MAX; w.sharded.shard(s).network().node_count()]).collect();
    for (oid, &(s, l)) in w.node_map.iter().enumerate() {
        node_inv[s][l.index()] = oid as u32;
    }
    let mut link_inv: Vec<Vec<u32>> =
        (0..shards).map(|s| vec![u32::MAX; w.sharded.shard(s).network().link_count()]).collect();
    for (oid, &(s, l)) in w.link_map.iter().enumerate() {
        link_inv[s][l.0 as usize] = oid as u32;
    }
    let mut merged = Vec::new();
    for s in 0..shards {
        for e in w.sharded.shard(s).trace.events() {
            merged.push(match e {
                TraceEvent::Drop { time, link, bytes, reason } => TraceEvent::Drop {
                    time,
                    link: DirLinkId(link_inv[s][link.0 as usize]),
                    bytes,
                    reason,
                },
                TraceEvent::LinkState { time, link, up } => TraceEvent::LinkState {
                    time,
                    link: DirLinkId(link_inv[s][link.0 as usize]),
                    up,
                },
                TraceEvent::NodeState { time, node, up } => {
                    TraceEvent::NodeState { time, node: NodeId(node_inv[s][node.index()]), up }
                }
            });
        }
    }
    assert_eq!(
        canonical_trace(merged),
        canonical_trace(w.oracle.trace.events()),
        "merged-stream trace fingerprint diverged from the sequential run"
    );

    for s in 0..shards {
        w.sharded.shard(s).network().multicast_audit().unwrap();
    }
    w.oracle.network().multicast_audit().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The sharded tentpole contract: for any federated world shape,
    /// handoff latency, queue backend, and fault plan, the parallel sharded
    /// run's merged per-shard event streams must fingerprint-match the
    /// sequential oracle exactly.
    #[test]
    fn sharded_matches_sequential_on_federated_worlds(
        domains in 1usize..4,
        fanout in 1usize..4,
        depth in 1usize..3,
        sink_stride in 1usize..3,
        rate_pps in 40u64..160,
        delay_ms in 5u64..40,
        heap in any::<bool>(),
        faults in prop::collection::vec(
            (0usize..1000, 0usize..4, 0usize..1000, 150u64..1200, 100u64..800),
            0..4,
        ),
    ) {
        let backend =
            if heap { QueueBackend::BinaryHeap } else { QueueBackend::CalendarWheel };
        let mut w = federated_media_world(FederationWorldParams {
            domains,
            fanout,
            depth,
            sink_stride,
            rate_pps,
            handoff_delay: SimDuration::from_millis(delay_ms),
            backend,
            trace_cap: 1 << 20,
        });
        let mut plan = FaultPlan::new();
        for &(dsel, kind, target, from_ms, len_ms) in &faults {
            let d = dsel % domains;
            let from = SimTime::from_millis(from_ms);
            let until = SimTime::from_millis(from_ms + len_ms);
            match kind {
                0 => {
                    let ls = &w.domain_links[d];
                    plan = plan.link_outage(ls[target % ls.len()], from, until);
                }
                1 => {
                    let ns = &w.domain_nodes[d];
                    plan = plan.node_outage(ns[target % ns.len()], from, until);
                }
                2 => {
                    let ns = &w.domain_nodes[d];
                    plan = plan.node_crash(ns[target % ns.len()], from);
                }
                _ => plan = plan.link_outage(w.core_links[d], from, until),
            }
        }
        if !plan.is_empty() {
            w.install_faults(&plan);
        }
        assert_federated_twin_matches(&mut w, SimTime::from_secs(2));
    }
}

/// The five chaos archetypes from the scenario zoo, re-expressed as
/// packet-level fault plans over the federated world — each must leave the
/// sharded run bit-identical to the sequential oracle, and the SoA
/// membership state must pass a full audit afterwards.
#[test]
fn federated_chaos_archetypes_match_sequential() {
    let mk = || {
        federated_media_world(FederationWorldParams {
            domains: 3,
            fanout: 3,
            depth: 2,
            sink_stride: 2,
            rate_pps: 120,
            handoff_delay: SimDuration::from_millis(15),
            backend: QueueBackend::CalendarWheel,
            trace_cap: 1 << 20,
        })
    };
    type PlanOf = fn(&FederatedMediaWorld) -> FaultPlan;
    let archetypes: [(&str, PlanOf); 5] = [
        ("link_flap", |w| {
            FaultPlan::new().link_flap(
                w.domain_links[0][0],
                SimTime::from_millis(300),
                SimDuration::from_millis(120),
                SimDuration::from_millis(400),
                5,
            )
        }),
        ("router_crash", |w| {
            FaultPlan::new()
                .node_outage(
                    w.domain_nodes[1][1],
                    SimTime::from_millis(400),
                    SimTime::from_millis(1400),
                )
                .node_crash(w.domain_nodes[0][2], SimTime::from_millis(900))
        }),
        ("border_outage", |w| {
            FaultPlan::new().node_outage(
                w.domain_nodes[2][0],
                SimTime::from_millis(500),
                SimTime::from_millis(1200),
            )
        }),
        ("core_partition", |w| {
            FaultPlan::new().node_partition(
                &w.core_links,
                SimTime::from_millis(600),
                SimTime::from_millis(1100),
            )
        }),
        ("random_chaos", |w| {
            let links: Vec<_> =
                w.core_links.iter().chain(w.domain_links.iter().flatten()).copied().collect();
            let nodes: Vec<_> = w.domain_nodes.iter().flatten().copied().collect();
            FaultPlan::new().chaos(
                7,
                &links,
                &nodes,
                SimTime::from_millis(200),
                SimTime::from_millis(2800),
                10,
            )
        }),
    ];
    for (name, plan_of) in archetypes {
        let mut w = mk();
        let plan = plan_of(&w);
        assert!(!plan.is_empty(), "{name}: archetype must inject something");
        w.install_faults(&plan);
        assert_federated_twin_matches(&mut w, SimTime::from_secs(3));
    }
}

// ---------------------------------------------------------------------------
// SoA membership bitmaps under churn (DESIGN.md §17)
// ---------------------------------------------------------------------------

/// Deterministic join/leave churner driven by a pre-baked schedule; re-joins
/// after a crash/restart cycle the way a real receiver would.
struct Churner {
    group: GroupId,
    schedule: Vec<(SimDuration, bool)>,
}

impl App for Churner {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for (i, &(at, _)) in self.schedule.iter().enumerate() {
            ctx.set_timer(at, i as u64);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let (_, join) = self.schedule[token as usize];
        if join {
            ctx.join(self.group);
        } else {
            ctx.leave(self.group);
        }
    }
    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        ctx.join(self.group);
    }
}

/// Random tree + churn schedule + crash/restart plan under one backend.
/// Returns the event total after asserting the full SoA membership audit.
fn run_churn_world(
    parents: &[usize],
    ops: &[(usize, u64, bool)],
    faults: &[(usize, u64, u64, bool)],
    backend: QueueBackend,
) -> u64 {
    let n = parents.len() + 1;
    let mut nb = NetworkBuilder::new(SimConfig { queue: backend, ..SimConfig::default() });
    let mut nodes = vec![nb.add_node("root")];
    for (i, &p) in parents.iter().enumerate() {
        let node = nb.add_node("n");
        nb.add_link(nodes[p % (i + 1)], node, LinkConfig::kbps(2_000.0));
        nodes.push(node);
    }
    let mut sim = nb.build();
    let group = sim.create_group(nodes[0]);
    let mut scheds: Vec<Vec<(SimDuration, bool)>> = vec![Vec::new(); n];
    for &(sel, at_ms, join) in ops {
        scheds[1 + sel % (n - 1)].push((SimDuration::from_millis(at_ms), join));
    }
    for i in 1..n {
        sim.add_app(nodes[i], Box::new(Churner { group, schedule: scheds[i].clone() }));
    }
    sim.add_app(nodes[0], Box::new(Source { group, rate_pps: 50, size: 1000, seq: 0 }));
    let mut plan = FaultPlan::new();
    for &(sel, from_ms, len_ms, permanent) in faults {
        let node = nodes[1 + sel % (n - 1)];
        let from = SimTime::from_millis(from_ms);
        if permanent {
            plan = plan.node_crash(node, from);
        } else {
            plan = plan.node_outage(node, from, SimTime::from_millis(from_ms + len_ms));
        }
    }
    if !plan.is_empty() {
        sim.install_faults(&plan);
    }
    sim.run_until(SimTime::from_secs(3));
    sim.network().multicast_audit().expect("bitmaps diverged from sorted member vectors");
    sim.events_processed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite contract: the dense membership bitmaps must stay
    /// bit-for-bit consistent with the sorted member vectors under
    /// arbitrary join/leave/crash/restart churn — `multicast_audit`
    /// recomputes every invariant from first principles — and the churned
    /// run must stay identical across queue backends.
    #[test]
    fn membership_bitmaps_survive_churn(
        parents in prop::collection::vec(0usize..1000, 3..16),
        ops in prop::collection::vec((0usize..1000, 0u64..2900, any::<bool>()), 0..40),
        faults in prop::collection::vec(
            (0usize..1000, 200u64..2500, 100u64..1500, any::<bool>()),
            0..4,
        ),
    ) {
        let wheel = run_churn_world(&parents, &ops, &faults, QueueBackend::CalendarWheel);
        let heap = run_churn_world(&parents, &ops, &faults, QueueBackend::BinaryHeap);
        prop_assert_eq!(wheel, heap);
    }
}
