//! Topology B: many sessions competing over one shared bottleneck.
//!
//! ```text
//! cargo run --release --example competing_sessions [n_sessions]
//! ```
//!
//! The paper's inter-session fairness setup: `n` single-receiver sessions
//! share one link sized for exactly 4 layers (480 kb/s) each. Prints the
//! per-session bandwidth shares, the Jain index, and the relative deviation
//! from the 4-layer optimum.

use netsim::{SimDuration, SimTime};
use scenarios::{run, Scenario};
use topology::generators;
use traffic::TrafficModel;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(6);
    let scenario =
        Scenario::new(generators::topology_b_default(n), TrafficModel::Vbr { p: 3.0 }, 7)
            .with_duration(SimDuration::from_secs(600));

    println!("running Topology B ({n} sessions, VBR P=3, 600 s)...");
    let result = run(&scenario);

    let half = SimTime::from_secs(300);
    let end = SimTime::from_secs(600);
    println!(
        "\n{:<8} {:>8} {:>8} {:>14} {:>12} {:>12}",
        "session", "optimal", "final", "bytes (MB)", "rel. dev.", "mean loss"
    );
    println!("{}", "-".repeat(68));
    for r in &result.receivers {
        println!(
            "{:<8} {:>8} {:>8} {:>14.2} {:>12.4} {:>12.4}",
            r.session,
            r.optimal,
            r.stats.final_level(),
            r.stats.bytes_total as f64 / 1e6,
            r.relative_deviation(half, end).unwrap_or(f64::NAN),
            r.mean_loss(half, end),
        );
    }

    let bytes: Vec<f64> = result.session_bytes().iter().map(|&(_, b)| b as f64).collect();
    println!("\nJain fairness index over session bytes: {:.4}", metrics::jain_index(&bytes));
    println!(
        "mean relative deviation (2nd half):     {:.4}",
        result.mean_relative_deviation(half, end).expect("scenario has receivers")
    );
    println!(
        "\nEvery session should sit near 4 layers with near-equal byte totals —\n\
         the paper's claim that TopoSense \"imposes fairness among competing\n\
         sessions irrespective of the time intervals\"."
    );
}
