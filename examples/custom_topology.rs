//! Building and controlling a custom topology through the public API.
//!
//! ```text
//! cargo run --release --example custom_topology [seed]
//! ```
//!
//! Generates a random tiered (Fig. 2-style) distribution tree — national /
//! regional / institutional ISPs with capacities decaying toward the edge —
//! runs TopoSense over it, and compares every receiver against the oracle.
//! Demonstrates the `TopoSpec` builder, the random generators, the scenario
//! runner, and the oracle in one place.

use baselines::oracle;
use netsim::{RngStream, SimDuration, SimTime};
use scenarios::{run, Scenario};
use topology::generators::{self, TieredParams};
use traffic::{LayerSpec, TrafficModel};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(11);

    // A 3-tier random tree: ~8 kb/s top links decaying by 4x per tier, so
    // the last mile is the bottleneck, as in the paper's tiered Internet.
    let mut rng = RngStream::derive(seed, "example/tiered");
    let params = TieredParams { tiers: 3, fanout: (2, 3), top_kbps: 8000.0, capacity_decay: 4.0 };
    let spec = generators::tiered(&mut rng, params);
    println!(
        "generated tiered topology: {} nodes, {} links, {} receivers",
        spec.nodes.len(),
        spec.links.len(),
        spec.receivers().len()
    );

    // Ground truth before running anything: what should everyone get?
    let optima = oracle::optimal_levels(&spec, &LayerSpec::paper_default(), 1.0);

    let scenario =
        Scenario::new(spec, TrafficModel::Cbr, seed).with_duration(SimDuration::from_secs(400));
    let result = run(&scenario);

    let start = SimTime::from_secs(200);
    let end = SimTime::from_secs(400);
    println!(
        "\n{:<10} {:>8} {:>12} {:>12} {:>12}",
        "receiver", "optimal", "mean level", "rel. dev.", "mean loss"
    );
    println!("{}", "-".repeat(58));
    let mut total_dev = 0.0;
    for r in &result.receivers {
        let dev = r.relative_deviation(start, end).unwrap_or(f64::NAN);
        total_dev += dev;
        println!(
            "{:<10} {:>8} {:>12.2} {:>12.4} {:>12.4}",
            format!("node{}", r.spec_node),
            r.optimal,
            r.level_series().mean(start, end),
            dev,
            r.mean_loss(start, end),
        );
    }
    println!(
        "\nmean relative deviation: {:.4} over {} receivers",
        total_dev / result.receivers.len() as f64,
        result.receivers.len()
    );
    let _ = optima; // the runner already used the same oracle internally
}
