//! TopoSense vs. the receiver-driven baseline vs. a fixed strawman on the
//! Fig. 1 motivating topology.
//!
//! ```text
//! cargo run --release --example baseline_comparison
//! ```
//!
//! The Fig. 1 story: receivers at nodes 3 and 4 share a constrained subtree
//! (optima 1 and 2 layers); the receiver at node 5 sits in a disjoint
//! subtree (optimum 4). A topology-blind scheme lets node 4's exploration
//! hurt node 3; a fixed over-subscriber is worst of all.

use baselines::rlm::RlmParams;
use baselines::tfrc::TfrcParams;
use netsim::{SimDuration, SimTime};
use scenarios::{run, ControlMode, Scenario};
use topology::generators;
use traffic::TrafficModel;

fn main() {
    let duration = SimDuration::from_secs(600);
    let modes: Vec<(&str, ControlMode)> = vec![
        ("TopoSense", ControlMode::TopoSense { staleness: SimDuration::ZERO }),
        ("RLM", ControlMode::Rlm(RlmParams::default())),
        ("TFRC-like", ControlMode::Tfrc(TfrcParams::default())),
        ("Fixed(3)", ControlMode::Fixed(3)),
    ];

    println!(
        "{:<12} {:>6} {:>8} {:>12} {:>12} {:>12}",
        "control", "node", "optimal", "mean level", "mean loss", "MB recv"
    );
    println!("{}", "-".repeat(68));
    for (name, mode) in modes {
        let scenario = Scenario::new(generators::figure1(), TrafficModel::Cbr, 5)
            .with_control(mode)
            .with_duration(duration);
        let result = run(&scenario);
        let start = SimTime::from_secs(60);
        let end = SimTime::ZERO + duration;
        for r in &result.receivers {
            println!(
                "{:<12} {:>6} {:>8} {:>12.2} {:>12.4} {:>12.2}",
                name,
                format!("n{}", r.set + 3),
                r.optimal,
                r.level_series().mean(start, end),
                r.mean_loss(start, end),
                r.stats.bytes_total as f64 / 1e6,
            );
        }
        println!();
    }
    println!(
        "Expected shape: TopoSense holds every receiver near its optimum with low\n\
         loss; RLM under-subscribes n4 and lets its experiments leak loss onto n3;\n\
         the TFRC-like receiver hunts around layer boundaries (the paper's §VI\n\
         argument); Fixed(3) over-subscribes the slow subtree and loses forever."
    );
}
