//! Topology A: one session, heterogeneous receiver sets.
//!
//! ```text
//! cargo run --release --example heterogeneous_receivers
//! ```
//!
//! The paper's first evaluation topology — two sets of receivers behind
//! 150 kb/s and 600 kb/s bottlenecks — exercised through the high-level
//! scenario runner. Shows per-set convergence to the oracle optimum (2 and
//! 4 layers) and intra-set fairness.

use metrics::StepSeries;
use netsim::{SimDuration, SimTime};
use scenarios::{run, ControlMode, Scenario};
use topology::generators;
use traffic::TrafficModel;

fn main() {
    let scenario = Scenario::new(
        generators::topology_a_default(4), // 4 receivers per set
        TrafficModel::Vbr { p: 3.0 },
        2026,
    )
    .with_control(ControlMode::TopoSense { staleness: SimDuration::ZERO })
    .with_duration(SimDuration::from_secs(600));

    println!("running Topology A (4 receivers/set, VBR P=3, 600 s)...");
    let result = run(&scenario);

    let half = SimTime::from_secs(300);
    let end = SimTime::from_secs(600);
    println!(
        "\n{:<6} {:>8} {:>14} {:>12} {:>12} {:>10}",
        "set", "optimal", "mean lvl(late)", "rel. dev.", "mean loss", "changes"
    );
    println!("{}", "-".repeat(68));
    for set in [0u32, 1] {
        let members: Vec<_> = result.receivers.iter().filter(|r| r.set == set).collect();
        let mean_level: f64 = members
            .iter()
            .map(|m| StepSeries::from_changes(&m.stats.changes).mean(half, end))
            .sum::<f64>()
            / members.len() as f64;
        let dev: f64 = members
            .iter()
            .map(|m| m.relative_deviation(half, end).unwrap_or(f64::NAN))
            .sum::<f64>()
            / members.len() as f64;
        let loss: f64 =
            members.iter().map(|m| m.mean_loss(half, end)).sum::<f64>() / members.len() as f64;
        let changes: usize = members.iter().map(|m| m.stats.changes.len()).max().unwrap();
        println!(
            "{:<6} {:>8} {:>14.2} {:>12.4} {:>12.4} {:>10}",
            set, members[0].optimal, mean_level, dev, loss, changes
        );
    }

    let ctrl = result.controller.expect("TopoSense mode has a controller");
    println!("\ncontroller: {} intervals, {} suggestions", ctrl.intervals, ctrl.suggestions_sent);
    println!("total queue drops across all links: {}", result.total_drops);
    println!("simulator events: {}", result.events);
    println!(
        "\nEach set should sit near its optimum (2 and 4 layers) with matching\n\
         levels inside a set — the intra-session fairness of the paper's §IV."
    );
}
