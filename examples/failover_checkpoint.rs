//! Replication, checkpoint/restore, and failover in one sitting.
//!
//! ```text
//! cargo run --release --example failover_checkpoint [ckpt.json]
//! ```
//!
//! A three-replica [`Cluster`] runs the five-stage pipeline over a small
//! session tree. Mid-stream we capture a `toposense.checkpoint.v1` file
//! from the primary, crash the primary, and let the promoted replica
//! finish the run; a state restored from the checkpoint file replays the
//! tail and must land on byte-identical suggestions. With a path argument
//! the checkpoint is written there (CI feeds it to `inspect snapshot`);
//! without one it goes to a temp file.

use netsim::{
    AppId, DirLinkId, GroupId, GroupSnapshot, NodeId, RngStream, SessionId, SimDuration, SimTime,
};
use topology::discovery::{LinkView, TopologyView};
use topology::SessionTree;
use toposense::algorithm::{AlgorithmInputs, AlgorithmState, ReceiverReport};
use toposense::replication::Cluster;
use toposense::{Config, Snapshot};
use traffic::LayerSpec;

/// A 9-node session tree: root 0, two routers, six leaf receivers.
fn demo_tree() -> SessionTree {
    let parents = [0u32, 0, 1, 1, 2, 2, 3, 3];
    let mut links = Vec::new();
    let mut active = Vec::new();
    for (i, &p) in parents.iter().enumerate() {
        let id = DirLinkId(i as u32);
        links.push(LinkView { id, from: NodeId(p), to: NodeId(i as u32 + 1) });
        active.push(id);
    }
    let members: Vec<NodeId> = (0..=parents.len() as u32).map(NodeId).collect();
    let view = TopologyView {
        time: SimTime::ZERO,
        links,
        groups: vec![GroupSnapshot {
            group: GroupId(0),
            root: NodeId(0),
            active_links: active,
            member_nodes: members,
        }],
    };
    SessionTree::build(&view, SessionId(0), &[GroupId(0)]).unwrap()
}

fn main() {
    let cfg = Config::default();
    let tree = demo_tree();
    let leaves: Vec<NodeId> = tree.tree().leaves().filter(|&n| n != tree.tree().root()).collect();
    let spec = LayerSpec::paper_default();
    let trees = [tree];
    let specs = [&spec];
    let registry: Vec<(AppId, NodeId, SessionId)> = leaves
        .iter()
        .enumerate()
        .map(|(i, &node)| (AppId(100 + i as u32), node, SessionId(0)))
        .collect();
    let mut reports: Vec<ReceiverReport> = leaves
        .iter()
        .enumerate()
        .map(|(i, &node)| ReceiverReport {
            receiver: AppId(100 + i as u32),
            node,
            session: SessionId(0),
            level: 3,
            received: if i % 2 == 0 { 100 } else { 92 },
            lost: if i % 2 == 0 { 0 } else { 8 },
            bytes: 30_000,
        })
        .collect();

    let mut cluster = Cluster::new(cfg, 7, 3);
    let mut rng = RngStream::derive(7, "failover-checkpoint/churn");
    let mut snapshot: Option<Snapshot> = None;
    let rounds = 12u64;
    let checkpoint_round = 6u64;
    let crash_round = 8u64;
    println!(
        "three replicas, {rounds} intervals, checkpoint @{checkpoint_round}, crash @{crash_round}:"
    );
    for round in 1..=rounds {
        // Jitter the reports a little so the pipeline has work to do.
        for r in reports.iter_mut() {
            if rng.f64() < 0.3 {
                r.bytes = 15_000 + (rng.f64() * 30_000.0) as u64;
            }
        }
        let inputs = AlgorithmInputs {
            now: SimTime::from_secs(2 * round),
            interval: SimDuration::from_secs(2),
            trees: &trees,
            specs: &specs,
            registry: &registry,
            reports: &reports,
        };
        if round == crash_round {
            cluster.crash_primary();
            println!("  @{round}: primary crashed, replica {} leads", cluster.primary());
        }
        let out = cluster.tick(&inputs);
        let levels: Vec<u8> = out.outputs.suggestions.iter().map(|s| s.level).collect();
        assert!(out.newly_quarantined.is_empty(), "healthy replicas must agree");
        println!(
            "  @{round}: primary={} suggestions={:?} fingerprint={:#018x}",
            cluster.primary(),
            levels,
            out.fingerprint
        );
        if round == checkpoint_round {
            // Non-invalidating capture: the primary's next interval stays
            // on the incremental path.
            snapshot = Some(cluster.replica(cluster.primary()).state.checkpoint());
        }
    }

    // The checkpoint file: canonical JSON, validated on load.
    let snapshot = snapshot.expect("checkpoint round ran");
    let path = std::env::args().nth(1).map(std::path::PathBuf::from).unwrap_or_else(|| {
        std::env::temp_dir().join(format!("toposense-ckpt-{}.json", std::process::id()))
    });
    snapshot.save(&path).expect("write checkpoint");
    let loaded = Snapshot::load(&path).expect("re-load checkpoint");
    assert_eq!(loaded, snapshot, "disk round-trip must be identity");
    println!("checkpoint: {} ({} bytes)", path.display(), snapshot.encode().len());
    print!("{}", snapshot.summary());

    // Restore and replay the tail against the surviving replica's state:
    // the restored twin must produce the same suggestions the cluster did
    // after the crash (zero re-learning — DESIGN.md §14).
    let restored = AlgorithmState::restore(cfg, &loaded).expect("config fingerprints match");
    assert_eq!(restored.runs(), checkpoint_round, "restore resumes at the cut");
    println!(
        "restored state resumes at run {} — byte-exact twin of the checkpoint",
        restored.runs()
    );
}
