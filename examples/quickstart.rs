//! Quickstart: the smallest complete TopoSense deployment.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! One layered source, one receiver behind a 250 kb/s bottleneck, one
//! controller. The oracle says 3 layers (224 kb/s) fit; we watch the
//! controller steer the receiver there.
//!
//! Set `QUICKSTART_CHAOS=1` to instead run the canned bottleneck
//! link-flap fault plan (DESIGN.md §9) and print its deterministic
//! fingerprint — CI runs this twice and diffs the outputs.
//!
//! Set `QUICKSTART_TELEMETRY=<path>` to record the controller's decision
//! audit trail (one JSONL record per pipeline stage per interval, plus
//! counters and stage timers) to `<path>`. Telemetry is a pure observer:
//! stdout stays byte-identical to a run without it — CI diffs the two.
//!
//! Set `QUICKSTART_RECORDER=1` to additionally arm the simulator's
//! structured trace ring. Same pure-observer contract, same CI diff: the
//! recorder reports on stderr only and stdout stays byte-identical.
//!
//! In chaos mode, a violated recovery bound writes a `blackbox.v1` dump
//! (flight-recorder window + profile counters) to `blackbox.json` — or to
//! `$QUICKSTART_BLACKBOX` — before exiting non-zero, so CI failures carry
//! their own forensics.

use netsim::sim::{NetworkBuilder, SimConfig};
use netsim::{GroupId, LinkConfig, SessionId, SimDuration, SimTime};
use std::sync::Arc;
use telemetry::{Record, Telemetry};
use toposense::{Config, Controller, Receiver};
use traffic::session::SessionDef;
use traffic::{LayerSpec, LayeredSource, SessionCatalog, TrafficModel};

fn main() {
    if std::env::var_os("QUICKSTART_CHAOS").is_some() {
        chaos_mode();
        return;
    }
    let telemetry = match std::env::var_os("QUICKSTART_TELEMETRY") {
        Some(path) => Telemetry::jsonl_file(path).expect("open telemetry sink"),
        None => Telemetry::disabled(),
    };
    telemetry.emit(&Record::Run {
        label: "quickstart".to_string(),
        seed: 42,
        duration_ns: SimDuration::from_secs(300).nanos(),
    });
    // 1. A three-node network: source -- router -- receiver, with the
    //    paper's 200 ms links; the last hop is the 250 kb/s bottleneck.
    let mut b = NetworkBuilder::new(SimConfig { seed: 42, ..SimConfig::default() });
    let src = b.add_node("source");
    let mid = b.add_node("router");
    let rcv = b.add_node("receiver");
    b.add_link(src, mid, LinkConfig::kbps(10_000.0));
    b.add_link(mid, rcv, LinkConfig::kbps(250.0));
    let mut sim = b.build();
    let recorder = std::env::var_os("QUICKSTART_RECORDER").is_some();
    if recorder {
        sim.trace.enable(4096);
    }

    // 2. Advertise one session: 6 cumulative layers, base 32 kb/s,
    //    doubling — one multicast group per layer, rooted at the source.
    let spec = LayerSpec::paper_default();
    let groups: Vec<GroupId> = (0..spec.layer_count()).map(|_| sim.create_group(src)).collect();
    let def = SessionDef { id: SessionId(0), source: src, groups, spec };
    let mut catalog = SessionCatalog::new();
    catalog.add(def.clone());
    let catalog = catalog.share();

    // 3. Agents: controller (stationed at the source node, like the paper),
    //    the source, and the receiver.
    let cfg = Config::default();
    let (controller, ctrl_stats) = Controller::new(Arc::clone(&catalog), cfg, SimDuration::ZERO, 1);
    let controller = controller.with_telemetry(telemetry.clone());
    sim.add_app(src, Box::new(controller));
    sim.add_app(src, Box::new(LayeredSource::new(def.clone(), TrafficModel::Cbr, 2)));
    let (receiver, rcv_stats) = Receiver::new(def, src, cfg, 3, "r0");
    let rx_app = sim.add_app(rcv, Box::new(receiver));

    // 4. Run five simulated minutes. The closing telemetry mirrors the
    //    scenario harness: apply-side trace hops (closing each causal
    //    chain) and the simulator profile, then counters and timers.
    sim.run_until(SimTime::from_secs(300));
    for &(when, cause, _old, new) in &rcv_stats.lock().unwrap().applies {
        telemetry.emit(&Record::Trace {
            seq: 0,
            t_ns: when.nanos(),
            phase: "apply".to_string(),
            session: 0,
            receiver: rx_app.0 as u64,
            cause,
            level: new as u64,
        });
    }
    for (name, value) in sim.profile().counter_entries() {
        telemetry.set(&format!("netsim.profile.{name}"), value);
    }
    telemetry.set("netsim.events", sim.events_processed());
    telemetry.emit_counters(sim.now().nanos());
    telemetry.emit_timers();
    telemetry.flush();

    // 5. Inspect.
    let r = rcv_stats.lock().unwrap();
    let c = ctrl_stats.lock().unwrap();
    println!("subscription changes:");
    for &(t, old, new) in &r.changes {
        println!("  {:>7.1}s  {} -> {} layers", t.as_secs_f64(), old, new);
    }
    println!("final level:            {} (optimal for 250 kb/s: 3)", r.final_level());
    println!("bytes received:         {}", r.bytes_total);
    println!("suggestions obeyed:     {}", r.suggestions_received);
    println!("controller intervals:   {}", c.intervals);
    println!("events processed:       {}", sim.events_processed());
    if recorder {
        // Stderr only: stdout must stay byte-identical to a plain run.
        let p = sim.profile();
        eprintln!(
            "recorder: {} trace events ({} dropped), {} sim events, slab hwm {}, queue hwm {}",
            sim.trace.events().len(),
            sim.trace.dropped(),
            p.events_total,
            p.slab_hwm,
            p.pending_events_hwm,
        );
        eprintln!(
            "flight:   {} control-plane occurrences ({} rolled off)",
            c.flight.len(),
            c.flight.dropped(),
        );
    }
    assert!((2..=4).contains(&r.final_level()), "expected convergence near 3 layers");
}

/// `QUICKSTART_CHAOS=1`: run the canned bottleneck link-flap plan on
/// Topology A and print its fingerprint. Every line is a pure function of
/// the seed, so two invocations must produce byte-identical output.
fn chaos_mode() {
    let (scenario, heal_at) = scenarios::chaos::link_flap(42);
    let result = scenarios::run(&scenario);
    print!("{}", scenarios::chaos::fingerprint(&result));
    if let Err(e) = scenarios::chaos::verify_recovery(&result, &scenario.cfg, heal_at, 10) {
        let path = std::env::var("QUICKSTART_BLACKBOX").unwrap_or_else(|_| "blackbox.json".into());
        let bb = scenarios::chaos::blackbox(
            &result,
            &scenario.cfg,
            scenario.seed,
            "chaos_recovery_failure",
            "quickstart-link-flap",
        );
        bb.write(&path).expect("write blackbox dump");
        eprintln!("recovery bound violated: {e}");
        eprintln!("black box written to {path}");
        std::process::exit(1);
    }
    println!("recovery bound held: all receivers within 1 layer of oracle after heal");
}
