//! Offline stand-in for the `rayon` crate.
//!
//! Implements the subset this workspace uses — `par_iter()` /
//! `into_par_iter()` + `map` + `collect::<Vec<_>>()` — on top of
//! `std::thread::scope`. Work is split into one contiguous chunk per
//! available core; results are reassembled in input order, so `collect`
//! is deterministic regardless of scheduling.
//!
//! Unlike real rayon there is no work-stealing pool: each `collect`
//! spawns short-lived scoped threads. That is fine for this workspace,
//! where parallel regions are coarse (whole simulations or whole
//! per-session stage passes).

use std::num::NonZeroUsize;

pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

/// The worker width a parallel region gets on this machine — the shim's
/// analogue of `rayon::current_num_threads()`. There is no persistent pool:
/// each `collect` spawns up to this many scoped threads. Benchmarks record
/// this next to any scaling ratio, because a "parallel" sweep on a 1-core
/// box is sequential and its numbers must not be read as speedup.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

fn worker_count(items: usize) -> usize {
    if items <= 1 {
        return 1;
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1).min(items)
}

/// Apply `f` to every element of `items` across scoped threads, preserving
/// input order in the output.
fn parallel_map_vec<T, R, F>(mut items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = worker_count(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    while !items.is_empty() {
        let tail = items.split_off(items.len().min(chunk));
        chunks.push(std::mem::replace(&mut items, tail));
    }
    let f = &f;
    let per_chunk: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles.into_iter().map(|h| h.join().expect("rayon-shim worker panicked")).collect()
    });
    per_chunk.into_iter().flatten().collect()
}

/// The `rayon::iter::ParallelIterator` subset used by the workspace.
///
/// `drive` is the eager executor: adapters run their base serially (it is
/// cheap — just collecting references) and parallelize their own step.
pub trait ParallelIterator: Sized {
    type Item: Send;

    #[doc(hidden)]
    fn drive(self) -> Vec<Self::Item>;

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

pub trait FromParallelIterator<T: Send>: Sized {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        iter.drive()
    }
}

pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        parallel_map_vec(self.base.drive(), self.f)
    }
}

pub struct SliceParIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for SliceParIter<'data, T> {
    type Item = &'data T;

    fn drive(self) -> Vec<&'data T> {
        self.slice.iter().collect()
    }
}

pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        self.items
    }
}

pub trait IntoParallelRefIterator<'data> {
    type Iter: ParallelIterator;
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = SliceParIter<'data, T>;
    fn par_iter(&'data self) -> Self::Iter {
        SliceParIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Iter = SliceParIter<'data, T>;
    fn par_iter(&'data self) -> Self::Iter {
        SliceParIter { slice: self }
    }
}

pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;
    fn into_par_iter(self) -> Self::Iter {
        VecParIter { items: self }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        let squared: Vec<u64> = xs.into_par_iter().map(|x| x * x).collect();
        assert_eq!(squared, (0..1000).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x + 1).collect();
        assert!(none.is_empty());
        let one: Vec<u32> = vec![41].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![42]);
    }
}
