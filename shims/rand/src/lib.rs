//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! crate provides the small API subset the simulator actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and [`Rng`] with
//! `gen::<f64>()` / `gen_range(..)` over `u64` and `f64` ranges.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a different
//! bit stream than the real `StdRng` (ChaCha12), which is fine: nothing in
//! the workspace depends on specific values, only on determinism and
//! reasonable statistical quality.

use std::ops::Range;

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling support for `Rng::gen` (subset of `rand`'s `Standard`
/// distribution).
pub trait Sample: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range sampling for `Rng::gen_range` (subset of `rand::distributions::uniform`).
pub trait SampleRange {
    type Output;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "empty u64 range");
        let span = self.end - self.start;
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // the simulator's span sizes and costs no rejection loop.
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        self.start + hi
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> usize {
        (self.start as u64..self.end as u64).sample_from(rng) as usize
    }
}

/// The `rand::Rng` subset used by the workspace.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** — deterministic, fast, and good enough for simulation.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl StdRng {
        /// Expose the raw xoshiro256** state for checkpointing.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a previously captured [`Self::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_hold_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
