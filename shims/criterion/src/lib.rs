//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro/API subset the workspace's `harness = false` benches
//! use, backed by a simple warmup + median-of-samples timer. Statistical
//! rigor is intentionally lighter than real criterion; results are meant
//! for coarse regression tracking and the committed `BENCH_baseline.json`
//! snapshot.
//!
//! Env knobs:
//! * `CRITERION_JSON=<path>` — append one JSON object per benchmark to
//!   `<path>` (JSON-lines), for building baseline snapshots.
//! * `CRITERION_SAMPLES=<n>` — override the per-bench sample count.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Target wall time for one measured sample; iterations are batched to
/// reach it so short benchmarks are not dominated by timer overhead.
const SAMPLE_TARGET: Duration = Duration::from_millis(25);
const WARMUP_TARGET: Duration = Duration::from_millis(100);
const DEFAULT_SAMPLES: usize = 15;

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by `iter`.
    median_ns: f64,
    samples: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            std::hint::black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= WARMUP_TARGET || warm_iters >= 10_000 {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        let batch = ((SAMPLE_TARGET.as_nanos() as f64 / est_ns).round() as u64).max(1);

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = per_iter[per_iter.len() / 2];
    }
}

struct Record {
    group: Option<String>,
    id: String,
    median_ns: f64,
    throughput: Option<Throughput>,
}

fn fmt_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn env_samples() -> usize {
    std::env::var("CRITERION_SAMPLES").ok().and_then(|s| s.parse().ok()).unwrap_or(DEFAULT_SAMPLES)
}

#[derive(Default)]
pub struct Criterion {
    records: Vec<Record>,
}

impl Criterion {
    pub fn from_env() -> Self {
        Criterion::default()
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            throughput: None,
            sample_size: env_samples(),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { median_ns: 0.0, samples: env_samples() };
        f(&mut b);
        self.report(Record { group: None, id: id.id, median_ns: b.median_ns, throughput: None });
        self
    }

    fn report(&mut self, r: Record) {
        let full = match &r.group {
            Some(g) => format!("{g}/{}", r.id),
            None => r.id.clone(),
        };
        let mut line = format!("{full:<48} time: [{}]", fmt_time(r.median_ns));
        if let Some(Throughput::Elements(n)) = r.throughput {
            let per_sec = n as f64 * 1e9 / r.median_ns;
            line.push_str(&format!("  thrpt: [{per_sec:.0} elem/s]"));
        }
        println!("{line}");
        self.records.push(r);
    }

    /// Print the run footer and, if `CRITERION_JSON` is set, append one
    /// JSON object per benchmark to that file.
    pub fn final_summary(&self) {
        println!("\n{} benchmarks measured", self.records.len());
        let Ok(path) = std::env::var("CRITERION_JSON") else { return };
        if path.is_empty() {
            return;
        }
        let mut out = String::new();
        for r in &self.records {
            let full = match &r.group {
                Some(g) => format!("{g}/{}", r.id),
                None => r.id.clone(),
            };
            out.push_str(&format!("{{\"bench\":\"{}\",\"median_ns\":{:.1}}}\n", full, r.median_ns));
        }
        let file = std::fs::OpenOptions::new().create(true).append(true).open(&path);
        match file {
            Ok(mut f) => {
                let _ = f.write_all(out.as_bytes());
            }
            Err(e) => eprintln!("CRITERION_JSON: cannot open {path}: {e}"),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // An explicit per-group sample size still yields to the env override.
        if std::env::var("CRITERION_SAMPLES").is_err() {
            self.sample_size = n.max(2);
        }
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { median_ns: 0.0, samples: self.sample_size };
        f(&mut b, input);
        self.parent.report(Record {
            group: Some(self.name.clone()),
            id: id.id,
            median_ns: b.median_ns,
            throughput: self.throughput,
        });
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { median_ns: 0.0, samples: self.sample_size };
        f(&mut b);
        self.parent.report(Record {
            group: Some(self.name.clone()),
            id: id.id,
            median_ns: b.median_ns,
            throughput: self.throughput,
        });
        self
    }

    pub fn finish(self) {}
}

/// Re-export so `use criterion::black_box` keeps working alongside
/// `std::hint::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_env();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { median_ns: 0.0, samples: 3 };
        b.iter(|| std::hint::black_box((0..100u64).sum::<u64>()));
        assert!(b.median_ns > 0.0);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("schedule_pop", 1000).id, "schedule_pop/1000");
        assert_eq!(BenchmarkId::from_parameter(64).id, "64");
    }
}
