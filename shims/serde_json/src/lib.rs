//! Offline stand-in for the `serde_json` crate.
//!
//! The workspace emits JSON (the `fig*`/`ablations` binaries dump result
//! tables, the telemetry layer writes JSONL audit records) and — since the
//! telemetry work — reads it back: this shim provides a [`Value`] tree,
//! the [`json!`] object/array macro, [`to_string`]/[`to_string_pretty`],
//! and a small recursive-descent [`from_str`] parser plus the usual
//! `Value` accessors (`get`, `as_u64`, ...). There is no `Serialize`
//! derive; conversion into `Value` goes through the [`ToJson`] trait,
//! which takes `&self` so the macro never moves fields out of borrowed
//! structs (matching real `json!`, which serializes by reference).

use std::fmt::Write as _;

/// A JSON document. Object keys keep insertion order (like serde_json with
/// `preserve_order`), which keeps the binaries' output stable.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// Conversion into a [`Value`] by reference; the shim's substitute for
/// `serde::Serialize`.
pub trait ToJson {
    fn to_json(&self) -> Value;
}

/// Shim substitute for `serde_json::to_value` (always succeeds).
pub fn to_value<T: ToJson + ?Sized>(v: &T) -> Value {
    v.to_json()
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! to_json_int {
    ($($t:ty => $variant:ident as $as:ty),* $(,)?) => {
        $(impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::$variant(*self as $as)
            }
        })*
    };
}

to_json_int!(
    i8 => Int as i64, i16 => Int as i64, i32 => Int as i64, i64 => Int as i64,
    isize => Int as i64,
    u8 => UInt as u64, u16 => UInt as u64, u32 => UInt as u64, u64 => UInt as u64,
    usize => UInt as u64,
);

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

/// Build a [`Value`] from an object/array literal or any [`ToJson`]
/// expression, e.g. `json!({"knob": r.knob, "rows": rows})`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::to_value(&$elem)),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), $crate::to_value(&$val))),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Error type shared by the (infallible) serializers and the parser, so
/// `.unwrap()` call sites keep compiling against the real serde_json
/// signature while parse failures still carry a human-readable message.
#[derive(Debug)]
pub struct Error {
    msg: String,
    offset: usize,
}

impl Error {
    fn at(offset: usize, msg: impl Into<String>) -> Self {
        Error { msg: msg.into(), offset }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Parse a JSON document. Numbers containing `.`, `e`, or `E` become
/// [`Value::Float`]; other numbers become [`Value::Int`] when negative and
/// [`Value::UInt`] otherwise — the same split the serializer writes, so a
/// parse → serialize round trip is textually stable.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::at(p.pos, "trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(self.pos, format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::at(self.pos, format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::at(self.pos, format!("unexpected character '{}'", b as char))),
            None => Err(Error::at(self.pos, "unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::at(self.pos, "expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::at(self.pos, "expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::at(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::at(self.pos, "unterminated escape sequence"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: must be followed by \uDCxx.
                                if self.peek() != Some(b'\\') {
                                    return Err(Error::at(self.pos, "lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::at(self.pos, "invalid low surrogate"));
                                }
                                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                                    .ok_or_else(|| Error::at(self.pos, "invalid surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(Error::at(self.pos, "lone low surrogate"));
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::at(self.pos, "invalid \\u escape"))?
                            };
                            out.push(ch);
                        }
                        other => {
                            return Err(Error::at(
                                self.pos,
                                format!("invalid escape '\\{}'", other as char),
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar (input is &str, so
                    // slicing at char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::at(self.pos, "invalid UTF-8"))?;
                    let ch = s.chars().next().unwrap();
                    if (ch as u32) < 0x20 {
                        return Err(Error::at(self.pos, "unescaped control character"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::at(self.pos, "truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::at(self.pos, "invalid \\u escape"))?;
        let v =
            u32::from_str_radix(s, 16).map_err(|_| Error::at(self.pos, "invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'+' | b'-' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::at(start, format!("invalid number '{text}'")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::at(start, format!("invalid number '{text}'")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::at(start, format!("invalid number '{text}'")))
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: usize, pretty: bool) {
    let (nl, pad, pad_in) = if pretty {
        ("\n", "  ".repeat(indent), "  ".repeat(indent + 1))
    } else {
        ("", String::new(), String::new())
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            // JSON has no NaN/Inf; serde_json emits null for them too.
            if f.is_finite() {
                let _ = write!(out, "{f}");
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, val, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let v = value.to_json();
    let mut out = String::new();
    write_value(&mut out, &v, 0, true);
    Ok(out)
}

pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let v = value.to_json();
    let mut out = String::new();
    write_value(&mut out, &v, 0, false);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_macro_keeps_order_and_borrows() {
        struct Row {
            knob: String,
            dev: f64,
        }
        let r = Row { knob: "interval=2".into(), dev: 0.25 };
        let rr = &r;
        // Field access through a reference must not move.
        let v = json!({"knob": rr.knob, "dev": rr.dev, "n": 3usize});
        assert_eq!(to_string(&v).unwrap(), r#"{"knob":"interval=2","dev":0.25,"n":3}"#);
        assert_eq!(r.knob, "interval=2");
    }

    #[test]
    fn nested_values_and_tuples() {
        let series: Vec<Vec<(u64, u8)>> = vec![vec![(0, 1), (2, 3)]];
        let v = json!({"levels": series, "flag": true, "none": Option::<f64>::None});
        assert_eq!(to_string(&v).unwrap(), r#"{"levels":[[[0,1],[2,3]]],"flag":true,"none":null}"#);
    }

    #[test]
    fn pretty_output_shape() {
        let v = json!({"a": 1u32, "b": [1u32, 2u32]});
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let v = json!({"x": f64::NAN});
        assert_eq!(to_string(&v).unwrap(), r#"{"x":null}"#);
    }

    #[test]
    fn strings_are_escaped() {
        let v = json!({"s": "a\"b\\c\nd"});
        assert_eq!(to_string(&v).unwrap(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
    }

    #[test]
    fn parse_round_trips_compact_output() {
        let v = json!({
            "knob": "interval=2",
            "dev": 0.25,
            "n": 3usize,
            "neg": -7i64,
            "rows": vec![(0u64, 1u8), (2u64, 3u8)],
            "none": Option::<f64>::None,
            "flag": true,
        });
        let text = to_string(&v).unwrap();
        let back = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(to_string(&back).unwrap(), text);
    }

    #[test]
    fn parse_accessors() {
        let v = from_str(r#"{"a": 1, "b": [1.5, "x"], "c": null}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(1));
        assert_eq!(v.get("a").and_then(Value::as_f64), Some(1.0));
        let b = v.get("b").and_then(Value::as_array).unwrap();
        assert_eq!(b[0].as_f64(), Some(1.5));
        assert_eq!(b[1].as_str(), Some("x"));
        assert!(v.get("c").unwrap().is_null());
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parse_string_escapes_and_unicode() {
        let v = from_str(r#""a\"b\\c\nd é 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd \u{e9} \u{1F600}"));
    }

    #[test]
    fn parse_pretty_whitespace_and_nesting() {
        let b = json!([1u32, json!({"c": false})]);
        let orig = json!({"a": 1u32, "b": b});
        let pretty = to_string_pretty(&orig).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), orig);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated", "{'a':1}"] {
            assert!(from_str(bad).is_err(), "expected parse failure for {bad:?}");
        }
        let err = from_str("[1,]").unwrap_err();
        assert!(err.to_string().contains("at byte"));
    }

    #[test]
    fn parse_number_variants() {
        assert_eq!(from_str("18446744073709551615").unwrap(), Value::UInt(u64::MAX));
        assert_eq!(from_str("-9223372036854775808").unwrap(), Value::Int(i64::MIN));
        assert_eq!(from_str("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(from_str("-2.5E-1").unwrap(), Value::Float(-0.25));
    }
}
