//! Offline stand-in for the `serde_json` crate.
//!
//! The workspace only *emits* JSON (the `fig*`/`ablations` binaries dump
//! result tables for external plotting), so this shim provides exactly
//! that: a [`Value`] tree, the [`json!`] object/array macro, and
//! [`to_string_pretty`]. There is no parser and no `Serialize` derive;
//! conversion into `Value` goes through the [`ToJson`] trait, which takes
//! `&self` so the macro never moves fields out of borrowed structs
//! (matching real `json!`, which serializes by reference).

use std::fmt::Write as _;

/// A JSON document. Object keys keep insertion order (like serde_json with
/// `preserve_order`), which keeps the binaries' output stable.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// Conversion into a [`Value`] by reference; the shim's substitute for
/// `serde::Serialize`.
pub trait ToJson {
    fn to_json(&self) -> Value;
}

/// Shim substitute for `serde_json::to_value` (always succeeds).
pub fn to_value<T: ToJson + ?Sized>(v: &T) -> Value {
    v.to_json()
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! to_json_int {
    ($($t:ty => $variant:ident as $as:ty),* $(,)?) => {
        $(impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::$variant(*self as $as)
            }
        })*
    };
}

to_json_int!(
    i8 => Int as i64, i16 => Int as i64, i32 => Int as i64, i64 => Int as i64,
    isize => Int as i64,
    u8 => UInt as u64, u16 => UInt as u64, u32 => UInt as u64, u64 => UInt as u64,
    usize => UInt as u64,
);

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

/// Build a [`Value`] from an object/array literal or any [`ToJson`]
/// expression, e.g. `json!({"knob": r.knob, "rows": rows})`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::to_value(&$elem)),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), $crate::to_value(&$val))),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Error type for the (infallible) serializers, so `.unwrap()` call sites
/// keep compiling against the real serde_json signature.
#[derive(Debug)]
pub struct Error(());

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: usize, pretty: bool) {
    let (nl, pad, pad_in) = if pretty {
        ("\n", "  ".repeat(indent), "  ".repeat(indent + 1))
    } else {
        ("", String::new(), String::new())
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            // JSON has no NaN/Inf; serde_json emits null for them too.
            if f.is_finite() {
                let _ = write!(out, "{f}");
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, val, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let v = value.to_json();
    let mut out = String::new();
    write_value(&mut out, &v, 0, true);
    Ok(out)
}

pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let v = value.to_json();
    let mut out = String::new();
    write_value(&mut out, &v, 0, false);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_macro_keeps_order_and_borrows() {
        struct Row {
            knob: String,
            dev: f64,
        }
        let r = Row { knob: "interval=2".into(), dev: 0.25 };
        let rr = &r;
        // Field access through a reference must not move.
        let v = json!({"knob": rr.knob, "dev": rr.dev, "n": 3usize});
        assert_eq!(to_string(&v).unwrap(), r#"{"knob":"interval=2","dev":0.25,"n":3}"#);
        assert_eq!(r.knob, "interval=2");
    }

    #[test]
    fn nested_values_and_tuples() {
        let series: Vec<Vec<(u64, u8)>> = vec![vec![(0, 1), (2, 3)]];
        let v = json!({"levels": series, "flag": true, "none": Option::<f64>::None});
        assert_eq!(to_string(&v).unwrap(), r#"{"levels":[[[0,1],[2,3]]],"flag":true,"none":null}"#);
    }

    #[test]
    fn pretty_output_shape() {
        let v = json!({"a": 1u32, "b": [1u32, 2u32]});
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let v = json!({"x": f64::NAN});
        assert_eq!(to_string(&v).unwrap(), r#"{"x":null}"#);
    }

    #[test]
    fn strings_are_escaped() {
        let v = json!({"s": "a\"b\\c\nd"});
        assert_eq!(to_string(&v).unwrap(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
    }
}
