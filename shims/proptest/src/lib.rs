//! Offline stand-in for the `proptest` crate.
//!
//! Supports the API subset the workspace's property tests use: the
//! `proptest!` macro (with an optional `#![proptest_config(..)]` header),
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, range and tuple
//! strategies, `any::<T>()`, and `prop::collection::vec`.
//!
//! Differences from real proptest, acceptable for this workspace:
//! * no shrinking — failures report the case's generated inputs verbatim;
//! * cases are generated from a fixed per-test seed, so runs are fully
//!   deterministic (no `PROPTEST_CASES`/persistence machinery).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

#[derive(Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic xoshiro256** source for case generation.
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seed from the test's name and the attempt number, so every test has
    /// its own reproducible stream.
    pub fn for_case(test_name: &str, attempt: u32) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut sm = h ^ ((attempt as u64) << 32 | 0x9e37);
        TestRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Value generator; the shim's substitute for `proptest::strategy::Strategy`
/// (generation only — no shrink trees).
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                #[allow(clippy::unnecessary_cast)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                #[allow(clippy::unnecessary_cast)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64) - (start as u64) + 1;
                    start + rng.below(span) as $t
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng), self.3.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy> Strategy for (A, B, C, D, E) {
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
            self.4.generate(rng),
        )
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Mirror of real proptest's `prop::` prelude alias.
pub mod prop {
    pub use super::collection;
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr);) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __attempts: u32 = 0;
            let mut __done: u32 = 0;
            while __done < __cfg.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __cfg.cases.saturating_mul(20).saturating_add(100),
                    "proptest '{}': too many prop_assume! rejections",
                    stringify!($name),
                );
                let mut __rng = $crate::TestRng::for_case(stringify!($name), __attempts);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = ::std::format!(
                    concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                    $(&$arg),+
                );
                let __outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __done += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest '{}' failed on case {} (attempt {}): {}\ninputs:{}",
                            stringify!($name), __done, __attempts, __msg, __inputs,
                        );
                    }
                }
            }
        }
        $crate::__proptest_tests!(($cfg); $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = ($left, $right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in 1u8..=6, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=6).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vectors_respect_size(xs in prop::collection::vec(0u64..100, 2..9)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 9);
            for &x in &xs {
                prop_assert!(x < 100, "element {} out of range", x);
            }
        }

        #[test]
        fn tuples_and_any(pair in (0u64..600, 0u8..=6), flag in any::<bool>()) {
            prop_assert!(pair.0 < 600);
            prop_assert_eq!(pair.1.min(6), pair.1);
            // Exercise prop_assume! with a condition that sometimes holds.
            prop_assume!(flag || pair.1 < 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_header_is_accepted(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec(0u64..1000, 1..50);
        let a = strat.generate(&mut TestRng::for_case("det", 3));
        let b = strat.generate(&mut TestRng::for_case("det", 3));
        assert_eq!(a, b);
        let c = strat.generate(&mut TestRng::for_case("det", 4));
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "proptest 'always_fails' failed")]
    fn failures_panic_with_inputs() {
        // No #[test] on the inner fn: it is invoked manually below.
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x is small: {}", x);
            }
        }
        always_fails();
    }
}
