//! # toposense — topology-aware layered-multicast congestion control
//!
//! The paper's primary contribution: an application-layer algorithm that
//! combines multicast **tree topology** (from a discovery tool) with
//! receiver **loss reports** to prescribe per-receiver layer-subscription
//! levels inside one administrative domain.
//!
//! The algorithm runs in a per-domain [`controller::Controller`] agent in
//! five stages (paper §III, Fig. 4), each implemented as a pure, separately
//! tested function in [`stages`]:
//!
//! 1. [`stages::congestion`] — label every session-tree node CONGESTED /
//!    NOT-CONGESTED from leaf loss rates, bottom-up, then propagate parental
//!    congestion top-down.
//! 2. [`stages::capacity`] — estimate shared-link capacities from observed
//!    throughput when *all* sessions crossing a link are lossy; creep the
//!    estimate upward each interval; periodically reset to ∞ and re-learn.
//! 3. [`stages::bottleneck`] — propagate minimum link capacity from the
//!    source down, then take the per-subtree max back up.
//! 4. [`stages::sharing`] — split shared-link capacity between sessions in
//!    proportion to each session's maximum possible demand `x_i`
//!    (`share_i = x_i · B / Σx_j`).
//! 5. [`stages::subscription`] — the Table I decision table: compute demand
//!    bottom-up with parental override and per-layer backoff, then allocate
//!    supply top-down.
//!
//! [`receiver::Receiver`] is the cooperating receiver agent: it subscribes
//! to layers, accounts loss RTCP-style, reports periodically, obeys
//! suggestions, and falls back to unilateral decisions when suggestions stop
//! arriving (lossy control channel).

pub mod algorithm;
pub mod checkpoint;
pub mod config;
pub mod controller;
pub mod decision;
pub mod federation;
pub mod history;
pub mod messages;
pub mod receiver;
pub mod replication;
pub mod stages;
pub mod sync;

pub use algorithm::{AlgorithmInputs, AlgorithmOutputs, AlgorithmState, ReceiverReport};
pub use checkpoint::Snapshot;
pub use config::Config;
pub use controller::{Controller, ControllerShared};
pub use decision::{Action, NodeKind, SupplyWindow};
pub use federation::{BorderSummary, Domain, Federation, FederationInterval};
pub use history::{BwEquality, CongestionHistory};
pub use receiver::{Receiver, ReceiverShared};
pub use replication::{fingerprint_outputs, AckVerdict, Cluster, ReplicaTracker};
pub use sync::lock_or_recover;
