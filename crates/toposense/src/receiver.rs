//! The cooperating receiver agent.
//!
//! A receiver subscribes to the base layer at startup, registers with its
//! domain's controller, accounts loss per layer from sequence gaps (the
//! RTCP model), reports periodically, and obeys the controller's
//! subscription suggestions. Because suggestion packets can be lost, a
//! receiver that has heard nothing for a while "can make unilateral
//! decisions": it sheds a layer on sustained high loss.
//!
//! # Failure hardening (DESIGN.md §9)
//!
//! * Registration is retried with exponential backoff until the controller
//!   answers (ACK or suggestion) — a lost `Register` no longer orphans the
//!   receiver forever.
//! * [`RegisterAck`] and [`Suggestion::from`] both carry the active
//!   controller's node, so receivers follow a warm-standby takeover without
//!   any extra protocol.
//! * Consecutive all-empty report windows on a level that used to carry
//!   traffic ("dead air" — the upstream router crashed and lost our graft)
//!   trigger an idempotent re-join of every subscribed group.
//! * An orderly departure sends [`Deregister`] so the controller's registry
//!   does not leak until the silence deadline.
//! * `on_restart` re-joins, re-registers, and re-arms every timer after the
//!   hosting node crashes and comes back.

use crate::config::Config;
use crate::messages::{cause_id, Deregister, Register, RegisterAck, Report, Suggestion};
use crate::sync::lock_or_recover;
use netsim::{App, ControlBody, Ctx, NodeId, RngStream, SeqTracker, SimDuration, SimTime};
use std::sync::{Arc, Mutex};
use traffic::session::SessionDef;

/// One subscription change: `(when, old level, new level)`.
pub type LevelChange = (SimTime, u8, u8);

/// Observable receiver state, shared with the harness for metrics.
#[derive(Clone, Debug, Default)]
pub struct ReceiverShared {
    /// Every subscription change, including the initial join.
    pub changes: Vec<LevelChange>,
    /// `(window end, loss rate)` per report window.
    pub loss_series: Vec<(SimTime, f64)>,
    /// `(window end, level)` per report window.
    pub level_series: Vec<(SimTime, u8)>,
    /// Total media bytes received.
    pub bytes_total: u64,
    /// Suggestions received (and applied or confirmed).
    pub suggestions_received: u64,
    /// Times the receiver acted without the controller.
    pub unilateral_actions: u64,
    /// Reports sent.
    pub reports_sent: u64,
    /// Registration attempts sent (first try and backoff retries).
    pub registers_sent: u64,
    /// Dead-air repairs: re-joins of all subscribed groups after consecutive
    /// empty report windows.
    pub rejoins: u64,
    /// Suggestion-driven level changes with their causal-trace ids:
    /// `(when, cause id of the suggestion, old level, new level)`. Kept
    /// separate from `changes` (which is fingerprint-pinned) so the trace
    /// plumbing never perturbs existing determinism checks.
    pub applies: Vec<(SimTime, u64, u8, u8)>,
}

impl ReceiverShared {
    /// Subscription level at the end of the run.
    pub fn final_level(&self) -> u8 {
        self.changes.last().map(|&(_, _, new)| new).unwrap_or(0)
    }
}

/// Handle the harness keeps to read stats after the run.
pub type ReceiverHandle = Arc<Mutex<ReceiverShared>>;

const TOKEN_REPORT: u64 = 1;
const TOKEN_REREGISTER: u64 = 2;
const TOKEN_ACTIVATE: u64 = 3;
const TOKEN_STOP: u64 = 4;

/// The receiver application.
pub struct Receiver {
    def: SessionDef,
    controller: NodeId,
    cfg: Config,
    level: u8,
    trackers: Vec<SeqTracker>,
    last_suggestion_at: Option<SimTime>,
    high_loss_windows: u32,
    /// Until this instant, ignore suggestions that would *raise* the level:
    /// right after a unilateral drop the controller's view lags, and its
    /// in-flight suggestions still reflect the pre-drop state.
    raise_guard_until: SimTime,
    /// Lifetime window for churn scenarios: join at `start_at`, depart at
    /// `stop_at` (None = whole run).
    start_at: SimTime,
    stop_at: Option<SimTime>,
    active: bool,
    /// The controller confirmed our registration (or sent a suggestion,
    /// which proves the same thing). Stops the re-register retries.
    acked: bool,
    /// Current re-registration retry delay (doubles per attempt).
    reregister_backoff: SimDuration,
    /// Consecutive report windows with neither packets nor gaps while
    /// subscribed — dead air, the signature of a lost upstream graft.
    empty_windows: u32,
    /// We have seen media at least once, so an empty window is anomalous
    /// rather than a session that has not started.
    had_traffic: bool,
    rng: RngStream,
    shared: ReceiverHandle,
}

impl Receiver {
    /// Create a receiver for `def`, reporting to the controller at
    /// `controller`. Returns the app and the stats handle.
    pub fn new(
        def: SessionDef,
        controller: NodeId,
        cfg: Config,
        seed: u64,
        label: &str,
    ) -> (Self, ReceiverHandle) {
        cfg.validate();
        let shared: ReceiverHandle = Arc::default();
        let trackers = (0..def.spec.layer_count()).map(|_| SeqTracker::new()).collect();
        let r = Receiver {
            def,
            controller,
            cfg,
            level: 0,
            trackers,
            last_suggestion_at: None,
            high_loss_windows: 0,
            raise_guard_until: SimTime::ZERO,
            start_at: SimTime::ZERO,
            stop_at: None,
            active: false,
            acked: false,
            reregister_backoff: cfg.register_backoff_base,
            empty_windows: 0,
            had_traffic: false,
            rng: RngStream::derive(seed, &format!("receiver/{label}")),
            shared: Arc::clone(&shared),
        };
        (r, shared)
    }

    /// Current subscription level.
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Delay joining until `start_at` and depart at `stop_at` — the
    /// receiver-churn support the paper's long-lived-session architecture
    /// needs (recipients "register themselves with the controller agent"
    /// whenever they appear).
    pub fn with_lifetime(mut self, start_at: SimTime, stop_at: Option<SimTime>) -> Self {
        if let Some(stop) = stop_at {
            assert!(stop > start_at, "stop must come after start");
        }
        self.start_at = start_at;
        self.stop_at = stop_at;
        self
    }

    fn activate(&mut self, ctx: &mut Ctx<'_>) {
        self.active = true;
        self.acked = false;
        self.reregister_backoff = self.cfg.register_backoff_base;
        // Subscribe the base layer and announce ourselves.
        self.set_level(ctx, 1);
        self.register(ctx);
        // Jitter the report phase so co-located receivers do not report in
        // lockstep.
        let jitter = self.rng.range_f64(0.0, self.cfg.report_interval.as_secs_f64());
        ctx.set_timer(SimDuration::from_secs_f64(jitter), TOKEN_REPORT);
        ctx.set_timer(self.reregister_backoff, TOKEN_REREGISTER);
    }

    fn set_level(&mut self, ctx: &mut Ctx<'_>, new: u8) {
        let new = new.clamp(0, self.def.spec.max_level());
        if new == self.level {
            return;
        }
        let old = self.level;
        if new > old {
            for layer in old..new {
                ctx.join(self.def.group_of_layer(layer));
                // Forget any stale counts from a previous subscription of
                // this layer: they cover a window when we were not listening
                // and would surface as phantom loss in the next report.
                let _ = self.trackers[layer as usize].take_window();
                self.trackers[layer as usize].resync();
            }
        } else {
            for layer in (new..old).rev() {
                ctx.leave(self.def.group_of_layer(layer));
                let _ = self.trackers[layer as usize].take_window();
                self.trackers[layer as usize].resync();
            }
        }
        self.level = new;
        lock_or_recover(&self.shared).changes.push((ctx.now(), old, new));
    }

    fn send_report(&mut self, ctx: &mut Ctx<'_>) {
        // Aggregate the window across currently subscribed layers.
        let mut received = 0;
        let mut lost = 0;
        let mut bytes = 0;
        for layer in 0..self.level {
            let w = self.trackers[layer as usize].take_window();
            received += w.received;
            lost += w.lost;
            bytes += w.bytes;
        }
        // Mint the causal-trace id from this report's sequence number; the
        // controller echoes it on the suggestion this report produces.
        let seq = lock_or_recover(&self.shared).reports_sent;
        let report = Report {
            receiver: ctx.app_id(),
            node: ctx.node_id(),
            session: self.def.id,
            level: self.level,
            received,
            lost,
            bytes,
            time: ctx.now(),
            cause: cause_id(ctx.app_id().0 as u64, self.def.id.0 as u64, seq),
        };
        let loss = report.loss_rate();
        {
            let mut s = lock_or_recover(&self.shared);
            s.loss_series.push((ctx.now(), loss));
            s.level_series.push((ctx.now(), self.level));
            s.bytes_total += bytes;
            s.reports_sent += 1;
        }
        let body: ControlBody = Arc::new(report);
        ctx.send_control(self.controller, self.cfg.report_size, body);

        // Dead-air repair: windows with neither packets nor gaps on a level
        // that used to carry traffic mean the upstream graft is gone (a
        // router crash wipes group state). Re-joining is idempotent — on a
        // healthy tree it grafts nothing and costs no wire traffic.
        if received > 0 {
            self.had_traffic = true;
            self.empty_windows = 0;
        } else if lost == 0 && self.had_traffic && self.level >= 1 {
            self.empty_windows += 1;
            if self.empty_windows >= self.cfg.dead_air_windows {
                for layer in 0..self.level {
                    ctx.join(self.def.group_of_layer(layer));
                    // The gap we slept through was already reported as dead
                    // air; re-baseline instead of booking it as loss.
                    self.trackers[layer as usize].resync();
                }
                self.empty_windows = 0;
                lock_or_recover(&self.shared).rejoins += 1;
            }
        } else {
            self.empty_windows = 0;
        }

        // Unilateral fallback: sustained high loss with a silent controller.
        let silent = match self.last_suggestion_at {
            None => false, // never heard from it; keep registering instead
            Some(t) => ctx.now().since(t) > self.cfg.unilateral_timeout,
        };
        if loss > self.cfg.unilateral_drop_loss {
            self.high_loss_windows += 1;
        } else {
            self.high_loss_windows = 0;
        }
        if silent && self.high_loss_windows >= 2 && self.level > 1 {
            // Shed one layer, or straight to the goodput-supported level
            // when the overload is severe (a saturated bottleneck also
            // starves the suggestion channel, so waiting for the controller
            // can take a while).
            let goodput = bytes as f64 * 8.0 / self.cfg.report_interval.as_secs_f64();
            let fit = self.def.spec.level_fitting(goodput);
            let new = if loss > 0.4 { fit } else { self.level - 1 }.clamp(1, self.level - 1);
            self.set_level(ctx, new);
            self.high_loss_windows = 0;
            self.raise_guard_until = ctx.now() + self.cfg.interval * 2;
            lock_or_recover(&self.shared).unilateral_actions += 1;
        }
    }

    fn register(&mut self, ctx: &mut Ctx<'_>) {
        let body: ControlBody = Arc::new(Register {
            receiver: ctx.app_id(),
            node: ctx.node_id(),
            session: self.def.id,
            level: self.level,
        });
        ctx.send_control(self.controller, self.cfg.register_size, body);
        lock_or_recover(&self.shared).registers_sent += 1;
    }

    fn deregister(&mut self, ctx: &mut Ctx<'_>) {
        let body: ControlBody =
            Arc::new(Deregister { receiver: ctx.app_id(), session: self.def.id, time: ctx.now() });
        ctx.send_control(self.controller, self.cfg.deregister_size, body);
    }
}

impl App for Receiver {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.start_at > ctx.now() {
            ctx.set_timer(self.start_at.since(ctx.now()), TOKEN_ACTIVATE);
        } else {
            self.activate(ctx);
        }
        if let Some(stop) = self.stop_at {
            ctx.set_timer(stop.since(ctx.now()), TOKEN_STOP);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: &netsim::Packet) {
        if !self.active {
            return;
        }
        if let Some((session, layer, seq)) = packet.media_fields() {
            if session == self.def.id && layer < self.level {
                self.trackers[layer as usize].on_packet(seq, packet.size);
            }
            return;
        }
        if let Some(a) = packet.control_as::<RegisterAck>() {
            if a.receiver == ctx.app_id() {
                // Confirmed — stop the retries, and follow whichever
                // controller answered (a standby re-ACKs after takeover).
                self.acked = true;
                self.controller = a.controller;
            }
            return;
        }
        if let Some(s) = packet.control_as::<Suggestion>() {
            if s.receiver == ctx.app_id() && s.session == self.def.id {
                self.last_suggestion_at = Some(ctx.now());
                // A suggestion proves the controller knows us, even if the
                // explicit ACK was lost; report to whoever steered us last.
                self.acked = true;
                self.controller = s.from;
                lock_or_recover(&self.shared).suggestions_received += 1;
                let level = s.level;
                let cause = s.cause;
                if level > self.level && ctx.now() < self.raise_guard_until {
                    // A raise computed before our unilateral drop: skip it,
                    // the next interval's suggestion will reflect reality.
                    return;
                }
                let old = self.level;
                self.set_level(ctx, level);
                if self.level != old {
                    lock_or_recover(&self.shared).applies.push((ctx.now(), cause, old, self.level));
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TOKEN_REPORT if self.active => {
                self.send_report(ctx);
                ctx.set_timer(self.cfg.report_interval, TOKEN_REPORT);
            }
            TOKEN_REREGISTER if self.active => {
                // Keep announcing, with exponential backoff, until the
                // controller talks back (ACK or suggestion).
                if !self.acked && self.last_suggestion_at.is_none() {
                    self.register(ctx);
                    self.reregister_backoff =
                        (self.reregister_backoff * 2).min(self.cfg.register_backoff_max);
                    ctx.set_timer(self.reregister_backoff, TOKEN_REREGISTER);
                }
            }
            TOKEN_ACTIVATE => self.activate(ctx),
            TOKEN_STOP => {
                // Depart: tell the controller (so its registry entry dies
                // now, not at the eviction deadline) and leave every group.
                if self.active {
                    self.deregister(ctx);
                }
                self.set_level(ctx, 0);
                self.active = false;
            }
            // Timers for a departed/not-yet-active receiver.
            TOKEN_REPORT | TOKEN_REREGISTER => {}
            other => unreachable!("unknown receiver timer {other}"),
        }
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        if self.stop_at.is_some_and(|stop| now >= stop) {
            // The crash outlived our lifetime. The swallowed STOP timer
            // never ran: depart now (leave() is a no-op for the wiped
            // membership, but the level history should read 0).
            if self.active {
                self.deregister(ctx);
            }
            self.set_level(ctx, 0);
            self.active = false;
            return;
        }
        if let Some(stop) = self.stop_at {
            ctx.set_timer(stop.since(now), TOKEN_STOP);
        }
        if !self.active {
            if self.start_at > now {
                ctx.set_timer(self.start_at.since(now), TOKEN_ACTIVATE);
            } else {
                // The crash swallowed the ACTIVATE timer: join late.
                self.activate(ctx);
            }
            return;
        }
        // Active through the crash: the router lost our subscriptions, so
        // re-join every layer with clean loss windows, and re-announce —
        // the controller may have evicted us during the outage.
        for layer in 0..self.level {
            ctx.join(self.def.group_of_layer(layer));
            let _ = self.trackers[layer as usize].take_window();
            self.trackers[layer as usize].resync();
        }
        self.empty_windows = 0;
        self.had_traffic = false;
        self.acked = false;
        self.reregister_backoff = self.cfg.register_backoff_base;
        self.register(ctx);
        let jitter = self.rng.range_f64(0.0, self.cfg.report_interval.as_secs_f64());
        ctx.set_timer(SimDuration::from_secs_f64(jitter), TOKEN_REPORT);
        ctx.set_timer(self.reregister_backoff, TOKEN_REREGISTER);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::sim::{NetworkBuilder, SimConfig};
    use netsim::{GroupId, LinkConfig, Packet, SessionId};
    use traffic::LayerSpec;

    struct ControlCollector {
        registers: Arc<Mutex<Vec<Register>>>,
        reports: Arc<Mutex<Vec<Report>>>,
    }
    impl App for ControlCollector {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, p: &Packet) {
            if let Some(r) = p.control_as::<Register>() {
                self.registers.lock().unwrap().push(r.clone());
            }
            if let Some(r) = p.control_as::<Report>() {
                self.reports.lock().unwrap().push(r.clone());
            }
        }
    }

    fn setup() -> (netsim::Simulator, SessionDef, NodeId, NodeId) {
        let mut b = NetworkBuilder::new(SimConfig::default());
        let src = b.add_node("src");
        let rcv = b.add_node("rcv");
        b.add_link(src, rcv, LinkConfig::kbps(10_000.0));
        let mut sim = b.build();
        let groups: Vec<GroupId> = (0..6).map(|_| sim.create_group(src)).collect();
        let def =
            SessionDef { id: SessionId(0), source: src, groups, spec: LayerSpec::paper_default() };
        (sim, def, src, rcv)
    }

    #[test]
    fn registers_and_reports() {
        let (mut sim, def, src, rcv) = setup();
        let registers = Arc::new(Mutex::new(Vec::new()));
        let reports = Arc::new(Mutex::new(Vec::new()));
        sim.add_app(
            src,
            Box::new(ControlCollector {
                registers: Arc::clone(&registers),
                reports: Arc::clone(&reports),
            }),
        );
        let (r, shared) = Receiver::new(def, src, Config::default(), 5, "r0");
        sim.add_app(rcv, Box::new(r));
        sim.run_until(SimTime::from_secs(10));
        assert!(!registers.lock().unwrap().is_empty(), "must register");
        let reps = reports.lock().unwrap();
        assert!(reps.len() >= 8, "got only {} reports", reps.len());
        assert!(reps.iter().all(|r| r.level == 1));
        let s = shared.lock().unwrap();
        assert_eq!(s.final_level(), 1);
        assert_eq!(s.changes.len(), 1, "only the initial join");
    }

    #[test]
    fn obeys_suggestions() {
        let (mut sim, def, src, rcv) = setup();

        struct Suggester {
            target: Option<netsim::AppId>,
            dest_node: NodeId,
            session: SessionId,
        }
        impl App for Suggester {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(netsim::SimDuration::from_secs(3), 0);
                ctx.set_timer(netsim::SimDuration::from_secs(6), 1);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
                let level = if token == 0 { 4 } else { 2 };
                let body: ControlBody = Arc::new(Suggestion {
                    receiver: self.target.unwrap(),
                    session: self.session,
                    level,
                    time: ctx.now(),
                    from: ctx.node_id(),
                    cause: 42,
                });
                ctx.send_control(self.dest_node, 64, body);
            }
        }

        let (r, shared) = Receiver::new(def.clone(), src, Config::default(), 5, "r0");
        // Receiver app id will be 1 (suggester added first gets 0).
        let mut suggester = Suggester { target: None, dest_node: rcv, session: def.id };
        suggester.target = Some(netsim::AppId(1));
        sim.add_app(src, Box::new(suggester));
        sim.add_app(rcv, Box::new(r));
        sim.run_until(SimTime::from_secs(10));
        let s = shared.lock().unwrap();
        assert_eq!(s.suggestions_received, 2);
        // 0 -> 1 (join), 1 -> 4, 4 -> 2.
        let levels: Vec<(u8, u8)> = s.changes.iter().map(|&(_, o, n)| (o, n)).collect();
        assert_eq!(levels, vec![(0, 1), (1, 4), (4, 2)]);
        assert_eq!(s.final_level(), 2);
        // Both applied suggestions carry the suggester's cause id.
        let applies: Vec<(u64, u8, u8)> = s.applies.iter().map(|&(_, c, o, n)| (c, o, n)).collect();
        assert_eq!(applies, vec![(42, 1, 4), (42, 4, 2)]);
    }

    #[test]
    fn lifetime_bounds_all_activity() {
        let (mut sim, def, src, rcv) = setup();
        let registers = Arc::new(Mutex::new(Vec::new()));
        let reports = Arc::new(Mutex::new(Vec::new()));
        sim.add_app(
            src,
            Box::new(ControlCollector {
                registers: Arc::clone(&registers),
                reports: Arc::clone(&reports),
            }),
        );
        let (r, shared) = Receiver::new(def, src, Config::default(), 5, "r0");
        let r = r.with_lifetime(SimTime::from_secs(5), Some(SimTime::from_secs(12)));
        sim.add_app(rcv, Box::new(r));
        sim.run_until(SimTime::from_secs(30));
        let s = shared.lock().unwrap();
        // Active only inside [5, 12): joined at 5, left at 12.
        assert_eq!(s.changes.first().unwrap().0, SimTime::from_secs(5));
        assert_eq!(s.final_level(), 0);
        let reps = reports.lock().unwrap();
        assert!(!reps.is_empty());
        assert!(reps.iter().all(|r| {
            r.time >= SimTime::from_secs(5) && r.time <= SimTime::from_millis(12_100)
        }));
    }

    #[test]
    fn ignores_suggestions_for_other_receivers() {
        let (mut sim, def, src, rcv) = setup();
        struct WrongSuggester {
            dest_node: NodeId,
            session: SessionId,
        }
        impl App for WrongSuggester {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(netsim::SimDuration::from_secs(3), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
                let body: ControlBody = Arc::new(Suggestion {
                    receiver: netsim::AppId(999),
                    session: self.session,
                    level: 5,
                    time: ctx.now(),
                    from: ctx.node_id(),
                    cause: 0,
                });
                ctx.send_control(self.dest_node, 64, body);
            }
        }
        sim.add_app(src, Box::new(WrongSuggester { dest_node: rcv, session: def.id }));
        let (r, shared) = Receiver::new(def, src, Config::default(), 5, "r0");
        sim.add_app(rcv, Box::new(r));
        sim.run_until(SimTime::from_secs(10));
        let s = shared.lock().unwrap();
        assert_eq!(s.suggestions_received, 0);
        assert_eq!(s.final_level(), 1);
    }

    /// With nobody answering, registration retries back off exponentially:
    /// attempts at 0, 4, 12 and 28 s land inside a 30 s run.
    #[test]
    fn reregisters_with_exponential_backoff_while_unacked() {
        let (mut sim, def, src, rcv) = setup();
        // No app at src: every registration vanishes unanswered.
        let (r, shared) = Receiver::new(def, src, Config::default(), 5, "r0");
        sim.add_app(rcv, Box::new(r));
        sim.run_until(SimTime::from_secs(30));
        let s = shared.lock().unwrap();
        assert_eq!(s.registers_sent, 4, "0 s, 4 s, 12 s, 28 s");
    }

    /// An acknowledged registration stops the retries after one attempt.
    #[test]
    fn ack_stops_the_register_retries() {
        struct Acker;
        impl App for Acker {
            fn on_packet(&mut self, ctx: &mut Ctx<'_>, p: &Packet) {
                if let Some(r) = p.control_as::<Register>() {
                    let body: ControlBody = Arc::new(RegisterAck {
                        receiver: r.receiver,
                        controller: ctx.node_id(),
                        time: ctx.now(),
                    });
                    ctx.send_control(r.node, 32, body);
                }
            }
        }
        let (mut sim, def, src, rcv) = setup();
        sim.add_app(src, Box::new(Acker));
        let (r, shared) = Receiver::new(def, src, Config::default(), 5, "r0");
        sim.add_app(rcv, Box::new(r));
        sim.run_until(SimTime::from_secs(30));
        let s = shared.lock().unwrap();
        assert_eq!(s.registers_sent, 1, "the ACK must stop the retries");
    }

    /// A router crash between source and receiver wipes the graft; the
    /// receiver must notice the dead air and repair it by re-joining.
    #[test]
    fn dead_air_after_router_crash_triggers_rejoin() {
        let mut b = NetworkBuilder::new(SimConfig::default());
        let src = b.add_node("src");
        let mid = b.add_node("mid");
        let rcv = b.add_node("rcv");
        b.add_link(src, mid, LinkConfig::kbps(10_000.0));
        b.add_link(mid, rcv, LinkConfig::kbps(10_000.0));
        let mut sim = b.build();
        let groups: Vec<GroupId> = (0..6).map(|_| sim.create_group(src)).collect();
        let def =
            SessionDef { id: SessionId(0), source: src, groups, spec: LayerSpec::paper_default() };
        sim.add_app(
            src,
            Box::new(traffic::LayeredSource::new(def.clone(), traffic::TrafficModel::Cbr, 2)),
        );
        let (r, shared) = Receiver::new(def, src, Config::default(), 5, "r0");
        sim.add_app(rcv, Box::new(r));
        // Crash the middle router briefly: it comes back up with empty
        // multicast state, so the media goes dark at the receiver.
        sim.install_faults(&netsim::FaultPlan::new().node_outage(
            mid,
            SimTime::from_secs(5),
            SimTime::from_millis(5200),
        ));
        sim.run_until(SimTime::from_secs(15));
        let s = shared.lock().unwrap();
        assert!(s.rejoins >= 1, "dead air must trigger a re-join");
        let &(t, loss) = s.loss_series.last().unwrap();
        assert!(t > SimTime::from_secs(14));
        assert_eq!(loss, 0.0, "clean windows after the repair (no phantom gap)");
        assert_eq!(s.final_level(), 1, "repair must not change the level");
    }
}
