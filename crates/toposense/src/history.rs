//! Congestion-state history and bandwidth-equality classification.
//!
//! Table I is indexed by a **3-bit congestion history**: the states at the
//! three most recent algorithm intervals `T0`, `T1`, `T2` sit at bit
//! positions 2, 1, 0 respectively (CONGESTED = 1), so e.g. value 3 = 0b011
//! means "congested in the two most recent intervals", and by a **BW
//! equality** column comparing the total bandwidth received in `T0–T1`
//! against `T1–T2`.

/// Rolling 3-bit congestion history of one node in one session.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CongestionHistory(u8);

impl CongestionHistory {
    /// A never-congested history (0b000).
    pub fn new() -> Self {
        CongestionHistory(0)
    }

    /// Construct from a raw 3-bit value (tests, table enumeration).
    pub fn from_bits(bits: u8) -> Self {
        assert!(bits < 8, "history is 3 bits");
        CongestionHistory(bits)
    }

    /// Shift in the newest state: the old `T1` becomes `T0`, old `T2`
    /// becomes `T1`, and `congested_now` becomes `T2` (bit 0).
    pub fn push(&mut self, congested_now: bool) {
        self.0 = ((self.0 << 1) | congested_now as u8) & 0b111;
    }

    /// The raw table index (0..8).
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Congestion state at the current interval `T2` (bit 0).
    pub fn now(self) -> bool {
        self.0 & 1 == 1
    }

    /// Congestion state one interval ago, `T1` (bit 1).
    pub fn prev(self) -> bool {
        self.0 & 0b10 != 0
    }

    /// Congestion state two intervals ago, `T0` (bit 2).
    pub fn prev2(self) -> bool {
        self.0 & 0b100 != 0
    }
}

/// The Table I "BW Equality" column: how the bandwidth received in the
/// older interval `T0–T1` relates to the recent interval `T1–T2`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BwEquality {
    /// Received less before than now (bandwidth grew).
    Lesser,
    /// About the same (within tolerance).
    Equal,
    /// Received more before than now (bandwidth shrank).
    Greater,
}

impl BwEquality {
    /// Classify `older` (bytes in `T0–T1`) against `recent` (bytes in
    /// `T1–T2`) with a relative `tolerance`.
    pub fn classify(older: u64, recent: u64, tolerance: f64) -> Self {
        let hi = older.max(recent) as f64;
        if hi == 0.0 {
            return BwEquality::Equal;
        }
        let diff = older.abs_diff(recent) as f64;
        if diff <= hi * tolerance {
            BwEquality::Equal
        } else if older < recent {
            BwEquality::Lesser
        } else {
            BwEquality::Greater
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_shifts_toward_t0() {
        let mut h = CongestionHistory::new();
        h.push(true); // T2 = 1                -> 0b001
        assert_eq!(h.bits(), 0b001);
        assert!(h.now());
        h.push(false); // that 1 moves to T1   -> 0b010
        assert_eq!(h.bits(), 0b010);
        assert!(!h.now());
        assert!(h.prev());
        h.push(false); // 1 moves to T0        -> 0b100
        assert_eq!(h.bits(), 0b100);
        assert!(h.prev2());
        h.push(false); // falls off            -> 0b000
        assert_eq!(h.bits(), 0b000);
    }

    #[test]
    fn saturates_at_three_bits() {
        let mut h = CongestionHistory::new();
        for _ in 0..10 {
            h.push(true);
        }
        assert_eq!(h.bits(), 0b111);
    }

    #[test]
    #[should_panic]
    fn from_bits_range_checked() {
        let _ = CongestionHistory::from_bits(8);
    }

    #[test]
    fn bw_equality_classification() {
        use BwEquality::*;
        assert_eq!(BwEquality::classify(100, 100, 0.1), Equal);
        assert_eq!(BwEquality::classify(95, 100, 0.1), Equal);
        assert_eq!(BwEquality::classify(50, 100, 0.1), Lesser);
        assert_eq!(BwEquality::classify(100, 50, 0.1), Greater);
        assert_eq!(BwEquality::classify(0, 0, 0.1), Equal);
        assert_eq!(BwEquality::classify(0, 10, 0.1), Lesser);
        assert_eq!(BwEquality::classify(10, 0, 0.1), Greater);
    }

    #[test]
    fn tolerance_zero_is_strict() {
        assert_eq!(BwEquality::classify(99, 100, 0.0), BwEquality::Lesser);
        assert_eq!(BwEquality::classify(100, 100, 0.0), BwEquality::Equal);
    }
}
