//! Poison-tolerant locking for the shared stats handles.
//!
//! Controllers and receivers publish observability counters through
//! `Arc<Mutex<_>>` handles the harness reads after the run. A panic while a
//! guard is held (in a test helper, or in harness code on another thread)
//! poisons the mutex, and a bare `lock().unwrap()` then turns every later
//! stats update into a second panic that masks the original failure.
//! Since the protected values are plain counters — always in a consistent
//! state after any single update — recovering the guard is strictly better.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Lock `m`, recovering the guard if a previous holder panicked.
pub fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn recovers_a_poisoned_mutex() {
        let m = Arc::new(Mutex::new(7u64));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.lock().is_err(), "mutex must be poisoned");
        assert_eq!(*lock_or_recover(&m), 7);
        *lock_or_recover(&m) = 8;
        assert_eq!(*lock_or_recover(&m), 8);
    }

    #[test]
    fn plain_lock_still_works() {
        let m = Mutex::new(1u32);
        *lock_or_recover(&m) += 1;
        assert_eq!(*lock_or_recover(&m), 2);
    }
}
