//! Algorithm and agent parameters.
//!
//! The paper fixes the traffic-side constants (6 layers, 32 kb/s base,
//! 1000-byte packets, 200 ms latency) but leaves the algorithm's thresholds
//! unspecified. The defaults here were tuned once on Topology A/B and are
//! held fixed across every experiment, as documented in DESIGN.md §5.

use netsim::SimDuration;

/// All tunables of the TopoSense controller and receivers.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// How often the controller runs the algorithm and sends suggestions.
    pub interval: SimDuration,
    /// Loss rate above which a node counts as congested (`p_threshold`).
    pub p_threshold: f64,
    /// Loss rate considered "high" (leaf drop rule, history 1 / Lesser).
    pub high_loss: f64,
    /// Loss rate considered "very high" (history 3,7 / Greater rule).
    pub very_high_loss: f64,
    /// Fraction of children that must sit close to the mean loss for an
    /// internal node to self-declare congestion (`eta_similar`).
    pub eta_similar: f64,
    /// Absolute loss-rate deviation treated as "close to the average".
    pub similarity_tolerance: f64,
    /// Loss threshold for the link-capacity estimator's two conditions.
    pub capacity_loss_threshold: f64,
    /// Multiplicative upward creep of a set capacity estimate per interval
    /// ("the estimate is increased every interval by a small amount").
    pub capacity_creep: f64,
    /// Period after which a capacity estimate is reset to infinity and
    /// re-learned.
    pub capacity_reset: SimDuration,
    /// Random backoff range after dropping a layer; no receiver in the
    /// subtree re-adds the layer before the timer expires.
    pub backoff_min: SimDuration,
    pub backoff_max: SimDuration,
    /// Relative tolerance for the BW-equality classifier.
    pub bw_equal_tolerance: f64,
    /// How often receivers send loss reports.
    pub report_interval: SimDuration,
    /// Receivers act unilaterally after this long without a suggestion.
    pub unilateral_timeout: SimDuration,
    /// Loss rate at which an unsupervised receiver drops a layer.
    pub unilateral_drop_loss: f64,
    /// Wire sizes of the control messages (bytes).
    pub report_size: u32,
    pub suggestion_size: u32,
    pub register_size: u32,
    /// Receiver silence after which the controller stops trusting its data
    /// (the receiver is excluded from reports and suggestion targets until
    /// it is heard from again). See DESIGN.md §9.
    pub quarantine_after: SimDuration,
    /// Receiver silence after which the controller forgets it entirely.
    pub evict_after: SimDuration,
    /// How old last-known-good topology may grow while the discovery tool
    /// is unavailable before the controller suspends suggestions outright.
    pub max_degradation_age: SimDuration,
    /// First re-registration delay; doubles each unacknowledged attempt.
    pub register_backoff_base: SimDuration,
    /// Ceiling of the re-registration backoff.
    pub register_backoff_max: SimDuration,
    /// Heartbeat silence after which a warm standby takes over.
    pub failover_after: SimDuration,
    /// Consecutive empty report windows (no packets, no gaps, on a level
    /// that used to carry traffic) before a receiver re-joins its groups to
    /// repair a possibly-severed tree.
    pub dead_air_windows: u32,
    /// Wire sizes of the hardening messages (bytes).
    pub heartbeat_size: u32,
    pub ack_size: u32,
    pub deregister_size: u32,
    /// Run the change-driven (dirty-subtree) pipeline when the interval's
    /// inputs allow it; the controller falls back to the full pipeline on
    /// topology change, membership churn, capacity reset, or failover.
    /// Both paths produce byte-identical outputs (DESIGN.md §11).
    pub incremental: bool,
    /// Replicate each interval's pipeline inputs to the peer standby so it
    /// maintains a live copy of the algorithm state (DESIGN.md §14).
    /// Requires a configured peer; a no-op on standalone controllers.
    pub replicate_inputs: bool,
    /// Wire sizes of the replication messages (bytes). The input batch is
    /// `replicate_size` plus one `report_size` per forwarded report.
    pub replicate_size: u32,
    pub replica_ack_size: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            interval: SimDuration::from_secs(2),
            p_threshold: 0.03,
            high_loss: 0.12,
            very_high_loss: 0.30,
            eta_similar: 0.5,
            similarity_tolerance: 0.05,
            capacity_loss_threshold: 0.03,
            capacity_creep: 0.05,
            capacity_reset: SimDuration::from_secs(24),
            backoff_min: SimDuration::from_secs(14),
            backoff_max: SimDuration::from_secs(40),
            bw_equal_tolerance: 0.10,
            report_interval: SimDuration::from_secs(1),
            unilateral_timeout: SimDuration::from_millis(5500),
            unilateral_drop_loss: 0.15,
            report_size: 96,
            suggestion_size: 64,
            register_size: 48,
            quarantine_after: SimDuration::from_secs(6),
            evict_after: SimDuration::from_secs(24),
            max_degradation_age: SimDuration::from_secs(10),
            register_backoff_base: SimDuration::from_secs(4),
            register_backoff_max: SimDuration::from_secs(32),
            failover_after: SimDuration::from_secs(6),
            dead_air_windows: 2,
            heartbeat_size: 32,
            ack_size: 32,
            deregister_size: 32,
            incremental: true,
            replicate_inputs: true,
            replicate_size: 64,
            replica_ack_size: 32,
        }
    }
}

impl Config {
    /// Sanity-check the parameter set (used by constructors and tests).
    pub fn validate(&self) {
        assert!(self.interval > SimDuration::ZERO);
        assert!((0.0..1.0).contains(&self.p_threshold));
        assert!(self.high_loss >= self.p_threshold);
        assert!(self.very_high_loss >= self.high_loss);
        assert!((0.0..=1.0).contains(&self.eta_similar));
        assert!(self.capacity_creep >= 0.0);
        assert!(self.backoff_max >= self.backoff_min);
        assert!(self.report_interval <= self.interval);
        assert!(self.quarantine_after >= self.interval, "quarantine faster than one interval");
        assert!(self.evict_after >= self.quarantine_after, "evict before quarantine");
        assert!(self.max_degradation_age >= self.interval);
        assert!(self.register_backoff_base > SimDuration::ZERO);
        assert!(self.register_backoff_max >= self.register_backoff_base);
        assert!(self.failover_after >= self.interval, "failover faster than one heartbeat");
        assert!(self.dead_air_windows >= 1);
    }

    /// Stable 64-bit digest over every tunable. Checkpoints embed it so a
    /// snapshot taken under one parameter set cannot silently be restored
    /// under another — the pipeline is only byte-deterministic for a fixed
    /// `Config`.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut fold = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        fold(self.interval.0);
        fold(self.p_threshold.to_bits());
        fold(self.high_loss.to_bits());
        fold(self.very_high_loss.to_bits());
        fold(self.eta_similar.to_bits());
        fold(self.similarity_tolerance.to_bits());
        fold(self.capacity_loss_threshold.to_bits());
        fold(self.capacity_creep.to_bits());
        fold(self.capacity_reset.0);
        fold(self.backoff_min.0);
        fold(self.backoff_max.0);
        fold(self.bw_equal_tolerance.to_bits());
        fold(self.report_interval.0);
        fold(self.unilateral_timeout.0);
        fold(self.unilateral_drop_loss.to_bits());
        fold(self.report_size as u64);
        fold(self.suggestion_size as u64);
        fold(self.register_size as u64);
        fold(self.quarantine_after.0);
        fold(self.evict_after.0);
        fold(self.max_degradation_age.0);
        fold(self.register_backoff_base.0);
        fold(self.register_backoff_max.0);
        fold(self.failover_after.0);
        fold(self.dead_air_windows as u64);
        fold(self.heartbeat_size as u64);
        fold(self.ack_size as u64);
        fold(self.deregister_size as u64);
        fold(self.incremental as u64);
        fold(self.replicate_inputs as u64);
        fold(self.replicate_size as u64);
        fold(self.replica_ack_size as u64);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        Config::default().validate();
    }

    #[test]
    #[should_panic]
    fn inverted_thresholds_fail_validation() {
        let cfg = Config { high_loss: 0.01, ..Config::default() };
        cfg.validate();
    }

    #[test]
    #[should_panic]
    fn evict_before_quarantine_fails_validation() {
        let cfg = Config {
            quarantine_after: SimDuration::from_secs(10),
            evict_after: SimDuration::from_secs(5),
            ..Config::default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic]
    fn inverted_backoff_fails_validation() {
        let cfg = Config {
            backoff_min: SimDuration::from_secs(10),
            backoff_max: SimDuration::from_secs(5),
            ..Config::default()
        };
        cfg.validate();
    }
}
