//! Deterministic replicated controller state machine (DESIGN.md §14).
//!
//! The five-stage pipeline is byte-deterministic (DESIGN.md §11), so the
//! controller replicates like a viewstamped-replication state machine:
//! the primary ships each interval's *inputs* (report batch + topology and
//! registry snapshot + interval seed) to its replicas, every replica runs
//! the pipeline independently, and per-interval output fingerprints are
//! cross-checked so silent divergence — a bit flip, a heterogeneous-build
//! bug — is detected the interval it happens and the divergent replica
//! quarantined. A promoted replica resumes from its own up-to-date
//! [`AlgorithmState`] with zero re-learning.
//!
//! This module holds the pieces shared by the in-controller wire protocol
//! (`controller.rs` + `messages.rs`) and the differential test harness:
//!
//! * [`fingerprint_outputs`] — the canonical per-interval output digest;
//! * [`ReplicaTracker`] — the primary's window of outstanding
//!   `(seq, fingerprint)` pairs and its ack verdict logic;
//! * [`Cluster`] — an in-process N-replica simulator driving real
//!   checkpoint JSON through crash, partition, and bit-flip faults, used
//!   by the failover differential suite and the `inspect` audit tool.

use crate::algorithm::{AlgorithmInputs, AlgorithmOutputs, AlgorithmState};
use crate::checkpoint::Snapshot;
use crate::config::Config;
use std::collections::VecDeque;
use telemetry::{Blackbox, FlightRecorder};

/// Canonical digest of one interval's pipeline outputs.
///
/// Folds every *decision-bearing* field — suggestions, root supplies,
/// congested-node count, and the capacity-estimate table — through a
/// splitmix64 chain. The `incremental` / `slots_recomputed` diagnostics are
/// deliberately excluded: the full and incremental paths are byte-identical
/// on decisions but differ on those two fields, and a replica may lawfully
/// take a different path than the primary for the same interval.
pub fn fingerprint_outputs(out: &AlgorithmOutputs) -> u64 {
    fn mix(h: u64, v: u64) -> u64 {
        let mut z = h.wrapping_add(v).wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    let mut h = 0x7370_6c69_745f_6d78u64;
    h = mix(h, out.suggestions.len() as u64);
    for s in &out.suggestions {
        h = mix(h, s.receiver.0 as u64);
        h = mix(h, s.session.0 as u64);
        h = mix(h, s.level as u64);
    }
    h = mix(h, out.root_supply.len() as u64);
    for &s in &out.root_supply {
        h = mix(h, s as u64);
    }
    h = mix(h, out.congested_nodes as u64);
    // The estimate table is enumerated in estimator order; sort so the
    // digest is order-independent.
    let mut est: Vec<(u32, u64)> =
        out.estimated_links.iter().map(|&(l, c)| (l.0, c.to_bits())).collect();
    est.sort_unstable();
    h = mix(h, est.len() as u64);
    for (l, c) in est {
        h = mix(h, l as u64);
        h = mix(h, c);
    }
    h
}

/// The primary's verdict on one replica ack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AckVerdict {
    /// Fingerprints agree: the replica applied this interval byte-exactly.
    Match,
    /// Fingerprints differ: the replica's state has silently diverged.
    /// Quarantine it — its `AlgorithmState` can no longer be trusted for
    /// takeover.
    Divergent,
    /// The replica could not apply this seq (joined late, lost a batch)
    /// and asks for a checkpoint resync.
    Behind,
}

/// The primary's sliding window of outstanding `(seq, fingerprint)` pairs.
///
/// Acks race the next interval, so the primary keeps the last few
/// fingerprints around; anything older than the window is treated as
/// answered (a stale duplicate ack is ignored).
#[derive(Debug)]
pub struct ReplicaTracker {
    sent: VecDeque<(u64, u64)>,
    cap: usize,
}

impl Default for ReplicaTracker {
    fn default() -> Self {
        ReplicaTracker::new(8)
    }
}

impl ReplicaTracker {
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1);
        ReplicaTracker { sent: VecDeque::new(), cap }
    }

    /// Record one replicated interval's fingerprint.
    pub fn record(&mut self, seq: u64, fingerprint: u64) {
        if self.sent.len() == self.cap {
            self.sent.pop_front();
        }
        self.sent.push_back((seq, fingerprint));
    }

    /// Judge an incoming ack. `None` when the seq is outside the window
    /// (stale duplicate) — not a verdict either way.
    pub fn verdict(&self, seq: u64, ack_fingerprint: Option<u64>) -> Option<AckVerdict> {
        let Some(fp) = ack_fingerprint else {
            // "Behind" is meaningful regardless of the window: the replica
            // is asking for state, not claiming an output.
            return Some(AckVerdict::Behind);
        };
        let &(_, ours) = self.sent.iter().find(|&&(s, _)| s == seq)?;
        Some(if fp == ours { AckVerdict::Match } else { AckVerdict::Divergent })
    }

    /// How far the newest recorded interval is ahead of `seq` — the
    /// replication lag a matching ack reveals.
    pub fn lag_of(&self, seq: u64) -> u64 {
        self.sent.back().map_or(0, |&(newest, _)| newest.saturating_sub(seq))
    }
}

/// One member of an in-process replica group.
pub struct Replica {
    pub id: usize,
    pub state: AlgorithmState,
    /// Crashed replicas neither apply inputs nor vote.
    pub live: bool,
    /// Partitioned replicas are live but unreachable: they miss input
    /// batches and need a checkpoint resync on heal.
    pub partitioned: bool,
    /// Set when the cross-check caught this replica's fingerprint in the
    /// minority; quarantined replicas stop applying inputs.
    pub quarantined: bool,
    /// Completed-run count this replica expects to apply next.
    pub next_seq: u64,
}

/// What one [`Cluster::tick`] observed.
pub struct TickOutcome {
    /// The primary's outputs for the interval (the cluster's answer).
    pub outputs: AlgorithmOutputs,
    /// The majority fingerprint.
    pub fingerprint: u64,
    /// Replica ids newly quarantined by this interval's cross-check.
    pub newly_quarantined: Vec<usize>,
    /// Whether the cross-check deposed the primary (its fingerprint was in
    /// the minority) and a view change promoted a new one.
    pub view_changed: bool,
}

/// An in-process N-replica deterministic state machine: every member owns
/// a full [`AlgorithmState`] seeded identically, each tick feeds the same
/// [`AlgorithmInputs`] to every reachable member, and the resulting
/// fingerprints are majority-voted. Checkpoint resyncs go through the real
/// `toposense.checkpoint.v1` JSON encode/decode path, so the differential
/// suite exercises exactly what the wire protocol ships.
pub struct Cluster {
    cfg: Config,
    seed: u64,
    replicas: Vec<Replica>,
    primary: usize,
    seq: u64,
    /// Cumulative divergences caught by the cross-check.
    pub divergences: u64,
    /// Cumulative view changes (primary deposed or crashed).
    pub view_changes: u64,
    /// Last-N replication occurrences (quarantine, view change, resync) —
    /// the window a [`Cluster::blackbox`] dump carries.
    pub flight: FlightRecorder,
    /// Simulated time of the last tick; faults injected between ticks
    /// (crash, heal) are stamped with it.
    last_t_ns: u64,
}

impl Cluster {
    /// A group of `n >= 1` replicas, all seeded with the same algorithm
    /// seed (replica id 0 starts as primary).
    pub fn new(cfg: Config, seed: u64, n: usize) -> Self {
        assert!(n >= 1);
        let replicas = (0..n)
            .map(|id| Replica {
                id,
                state: AlgorithmState::new(cfg, seed),
                live: true,
                partitioned: false,
                quarantined: false,
                next_seq: 0,
            })
            .collect();
        Cluster {
            cfg,
            seed,
            replicas,
            primary: 0,
            seq: 0,
            divergences: 0,
            view_changes: 0,
            flight: FlightRecorder::new(64),
            last_t_ns: 0,
        }
    }

    /// The current primary's id.
    pub fn primary(&self) -> usize {
        self.primary
    }

    /// The interval count the cluster has committed.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Immutable view of one member.
    pub fn replica(&self, id: usize) -> &Replica {
        &self.replicas[id]
    }

    /// Mutable access to one member's state (fault injection in tests).
    pub fn replica_state_mut(&mut self, id: usize) -> &mut AlgorithmState {
        &mut self.replicas[id].state
    }

    fn votable(&self, r: &Replica) -> bool {
        r.live && !r.partitioned && !r.quarantined && r.next_seq == self.seq
    }

    /// Feed one interval's inputs to every reachable member, cross-check
    /// the fingerprints, quarantine any minority, and depose the primary
    /// if *it* is the minority.
    pub fn tick(&mut self, inputs: &AlgorithmInputs<'_>) -> TickOutcome {
        assert!(self.replicas[self.primary].live, "ticking a crashed primary");
        self.last_t_ns = inputs.now.nanos();
        let mut votes: Vec<(usize, u64, AlgorithmOutputs)> = Vec::new();
        for i in 0..self.replicas.len() {
            if !self.votable(&self.replicas[i]) {
                continue;
            }
            let out = if self.cfg.incremental {
                self.replicas[i].state.run_incremental(inputs)
            } else {
                self.replicas[i].state.run(inputs)
            };
            self.replicas[i].next_seq += 1;
            votes.push((i, fingerprint_outputs(&out), out));
        }
        self.seq += 1;

        // Majority fingerprint; ties break toward the primary's vote so a
        // 1-vs-1 split cannot depose a healthy primary.
        let mut counts: Vec<(u64, usize)> = Vec::new();
        for &(_, fp, _) in &votes {
            match counts.iter_mut().find(|(f, _)| *f == fp) {
                Some((_, c)) => *c += 1,
                None => counts.push((fp, 1)),
            }
        }
        let primary_fp = votes.iter().find(|&&(i, ..)| i == self.primary).map(|&(_, fp, _)| fp);
        let majority_fp = counts
            .iter()
            .max_by_key(|&&(fp, c)| (c, Some(fp) == primary_fp))
            .map(|&(fp, _)| fp)
            .expect("at least the primary voted");

        let mut newly_quarantined = Vec::new();
        for &(i, fp, _) in &votes {
            if fp != majority_fp {
                self.replicas[i].quarantined = true;
                self.divergences += 1;
                newly_quarantined.push(i);
                self.flight.note(self.last_t_ns, "divergence", self.seq, format!("replica {i}"));
                self.flight.note(self.last_t_ns, "quarantine", self.seq, format!("replica {i}"));
            }
        }

        let view_changed = primary_fp != Some(majority_fp);
        if view_changed {
            self.promote();
        }
        let outputs = votes
            .into_iter()
            .find(|&(_, fp, _)| fp == majority_fp)
            .map(|(_, _, out)| out)
            .expect("majority vote exists");
        TickOutcome { outputs, fingerprint: majority_fp, newly_quarantined, view_changed }
    }

    /// Crash the current primary and promote a successor.
    pub fn crash_primary(&mut self) {
        self.replicas[self.primary].live = false;
        self.promote();
    }

    /// Promote the smallest-id live, unquarantined, in-sync replica —
    /// the deterministic view-change rule.
    pub fn promote(&mut self) {
        self.view_changes += 1;
        let next = self
            .replicas
            .iter()
            .find(|r| r.live && !r.quarantined && !r.partitioned && r.next_seq == self.seq)
            .map(|r| r.id)
            .expect("no promotable replica left");
        self.flight.note(self.last_t_ns, "view_change", self.seq, format!("primary -> {next}"));
        self.primary = next;
    }

    /// Partition one replica away: it stops receiving input batches.
    pub fn partition(&mut self, id: usize) {
        assert_ne!(id, self.primary, "partition a follower, crash the primary");
        self.replicas[id].partitioned = true;
    }

    /// Heal a partitioned replica by a checkpoint resync from the current
    /// primary — through the real JSON encode/decode path.
    pub fn heal(&mut self, id: usize) -> Result<(), String> {
        let blob = self.replicas[self.primary].state.checkpoint().encode();
        let snap = Snapshot::decode(&blob)?;
        let state = AlgorithmState::restore(self.cfg, &snap)?;
        let r = &mut self.replicas[id];
        r.state = state;
        r.partitioned = false;
        r.quarantined = false;
        r.live = true;
        r.next_seq = snap.runs;
        debug_assert_eq!(snap.runs, self.seq);
        self.flight.note(self.last_t_ns, "checkpoint", self.seq, format!("resync replica {id}"));
        Ok(())
    }

    /// Silently corrupt one replica's state via a single bit flip in its
    /// checkpoint — the fault the fingerprint cross-check exists to catch.
    /// Prefers a capacity-estimate bit (estimates persist across intervals
    /// and are enumerated in every output, so the corruption cannot wash
    /// out undetected), then a congestion-history bit, then an RNG-state
    /// bit.
    pub fn bit_flip(&mut self, id: usize) {
        let mut snap = self.replicas[id].state.checkpoint();
        if let Some(e) = snap.estimates.first_mut() {
            e.capacity_bits ^= 1 << 52;
        } else if let Some(m) = snap.memories.first_mut() {
            m.hist ^= 0b001;
        } else {
            snap.rng[0] ^= 1;
        }
        let next_seq = self.replicas[id].next_seq;
        self.replicas[id].state =
            AlgorithmState::restore(self.cfg, &snap).expect("same config round-trips");
        self.replicas[id].next_seq = next_seq;
    }

    /// The algorithm seed every member was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Build a failure dump from the cluster's current state: the flight
    /// window, the replication counters, the seed and config fingerprint.
    /// The caller picks `reason` (e.g. `"replica_quarantine"`) and a label.
    pub fn blackbox(&self, reason: &str, label: &str) -> Blackbox {
        Blackbox {
            reason: reason.to_string(),
            label: label.to_string(),
            seed: self.seed,
            config_fingerprint: format!("{:016x}", self.cfg.fingerprint()),
            t_ns: self.last_t_ns,
            counters: vec![
                ("repl.divergences".to_string(), self.divergences),
                ("repl.seq".to_string(), self.seq),
                ("repl.view_changes".to_string(), self.view_changes),
            ],
            occurrences: self.flight.occurrences(),
            ring_dropped: self.flight.dropped(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::SuggestionOut;
    use netsim::{AppId, DirLinkId, SessionId};

    fn out(levels: &[u8]) -> AlgorithmOutputs {
        AlgorithmOutputs {
            suggestions: levels
                .iter()
                .enumerate()
                .map(|(i, &l)| SuggestionOut {
                    receiver: AppId(i as u32),
                    session: SessionId(0),
                    level: l,
                })
                .collect(),
            estimated_links: vec![(DirLinkId(3), 150_000.0)],
            congested_nodes: 2,
            root_supply: vec![6],
            incremental: false,
            slots_recomputed: 0,
        }
    }

    #[test]
    fn fingerprint_ignores_path_diagnostics() {
        let a = out(&[1, 2, 3]);
        let mut b = out(&[1, 2, 3]);
        b.incremental = true;
        b.slots_recomputed = 99;
        assert_eq!(fingerprint_outputs(&a), fingerprint_outputs(&b));
    }

    #[test]
    fn fingerprint_sees_every_decision_field() {
        let base = fingerprint_outputs(&out(&[1, 2, 3]));
        let mut m = out(&[1, 2, 4]);
        assert_ne!(fingerprint_outputs(&m), base, "suggestion level");
        m = out(&[1, 2, 3]);
        m.root_supply = vec![5];
        assert_ne!(fingerprint_outputs(&m), base, "root supply");
        m = out(&[1, 2, 3]);
        m.congested_nodes = 3;
        assert_ne!(fingerprint_outputs(&m), base, "congested count");
        m = out(&[1, 2, 3]);
        m.estimated_links[0].1 = 150_001.0;
        assert_ne!(fingerprint_outputs(&m), base, "estimate value");
    }

    #[test]
    fn fingerprint_is_estimate_order_independent() {
        let mut a = out(&[1]);
        a.estimated_links = vec![(DirLinkId(1), 10.0), (DirLinkId(2), 20.0)];
        let mut b = out(&[1]);
        b.estimated_links = vec![(DirLinkId(2), 20.0), (DirLinkId(1), 10.0)];
        assert_eq!(fingerprint_outputs(&a), fingerprint_outputs(&b));
    }

    #[test]
    fn tracker_verdicts() {
        let mut t = ReplicaTracker::new(4);
        t.record(0, 100);
        t.record(1, 200);
        assert_eq!(t.verdict(0, Some(100)), Some(AckVerdict::Match));
        assert_eq!(t.verdict(1, Some(999)), Some(AckVerdict::Divergent));
        assert_eq!(t.verdict(7, Some(1)), None, "outside the window");
        assert_eq!(t.verdict(5, None), Some(AckVerdict::Behind));
        assert_eq!(t.lag_of(0), 1);
        for s in 2..10 {
            t.record(s, s);
        }
        assert_eq!(t.verdict(0, Some(100)), None, "evicted from the window");
    }
}
