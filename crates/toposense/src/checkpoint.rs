//! Checkpoint/restore of [`AlgorithmState`](crate::algorithm::AlgorithmState).
//!
//! A [`Snapshot`] captures everything the five-stage pipeline carries
//! between intervals — RNG stream position, capacity estimates, per-node
//! memories, backoff timers, and the run counter — in a canonical sorted
//! order, so two snapshots of byte-identical states are byte-identical
//! JSON. Scratch buffers and the incremental change cache are *not*
//! captured: both are rebuilt by the first post-restore run (which takes
//! the full path once, exactly like a run after
//! [`invalidate`](crate::algorithm::AlgorithmState::invalidate), and is
//! byte-identical to the incremental path per DESIGN.md §11).
//!
//! The JSON rendering is schema-versioned (`toposense.checkpoint.v1`,
//! mirroring telemetry's `toposense.telemetry.v1`) and embeds a
//! [`Config::fingerprint`](crate::Config::fingerprint) so a snapshot can
//! only be restored under the parameter set it was taken with. Floats
//! travel as raw bit patterns (`u64`), never as decimal text — restore is
//! exact by construction, not by printf round-tripping.

use serde_json::{json, Value};
use std::path::Path;

/// Schema identifier written into every checkpoint file.
pub const SCHEMA: &str = "toposense.checkpoint.v1";

/// One finite link-capacity estimate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EstimateEntry {
    pub link: u32,
    /// `f64::to_bits` of the capacity in bits/s.
    pub capacity_bits: u64,
    /// When the estimate was (re)learned, in sim nanoseconds.
    pub set_at_ns: u64,
}

/// One `(session, node)` memory cell of the congestion/subscription stages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryEntry {
    pub session: u32,
    pub node: u32,
    /// 3-bit congestion history (`CongestionHistory::bits`).
    pub hist: u8,
    pub bytes_older: u64,
    pub bytes_recent: u64,
    pub supply_older: u8,
    pub supply_recent: u8,
    pub demand_prev: Option<u8>,
}

/// One `(session, node, level)` backoff record: live timer and/or failure
/// count (failures persist past expiry — they scale future draws).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackoffEntry {
    pub session: u32,
    pub node: u32,
    pub level: u8,
    /// Expiry in sim nanoseconds; `None` when only the failure count lives.
    pub until_ns: Option<u64>,
    pub failures: u32,
}

/// A complete, canonical capture of one `AlgorithmState`.
///
/// All vectors are sorted by their id columns; equality on `Snapshot` is
/// therefore state equality, and the JSON rendering is byte-stable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// [`Config::fingerprint`](crate::Config::fingerprint) of the
    /// parameter set the state ran under.
    pub config_fingerprint: u64,
    /// Completed pipeline runs.
    pub runs: u64,
    /// Raw xoshiro256** state of the algorithm's RNG stream.
    pub rng: [u64; 4],
    pub estimates: Vec<EstimateEntry>,
    pub memories: Vec<MemoryEntry>,
    pub backoffs: Vec<BackoffEntry>,
}

impl Snapshot {
    /// Render as canonical (compact, sorted) JSON.
    pub fn to_json(&self) -> Value {
        let estimates: Vec<Value> = self
            .estimates
            .iter()
            .map(|e| json!({"link": e.link, "cap_bits": e.capacity_bits, "set_at_ns": e.set_at_ns}))
            .collect();
        let memories: Vec<Value> = self
            .memories
            .iter()
            .map(|m| {
                json!({
                    "session": m.session,
                    "node": m.node,
                    "hist": m.hist,
                    "bytes_older": m.bytes_older,
                    "bytes_recent": m.bytes_recent,
                    "supply_older": m.supply_older,
                    "supply_recent": m.supply_recent,
                    "demand_prev": m.demand_prev,
                })
            })
            .collect();
        let backoffs: Vec<Value> = self
            .backoffs
            .iter()
            .map(|b| {
                json!({
                    "session": b.session,
                    "node": b.node,
                    "level": b.level,
                    "until_ns": b.until_ns,
                    "failures": b.failures,
                })
            })
            .collect();
        json!({
            "schema": SCHEMA,
            "config_fingerprint": self.config_fingerprint,
            "runs": self.runs,
            "rng": self.rng.to_vec(),
            "estimates": estimates,
            "memories": memories,
            "backoffs": backoffs,
        })
    }

    /// Canonical single-line JSON text (what [`Self::save`] writes and the
    /// replication layer's `CheckpointTransfer` carries).
    pub fn encode(&self) -> String {
        serde_json::to_string(&self.to_json()).expect("checkpoint serialization is infallible")
    }

    /// Parse and validate a checkpoint document.
    pub fn decode(text: &str) -> Result<Snapshot, String> {
        let v = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
        Self::from_json(&v)
    }

    /// Build a snapshot from a parsed [`Value`], checking the schema tag,
    /// every field's presence and type, and the sort invariants.
    pub fn from_json(v: &Value) -> Result<Snapshot, String> {
        let schema = v.get("schema").and_then(Value::as_str).ok_or("missing schema tag")?;
        if schema != SCHEMA {
            return Err(format!("schema mismatch: expected {SCHEMA}, found {schema}"));
        }
        let u = |key: &str| -> Result<u64, String> {
            v.get(key).and_then(Value::as_u64).ok_or(format!("missing or non-integer '{key}'"))
        };
        let config_fingerprint = u("config_fingerprint")?;
        let runs = u("runs")?;
        let rng_arr = v.get("rng").and_then(Value::as_array).ok_or("missing 'rng' array")?;
        if rng_arr.len() != 4 {
            return Err(format!("'rng' must hold 4 words, found {}", rng_arr.len()));
        }
        let mut rng = [0u64; 4];
        for (i, w) in rng_arr.iter().enumerate() {
            rng[i] = w.as_u64().ok_or("non-integer 'rng' word")?;
        }

        let field = |row: &Value, key: &str| -> Result<u64, String> {
            row.get(key).and_then(Value::as_u64).ok_or(format!("missing or non-integer '{key}'"))
        };
        let rows = |key: &str| -> Result<Vec<Value>, String> {
            Ok(v.get(key)
                .and_then(Value::as_array)
                .ok_or(format!("missing '{key}' array"))?
                .to_vec())
        };

        let mut estimates = Vec::new();
        for row in rows("estimates")? {
            estimates.push(EstimateEntry {
                link: field(&row, "link")? as u32,
                capacity_bits: field(&row, "cap_bits")?,
                set_at_ns: field(&row, "set_at_ns")?,
            });
        }
        if !estimates.windows(2).all(|w| w[0].link < w[1].link) {
            return Err("'estimates' not strictly sorted by link".into());
        }

        let mut memories = Vec::new();
        for row in rows("memories")? {
            let demand_prev = match row.get("demand_prev") {
                Some(Value::Null) | None => None,
                Some(d) => Some(d.as_u64().ok_or("non-integer 'demand_prev'")? as u8),
            };
            memories.push(MemoryEntry {
                session: field(&row, "session")? as u32,
                node: field(&row, "node")? as u32,
                hist: field(&row, "hist")? as u8,
                bytes_older: field(&row, "bytes_older")?,
                bytes_recent: field(&row, "bytes_recent")?,
                supply_older: field(&row, "supply_older")? as u8,
                supply_recent: field(&row, "supply_recent")? as u8,
                demand_prev,
            });
        }
        if !memories.windows(2).all(|w| (w[0].session, w[0].node) < (w[1].session, w[1].node)) {
            return Err("'memories' not strictly sorted by (session, node)".into());
        }
        if let Some(m) = memories.iter().find(|m| m.hist >= 8) {
            return Err(format!("memory ({}, {}) has a >3-bit history", m.session, m.node));
        }

        let mut backoffs = Vec::new();
        for row in rows("backoffs")? {
            let until_ns = match row.get("until_ns") {
                Some(Value::Null) | None => None,
                Some(d) => Some(d.as_u64().ok_or("non-integer 'until_ns'")?),
            };
            backoffs.push(BackoffEntry {
                session: field(&row, "session")? as u32,
                node: field(&row, "node")? as u32,
                level: field(&row, "level")? as u8,
                until_ns,
                failures: field(&row, "failures")? as u32,
            });
        }
        let bkey = |b: &BackoffEntry| (b.session, b.node, b.level);
        if !backoffs.windows(2).all(|w| bkey(&w[0]) < bkey(&w[1])) {
            return Err("'backoffs' not strictly sorted by (session, node, level)".into());
        }

        Ok(Snapshot { config_fingerprint, runs, rng, estimates, memories, backoffs })
    }

    /// Write the canonical rendering to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.encode() + "\n")
    }

    /// Read and validate a checkpoint file.
    pub fn load(path: &Path) -> Result<Snapshot, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
        Self::decode(text.trim_end())
    }

    /// Human-readable one-screen summary (the `inspect snapshot summary`
    /// rendering).
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "schema              {SCHEMA}");
        let _ = writeln!(out, "config fingerprint  {:#018x}", self.config_fingerprint);
        let _ = writeln!(out, "completed runs      {}", self.runs);
        let _ = writeln!(
            out,
            "rng state           [{:#018x}, {:#018x}, {:#018x}, {:#018x}]",
            self.rng[0], self.rng[1], self.rng[2], self.rng[3]
        );
        let _ = writeln!(out, "capacity estimates  {}", self.estimates.len());
        for e in &self.estimates {
            let _ = writeln!(
                out,
                "  link {:<5} {:>14.1} bps  set at {:.3}s",
                e.link,
                f64::from_bits(e.capacity_bits),
                e.set_at_ns as f64 / 1e9
            );
        }
        let sessions: std::collections::BTreeSet<u32> =
            self.memories.iter().map(|m| m.session).collect();
        let _ = writeln!(
            out,
            "node memories       {} across {} session(s)",
            self.memories.len(),
            sessions.len()
        );
        let live = self.backoffs.iter().filter(|b| b.until_ns.is_some()).count();
        let _ =
            writeln!(out, "backoff records     {} ({} live timer(s))", self.backoffs.len(), live);
        out
    }

    /// Field-level diff of two snapshots, one line per difference; empty
    /// when the snapshots are identical.
    pub fn diff(&self, other: &Snapshot) -> Vec<String> {
        use std::collections::BTreeMap;
        let mut out = Vec::new();
        if self.config_fingerprint != other.config_fingerprint {
            out.push(format!(
                "config fingerprint: {:#018x} vs {:#018x}",
                self.config_fingerprint, other.config_fingerprint
            ));
        }
        if self.runs != other.runs {
            out.push(format!("runs: {} vs {}", self.runs, other.runs));
        }
        if self.rng != other.rng {
            out.push(format!("rng state: {:x?} vs {:x?}", self.rng, other.rng));
        }

        let a_est: BTreeMap<u32, &EstimateEntry> =
            self.estimates.iter().map(|e| (e.link, e)).collect();
        let b_est: BTreeMap<u32, &EstimateEntry> =
            other.estimates.iter().map(|e| (e.link, e)).collect();
        for link in a_est.keys().chain(b_est.keys()).collect::<std::collections::BTreeSet<_>>() {
            match (a_est.get(link), b_est.get(link)) {
                (Some(a), Some(b)) if a != b => out.push(format!(
                    "estimate link {link}: {:.1} bps @{} vs {:.1} bps @{}",
                    f64::from_bits(a.capacity_bits),
                    a.set_at_ns,
                    f64::from_bits(b.capacity_bits),
                    b.set_at_ns
                )),
                (Some(_), None) => out.push(format!("estimate link {link}: only in first")),
                (None, Some(_)) => out.push(format!("estimate link {link}: only in second")),
                _ => {}
            }
        }

        let a_mem: BTreeMap<(u32, u32), &MemoryEntry> =
            self.memories.iter().map(|m| ((m.session, m.node), m)).collect();
        let b_mem: BTreeMap<(u32, u32), &MemoryEntry> =
            other.memories.iter().map(|m| ((m.session, m.node), m)).collect();
        for key in a_mem.keys().chain(b_mem.keys()).collect::<std::collections::BTreeSet<_>>() {
            match (a_mem.get(key), b_mem.get(key)) {
                (Some(a), Some(b)) if a != b => out.push(format!(
                    "memory (s{}, n{}): hist {:#05b}/{:#05b} bytes {}:{} vs {}:{} supply {}:{} \
                     vs {}:{} demand {:?} vs {:?}",
                    key.0,
                    key.1,
                    a.hist,
                    b.hist,
                    a.bytes_older,
                    a.bytes_recent,
                    b.bytes_older,
                    b.bytes_recent,
                    a.supply_older,
                    a.supply_recent,
                    b.supply_older,
                    b.supply_recent,
                    a.demand_prev,
                    b.demand_prev
                )),
                (Some(_), None) => {
                    out.push(format!("memory (s{}, n{}): only in first", key.0, key.1))
                }
                (None, Some(_)) => {
                    out.push(format!("memory (s{}, n{}): only in second", key.0, key.1))
                }
                _ => {}
            }
        }

        let a_bo: BTreeMap<(u32, u32, u8), &BackoffEntry> =
            self.backoffs.iter().map(|b| ((b.session, b.node, b.level), b)).collect();
        let b_bo: BTreeMap<(u32, u32, u8), &BackoffEntry> =
            other.backoffs.iter().map(|b| ((b.session, b.node, b.level), b)).collect();
        for key in a_bo.keys().chain(b_bo.keys()).collect::<std::collections::BTreeSet<_>>() {
            match (a_bo.get(key), b_bo.get(key)) {
                (Some(a), Some(b)) if a != b => out.push(format!(
                    "backoff (s{}, n{}, l{}): until {:?} fails {} vs until {:?} fails {}",
                    key.0, key.1, key.2, a.until_ns, a.failures, b.until_ns, b.failures
                )),
                (Some(_), None) => {
                    out.push(format!("backoff (s{}, n{}, l{}): only in first", key.0, key.1, key.2))
                }
                (None, Some(_)) => out
                    .push(format!("backoff (s{}, n{}, l{}): only in second", key.0, key.1, key.2)),
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            config_fingerprint: 0xdead_beef_cafe_f00d,
            runs: 17,
            rng: [1, 2, 3, u64::MAX],
            estimates: vec![EstimateEntry {
                link: 4,
                capacity_bits: 150_000.0f64.to_bits(),
                set_at_ns: 42_000_000_000,
            }],
            memories: vec![
                MemoryEntry {
                    session: 0,
                    node: 3,
                    hist: 0b101,
                    bytes_older: 10,
                    bytes_recent: 20,
                    supply_older: 2,
                    supply_recent: 3,
                    demand_prev: Some(4),
                },
                MemoryEntry {
                    session: 0,
                    node: 5,
                    hist: 0,
                    bytes_older: 0,
                    bytes_recent: 0,
                    supply_older: 1,
                    supply_recent: 1,
                    demand_prev: None,
                },
            ],
            backoffs: vec![BackoffEntry {
                session: 0,
                node: 3,
                level: 2,
                until_ns: Some(60_000_000_000),
                failures: 1,
            }],
        }
    }

    #[test]
    fn encode_decode_round_trip_is_identity() {
        let s = sample();
        let text = s.encode();
        let back = Snapshot::decode(&text).expect("decodes");
        assert_eq!(back, s);
        assert_eq!(back.encode(), text, "canonical rendering is stable");
    }

    #[test]
    fn schema_and_sort_violations_are_rejected() {
        let s = sample();
        let bad_schema = s.encode().replace(SCHEMA, "toposense.checkpoint.v0");
        assert!(Snapshot::decode(&bad_schema).unwrap_err().contains("schema mismatch"));

        let mut unsorted = sample();
        unsorted.memories.swap(0, 1);
        let err = Snapshot::decode(&unsorted.encode()).unwrap_err();
        assert!(err.contains("not strictly sorted"), "{err}");

        assert!(Snapshot::decode("not json").is_err());
        assert!(Snapshot::decode("{}").is_err());
    }

    #[test]
    fn diff_is_empty_iff_equal_and_names_every_divergence() {
        let a = sample();
        assert!(a.diff(&a).is_empty());
        let mut b = sample();
        b.runs += 1;
        b.memories[0].hist = 0b010;
        b.estimates.clear();
        let d = a.diff(&b);
        assert_eq!(d.len(), 3, "{d:?}");
        assert!(d.iter().any(|l| l.starts_with("runs:")));
        assert!(d.iter().any(|l| l.starts_with("memory (s0, n3)")));
        assert!(d.iter().any(|l| l.contains("only in first")));
    }
}
