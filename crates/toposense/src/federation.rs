//! Federated multi-domain control plane (DESIGN.md §16).
//!
//! One [`Controller`](crate::Controller) scales to one domain; the paper's
//! Fig. 3 sketches the next tier — per-domain agents plus a hierarchy that
//! keeps cross-domain bottlenecks consistent. This module is that tier at
//! the algorithm level: a [`Federation`] shards sessions across per-domain
//! [`AlgorithmState`] pipelines (run in parallel, deterministically), and
//! an inter-controller **border protocol** closes the loop between them:
//!
//! 1. Each interval, every domain runs the dense incremental pipeline over
//!    its own restricted view, under the border cap its gateway was handed
//!    last interval ([`AlgorithmState::set_border_caps`]).
//! 2. Each domain distills its interval into a [`BorderSummary`] — the
//!    congestion/throughput/bottleneck picture at its gateway link — and
//!    ships it as canonical single-line JSON (`toposense.border.v1`, the
//!    same schema discipline as `toposense.checkpoint.v1`).
//! 3. A parent aggregator decodes the summaries and **folds** each one
//!    into its own pipeline as a synthetic receiver report stationed at
//!    that domain's gateway node, so child-domain congestion flows through
//!    the parent's stage-1/stage-2 exactly like ordinary receiver loss
//!    flows through a domain controller.
//! 4. The parent's stage-5 supply at each gateway slot becomes that
//!    domain's border cap for the *next* interval — a saturated core link
//!    above the gateways is therefore reflected in every domain's root
//!    ceiling one interval after it first shows in the summaries.
//!
//! Determinism: domains run via the deterministic parallel iterator (input
//! order is preserved regardless of thread count), summaries are canonical
//! JSON round-tripped through [`BorderSummary::decode`] before folding,
//! and caps are normalized by [`AlgorithmState::set_border_caps`] — the
//! whole federation interval is a pure function of `(seed, inputs)`, which
//! `tests/baselines.rs` pins as a fingerprint.

use crate::algorithm::{AlgorithmInputs, AlgorithmOutputs, AlgorithmState, ReceiverReport};
use crate::config::Config;
use netsim::{
    derive_stream_seed, AppId, DirLinkId, GroupId, GroupSnapshot, NodeId, SessionId, SimDuration,
    SimTime,
};
use rayon::prelude::*;
use serde_json::{json, Value};
use telemetry::{FlightRecorder, Telemetry};
use topology::discovery::{LinkView, TopologyView};
use topology::SessionTree;
use traffic::LayerSpec;

/// Schema identifier carried by every border summary.
pub const SCHEMA: &str = "toposense.border.v1";

/// Synthetic receivers the parent aggregator stations at gateway nodes
/// live in this reserved high `AppId` range (`BORDER_APP_BASE + domain`),
/// far above any real receiver id a scenario mints.
pub const BORDER_APP_BASE: u32 = 0xF000_0000;

/// One domain's per-interval digest of its border state: what the parent
/// aggregator needs to treat the whole domain as a single receiver sitting
/// behind the gateway link. All fields are integers (floats travel as raw
/// bit patterns), so the canonical JSON rendering is byte-stable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BorderSummary {
    /// Domain ordinal inside the federation.
    pub domain: u32,
    /// Federation interval sequence number the summary belongs to.
    pub seq: u64,
    /// Gateway node id *in the parent topology*.
    pub gateway: u32,
    /// The domain's root supply this interval — the layer ceiling it is
    /// actually sustaining (bottleneck layer as seen from inside).
    pub level: u8,
    /// Packets received, summed across the domain's reports. Summing keeps
    /// the border loss rate audience-weighted: a single lossy last mile
    /// inside a large domain must not read as border congestion.
    pub received: u64,
    /// Packets lost, summed across the domain's reports.
    pub lost: u64,
    /// Max per-receiver bytes observed in the window — the throughput of
    /// the best-fed receiver, i.e. the flow actually crossing the gateway.
    pub bytes: u64,
    /// Tree slots labelled congested inside the domain this interval.
    pub congested_nodes: u64,
    /// `f64::to_bits` of the domain's tightest finite internal capacity
    /// estimate (bits of `f64::INFINITY` when it has learned none).
    pub capacity_bits: u64,
}

impl BorderSummary {
    /// Loss rate across the whole domain's audience.
    pub fn loss_rate(&self) -> f64 {
        let expected = self.received + self.lost;
        if expected == 0 {
            0.0
        } else {
            self.lost as f64 / expected as f64
        }
    }

    /// Render as canonical (compact, field-stable) JSON.
    pub fn to_json(&self) -> Value {
        json!({
            "schema": SCHEMA,
            "domain": self.domain,
            "seq": self.seq,
            "gateway": self.gateway,
            "level": self.level,
            "received": self.received,
            "lost": self.lost,
            "bytes": self.bytes,
            "congested_nodes": self.congested_nodes,
            "capacity_bits": self.capacity_bits,
        })
    }

    /// Canonical single-line JSON text — the border protocol's wire form.
    pub fn encode(&self) -> String {
        serde_json::to_string(&self.to_json()).expect("border serialization is infallible")
    }

    /// Parse and validate a border summary document.
    pub fn decode(text: &str) -> Result<BorderSummary, String> {
        let v = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
        Self::from_json(&v)
    }

    /// Build a summary from a parsed [`Value`], checking the schema tag
    /// and every field's presence and type.
    pub fn from_json(v: &Value) -> Result<BorderSummary, String> {
        let schema = v.get("schema").and_then(Value::as_str).ok_or("missing schema tag")?;
        if schema != SCHEMA {
            return Err(format!("schema mismatch: expected {SCHEMA}, found {schema}"));
        }
        let u = |key: &str| -> Result<u64, String> {
            v.get(key).and_then(Value::as_u64).ok_or(format!("missing or non-integer '{key}'"))
        };
        let level = u("level")?;
        if level > u8::MAX as u64 {
            return Err(format!("'level' {level} exceeds u8"));
        }
        Ok(BorderSummary {
            domain: u("domain")? as u32,
            seq: u("seq")?,
            gateway: u("gateway")? as u32,
            level: level as u8,
            received: u("received")?,
            lost: u("lost")?,
            bytes: u("bytes")?,
            congested_nodes: u("congested_nodes")?,
            capacity_bits: u("capacity_bits")?,
        })
    }
}

/// One federated domain: its own pipeline state over its own session tree.
pub struct Domain {
    /// Domain ordinal (also the session id the domain runs internally).
    pub id: u32,
    /// Gateway node id in the parent topology; assigned by
    /// [`Federation::new`] from the domain's position.
    gateway: NodeId,
    state: AlgorithmState,
    tree: SessionTree,
    spec: LayerSpec,
    registry: Vec<(AppId, NodeId, SessionId)>,
}

impl Domain {
    /// A domain running `tree`/`spec` for the receivers in `registry`.
    /// The domain's internal session id is always `SessionId(0)` — ids are
    /// domain-local, exactly like a real per-domain controller's.
    pub fn new(
        id: u32,
        cfg: Config,
        seed: u64,
        tree: SessionTree,
        spec: LayerSpec,
        registry: Vec<(AppId, NodeId, SessionId)>,
    ) -> Self {
        Domain {
            id,
            gateway: NodeId(u32::MAX),
            state: AlgorithmState::new(
                cfg,
                derive_stream_seed(seed, "federation/domain", id as u64),
            ),
            tree,
            spec,
            registry,
        }
    }

    /// Receivers registered in this domain.
    pub fn receivers(&self) -> usize {
        self.registry.len()
    }

    /// The domain's pipeline state (diagnostics / tests).
    pub fn state(&self) -> &AlgorithmState {
        &self.state
    }

    /// Distill one interval into the border digest the parent folds.
    fn summarize(
        &self,
        seq: u64,
        reports: &[ReceiverReport],
        out: &AlgorithmOutputs,
    ) -> BorderSummary {
        let capacity = out.estimated_links.iter().map(|&(_, c)| c).fold(f64::INFINITY, f64::min);
        BorderSummary {
            domain: self.id,
            seq,
            gateway: self.gateway.0,
            level: out.root_supply.first().copied().unwrap_or(1),
            received: reports.iter().map(|r| r.received).sum(),
            lost: reports.iter().map(|r| r.lost).sum(),
            bytes: reports.iter().map(|r| r.bytes).max().unwrap_or(0),
            congested_nodes: out.congested_nodes as u64,
            capacity_bits: capacity.to_bits(),
        }
    }
}

/// Everything one federation interval produced.
#[derive(Clone, Debug)]
pub struct FederationInterval {
    /// Per-domain pipeline outputs, in domain order.
    pub domain_outputs: Vec<AlgorithmOutputs>,
    /// The border summaries the domains shipped (post wire round-trip).
    pub summaries: Vec<BorderSummary>,
    /// The parent aggregator's own pipeline outputs over the fold.
    pub parent: AlgorithmOutputs,
    /// Border caps now in force — computed this interval, binding the
    /// *next* one (`caps[i]` is domain `i`'s root ceiling).
    pub caps: Vec<u8>,
}

impl FederationInterval {
    /// Order-sensitive splitmix64 digest of everything observable in the
    /// interval — what `tests/baselines.rs` pins.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xfeed_b0bd_ea11_ca11u64;
        for out in &self.domain_outputs {
            for s in &out.suggestions {
                h = mix(
                    h,
                    ((s.receiver.0 as u64) << 32) | ((s.session.0 as u64) << 8) | s.level as u64,
                );
            }
            for &lv in &out.root_supply {
                h = mix(h, lv as u64);
            }
        }
        for s in &self.summaries {
            for b in s.encode().as_bytes() {
                h = mix(h, *b as u64);
            }
        }
        for s in &self.parent.suggestions {
            h = mix(h, ((s.receiver.0 as u64) << 32) | s.level as u64);
        }
        for &c in &self.caps {
            h = mix(h, c as u64);
        }
        h
    }
}

fn mix(h: u64, v: u64) -> u64 {
    let mut z = h.wrapping_add(v).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The federated control plane: `k` sharded domains plus the parent
/// aggregator that folds their border summaries and hands back caps.
pub struct Federation {
    domains: Vec<Domain>,
    parent: AlgorithmState,
    parent_tree: SessionTree,
    parent_spec: LayerSpec,
    parent_registry: Vec<(AppId, NodeId, SessionId)>,
    caps: Vec<u8>,
    seq: u64,
    telemetry: Telemetry,
    flight: FlightRecorder,
    summaries_sent: u64,
    border_folds: u64,
}

impl Federation {
    /// Assemble a federation over `domains`. The parent core topology is
    /// `src(0) — core(1) — gateway(2+i)` for domain `i`: one shared core
    /// link above every gateway, so core saturation caps all domains while
    /// a single slow gateway caps only its own.
    pub fn new(cfg: Config, seed: u64, mut domains: Vec<Domain>, parent_spec: LayerSpec) -> Self {
        assert!(!domains.is_empty(), "a federation needs at least one domain");
        let k = domains.len();
        let mut links = Vec::with_capacity(1 + k);
        let mut active = Vec::with_capacity(1 + k);
        links.push(LinkView { id: DirLinkId(0), from: NodeId(0), to: NodeId(1) });
        active.push(DirLinkId(0));
        let mut members = Vec::with_capacity(k);
        for (i, d) in domains.iter_mut().enumerate() {
            let gw = NodeId(2 + i as u32);
            d.gateway = gw;
            links.push(LinkView { id: DirLinkId(1 + i as u32), from: NodeId(1), to: gw });
            active.push(DirLinkId(1 + i as u32));
            members.push(gw);
        }
        let view = TopologyView {
            time: SimTime::ZERO,
            links,
            groups: vec![GroupSnapshot {
                group: GroupId(0),
                root: NodeId(0),
                active_links: active,
                member_nodes: members.clone(),
            }],
        };
        let parent_tree = SessionTree::build(&view, SessionId(0), &[GroupId(0)])
            .expect("parent core topology is a valid tree");
        let parent_registry: Vec<(AppId, NodeId, SessionId)> = domains
            .iter()
            .map(|d| (AppId(BORDER_APP_BASE + d.id), d.gateway, SessionId(0)))
            .collect();
        Federation {
            caps: vec![u8::MAX; k],
            domains,
            parent: AlgorithmState::new(cfg, derive_stream_seed(seed, "federation/parent", 0)),
            parent_tree,
            parent_spec,
            parent_registry,
            seq: 0,
            telemetry: Telemetry::disabled(),
            flight: FlightRecorder::new(256),
            summaries_sent: 0,
            border_folds: 0,
        }
    }

    /// Route `federation.*` counters into `telemetry`.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self.telemetry.set("federation.domains", self.domains.len() as u64);
        self
    }

    /// Number of federated domains.
    pub fn domains(&self) -> usize {
        self.domains.len()
    }

    /// The domains themselves (diagnostics / tests).
    pub fn domain(&self, i: usize) -> &Domain {
        &self.domains[i]
    }

    /// Border caps currently in force (`u8::MAX` = uncapped).
    pub fn caps(&self) -> &[u8] {
        &self.caps
    }

    /// Completed federation intervals.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Border summaries shipped so far (k per interval).
    pub fn summaries_sent(&self) -> u64 {
        self.summaries_sent
    }

    /// Summaries the parent folded into its pipeline so far.
    pub fn border_folds(&self) -> u64 {
        self.border_folds
    }

    /// The control-plane flight recorder (border events land here).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Run one federated control interval: domains in parallel under last
    /// interval's caps, then the parent fold, then the cap handback.
    /// `reports[i]` is domain `i`'s report batch for the window.
    pub fn run_interval(
        &mut self,
        now: SimTime,
        interval: SimDuration,
        reports: Vec<Vec<ReceiverReport>>,
    ) -> FederationInterval {
        assert_eq!(reports.len(), self.domains.len(), "one report batch per domain");
        let seq = self.seq;

        // Per-domain pipelines, in parallel. The deterministic parallel
        // iterator reassembles results in input order, so the interval is
        // byte-identical at any thread count. Domains move into the
        // closure and come back out — no shared mutable state.
        let work: Vec<(Domain, Vec<ReceiverReport>, u8)> = std::mem::take(&mut self.domains)
            .into_iter()
            .zip(reports)
            .zip(self.caps.iter().copied())
            .map(|((d, r), c)| (d, r, c))
            .collect();
        let ran: Vec<(Domain, AlgorithmOutputs, BorderSummary)> = work
            .into_par_iter()
            .map(move |(mut d, reports, cap)| {
                d.state.set_border_caps(&[(SessionId(0), cap)]);
                let trees = std::slice::from_ref(&d.tree);
                let specs = [&d.spec];
                let inputs = AlgorithmInputs {
                    now,
                    interval,
                    trees,
                    specs: &specs,
                    registry: &d.registry,
                    reports: &reports,
                };
                let out = d.state.run_incremental(&inputs);
                let summary = d.summarize(seq, &reports, &out);
                (d, out, summary)
            })
            .collect();

        let mut domain_outputs = Vec::with_capacity(ran.len());
        let mut summaries = Vec::with_capacity(ran.len());
        for (d, out, summary) in ran {
            // The border protocol's wire round-trip: what the parent folds
            // is the decoded canonical JSON, never the in-memory struct,
            // so a schema drift fails loudly here and not in a replica.
            let decoded = BorderSummary::decode(&summary.encode())
                .expect("border summary must round-trip its own wire form");
            debug_assert_eq!(decoded, summary);
            self.flight.note(
                now.nanos(),
                "border_summary",
                seq,
                format!(
                    "domain {} level {} loss {}/{} bytes {}",
                    decoded.domain,
                    decoded.level,
                    decoded.lost,
                    decoded.received + decoded.lost,
                    decoded.bytes
                ),
            );
            self.domains.push(d);
            domain_outputs.push(out);
            summaries.push(decoded);
        }
        self.summaries_sent += summaries.len() as u64;
        self.telemetry.incr("federation.summaries_sent", summaries.len() as u64);

        // The fold: each domain becomes one synthetic receiver at its
        // gateway, and the parent runs the ordinary five-stage pipeline
        // over them — child congestion enters parent stage-1, gateway
        // throughput feeds parent stage-2 usage, and the parent's supply
        // is the federation-consistent ceiling per gateway.
        let folded: Vec<ReceiverReport> = summaries
            .iter()
            .map(|s| ReceiverReport {
                receiver: AppId(BORDER_APP_BASE + s.domain),
                node: NodeId(s.gateway),
                session: SessionId(0),
                level: s.level,
                received: s.received,
                lost: s.lost,
                bytes: s.bytes,
            })
            .collect();
        let trees = std::slice::from_ref(&self.parent_tree);
        let specs = [&self.parent_spec];
        let inputs = AlgorithmInputs {
            now,
            interval,
            trees,
            specs: &specs,
            registry: &self.parent_registry,
            reports: &folded,
        };
        let parent = self.parent.run_incremental(&inputs);
        self.border_folds += folded.len() as u64;
        self.telemetry.incr("federation.border_folds", folded.len() as u64);

        // Hand back next interval's caps from the parent's per-gateway
        // supply. Computed at interval n, binding at n + 1: the one-hop
        // lag is the federation's propagation delay.
        for s in &parent.suggestions {
            let domain = s.receiver.0.wrapping_sub(BORDER_APP_BASE) as usize;
            if let Some(cap) = self.caps.get_mut(domain) {
                *cap = s.level;
            }
        }
        self.flight.note(
            now.nanos(),
            "border_fold",
            seq,
            format!(
                "folded {} summaries, caps [{}]",
                summaries.len(),
                self.caps
                    .iter()
                    .map(|c| if *c == u8::MAX { "-".into() } else { c.to_string() })
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        );
        self.telemetry.set("federation.domains", self.domains.len() as u64);
        self.seq += 1;
        FederationInterval { domain_outputs, summaries, parent, caps: self.caps.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BorderSummary {
        BorderSummary {
            domain: 3,
            seq: 17,
            gateway: 5,
            level: 4,
            received: 9_000,
            lost: 250,
            bytes: 120_000,
            congested_nodes: 12,
            capacity_bits: 150_000.0f64.to_bits(),
        }
    }

    /// A tiny two-leaf domain tree (root 0 — {1, 2}).
    fn tiny_domain_tree() -> (SessionTree, Vec<NodeId>) {
        let leaves = vec![NodeId(1), NodeId(2)];
        let view = TopologyView {
            time: SimTime::ZERO,
            links: vec![
                LinkView { id: DirLinkId(0), from: NodeId(0), to: NodeId(1) },
                LinkView { id: DirLinkId(1), from: NodeId(0), to: NodeId(2) },
            ],
            groups: vec![GroupSnapshot {
                group: GroupId(0),
                root: NodeId(0),
                active_links: vec![DirLinkId(0), DirLinkId(1)],
                member_nodes: leaves.clone(),
            }],
        };
        (SessionTree::build(&view, SessionId(0), &[GroupId(0)]).unwrap(), leaves)
    }

    fn tiny_domain(id: u32, seed: u64) -> (Domain, Vec<NodeId>) {
        let (tree, leaves) = tiny_domain_tree();
        let registry: Vec<(AppId, NodeId, SessionId)> = leaves
            .iter()
            .enumerate()
            .map(|(i, &n)| (AppId(100 * id + i as u32), n, SessionId(0)))
            .collect();
        (
            Domain::new(id, Config::default(), seed, tree, LayerSpec::paper_default(), registry),
            leaves,
        )
    }

    fn clean_reports(id: u32, leaves: &[NodeId], level: u8) -> Vec<ReceiverReport> {
        leaves
            .iter()
            .enumerate()
            .map(|(i, &node)| ReceiverReport {
                receiver: AppId(100 * id + i as u32),
                node,
                session: SessionId(0),
                level,
                received: 100,
                lost: 0,
                bytes: 25_000,
            })
            .collect()
    }

    #[test]
    fn border_summary_round_trip_is_identity() {
        let s = sample();
        let text = s.encode();
        let back = BorderSummary::decode(&text).expect("decodes");
        assert_eq!(back, s);
        assert_eq!(back.encode(), text, "canonical rendering is stable");
    }

    #[test]
    fn border_summary_rejects_bad_documents() {
        let s = sample();
        let bad_schema = s.encode().replace(SCHEMA, "toposense.border.v0");
        assert!(BorderSummary::decode(&bad_schema).unwrap_err().contains("schema mismatch"));
        assert!(BorderSummary::decode("not json").is_err());
        assert!(BorderSummary::decode("{}").is_err());
        let no_level = s.encode().replace("\"level\":4,", "");
        assert!(BorderSummary::decode(&no_level).unwrap_err().contains("level"));
    }

    #[test]
    fn border_cap_binds_the_domain_root_supply() {
        // A domain that believes in the moon (no loss anywhere) still may
        // not out-subscribe its border cap: the cap clamps the root slot
        // of stage 5 and the top-down supply pass carries it everywhere.
        let (tree, leaves) = tiny_domain_tree();
        let spec = LayerSpec::paper_default();
        let registry: Vec<(AppId, NodeId, SessionId)> =
            leaves.iter().enumerate().map(|(i, &n)| (AppId(i as u32), n, SessionId(0))).collect();
        let mut capped = AlgorithmState::new(Config::default(), 9);
        let mut free = AlgorithmState::new(Config::default(), 9);
        capped.set_border_caps(&[(SessionId(0), 2)]);
        let mut level = 1u8;
        let mut free_level = 1u8;
        for round in 1..=12u64 {
            let reports: Vec<ReceiverReport> = leaves
                .iter()
                .enumerate()
                .map(|(i, &node)| ReceiverReport {
                    receiver: AppId(i as u32),
                    node,
                    session: SessionId(0),
                    level,
                    received: 100,
                    lost: 0,
                    bytes: 25_000,
                })
                .collect();
            let trees = std::slice::from_ref(&tree);
            let specs = [&spec];
            let inputs = AlgorithmInputs {
                now: SimTime::from_secs(2 * round),
                interval: SimDuration::from_secs(2),
                trees,
                specs: &specs,
                registry: &registry,
                reports: &reports,
            };
            let out = capped.run_incremental(&inputs);
            assert!(out.root_supply[0] <= 2, "cap 2 violated: {}", out.root_supply[0]);
            assert!(out.suggestions.iter().all(|s| s.level <= 2));
            if let Some(s) = out.suggestions.first() {
                level = s.level;
            }
            let mut free_reports = reports.clone();
            for r in &mut free_reports {
                r.level = free_level;
            }
            let free_inputs = AlgorithmInputs { reports: &free_reports, ..inputs };
            let free_out = free.run_incremental(&free_inputs);
            if let Some(s) = free_out.suggestions.first() {
                free_level = s.level;
            }
        }
        assert!(
            free_level > 2,
            "uncapped twin must climb past the cap (got {free_level}) or the cap test is vacuous"
        );
        assert_eq!(level, 2, "capped domain settles exactly at the cap");
    }

    #[test]
    fn federation_interval_is_deterministic_and_counts() {
        let go = || {
            let domains: Vec<Domain> = (0..3).map(|i| tiny_domain(i, 7).0).collect();
            let leaves = tiny_domain(0, 7).1;
            let mut fed =
                Federation::new(Config::default(), 7, domains, LayerSpec::paper_default());
            let mut fps = Vec::new();
            for round in 1..=4u64 {
                let reports: Vec<Vec<ReceiverReport>> =
                    (0..3).map(|i| clean_reports(i, &leaves, 1)).collect();
                let out = fed.run_interval(
                    SimTime::from_secs(2 * round),
                    SimDuration::from_secs(2),
                    reports,
                );
                fps.push(out.fingerprint());
            }
            (fps, fed.summaries_sent(), fed.border_folds(), fed.seq())
        };
        let (a, sent, folds, seq) = go();
        let (b, ..) = go();
        assert_eq!(a, b, "federation interval must be bit-reproducible");
        assert_eq!(sent, 12, "3 domains x 4 intervals");
        assert_eq!(folds, 12);
        assert_eq!(seq, 4);
    }

    #[test]
    fn federation_counters_and_flight_events_are_wired() {
        let tel = Telemetry::collecting();
        let domains: Vec<Domain> = (0..2).map(|i| tiny_domain(i, 3).0).collect();
        let leaves = tiny_domain(0, 3).1;
        let mut fed = Federation::new(Config::default(), 3, domains, LayerSpec::paper_default())
            .with_telemetry(tel.clone());
        for round in 1..=2u64 {
            let reports: Vec<Vec<ReceiverReport>> =
                (0..2).map(|i| clean_reports(i, &leaves, 1)).collect();
            fed.run_interval(SimTime::from_secs(2 * round), SimDuration::from_secs(2), reports);
        }
        let counters = tel.counters_snapshot();
        let get = |name: &str| counters.iter().find(|(k, _)| k == name).map(|&(_, v)| v);
        assert_eq!(get("federation.summaries_sent"), Some(4));
        assert_eq!(get("federation.border_folds"), Some(4));
        assert_eq!(get("federation.domains"), Some(2));
        let kinds: Vec<&str> = fed.flight().occurrences().iter().map(|o| o.kind).collect();
        assert!(kinds.contains(&"border_summary"));
        assert!(kinds.contains(&"border_fold"));
    }
}
