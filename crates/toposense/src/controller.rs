//! The per-domain controller agent.
//!
//! The controller is an ordinary application on an ordinary node (the paper
//! stations it at a source node, so its suggestion traffic shares links —
//! and fate — with the media). Every interval it:
//!
//! 1. records a ground-truth topology snapshot into its [`DiscoveryTool`]
//!    and queries the tool back — receiving a snapshot at least
//!    `staleness` old, which is the paper's model of real discovery tools;
//! 2. overlays the per-layer trees into per-session [`SessionTree`]s;
//! 3. runs the five-stage algorithm over the trees and the receivers'
//!    accumulated loss reports;
//! 4. unicasts a [`Suggestion`] to every registered receiver.
//!
//! # Failure hardening (DESIGN.md §9)
//!
//! The controller survives the fault model of `netsim::faults`:
//!
//! * **Silent receivers** are quarantined after `quarantine_after` (their
//!   stale data and suggestion slots are withheld) and evicted after
//!   `evict_after`; a single report re-admits them.
//! * **Discovery outages** degrade to the last-known-good topology for up
//!   to `max_degradation_age`, after which suggestions are suspended until
//!   the tool answers again. Partial answers are used as-is: receivers the
//!   tool cannot see are simply not steered this interval.
//! * **Controller crashes** are covered by an optional warm standby: the
//!   active controller heartbeats its peer every interval and mirrors
//!   registry changes to it; the standby takes over after `failover_after`
//!   of beacon silence and re-ACKs every receiver so reports follow it. A
//!   restarted ex-primary comes back as the standby (roles swap, they never
//!   fight), and a transient dual-active resolves toward the smaller node
//!   id.

use crate::algorithm::{
    AlgorithmInputs, AlgorithmOutputs, AlgorithmState, ReceiverReport, SuggestionOut,
};
use crate::checkpoint::Snapshot;
use crate::config::Config;
use crate::messages::{
    CheckpointTransfer, Deregister, Heartbeat, Register, RegisterAck, ReplicaAck, ReplicateInputs,
    Report, Suggestion,
};
use crate::replication::{fingerprint_outputs, AckVerdict, ReplicaTracker};
use crate::sync::lock_or_recover;
use netsim::{App, AppId, ControlBody, Ctx, NodeId, SessionId, SimDuration, SimTime};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use telemetry::{FlightRecorder, IntervalAudit, Record, Telemetry};
use topology::discovery::{DiscoveryTool, SnapshotError, TopologyView};
use topology::SessionTree;
use traffic::{LayerSpec, SessionCatalog};

const TOKEN_TICK: u64 = 1;
const TOKEN_SEND: u64 = 2;

/// Control-plane flight-recorder depth: the last N interval/replication
/// occurrences survive for black-box dumps.
const FLIGHT_CAP: usize = 128;

/// Gap between consecutive suggestion packets. Sending the whole batch
/// back-to-back would tail-drop the same receivers' suggestions every
/// interval at a congested link; spacing them shares the risk.
const SEND_SPACING: SimDuration = SimDuration(25_000_000);

/// Observable controller state, shared with the harness.
#[derive(Clone, Debug, Default)]
pub struct ControllerShared {
    /// Algorithm intervals completed.
    pub intervals: u64,
    /// Suggestions sent (packets).
    pub suggestions_sent: u64,
    /// Registered receivers at last interval.
    pub registered: usize,
    /// Congested node-count history `(time, count)`.
    pub congestion_series: Vec<(SimTime, usize)>,
    /// Capacity-estimate history: one `(time, link, bits/s)` entry per
    /// finitely-estimated link per interval (for estimator-accuracy
    /// studies against ground truth).
    pub estimate_series: Vec<(SimTime, netsim::DirLinkId, f64)>,
    /// Last run's diagnostics.
    pub last_outputs: Option<AlgorithmOutputs>,
    /// Every interval's applied suggestions `(time, suggestions)` — the
    /// ground truth the telemetry audit trail is cross-checked against.
    pub suggestion_series: Vec<(SimTime, Vec<SuggestionOut>)>,
    /// Intervals run on last-known-good topology (discovery unavailable).
    pub degraded_intervals: u64,
    /// Intervals skipped because even last-known-good was too old.
    pub suspended_intervals: u64,
    /// Intervals run on a partial discovery answer.
    pub partial_intervals: u64,
    /// Receivers currently quarantined for silence.
    pub quarantined: usize,
    /// Receivers evicted for prolonged silence (cumulative).
    pub evicted: u64,
    /// Registration acknowledgements sent.
    pub acks_sent: u64,
    /// When this controller took over from a failed peer, if it did.
    pub failover_at: Option<SimTime>,
    /// Replicated input batches this controller applied while standing by.
    pub replica_applied: u64,
    /// Matching fingerprint acks this controller received while active.
    pub replica_acks: u64,
    /// Fingerprint mismatches caught by the cross-check while active.
    pub replica_divergences: u64,
    /// Whether the peer replica is quarantined (divergence detected).
    pub replica_quarantined: bool,
    /// Checkpoint resyncs served (active) or applied (standing by).
    pub replica_resyncs: u64,
    /// Last-N control-plane occurrences (interval start/end, fallback,
    /// quarantine, takeover, checkpoint) for black-box dumps.
    pub flight: FlightRecorder,
}

/// Handle for reading controller stats after a run.
pub type ControllerHandle = Arc<Mutex<ControllerShared>>;

#[derive(Clone, Copy, Debug, Default)]
struct Pending {
    level: u8,
    received: u64,
    lost: u64,
    bytes: u64,
    last_at: Option<SimTime>,
    /// Cause id of the most recent report folded into this entry.
    cause: u64,
}

/// The controller application.
pub struct Controller {
    catalog: Arc<SessionCatalog>,
    cfg: Config,
    state: AlgorithmState,
    discovery: DiscoveryTool,
    /// receiver -> (node, session).
    registry: HashMap<AppId, (NodeId, SessionId)>,
    /// Reports received but not yet *visible*: the paper's staleness knob
    /// ages "topology and loss information", so reports pass through the
    /// same delay as discovery snapshots.
    inbox: std::collections::VecDeque<(SimTime, Report)>,
    /// Reports accumulated since the last interval (already aged).
    pending: HashMap<AppId, Pending>,
    /// Latest causal-trace id per receiver ([`crate::messages::cause_id`]),
    /// kept OUT of [`ReceiverReport`] so the ever-changing id never dirties
    /// the incremental pipeline's slot cache.
    cause_of: HashMap<AppId, u64>,
    /// Most recent interval data per receiver, reused when reports are lost.
    last_known: HashMap<AppId, (SimTime, ReceiverReport)>,
    /// Administrative-domain filter (Fig. 3): when set, the controller
    /// only sees — and manages — the subtree inside these nodes.
    domain: Option<std::collections::HashSet<NodeId>>,
    /// Suggestions awaiting their (staggered) send slot.
    outbox: Vec<(NodeId, Suggestion)>,
    rng: netsim::RngStream,
    shared: ControllerHandle,
    /// The node this controller runs on (known from `on_start`).
    my_node: Option<NodeId>,
    /// Warm-standby peer: the standby's node when active, the active
    /// controller's node when standing by.
    peer: Option<NodeId>,
    /// False while standing by: tick only keeps the archive warm and
    /// watches the peer's heartbeats.
    active: bool,
    /// When each registered receiver was last heard from (register, report
    /// or deregister all count).
    last_heard: HashMap<AppId, SimTime>,
    /// Last successfully queried topology, kept for degraded operation
    /// while the discovery tool is unavailable.
    last_good: Option<TopologyView>,
    /// Last heartbeat from the peer (standing by only).
    last_heartbeat_at: Option<SimTime>,
    /// The algorithm seed this controller was created with; replicated to
    /// the peer in each input batch so a replica joining at seq 0 can
    /// re-seed its pipeline into a byte-exact twin.
    algo_seed: u64,
    /// Outstanding `(seq, fingerprint)` window for the ack cross-check
    /// (active role only).
    repl_tracker: ReplicaTracker,
    /// Next input-batch seq this replica expects (standing-by role only);
    /// `None` until the first batch or checkpoint lands.
    repl_next_seq: Option<u64>,
    /// Set when the peer's ack fingerprint diverged: the primary stops
    /// replicating to it (its state can no longer be trusted).
    repl_peer_quarantined: bool,
    /// Telemetry handle: decision audit records, stage timers and counters
    /// flow through here. Disabled by default — a disabled handle is inert
    /// and the control decisions are byte-identical either way.
    telemetry: Telemetry,
}

impl Controller {
    /// Create a controller with a discovery tool of the given `staleness`.
    pub fn new(
        catalog: Arc<SessionCatalog>,
        cfg: Config,
        staleness: SimDuration,
        seed: u64,
    ) -> (Self, ControllerHandle) {
        cfg.validate();
        let shared: ControllerHandle = Arc::default();
        lock_or_recover(&shared).flight = FlightRecorder::new(FLIGHT_CAP);
        let c = Controller {
            catalog,
            cfg,
            state: AlgorithmState::new(cfg, seed),
            discovery: DiscoveryTool::new(staleness),
            registry: HashMap::new(),
            inbox: std::collections::VecDeque::new(),
            pending: HashMap::new(),
            cause_of: HashMap::new(),
            last_known: HashMap::new(),
            domain: None,
            outbox: Vec::new(),
            rng: netsim::RngStream::derive(seed, "toposense/controller"),
            shared: Arc::clone(&shared),
            my_node: None,
            peer: None,
            active: true,
            last_heard: HashMap::new(),
            last_good: None,
            last_heartbeat_at: None,
            algo_seed: seed,
            repl_tracker: ReplicaTracker::default(),
            repl_next_seq: None,
            repl_peer_quarantined: false,
            telemetry: Telemetry::disabled(),
        };
        (c, shared)
    }

    /// Attach a telemetry handle: every interval then emits one audit
    /// record per pipeline stage, feeds the stage-timer histograms, and
    /// maintains operational counters. Telemetry is a pure observer — the
    /// controller's decisions are identical with or without it.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Pair this controller with a warm standby (or, combined with
    /// [`Controller::as_standby`], with the active controller) at `node`.
    pub fn with_peer(mut self, node: NodeId) -> Self {
        self.peer = Some(node);
        self
    }

    /// Start passive: keep the discovery archive warm, mirror the registry,
    /// and take over when the peer's heartbeats stop for `failover_after`.
    pub fn as_standby(mut self) -> Self {
        self.active = false;
        self
    }

    /// Schedule a total discovery outage: queries in `[from, until)` find
    /// the tool unavailable (DESIGN.md §9 degradation path).
    pub fn with_discovery_outage(mut self, from: SimTime, until: SimTime) -> Self {
        self.discovery.add_outage(from, until);
        self
    }

    /// Schedule a partial discovery outage: queries in `[from, until)` see
    /// a view with the `hidden` subtrees missing.
    pub fn with_discovery_partial_outage(
        mut self,
        from: SimTime,
        until: SimTime,
        hidden: Vec<NodeId>,
    ) -> Self {
        self.discovery.add_partial_outage(from, until, hidden);
        self
    }

    /// Restrict this controller to one administrative domain (Fig. 3's
    /// hierarchical control model): topology snapshots are clipped to
    /// `nodes`, the session roots re-base onto the domain ingress, and the
    /// controller manages only the receivers that register with it.
    pub fn with_domain(mut self, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        self.domain = Some(nodes.into_iter().collect());
        self
    }

    /// Direct access to the algorithm state (tests, experiments).
    pub fn algorithm(&self) -> &AlgorithmState {
        &self.state
    }

    /// Install per-session border caps from a federation parent
    /// (DESIGN.md §16): root-level ceilings the next interval's stage 5
    /// honors. Caps are per-interval external inputs — the aggregator
    /// re-sends them each interval — and are forwarded to an input-synced
    /// replica with the rest of the interval's inputs.
    pub fn apply_border_caps(&mut self, caps: &[(SessionId, u8)]) {
        self.state.set_border_caps(caps);
    }

    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        lock_or_recover(&self.shared).flight.note(
            now.nanos(),
            "interval_start",
            self.state.runs(),
            "",
        );
        // Hard deadlines first: forget receivers silent past evict_after.
        let evicted = self.sweep_silent(now);
        // 0. Age the loss reports: only reports older than the staleness
        // window become visible this interval (Fig. 10 ages "topology and
        // loss information" together).
        let visible_until = now.saturating_sub(self.discovery.staleness());
        while let Some(&(t, _)) = self.inbox.front() {
            if t > visible_until {
                break;
            }
            let (_, r) = self.inbox.pop_front().expect("front just peeked");
            if self.telemetry.is_enabled() {
                // First hop of the causal chain: the report became visible
                // to this interval. t_ns is the window close, so the chain
                // reads in report-time order.
                self.telemetry.emit(&Record::Trace {
                    seq: self.state.runs(),
                    t_ns: r.time.nanos(),
                    phase: "report".into(),
                    session: r.session.0 as u64,
                    receiver: r.receiver.0 as u64,
                    cause: r.cause,
                    level: r.level as u64,
                });
            }
            let p = self.pending.entry(r.receiver).or_default();
            p.level = r.level;
            p.received += r.received;
            p.lost += r.lost;
            p.bytes += r.bytes;
            p.last_at = Some(r.time);
            p.cause = r.cause;
        }

        // 1. Record ground truth (clipped to this controller's domain),
        // query through the staleness filter and the tool's fault schedule.
        let view = TopologyView::capture(ctx.network(), now);
        let view = match &self.domain {
            Some(domain) => view.restrict(domain),
            None => view,
        };
        self.discovery.record(view);
        let mut degraded = false;
        let mut partial = false;
        let view: TopologyView = match self.discovery.query_checked(now) {
            // Cold start: nothing captured yet — no tree, no suggestions.
            Ok(None) => return,
            Ok(Some(v)) => {
                let v = v.clone();
                self.last_good = Some(v.clone());
                v
            }
            Err(SnapshotError::Partial(v)) => {
                // Steer whoever the tool can still see. The partial view is
                // NOT promoted to last-known-good: that would read as the
                // hidden subtree having departed.
                partial = true;
                v
            }
            Err(SnapshotError::Unavailable) => match &self.last_good {
                // Degrade to last-known-good while it is fresh enough.
                Some(v) if now.since(v.time) <= self.cfg.max_degradation_age => {
                    degraded = true;
                    v.clone()
                }
                // Too old (or never had one): suspend suggestions outright
                // rather than steer on fiction.
                _ => {
                    self.telemetry.incr("controller.suspended_intervals", 1);
                    self.telemetry.incr("controller.evictions", evicted);
                    let mut sh = lock_or_recover(&self.shared);
                    sh.suspended_intervals += 1;
                    sh.evicted += evicted;
                    sh.flight.note(now.nanos(), "fallback", self.state.runs(), "suspended");
                    return;
                }
            },
        };

        // 2. Per-session overlay trees. Transiently inconsistent snapshots
        // (a node with two parents mid-regraft) skip the session this round.
        let mut trees: Vec<SessionTree> = Vec::with_capacity(self.catalog.len());
        for def in self.catalog.iter() {
            if let Ok(t) = SessionTree::build(&view, def.id, &def.groups) {
                trees.push(t);
            }
        }
        let specs: Vec<&LayerSpec> =
            trees.iter().map(|t| &self.catalog.get(t.session()).spec).collect();

        // 3. Assemble the interval's reports: fresh data, else the most
        // recent report if it is not too old (reports can be lost).
        // Receivers silent past quarantine_after are withheld entirely —
        // their data is stale and a suggestion to them is likely wasted.
        // Sorted by receiver id so nothing downstream depends on hash-map
        // iteration order (determinism).
        let quarantine_cutoff = now.saturating_sub(self.cfg.quarantine_after);
        let mut registry: Vec<(AppId, NodeId, SessionId)> = self
            .registry
            .iter()
            .filter(|(a, _)| self.last_heard.get(a).is_some_and(|&t| t >= quarantine_cutoff))
            .map(|(&a, &(n, s))| (a, n, s))
            .collect();
        registry.sort_unstable_by_key(|&(a, _, _)| a);
        let quarantined = self.registry.len() - registry.len();
        let mut reports: Vec<ReceiverReport> = Vec::with_capacity(self.registry.len());
        for &(app, node, session) in &registry {
            if let Some(p) = self.pending.remove(&app) {
                let r = ReceiverReport {
                    receiver: app,
                    node,
                    session,
                    level: p.level,
                    received: p.received,
                    lost: p.lost,
                    bytes: p.bytes,
                };
                // The cause id travels alongside — never inside — the
                // ReceiverReport, so the incremental pipeline's slot cache
                // never sees it change.
                self.cause_of.insert(app, p.cause);
                self.last_known.insert(app, (now, r));
                reports.push(r);
            } else if let Some(&(t, r)) = self.last_known.get(&app) {
                if now.since(t) <= self.cfg.interval * 2 {
                    reports.push(r);
                }
            }
        }

        // 4. Run the algorithm and send the suggestions.
        let inputs = AlgorithmInputs {
            now,
            interval: self.cfg.interval,
            trees: &trees,
            specs: &specs,
            registry: &registry,
            reports: &reports,
        };
        // With telemetry attached, the same run also fills a decision
        // audit: one record per stage, stamped with this interval's
        // sequence number and (simulated) time.
        let mut audit =
            self.telemetry.is_enabled().then(|| IntervalAudit::new(self.state.runs(), now.nanos()));
        // The interval's replication seq is the completed-run count before
        // the run: a replica applying seq `n` goes from `n` to `n + 1`.
        let seq = self.state.runs();
        let outputs = if self.cfg.incremental {
            self.state.run_incremental_audited(&inputs, audit.as_mut())
        } else {
            self.state.run_audited(&inputs, audit.as_mut())
        };
        if let Some(a) = &audit {
            for record in a.records() {
                self.telemetry.emit(&record);
            }
            // Wall-clock kernel spans live only in the timer registry —
            // never in the deterministic audit records.
            for &(stage, ns) in &a.stage_ns {
                self.telemetry.record_span_ns(stage, ns);
            }
        }
        // Queue suggestions in a random order and send them spaced out:
        // a fixed back-to-back burst would tail-drop the same receivers'
        // suggestions at a congested link every single interval.
        self.outbox.clear();
        let my_node = ctx.node_id();
        for s in &outputs.suggestions {
            let Some(&(node, _)) = self.registry.get(&s.receiver) else { continue };
            let cause = self.cause_of.get(&s.receiver).copied().unwrap_or(0);
            if self.telemetry.is_enabled() {
                self.telemetry.emit(&Record::Trace {
                    seq,
                    t_ns: now.nanos(),
                    phase: "decide".into(),
                    session: s.session.0 as u64,
                    receiver: s.receiver.0 as u64,
                    cause,
                    level: s.level as u64,
                });
            }
            let sug = Suggestion {
                receiver: s.receiver,
                session: s.session,
                level: s.level,
                time: now,
                from: my_node,
                cause,
            };
            let at = self.rng.range_u64(0, self.outbox.len() as u64 + 1) as usize;
            self.outbox.insert(at, (node, sug));
        }
        if !self.outbox.is_empty() {
            ctx.set_timer(SimDuration::ZERO, TOKEN_SEND);
        }
        // Beacon the warm standby.
        if let Some(peer) = self.peer {
            let hb: ControlBody = Arc::new(Heartbeat { from: my_node, time: now });
            ctx.send_control(peer, self.cfg.heartbeat_size, hb);
            // Replicate this interval's pipeline inputs (DESIGN.md §14):
            // the replica runs the same byte-deterministic pipeline over
            // them, so its AlgorithmState stays a live twin and a takeover
            // needs zero re-learning. A quarantined peer gets nothing —
            // its state already diverged.
            if self.cfg.replicate_inputs && !self.repl_peer_quarantined {
                let fingerprint = fingerprint_outputs(&outputs);
                self.repl_tracker.record(seq, fingerprint);
                let size = self.cfg.replicate_size + self.cfg.report_size * reports.len() as u32;
                let body: ControlBody = Arc::new(ReplicateInputs {
                    seq,
                    algo_seed: self.algo_seed,
                    now,
                    interval: self.cfg.interval,
                    view: view.clone(),
                    registry: registry.clone(),
                    reports: reports.clone(),
                    border_caps: self.state.border_caps().to_vec(),
                    fingerprint,
                    from: my_node,
                });
                ctx.send_control(peer, size, body);
                self.telemetry.incr("controller.replicate_sent", 1);
            }
        }

        self.telemetry.incr("controller.intervals", 1);
        self.telemetry.incr("controller.intervals_incremental", outputs.incremental as u64);
        if self.cfg.incremental && !outputs.incremental {
            self.telemetry.incr("controller.full_fallbacks", 1);
        }
        self.telemetry.incr("controller.slots_recomputed", outputs.slots_recomputed);
        self.telemetry.incr("controller.suggestions_sent", outputs.suggestions.len() as u64);
        self.telemetry.incr("controller.degraded_intervals", degraded as u64);
        self.telemetry.incr("controller.partial_intervals", partial as u64);
        self.telemetry.incr("controller.evictions", evicted);
        self.telemetry.set("controller.quarantined", quarantined as u64);
        self.telemetry.set("controller.registered", self.registry.len() as u64);

        let mut sh = lock_or_recover(&self.shared);
        sh.intervals += 1;
        sh.suggestions_sent += outputs.suggestions.len() as u64;
        sh.registered = self.registry.len();
        sh.congestion_series.push((now, outputs.congested_nodes));
        for &(l, c) in &outputs.estimated_links {
            sh.estimate_series.push((now, l, c));
        }
        sh.suggestion_series.push((now, outputs.suggestions.clone()));
        sh.last_outputs = Some(outputs);
        sh.degraded_intervals += degraded as u64;
        sh.partial_intervals += partial as u64;
        sh.quarantined = quarantined;
        sh.evicted += evicted;
        if degraded {
            sh.flight.note(now.nanos(), "fallback", seq, "degraded");
        }
        sh.flight.note(now.nanos(), "interval_end", seq, "");
    }

    /// Evict receivers silent past `evict_after`; returns how many fell.
    fn sweep_silent(&mut self, now: SimTime) -> u64 {
        let cutoff = now.saturating_sub(self.cfg.evict_after);
        let stale: Vec<AppId> = self
            .registry
            .keys()
            .copied()
            .filter(|a| self.last_heard.get(a).is_none_or(|&t| t < cutoff))
            .collect();
        for a in &stale {
            self.registry.remove(a);
            self.last_heard.remove(a);
            self.pending.remove(a);
            self.last_known.remove(a);
            self.cause_of.remove(a);
        }
        stale.len() as u64
    }

    /// Passive interval: keep the snapshot archive warm (a takeover must
    /// not cold-start discovery) and watch the peer's heartbeats.
    fn tick_standby(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let view = TopologyView::capture(ctx.network(), now);
        let view = match &self.domain {
            Some(domain) => view.restrict(domain),
            None => view,
        };
        self.discovery.record(view);
        // Startup counts as a beacon: a standby that has heard nothing yet
        // only moves after a full failover window.
        let heard = self.last_heartbeat_at.unwrap_or(SimTime::ZERO);
        if now.since(heard) > self.cfg.failover_after {
            self.take_over(ctx, now);
        }
    }

    /// Assume the active role after the peer went silent.
    fn take_over(&mut self, ctx: &mut Ctx<'_>, now: SimTime) {
        self.active = true;
        if self.repl_next_seq.is_none() {
            // Cold standby (registry mirror only, no replicated inputs):
            // it has never observed an interval through its own pipeline,
            // so force the first one through the full path.
            self.state.invalidate();
        }
        // An input-synced replica keeps its state untouched: the
        // AlgorithmState — change cache included — is a byte-exact twin of
        // the primary's as of the last applied batch, so the next interval
        // re-arms the incremental engine with at most one natural
        // `full_fallback` (when the first self-observed inputs differ from
        // the cached ones), not an invalidation storm. Either way the
        // input stream is ours to produce now.
        self.repl_next_seq = None;
        // Re-ACK every mirrored registration so the receivers redirect
        // their reports, and restart their silence clocks — nobody gets
        // evicted for quiet accrued while we were passive.
        let mut members: Vec<(AppId, NodeId)> =
            self.registry.iter().map(|(&a, &(n, _))| (a, n)).collect();
        members.sort_unstable_by_key(|&(a, _)| a);
        let acks = members.len() as u64;
        for (app, node) in members {
            self.last_heard.insert(app, now);
            let ack: ControlBody =
                Arc::new(RegisterAck { receiver: app, controller: ctx.node_id(), time: now });
            ctx.send_control(node, self.cfg.ack_size, ack);
        }
        self.telemetry.incr("controller.failovers", 1);
        self.telemetry.incr("controller.acks_sent", acks);
        let mut sh = lock_or_recover(&self.shared);
        sh.failover_at.get_or_insert(now);
        sh.acks_sent += acks;
        sh.flight.note(now.nanos(), "takeover", self.state.runs(), format!("{acks} acks"));
    }

    /// Standing-by only: apply one replicated input batch through our own
    /// pipeline and ack with our output fingerprint.
    fn apply_replicated(&mut self, ctx: &mut Ctx<'_>, m: &ReplicateInputs) {
        let my_node = ctx.node_id();
        let peer = match self.peer {
            Some(p) if p == m.from => p,
            _ => return,
        };
        // A fresh replica can only join the stream at its very beginning:
        // seq 0 carries the primary's algorithm seed, and re-seeding turns
        // this state into a byte-exact twin. Anywhere else it must resync
        // from a checkpoint.
        if self.repl_next_seq.is_none() && m.seq == 0 {
            self.state = AlgorithmState::new(self.cfg, m.algo_seed);
            self.repl_next_seq = Some(0);
        }
        match self.repl_next_seq {
            Some(next) if m.seq == next => {}
            Some(next) if m.seq < next => return, // stale duplicate
            _ => {
                // Gap (a batch was lost to congestion) or mid-stream join:
                // ask for a checkpoint resync.
                self.repl_next_seq = None;
                let ack: ControlBody =
                    Arc::new(ReplicaAck { seq: m.seq, fingerprint: None, from: my_node });
                ctx.send_control(peer, self.cfg.replica_ack_size, ack);
                return;
            }
        }
        // Overlay the session trees exactly as the primary did, from the
        // replicated view and this replica's identical catalog.
        let mut trees: Vec<SessionTree> = Vec::with_capacity(self.catalog.len());
        for def in self.catalog.iter() {
            if let Ok(t) = SessionTree::build(&m.view, def.id, &def.groups) {
                trees.push(t);
            }
        }
        let specs: Vec<&LayerSpec> =
            trees.iter().map(|t| &self.catalog.get(t.session()).spec).collect();
        // Border caps are pipeline inputs too: the twin must run under the
        // same root ceilings or its fingerprint diverges.
        self.state.set_border_caps(&m.border_caps);
        let inputs = AlgorithmInputs {
            now: m.now,
            interval: m.interval,
            trees: &trees,
            specs: &specs,
            registry: &m.registry,
            reports: &m.reports,
        };
        let out = if self.cfg.incremental {
            self.state.run_incremental(&inputs)
        } else {
            self.state.run(&inputs)
        };
        self.repl_next_seq = Some(m.seq + 1);
        let fp = fingerprint_outputs(&out);
        let ack: ControlBody =
            Arc::new(ReplicaAck { seq: m.seq, fingerprint: Some(fp), from: my_node });
        ctx.send_control(peer, self.cfg.replica_ack_size, ack);
        self.telemetry.incr("controller.replica_applied", 1);
        lock_or_recover(&self.shared).replica_applied += 1;
    }

    /// Active only: cross-check a replica's ack against our recorded
    /// fingerprint window.
    fn on_replica_ack(&mut self, ctx: &mut Ctx<'_>, a: &ReplicaAck) {
        if self.repl_peer_quarantined {
            return;
        }
        match self.repl_tracker.verdict(a.seq, a.fingerprint) {
            Some(AckVerdict::Match) => {
                self.telemetry.incr("controller.replica_acks", 1);
                self.telemetry.set("controller.replication_lag", self.repl_tracker.lag_of(a.seq));
                lock_or_recover(&self.shared).replica_acks += 1;
            }
            Some(AckVerdict::Divergent) => {
                // Silent divergence caught: the replica ran the same inputs
                // and produced different outputs. Its state can no longer
                // be trusted for takeover — quarantine it (stop
                // replicating; the heartbeat keeps flowing so it does not
                // false-failover).
                self.repl_peer_quarantined = true;
                self.telemetry.incr("controller.replica_divergences", 1);
                self.telemetry.set("controller.replica_quarantined", 1);
                let mut sh = lock_or_recover(&self.shared);
                sh.replica_divergences += 1;
                sh.replica_quarantined = true;
                sh.flight.note(
                    ctx.now().nanos(),
                    "quarantine",
                    a.seq,
                    format!("node {}", a.from.index()),
                );
            }
            Some(AckVerdict::Behind) => {
                // Bring the replica to our current state; it resumes the
                // input stream at our completed-run count. The checkpoint
                // capture is non-invalidating: serving a resync must not
                // push our own next interval onto the full path.
                let snap = self.state.checkpoint();
                let next_seq = snap.runs;
                let blob = snap.encode();
                let size = blob.len() as u32;
                let body: ControlBody =
                    Arc::new(CheckpointTransfer { next_seq, blob, from: ctx.node_id() });
                ctx.send_control(a.from, size, body);
                self.telemetry.incr("controller.replica_resyncs", 1);
                let mut sh = lock_or_recover(&self.shared);
                sh.replica_resyncs += 1;
                sh.flight.note(ctx.now().nanos(), "checkpoint", next_seq, "served");
            }
            None => {} // stale ack outside the window
        }
    }

    /// Standing-by only: restore a checkpoint transfer and rejoin the
    /// input stream at the primary's run count.
    fn apply_checkpoint(&mut self, now: SimTime, t: &CheckpointTransfer) {
        match Snapshot::decode(&t.blob).and_then(|s| AlgorithmState::restore(self.cfg, &s)) {
            Ok(state) => {
                debug_assert_eq!(state.runs(), t.next_seq);
                self.state = state;
                self.repl_next_seq = Some(t.next_seq);
                self.telemetry.incr("controller.replica_resyncs", 1);
                let mut sh = lock_or_recover(&self.shared);
                sh.replica_resyncs += 1;
                sh.flight.note(now.nanos(), "checkpoint", t.next_seq, "applied");
            }
            Err(_) => {
                // A corrupt transfer is dropped; the next batch's gap ack
                // requests another.
                self.telemetry.incr("controller.replica_resync_failures", 1);
            }
        }
    }
}

impl App for Controller {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.my_node = Some(ctx.node_id());
        if !self.active {
            // Treat startup as a beacon: don't take over before the peer
            // even had a chance to speak.
            self.last_heartbeat_at = Some(ctx.now());
        }
        ctx.set_timer(self.cfg.interval, TOKEN_TICK);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: &netsim::Packet) {
        if let Some(h) = packet.control_as::<Heartbeat>() {
            if Some(h.from) == self.peer {
                // Transient dual-active (beacons lost both ways): the
                // smaller node id keeps the role, deterministically.
                if self.active && self.my_node.is_some_and(|me| h.from < me) {
                    self.active = false;
                    // We ran intervals on our own while dual-active, so our
                    // state drifted off the peer's input stream; rejoin it
                    // via a checkpoint resync.
                    self.repl_next_seq = None;
                }
                self.last_heartbeat_at = Some(ctx.now());
            }
            return;
        }
        if let Some(r) = packet.control_as::<Register>() {
            self.registry.insert(r.receiver, (r.node, r.session));
            self.last_heard.insert(r.receiver, ctx.now());
            if self.active {
                self.telemetry.incr("controller.acks_sent", 1);
                lock_or_recover(&self.shared).acks_sent += 1;
                let ack: ControlBody = Arc::new(RegisterAck {
                    receiver: r.receiver,
                    controller: ctx.node_id(),
                    time: ctx.now(),
                });
                ctx.send_control(r.node, self.cfg.ack_size, ack);
                // Mirror to the standby so a takeover starts with a
                // registry instead of waiting for re-announcements.
                if let Some(peer) = self.peer {
                    ctx.send_control(peer, self.cfg.register_size, Arc::new(r.clone()));
                }
            }
            return;
        }
        if let Some(d) = packet.control_as::<Deregister>() {
            self.registry.remove(&d.receiver);
            self.last_heard.remove(&d.receiver);
            self.pending.remove(&d.receiver);
            self.last_known.remove(&d.receiver);
            self.cause_of.remove(&d.receiver);
            if self.active {
                if let Some(peer) = self.peer {
                    ctx.send_control(peer, self.cfg.deregister_size, Arc::new(d.clone()));
                }
            }
            return;
        }
        if let Some(r) = packet.control_as::<Report>() {
            // Registration can be lost; a report is as good an announcement
            // (and also lifts an eviction or quarantine).
            self.registry.entry(r.receiver).or_insert((r.node, r.session));
            self.last_heard.insert(r.receiver, ctx.now());
            self.inbox.push_back((ctx.now(), r.clone()));
            return;
        }
        if let Some(m) = packet.control_as::<ReplicateInputs>() {
            if !self.active {
                self.apply_replicated(ctx, m);
            }
            return;
        }
        if let Some(a) = packet.control_as::<ReplicaAck>() {
            if self.active && Some(a.from) == self.peer {
                self.on_replica_ack(ctx, a);
            }
            return;
        }
        if let Some(t) = packet.control_as::<CheckpointTransfer>() {
            if !self.active && Some(t.from) == self.peer {
                self.apply_checkpoint(ctx.now(), t);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TOKEN_TICK => {
                if self.active {
                    self.tick(ctx);
                } else {
                    self.tick_standby(ctx);
                }
                ctx.set_timer(self.cfg.interval, TOKEN_TICK);
            }
            TOKEN_SEND => {
                if let Some((node, sug)) = self.outbox.pop() {
                    let body: ControlBody = Arc::new(sug);
                    ctx.send_control(node, self.cfg.suggestion_size, body);
                }
                if !self.outbox.is_empty() {
                    ctx.set_timer(SEND_SPACING, TOKEN_SEND);
                }
            }
            other => unreachable!("unknown controller timer {other}"),
        }
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        // The crash swallowed our timers and wiped nothing of ours (the app
        // object survives), but the interval in flight is gone: drop work
        // queued for it rather than send stale suggestions.
        self.outbox.clear();
        self.inbox.clear();
        self.pending.clear();
        // The interval in flight died with the crash; its cached inputs are
        // unreliable, so the next run goes through the full pipeline.
        self.state.invalidate();
        // Whatever replication position we held is gone with the crash:
        // as a new standby we rejoin via checkpoint resync, and a fresh
        // fingerprint window starts if we ever become primary again.
        self.repl_next_seq = None;
        self.repl_tracker = ReplicaTracker::default();
        self.repl_peer_quarantined = false;
        if self.peer.is_some() && self.active {
            // The standby has taken over (or is about to): come back as the
            // new standby. Roles swap; the pair never fights over the
            // receivers after a crash.
            self.active = false;
            self.last_heartbeat_at = Some(ctx.now());
        } else if self.active {
            // Solo restart: every registered receiver was silent only
            // because *we* were down. Re-anchor the silence clocks to the
            // restart instant (the mirror of the `take_over` re-anchor) so
            // the first tick back does not quarantine — or, after an
            // outage longer than `evict_after`, evict — receivers for
            // quiet accrued during our own outage.
            let now = ctx.now();
            for (&app, _) in self.registry.iter() {
                self.last_heard.insert(app, now);
            }
        }
        ctx.set_timer(self.cfg.interval, TOKEN_TICK);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::Receiver;
    use netsim::sim::{NetworkBuilder, SimConfig};
    use netsim::{GroupId, LinkConfig};
    use traffic::session::SessionDef;
    use traffic::{LayeredSource, TrafficModel};

    /// A one-session chain: src(+controller) -> mid -> rcv with a generous
    /// bottleneck; the receiver should be steered upward layer by layer.
    #[test]
    fn end_to_end_controller_steers_receiver_up() {
        let mut b = NetworkBuilder::new(SimConfig::default());
        let src = b.add_node("src");
        let mid = b.add_node("mid");
        let rcv = b.add_node("rcv");
        b.add_link(src, mid, LinkConfig::kbps(100_000.0));
        b.add_link(mid, rcv, LinkConfig::kbps(100_000.0));
        let mut sim = b.build();
        let groups: Vec<GroupId> = (0..6).map(|_| sim.create_group(src)).collect();
        let def = SessionDef {
            id: netsim::SessionId(0),
            source: src,
            groups,
            spec: LayerSpec::paper_default(),
        };
        let mut catalog = SessionCatalog::new();
        catalog.add(def.clone());
        let catalog = catalog.share();

        let cfg = Config::default();
        let (ctrl, ctrl_shared) = Controller::new(Arc::clone(&catalog), cfg, SimDuration::ZERO, 1);
        sim.add_app(src, Box::new(ctrl));
        sim.add_app(src, Box::new(LayeredSource::new(def.clone(), TrafficModel::Cbr, 2)));
        let (rx, rx_shared) = Receiver::new(def, src, cfg, 3, "r0");
        sim.add_app(rcv, Box::new(rx));

        sim.run_until(SimTime::from_secs(60));

        let c = ctrl_shared.lock().unwrap();
        assert!(c.intervals >= 25, "controller ran {} intervals", c.intervals);
        assert!(c.suggestions_sent > 0);
        assert_eq!(c.registered, 1);
        let r = rx_shared.lock().unwrap();
        // Unconstrained path: the receiver must be steered to the top level.
        assert_eq!(r.final_level(), 6, "changes: {:?}", r.changes);
        assert!(r.suggestions_received > 0);
    }

    /// A 150 kb/s bottleneck must cap the receiver near 2 layers (96 kb/s).
    #[test]
    fn end_to_end_bottleneck_caps_subscription() {
        let mut b = NetworkBuilder::new(SimConfig::default());
        let src = b.add_node("src");
        let mid = b.add_node("mid");
        let rcv = b.add_node("rcv");
        b.add_link(src, mid, LinkConfig::kbps(100_000.0));
        b.add_link(mid, rcv, LinkConfig::kbps(150.0));
        let mut sim = b.build();
        let groups: Vec<GroupId> = (0..6).map(|_| sim.create_group(src)).collect();
        let def = SessionDef {
            id: netsim::SessionId(0),
            source: src,
            groups,
            spec: LayerSpec::paper_default(),
        };
        let mut catalog = SessionCatalog::new();
        catalog.add(def.clone());
        let catalog = catalog.share();

        let cfg = Config::default();
        let (ctrl, _ctrl_shared) = Controller::new(Arc::clone(&catalog), cfg, SimDuration::ZERO, 1);
        sim.add_app(src, Box::new(ctrl));
        sim.add_app(src, Box::new(LayeredSource::new(def.clone(), TrafficModel::Cbr, 2)));
        let (rx, rx_shared) = Receiver::new(def, src, cfg, 3, "r0");
        sim.add_app(rcv, Box::new(rx));

        sim.run_until(SimTime::from_secs(300));

        let r = rx_shared.lock().unwrap();
        // Time-weighted average level over the second half must sit at ~2.
        let half = SimTime::from_secs(150);
        let mut level_at = 0u8;
        let mut weighted = 0.0;
        let mut last_t = half;
        for &(t, _, new) in &r.changes {
            if t <= half {
                level_at = new;
                continue;
            }
            weighted += level_at as f64 * t.since(last_t).as_secs_f64();
            last_t = t;
            level_at = new;
        }
        weighted += level_at as f64 * SimTime::from_secs(300).since(last_t).as_secs_f64();
        let avg = weighted / 150.0;
        assert!(
            (1.5..=2.6).contains(&avg),
            "average level {avg} out of range; changes: {:?}",
            r.changes
        );
    }

    /// Shared scaffolding for the hardening tests: a one-session chain
    /// `src -> mid -> rcv` with generous links and a session catalog.
    fn chain() -> (netsim::Simulator, Arc<SessionCatalog>, SessionDef, NodeId, NodeId, NodeId) {
        let mut b = NetworkBuilder::new(SimConfig::default());
        let src = b.add_node("src");
        let mid = b.add_node("mid");
        let rcv = b.add_node("rcv");
        b.add_link(src, mid, LinkConfig::kbps(100_000.0));
        b.add_link(mid, rcv, LinkConfig::kbps(100_000.0));
        let mut sim = b.build();
        let groups: Vec<GroupId> = (0..6).map(|_| sim.create_group(src)).collect();
        let def = SessionDef {
            id: netsim::SessionId(0),
            source: src,
            groups,
            spec: LayerSpec::paper_default(),
        };
        let mut catalog = SessionCatalog::new();
        catalog.add(def.clone());
        (sim, catalog.share(), def, src, mid, rcv)
    }

    /// Satellite: with a discovery tool too stale to have answered yet, the
    /// controller must do nothing — no intervals, no suggestions from a
    /// nonexistent tree.
    #[test]
    fn cold_start_with_unanswered_discovery_sends_nothing() {
        let (mut sim, catalog, def, src, _mid, rcv) = chain();
        let cfg = Config::default();
        let (ctrl, shared) = Controller::new(catalog, cfg, SimDuration::from_secs(30), 1);
        sim.add_app(src, Box::new(ctrl));
        sim.add_app(src, Box::new(LayeredSource::new(def.clone(), TrafficModel::Cbr, 2)));
        let (rx, _) = Receiver::new(def, src, cfg, 3, "r0");
        sim.add_app(rcv, Box::new(rx));
        sim.run_until(SimTime::from_secs(10));
        let c = shared.lock().unwrap();
        assert_eq!(c.intervals, 0, "no interval may complete before discovery answers");
        assert_eq!(c.suggestions_sent, 0);
    }

    /// Discovery outage: run on last-known-good while fresh, then suspend,
    /// then resume when the tool answers again.
    #[test]
    fn discovery_outage_degrades_then_suspends_then_recovers() {
        let (mut sim, catalog, def, src, _mid, rcv) = chain();
        let cfg = Config::default();
        let (ctrl, shared) = Controller::new(catalog, cfg, SimDuration::ZERO, 1);
        let ctrl = ctrl.with_discovery_outage(SimTime::from_secs(5), SimTime::from_secs(25));
        sim.add_app(src, Box::new(ctrl));
        sim.add_app(src, Box::new(LayeredSource::new(def.clone(), TrafficModel::Cbr, 2)));
        let (rx, _) = Receiver::new(def, src, cfg, 3, "r0");
        sim.add_app(rcv, Box::new(rx));
        sim.run_until(SimTime::from_secs(41));
        let c = shared.lock().unwrap();
        // Ticks at 6..=14 ride last-known-good (captured at 4, max age 10);
        // ticks at 16..=24 are suspended; 26 onward is normal again.
        assert_eq!(c.degraded_intervals, 5, "degraded window");
        assert_eq!(c.suspended_intervals, 5, "suspended window");
        assert!(c.intervals >= 14, "resumed after the outage: {}", c.intervals);
        assert!(c.suggestions_sent > 0);
    }

    /// Satellite: an orderly departure must clear the registry entry
    /// immediately, not wait for the silence deadline.
    #[test]
    fn departure_deregisters_immediately() {
        let (mut sim, catalog, def, src, _mid, rcv) = chain();
        let cfg = Config::default();
        let (ctrl, shared) = Controller::new(catalog, cfg, SimDuration::ZERO, 1);
        sim.add_app(src, Box::new(ctrl));
        sim.add_app(src, Box::new(LayeredSource::new(def.clone(), TrafficModel::Cbr, 2)));
        let (rx, _) = Receiver::new(def, src, cfg, 3, "r0");
        let rx = rx.with_lifetime(SimTime::ZERO, Some(SimTime::from_secs(10)));
        sim.add_app(rcv, Box::new(rx));
        // 20 s is well inside the eviction horizon (10 s departure + 24 s
        // evict_after): an empty registry here proves Deregister worked.
        sim.run_until(SimTime::from_secs(20));
        let c = shared.lock().unwrap();
        assert_eq!(c.registered, 0, "departed receiver still in the registry");
        assert!(c.evicted == 0, "departure must not count as an eviction");
    }

    /// A receiver that registers and then falls silent is eventually
    /// evicted (and the registry gauge drops back to zero).
    #[test]
    fn silent_receiver_is_evicted() {
        struct MuteReceiver {
            controller: NodeId,
        }
        impl App for MuteReceiver {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let body: ControlBody = Arc::new(Register {
                    receiver: ctx.app_id(),
                    node: ctx.node_id(),
                    session: netsim::SessionId(0),
                    level: 1,
                });
                ctx.send_control(self.controller, 48, body);
            }
        }
        let (mut sim, catalog, _def, src, _mid, rcv) = chain();
        let cfg = Config::default();
        let (ctrl, shared) = Controller::new(catalog, cfg, SimDuration::ZERO, 1);
        sim.add_app(src, Box::new(ctrl));
        sim.add_app(rcv, Box::new(MuteReceiver { controller: src }));
        sim.run_until(SimTime::from_secs(30));
        let c = shared.lock().unwrap();
        assert_eq!(c.evicted, 1, "silent receiver must be evicted");
        assert_eq!(c.registered, 0);
        assert!(c.acks_sent >= 1, "registration was acknowledged");
    }

    /// Regression (stage-1 no-data rule): a receiver that reports loss and
    /// then falls silent until quarantined and evicted must neither freeze
    /// its subtree in a congested state forever (the old `f64::INFINITY`
    /// child-min seed hazard) nor mask its still-reporting sibling's loss
    /// with a fabricated all-clear.
    #[test]
    fn evicted_subtree_is_no_data_and_does_not_mask_sibling_loss() {
        struct LossyReporter {
            controller: NodeId,
            group: GroupId,
            mute_after: Option<SimTime>,
        }
        impl App for LossyReporter {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.join(self.group);
                let body: ControlBody = Arc::new(Register {
                    receiver: ctx.app_id(),
                    node: ctx.node_id(),
                    session: netsim::SessionId(0),
                    level: 2,
                });
                ctx.send_control(self.controller, 48, body);
                ctx.set_timer(SimDuration::from_secs(2), 7);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
                let now = ctx.now();
                if self.mute_after.is_none_or(|m| now < m) {
                    let body: ControlBody = Arc::new(Report {
                        receiver: ctx.app_id(),
                        node: ctx.node_id(),
                        session: netsim::SessionId(0),
                        level: 2,
                        received: 70,
                        lost: 30, // 30% loss, well above p_threshold
                        bytes: 20_000,
                        time: now,
                        cause: 0,
                    });
                    ctx.send_control(self.controller, 64, body);
                }
                ctx.set_timer(SimDuration::from_secs(2), 7);
            }
        }

        let mut b = NetworkBuilder::new(SimConfig::default());
        let src = b.add_node("src");
        let mid = b.add_node("mid");
        let r1 = b.add_node("r1");
        let r2 = b.add_node("r2");
        b.add_link(src, mid, LinkConfig::kbps(100_000.0));
        b.add_link(mid, r1, LinkConfig::kbps(100_000.0));
        b.add_link(mid, r2, LinkConfig::kbps(100_000.0));
        let mut sim = b.build();
        let groups: Vec<GroupId> = (0..6).map(|_| sim.create_group(src)).collect();
        let def = SessionDef {
            id: netsim::SessionId(0),
            source: src,
            groups: groups.clone(),
            spec: LayerSpec::paper_default(),
        };
        let mut catalog = SessionCatalog::new();
        catalog.add(def);
        let cfg = Config::default();
        let (ctrl, shared) = Controller::new(catalog.share(), cfg, SimDuration::ZERO, 1);
        sim.add_app(src, Box::new(ctrl));
        // r1 reports ~30% loss every interval for the whole run; r2 reports
        // the same loss once, then goes mute and rides the quarantine
        // (6 s) -> eviction (24 s) path.
        sim.add_app(
            r1,
            Box::new(LossyReporter { controller: src, group: groups[0], mute_after: None }),
        );
        sim.add_app(
            r2,
            Box::new(LossyReporter {
                controller: src,
                group: groups[0],
                mute_after: Some(SimTime::from_secs(4)),
            }),
        );
        sim.run_until(SimTime::from_secs(40));

        let c = shared.lock().unwrap();
        assert_eq!(c.evicted, 1, "mute receiver must be evicted");
        assert_eq!(c.registered, 1, "the reporting receiver stays registered");
        assert!(c.suggestions_sent > 0);
        // Long after the eviction, the shared parent must still be labelled
        // congested from r1's reports alone: r2's silent subtree is no-data,
        // not a 0.0-loss child dragging the parent's min to all-clear — and
        // not an infinitely-lossy child freezing it CONGESTED either. With
        // r1, mid and src self-congested and r2 inheriting mid's parental
        // congestion, the count sits at 4 nodes.
        let late: Vec<usize> = c
            .congestion_series
            .iter()
            .filter(|&&(t, _)| t >= SimTime::from_secs(32))
            .map(|&(_, n)| n)
            .collect();
        assert!(!late.is_empty());
        assert!(
            late.iter().all(|&n| n >= 3),
            "silent subtree masked the lossy sibling: late congested counts {late:?}"
        );
    }

    /// Warm standby: when the primary's node crashes, the standby notices
    /// the heartbeat silence, takes over, re-ACKs the receivers, and keeps
    /// steering them.
    #[test]
    fn standby_takes_over_after_primary_crash() {
        let mut b = NetworkBuilder::new(SimConfig::default());
        let src = b.add_node("src");
        let ctl = b.add_node("ctl");
        let ctl2 = b.add_node("ctl2");
        let mid = b.add_node("mid");
        let rcv = b.add_node("rcv");
        b.add_link(src, mid, LinkConfig::kbps(100_000.0));
        b.add_link(ctl, mid, LinkConfig::kbps(100_000.0));
        b.add_link(ctl2, mid, LinkConfig::kbps(100_000.0));
        b.add_link(mid, rcv, LinkConfig::kbps(100_000.0));
        let mut sim = b.build();
        let groups: Vec<GroupId> = (0..6).map(|_| sim.create_group(src)).collect();
        let def = SessionDef {
            id: netsim::SessionId(0),
            source: src,
            groups,
            spec: LayerSpec::paper_default(),
        };
        let mut catalog = SessionCatalog::new();
        catalog.add(def.clone());
        let catalog = catalog.share();

        let cfg = Config::default();
        let (primary, p_shared) = Controller::new(Arc::clone(&catalog), cfg, SimDuration::ZERO, 1);
        let primary = primary.with_peer(ctl2);
        let (standby, s_shared) = Controller::new(Arc::clone(&catalog), cfg, SimDuration::ZERO, 2);
        let standby = standby.with_peer(ctl).as_standby();
        sim.add_app(ctl, Box::new(primary));
        sim.add_app(ctl2, Box::new(standby));
        sim.add_app(src, Box::new(LayeredSource::new(def.clone(), TrafficModel::Cbr, 2)));
        let (rx, rx_shared) = Receiver::new(def, ctl, cfg, 3, "r0");
        sim.add_app(rcv, Box::new(rx));

        sim.install_faults(&netsim::FaultPlan::new().node_crash(ctl, SimTime::from_secs(7)));
        sim.run_until(SimTime::from_secs(40));

        let p = p_shared.lock().unwrap();
        assert!(p.suggestions_sent > 0, "primary steered before the crash");
        assert!(p.failover_at.is_none());
        let s = s_shared.lock().unwrap();
        let at = s.failover_at.expect("standby must take over");
        assert!(at > SimTime::from_secs(7) && at <= SimTime::from_secs(16), "takeover at {at:?}");
        assert!(s.intervals > 0, "standby runs the algorithm after takeover");
        assert!(s.suggestions_sent > 0);
        assert!(s.acks_sent >= 1, "receivers re-ACKed on takeover");
        let r = rx_shared.lock().unwrap();
        // The unconstrained path must still end at the top level — steering
        // continued across the failover.
        assert_eq!(r.final_level(), 6, "changes: {:?}", r.changes);
    }
}
