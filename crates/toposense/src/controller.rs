//! The per-domain controller agent.
//!
//! The controller is an ordinary application on an ordinary node (the paper
//! stations it at a source node, so its suggestion traffic shares links —
//! and fate — with the media). Every interval it:
//!
//! 1. records a ground-truth topology snapshot into its [`DiscoveryTool`]
//!    and queries the tool back — receiving a snapshot at least
//!    `staleness` old, which is the paper's model of real discovery tools;
//! 2. overlays the per-layer trees into per-session [`SessionTree`]s;
//! 3. runs the five-stage algorithm over the trees and the receivers'
//!    accumulated loss reports;
//! 4. unicasts a [`Suggestion`] to every registered receiver.

use crate::algorithm::{AlgorithmInputs, AlgorithmOutputs, AlgorithmState, ReceiverReport};
use crate::config::Config;
use crate::messages::{Register, Report, Suggestion};
use netsim::{App, AppId, ControlBody, Ctx, NodeId, SessionId, SimDuration, SimTime};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use topology::discovery::{DiscoveryTool, TopologyView};
use topology::SessionTree;
use traffic::{LayerSpec, SessionCatalog};

const TOKEN_TICK: u64 = 1;
const TOKEN_SEND: u64 = 2;

/// Gap between consecutive suggestion packets. Sending the whole batch
/// back-to-back would tail-drop the same receivers' suggestions every
/// interval at a congested link; spacing them shares the risk.
const SEND_SPACING: SimDuration = SimDuration(25_000_000);

/// Observable controller state, shared with the harness.
#[derive(Clone, Debug, Default)]
pub struct ControllerShared {
    /// Algorithm intervals completed.
    pub intervals: u64,
    /// Suggestions sent (packets).
    pub suggestions_sent: u64,
    /// Registered receivers at last interval.
    pub registered: usize,
    /// Congested node-count history `(time, count)`.
    pub congestion_series: Vec<(SimTime, usize)>,
    /// Capacity-estimate history: one `(time, link, bits/s)` entry per
    /// finitely-estimated link per interval (for estimator-accuracy
    /// studies against ground truth).
    pub estimate_series: Vec<(SimTime, netsim::DirLinkId, f64)>,
    /// Last run's diagnostics.
    pub last_outputs: Option<AlgorithmOutputs>,
}

/// Handle for reading controller stats after a run.
pub type ControllerHandle = Arc<Mutex<ControllerShared>>;

#[derive(Clone, Copy, Debug, Default)]
struct Pending {
    level: u8,
    received: u64,
    lost: u64,
    bytes: u64,
    last_at: Option<SimTime>,
}

/// The controller application.
pub struct Controller {
    catalog: Arc<SessionCatalog>,
    cfg: Config,
    state: AlgorithmState,
    discovery: DiscoveryTool,
    /// receiver -> (node, session).
    registry: HashMap<AppId, (NodeId, SessionId)>,
    /// Reports received but not yet *visible*: the paper's staleness knob
    /// ages "topology and loss information", so reports pass through the
    /// same delay as discovery snapshots.
    inbox: std::collections::VecDeque<(SimTime, Report)>,
    /// Reports accumulated since the last interval (already aged).
    pending: HashMap<AppId, Pending>,
    /// Most recent interval data per receiver, reused when reports are lost.
    last_known: HashMap<AppId, (SimTime, ReceiverReport)>,
    /// Administrative-domain filter (Fig. 3): when set, the controller
    /// only sees — and manages — the subtree inside these nodes.
    domain: Option<std::collections::HashSet<NodeId>>,
    /// Suggestions awaiting their (staggered) send slot.
    outbox: Vec<(NodeId, Suggestion)>,
    rng: netsim::RngStream,
    shared: ControllerHandle,
}

impl Controller {
    /// Create a controller with a discovery tool of the given `staleness`.
    pub fn new(
        catalog: Arc<SessionCatalog>,
        cfg: Config,
        staleness: SimDuration,
        seed: u64,
    ) -> (Self, ControllerHandle) {
        cfg.validate();
        let shared: ControllerHandle = Arc::default();
        let c = Controller {
            catalog,
            cfg,
            state: AlgorithmState::new(cfg, seed),
            discovery: DiscoveryTool::new(staleness),
            registry: HashMap::new(),
            inbox: std::collections::VecDeque::new(),
            pending: HashMap::new(),
            last_known: HashMap::new(),
            domain: None,
            outbox: Vec::new(),
            rng: netsim::RngStream::derive(seed, "toposense/controller"),
            shared: Arc::clone(&shared),
        };
        (c, shared)
    }

    /// Restrict this controller to one administrative domain (Fig. 3's
    /// hierarchical control model): topology snapshots are clipped to
    /// `nodes`, the session roots re-base onto the domain ingress, and the
    /// controller manages only the receivers that register with it.
    pub fn with_domain(mut self, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        self.domain = Some(nodes.into_iter().collect());
        self
    }

    /// Direct access to the algorithm state (tests, experiments).
    pub fn algorithm(&self) -> &AlgorithmState {
        &self.state
    }

    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        // 0. Age the loss reports: only reports older than the staleness
        // window become visible this interval (Fig. 10 ages "topology and
        // loss information" together).
        let visible_until = now.saturating_sub(self.discovery.staleness());
        while let Some(&(t, _)) = self.inbox.front() {
            if t > visible_until {
                break;
            }
            let (_, r) = self.inbox.pop_front().expect("front just peeked");
            let p = self.pending.entry(r.receiver).or_default();
            p.level = r.level;
            p.received += r.received;
            p.lost += r.lost;
            p.bytes += r.bytes;
            p.last_at = Some(r.time);
        }

        // 1. Record ground truth (clipped to this controller's domain),
        // query through the staleness filter.
        let view = TopologyView::capture(ctx.network(), now);
        let view = match &self.domain {
            Some(domain) => view.restrict(domain),
            None => view,
        };
        self.discovery.record(view);
        let Some(view) = self.discovery.query(now) else {
            return;
        };

        // 2. Per-session overlay trees. Transiently inconsistent snapshots
        // (a node with two parents mid-regraft) skip the session this round.
        let mut trees: Vec<SessionTree> = Vec::with_capacity(self.catalog.len());
        for def in self.catalog.iter() {
            if let Ok(t) = SessionTree::build(view, def.id, &def.groups) {
                trees.push(t);
            }
        }
        let specs: Vec<&LayerSpec> =
            trees.iter().map(|t| &self.catalog.get(t.session()).spec).collect();

        // 3. Assemble the interval's reports: fresh data, else the most
        // recent report if it is not too old (reports can be lost).
        // Sorted by receiver id so nothing downstream depends on hash-map
        // iteration order (determinism).
        let mut registry: Vec<(AppId, NodeId, SessionId)> =
            self.registry.iter().map(|(&a, &(n, s))| (a, n, s)).collect();
        registry.sort_unstable_by_key(|&(a, _, _)| a);
        let mut reports: Vec<ReceiverReport> = Vec::with_capacity(self.registry.len());
        for &(app, node, session) in &registry {
            if let Some(p) = self.pending.remove(&app) {
                let r = ReceiverReport {
                    receiver: app,
                    node,
                    session,
                    level: p.level,
                    received: p.received,
                    lost: p.lost,
                    bytes: p.bytes,
                };
                self.last_known.insert(app, (now, r));
                reports.push(r);
            } else if let Some(&(t, r)) = self.last_known.get(&app) {
                if now.since(t) <= self.cfg.interval * 2 {
                    reports.push(r);
                }
            }
        }

        // 4. Run the algorithm and send the suggestions.
        let inputs = AlgorithmInputs {
            now,
            interval: self.cfg.interval,
            trees: &trees,
            specs: &specs,
            registry: &registry,
            reports: &reports,
        };
        let outputs = self.state.run(&inputs);
        // Queue suggestions in a random order and send them spaced out:
        // a fixed back-to-back burst would tail-drop the same receivers'
        // suggestions at a congested link every single interval.
        self.outbox.clear();
        for s in &outputs.suggestions {
            let Some(&(node, _)) = self.registry.get(&s.receiver) else { continue };
            let sug =
                Suggestion { receiver: s.receiver, session: s.session, level: s.level, time: now };
            let at = self.rng.range_u64(0, self.outbox.len() as u64 + 1) as usize;
            self.outbox.insert(at, (node, sug));
        }
        if !self.outbox.is_empty() {
            ctx.set_timer(SimDuration::ZERO, TOKEN_SEND);
        }

        let mut sh = self.shared.lock().unwrap();
        sh.intervals += 1;
        sh.suggestions_sent += outputs.suggestions.len() as u64;
        sh.registered = self.registry.len();
        sh.congestion_series.push((now, outputs.congested_nodes));
        for &(l, c) in &outputs.estimated_links {
            sh.estimate_series.push((now, l, c));
        }
        sh.last_outputs = Some(outputs);
    }
}

impl App for Controller {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.cfg.interval, TOKEN_TICK);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: &netsim::Packet) {
        if let Some(r) = packet.control_as::<Register>() {
            self.registry.insert(r.receiver, (r.node, r.session));
            return;
        }
        if let Some(r) = packet.control_as::<Report>() {
            // Registration can be lost; a report is as good an announcement.
            self.registry.entry(r.receiver).or_insert((r.node, r.session));
            self.inbox.push_back((ctx.now(), r.clone()));
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TOKEN_TICK => {
                self.tick(ctx);
                ctx.set_timer(self.cfg.interval, TOKEN_TICK);
            }
            TOKEN_SEND => {
                if let Some((node, sug)) = self.outbox.pop() {
                    let body: ControlBody = Arc::new(sug);
                    ctx.send_control(node, self.cfg.suggestion_size, body);
                }
                if !self.outbox.is_empty() {
                    ctx.set_timer(SEND_SPACING, TOKEN_SEND);
                }
            }
            other => unreachable!("unknown controller timer {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::Receiver;
    use netsim::sim::{NetworkBuilder, SimConfig};
    use netsim::{GroupId, LinkConfig};
    use traffic::session::SessionDef;
    use traffic::{LayeredSource, TrafficModel};

    /// A one-session chain: src(+controller) -> mid -> rcv with a generous
    /// bottleneck; the receiver should be steered upward layer by layer.
    #[test]
    fn end_to_end_controller_steers_receiver_up() {
        let mut b = NetworkBuilder::new(SimConfig::default());
        let src = b.add_node("src");
        let mid = b.add_node("mid");
        let rcv = b.add_node("rcv");
        b.add_link(src, mid, LinkConfig::kbps(100_000.0));
        b.add_link(mid, rcv, LinkConfig::kbps(100_000.0));
        let mut sim = b.build();
        let groups: Vec<GroupId> = (0..6).map(|_| sim.create_group(src)).collect();
        let def = SessionDef {
            id: netsim::SessionId(0),
            source: src,
            groups,
            spec: LayerSpec::paper_default(),
        };
        let mut catalog = SessionCatalog::new();
        catalog.add(def.clone());
        let catalog = catalog.share();

        let cfg = Config::default();
        let (ctrl, ctrl_shared) = Controller::new(Arc::clone(&catalog), cfg, SimDuration::ZERO, 1);
        sim.add_app(src, Box::new(ctrl));
        sim.add_app(src, Box::new(LayeredSource::new(def.clone(), TrafficModel::Cbr, 2)));
        let (rx, rx_shared) = Receiver::new(def, src, cfg, 3, "r0");
        sim.add_app(rcv, Box::new(rx));

        sim.run_until(SimTime::from_secs(60));

        let c = ctrl_shared.lock().unwrap();
        assert!(c.intervals >= 25, "controller ran {} intervals", c.intervals);
        assert!(c.suggestions_sent > 0);
        assert_eq!(c.registered, 1);
        let r = rx_shared.lock().unwrap();
        // Unconstrained path: the receiver must be steered to the top level.
        assert_eq!(r.final_level(), 6, "changes: {:?}", r.changes);
        assert!(r.suggestions_received > 0);
    }

    /// A 150 kb/s bottleneck must cap the receiver near 2 layers (96 kb/s).
    #[test]
    fn end_to_end_bottleneck_caps_subscription() {
        let mut b = NetworkBuilder::new(SimConfig::default());
        let src = b.add_node("src");
        let mid = b.add_node("mid");
        let rcv = b.add_node("rcv");
        b.add_link(src, mid, LinkConfig::kbps(100_000.0));
        b.add_link(mid, rcv, LinkConfig::kbps(150.0));
        let mut sim = b.build();
        let groups: Vec<GroupId> = (0..6).map(|_| sim.create_group(src)).collect();
        let def = SessionDef {
            id: netsim::SessionId(0),
            source: src,
            groups,
            spec: LayerSpec::paper_default(),
        };
        let mut catalog = SessionCatalog::new();
        catalog.add(def.clone());
        let catalog = catalog.share();

        let cfg = Config::default();
        let (ctrl, _ctrl_shared) = Controller::new(Arc::clone(&catalog), cfg, SimDuration::ZERO, 1);
        sim.add_app(src, Box::new(ctrl));
        sim.add_app(src, Box::new(LayeredSource::new(def.clone(), TrafficModel::Cbr, 2)));
        let (rx, rx_shared) = Receiver::new(def, src, cfg, 3, "r0");
        sim.add_app(rcv, Box::new(rx));

        sim.run_until(SimTime::from_secs(300));

        let r = rx_shared.lock().unwrap();
        // Time-weighted average level over the second half must sit at ~2.
        let half = SimTime::from_secs(150);
        let mut level_at = 0u8;
        let mut weighted = 0.0;
        let mut last_t = half;
        for &(t, _, new) in &r.changes {
            if t <= half {
                level_at = new;
                continue;
            }
            weighted += level_at as f64 * t.since(last_t).as_secs_f64();
            last_t = t;
            level_at = new;
        }
        weighted += level_at as f64 * SimTime::from_secs(300).since(last_t).as_secs_f64();
        let avg = weighted / 150.0;
        assert!(
            (1.5..=2.6).contains(&avg),
            "average level {avg} out of range; changes: {:?}",
            r.changes
        );
    }
}
