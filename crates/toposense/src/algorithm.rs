//! The algorithm driver: wires the five stages together and owns every
//! piece of state that persists across intervals (congestion histories,
//! byte/supply windows, capacity estimates, backoff timers).
//!
//! [`AlgorithmState::run`] is a pure-ish function of its inputs: given the
//! same sequence of `(trees, reports)` and the same seed it produces the
//! same suggestions, which is what makes whole simulations reproducible.

use crate::config::Config;
use crate::history::BwEquality;
use crate::history::CongestionHistory;
use crate::stages::bottleneck;
use crate::stages::capacity::{CapacityEstimator, CapacityEvent, SessionLinkObs};
use crate::stages::congestion::{self, LeafObs, NodeState};
use crate::stages::sharing::{self, SharingScratch};
use crate::stages::subscription::{self, BackoffTable, NodeInputs};
use netsim::{AppId, DirLinkId, NodeId, RngStream, SessionId, SimDuration, SimTime};
use rayon::prelude::*;
use std::collections::HashMap;
use telemetry::{
    BottleneckNode, CapacityLink, CongestionNode, IntervalAudit, SessionNodes, SharingEntry, Span,
    SubscriptionNode,
};
use topology::SessionTree;
use traffic::LayerSpec;

/// One receiver's aggregated report for the interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReceiverReport {
    pub receiver: AppId,
    pub node: NodeId,
    pub session: SessionId,
    /// Subscription level during the window.
    pub level: u8,
    pub received: u64,
    pub lost: u64,
    pub bytes: u64,
}

impl ReceiverReport {
    pub fn loss_rate(&self) -> f64 {
        let expected = self.received + self.lost;
        if expected == 0 {
            0.0
        } else {
            self.lost as f64 / expected as f64
        }
    }
}

/// Everything one interval of the algorithm consumes.
pub struct AlgorithmInputs<'a> {
    pub now: SimTime,
    /// Time since the previous run.
    pub interval: SimDuration,
    /// `trees[i]` describes session `i` (aligned with `specs`).
    pub trees: &'a [SessionTree],
    pub specs: &'a [&'a LayerSpec],
    /// All receivers known to the controller (reporters or not).
    pub registry: &'a [(AppId, NodeId, SessionId)],
    /// The interval's reports.
    pub reports: &'a [ReceiverReport],
}

/// A prescribed subscription level for one receiver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SuggestionOut {
    pub receiver: AppId,
    pub session: SessionId,
    pub level: u8,
}

/// One interval's outputs plus diagnostics.
#[derive(Clone, Debug, Default)]
pub struct AlgorithmOutputs {
    pub suggestions: Vec<SuggestionOut>,
    /// Links with a finite capacity estimate after this run.
    pub estimated_links: Vec<(DirLinkId, f64)>,
    /// Nodes labelled congested this run (across sessions).
    pub congested_nodes: usize,
    /// Per-session supply at the root (levels) — the session-wide ceiling.
    pub root_supply: Vec<u8>,
    /// Whether this interval took the incremental (dirty-subtree) path.
    pub incremental: bool,
    /// Tree slots the stage kernels actually recomputed this interval
    /// (stage-1 congestion states + stage-5 decisions). A full run counts
    /// every slot twice; an incremental run only the dirty ones.
    pub slots_recomputed: u64,
}

#[derive(Clone, Copy, Debug, PartialEq)]
struct NodeMemory {
    hist: CongestionHistory,
    bytes_older: u64,
    bytes_recent: u64,
    supply_older: u8,
    supply_recent: u8,
    demand_prev: Option<u8>,
}

impl Default for NodeMemory {
    fn default() -> Self {
        NodeMemory {
            hist: CongestionHistory::new(),
            bytes_older: 0,
            bytes_recent: 0,
            supply_older: 1,
            supply_recent: 1,
            demand_prev: None,
        }
    }
}

/// Per-session scratch buffers, slot-indexed against the session's tree.
///
/// One of these lives in [`AlgorithmState`] per concurrent session and is
/// reused every interval: each vector is cleared and refilled (allocation
/// kept), so the steady-state hot path allocates nothing.
#[derive(Debug, Default)]
struct SessionScratch {
    /// Aggregated leaf observation per tree slot (stage 1 input).
    obs: Vec<Option<LeafObs>>,
    /// Congestion state per tree slot (stage 1 output).
    states: Vec<NodeState>,
    /// This interval's working copy of each node's persistent memory.
    mem: Vec<NodeMemory>,
    /// Stage-3 outputs per tree slot.
    bottleneck: Vec<f64>,
    max_handle: Vec<f64>,
    /// Stage-5 inputs/outputs per tree slot.
    inputs: Vec<NodeInputs>,
    level_cap: Vec<u8>,
    demand: Vec<u8>,
    supply: Vec<u8>,
    /// Table I branch labels per tree slot (filled only when auditing).
    branches: Vec<&'static str>,
    /// Double buffers for the incremental path: the fresh stage-5 inputs
    /// are built here, diffed against `inputs`/`level_cap` to find dirty
    /// slots, then swapped in. Used only when the whole session must be
    /// rebuilt (its sharing allowances were refreshed).
    inputs_new: Vec<NodeInputs>,
    level_cap_new: Vec<u8>,
    /// Snapshot of `states` as of the previous interval, taken before the
    /// incremental stage-1 recompute; diffed afterwards to find slots whose
    /// stage-5 inputs may have moved.
    states_prev: Vec<NodeState>,
    /// Slots whose observation was re-folded this interval (report diff).
    obs_dirty: Vec<u32>,
    /// Slots whose memory the stage-1 fold changed this interval.
    mem_dirty: Vec<u32>,
    /// Slots whose propagated congestion state (congested / parent flag /
    /// loss) moved this interval relative to `states_prev`.
    state_dirty: Vec<u32>,
}

/// Per-session inputs frozen by [`IncCache`] at the last full run. As long
/// as the live inputs still match (`Tree::structure_eq`, same spec, same
/// report keys), the previous interval's scratch buffers are a valid
/// starting point for change-driven recomputation.
#[derive(Debug)]
struct SessionCache {
    session: SessionId,
    tree: SessionTree,
    spec: LayerSpec,
    /// CSR attribution: `rep_idx[rep_start[slot]..rep_start[slot + 1]]`
    /// are the global report indices folding into `slot`, in report order
    /// (so an incremental re-fold replays the full path's fold exactly).
    rep_start: Vec<u32>,
    rep_idx: Vec<u32>,
    /// Suggestion routing resolved once per topology: `(receiver, slot)`
    /// per registered receiver of this session present in the tree, in
    /// registry order.
    sugg_route: Vec<(AppId, u32)>,
    /// Slots holding at least one backoff timer after the previous run.
    /// Their subtrees must be re-decided next interval even if the timer
    /// has expired since — expiry itself changes `blocked`.
    backoff_slots: Vec<u32>,
    /// Slots whose memory the previous run's stage-5 persistence changed
    /// (supply/demand writes land after that interval's inputs were built,
    /// so they surface as input changes one interval later).
    mem5_dirty: Vec<u32>,
}

/// Everything the incremental path needs to prove, cheaply, that only the
/// changed inputs can have changed the outputs. Built after every full
/// run; consulted and refreshed by every incremental run; dropped on any
/// mismatch (the next run falls back to the full path and rebuilds it).
#[derive(Debug, Default)]
struct IncCache {
    valid: bool,
    /// Whether `SessionScratch::branches` is current for every slot — an
    /// audited incremental run reuses clean slots' cached labels, which is
    /// only sound if the previous run filled them.
    branches_valid: bool,
    interval: SimDuration,
    registry: Vec<(AppId, NodeId, SessionId)>,
    /// The previous interval's reports, diffed element-wise against the
    /// current ones to find changed slots.
    reports: Vec<ReceiverReport>,
    /// Per cached report: `(session index, slot)` it folds into, or
    /// `(u32::MAX, u32::MAX)` when unattributable (node outside the tree).
    report_target: Vec<(u32, u32)>,
    /// Per row of the link-sorted usage buffer: the `(session index,
    /// slot)` the observation came from, so stage 2 can rebuild any
    /// link's observation run from current states without re-sorting.
    usage_meta: Vec<(u32, u32)>,
    /// Every link any session crosses, sorted (dedup of `usage_meta`'s
    /// link column).
    crossed_links: Vec<DirLinkId>,
    /// The border caps in force when the cache was last primed/refreshed.
    /// A cap change is an *input* change at the root slot: the incremental
    /// path diffs against this copy and marks the root dirty, and the
    /// full-width top-down supply pass propagates the new ceiling.
    border_caps: Vec<(SessionId, u8)>,
    sessions: Vec<SessionCache>,
}

/// The controller's persistent algorithm state.
pub struct AlgorithmState {
    cfg: Config,
    rng: RngStream,
    estimator: CapacityEstimator,
    memories: HashMap<(SessionId, NodeId), NodeMemory>,
    backoffs: HashMap<SessionId, BackoffTable>,
    runs: u64,
    scratch: Vec<SessionScratch>,
    sharing_scratch: SharingScratch,
    usage_buf: Vec<(DirLinkId, SessionLinkObs)>,
    cache: IncCache,
    dirty: topology::DirtySet,
    /// Second marking set for stage 5: candidate slots whose inputs may
    /// have moved (`dirty` holds the slots whose decisions must re-run).
    dirty_aux: topology::DirtySet,
    /// Per-session root-level ceilings imposed from outside the domain
    /// (federation border aggregation, DESIGN.md §16). Sorted by session,
    /// deduplicated; `u8::MAX` / absence means uncapped. These are
    /// per-interval *external inputs*, not persistent state: checkpoints
    /// do not capture them — the aggregator re-sends them every interval,
    /// so a restored or promoted controller is reprimed before its next
    /// run (the determinism argument is in DESIGN.md §16).
    border_caps: Vec<(SessionId, u8)>,
}

impl AlgorithmState {
    pub fn new(cfg: Config, seed: u64) -> Self {
        cfg.validate();
        AlgorithmState {
            cfg,
            rng: RngStream::derive(seed, "toposense/algorithm"),
            estimator: CapacityEstimator::new(),
            memories: HashMap::new(),
            backoffs: HashMap::new(),
            runs: 0,
            scratch: Vec::new(),
            sharing_scratch: SharingScratch::default(),
            usage_buf: Vec::new(),
            cache: IncCache::default(),
            dirty: topology::DirtySet::new(),
            dirty_aux: topology::DirtySet::new(),
            border_caps: Vec::new(),
        }
    }

    /// Install the per-session border caps for the *next* run. `caps` is
    /// normalized (sorted by session, last write wins, `u8::MAX` rows
    /// dropped) so two callers handing over the same set in any order
    /// leave byte-identical state. Does not invalidate the change cache:
    /// a cap change is tracked as a root-slot input change by the
    /// incremental path.
    pub fn set_border_caps(&mut self, caps: &[(SessionId, u8)]) {
        self.border_caps.clear();
        self.border_caps.extend_from_slice(caps);
        self.border_caps.sort_by_key(|&(sid, _)| sid.0);
        // Last write per session wins; drop uncapped rows.
        let mut out: Vec<(SessionId, u8)> = Vec::with_capacity(self.border_caps.len());
        for &(sid, cap) in &self.border_caps {
            match out.last_mut() {
                Some(last) if last.0 == sid => last.1 = cap,
                _ => out.push((sid, cap)),
            }
        }
        out.retain(|&(_, cap)| cap != u8::MAX);
        self.border_caps = out;
    }

    /// The border caps currently in force (sorted by session).
    pub fn border_caps(&self) -> &[(SessionId, u8)] {
        &self.border_caps
    }

    /// The effective root-level ceiling for `sid` (`u8::MAX` = uncapped).
    fn border_cap_of(caps: &[(SessionId, u8)], sid: SessionId) -> u8 {
        caps.binary_search_by_key(&sid.0, |&(s, _)| s.0).map(|i| caps[i].1).unwrap_or(u8::MAX)
    }

    /// The configuration in force.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Number of completed runs.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Current capacity estimate for a link (diagnostics / tests).
    pub fn capacity_estimate(&self, link: DirLinkId) -> Option<f64> {
        self.estimator.capacity(link)
    }

    /// Run one interval of the five-stage algorithm.
    pub fn run(&mut self, inputs: &AlgorithmInputs<'_>) -> AlgorithmOutputs {
        self.run_audited(inputs, None)
    }

    /// [`Self::run`] plus an optional decision audit: when `audit` is
    /// `Some`, every stage's intermediate output is copied into it after
    /// the stage runs, along with wall-clock spans per kernel. The audit
    /// is strictly write-only — auditing cannot alter any decision or the
    /// RNG draw sequence, so outputs are identical either way (the
    /// telemetry determinism test pins this down).
    pub fn run_audited(
        &mut self,
        inputs: &AlgorithmInputs<'_>,
        mut audit: Option<&mut IntervalAudit>,
    ) -> AlgorithmOutputs {
        assert_eq!(inputs.trees.len(), inputs.specs.len());
        // The incremental path maintains node memories only in the dense
        // per-slot copies; flush them back before reading the map.
        self.sync_memories();
        let cfg = self.cfg;
        let nsess = inputs.trees.len();
        let timing = audit.is_some();
        let whole_span = timing.then(Span::new);

        // Borrow the scratch pool for the interval; reinstalled at the end
        // so every buffer's allocation survives into the next run.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.resize_with(nsess.max(scratch.len()), SessionScratch::default);
        let spare = scratch.split_off(nsess);

        // Stage 1 per session: aggregate this session's reports per tree
        // slot (loss = min, bytes/level = max), compute congestion states,
        // and fold the interval into a working copy of each node's
        // persistent memory. Returns the session's congested-node count.
        let memories = &self.memories;
        let stage1 = |sc: &mut SessionScratch, tree: &SessionTree| -> usize {
            let sid = tree.session();
            let t = tree.tree();
            sc.obs.clear();
            sc.obs.resize(t.len(), None);
            for r in inputs.reports {
                if r.session != sid {
                    continue;
                }
                // Reports from nodes outside the (possibly stale) tree
                // cannot be attributed to a subtree; skip them.
                let Some(slot) = t.slot_of(r.node) else { continue };
                let e =
                    sc.obs[slot].get_or_insert(LeafObs { loss: f64::INFINITY, bytes: 0, level: 0 });
                e.loss = e.loss.min(r.loss_rate());
                e.bytes = e.bytes.max(r.bytes);
                e.level = e.level.max(r.level);
            }
            congestion::compute_into(tree, &sc.obs, &cfg, &mut sc.states);
            sc.mem.clear();
            sc.mem.resize(t.len(), NodeMemory::default());
            let mut congested = 0;
            for s in t.slots() {
                let st = sc.states[s];
                congested += st.congested as usize;
                let mut mem = memories.get(&(sid, t.node_at(s))).copied().unwrap_or_default();
                if st.has_data || st.parent_congested {
                    mem.hist.push(st.congested);
                    mem.bytes_older = mem.bytes_recent;
                    mem.bytes_recent = st.max_bytes;
                } else {
                    // No-data subtree (every receiver below quarantined,
                    // evicted, or silenced by an outage): the interval is
                    // not evidence of anything, so the node inherits its
                    // prior state instead of recording a fabricated
                    // all-clear. The byte windows hold too — rotating a 0
                    // in would crater the goodput floor the reduce rules
                    // use once reports resume.
                    mem.hist.push(mem.hist.now());
                }
                sc.mem[s] = mem;
            }
            congested
        };
        let stage_span = timing.then(Span::new);
        let congested_nodes: usize = if nsess >= 2 {
            let work: Vec<(SessionScratch, &SessionTree)> =
                scratch.drain(..).zip(inputs.trees).collect();
            let done: Vec<(SessionScratch, usize)> = work
                .into_par_iter()
                .map(|(mut sc, tree)| {
                    let c = stage1(&mut sc, tree);
                    (sc, c)
                })
                .collect();
            let mut total = 0;
            for (sc, c) in done {
                scratch.push(sc);
                total += c;
            }
            total
        } else {
            scratch.iter_mut().zip(inputs.trees).map(|(sc, tree)| stage1(sc, tree)).sum()
        };
        if let Some(a) = audit.as_deref_mut() {
            if let Some(span) = stage_span {
                a.stage_ns.push(("stage1_congestion", span.elapsed_ns()));
            }
            a.congestion = congestion_audit(inputs.trees, &scratch);
        }

        // Stage 2: capacity estimation over every link any session crosses.
        // The flat usage buffer is stably sorted by link, so each link's
        // observations are contiguous and keep tree order — the estimator
        // sees exactly the per-link lists the map-based path would build.
        let mut usage = std::mem::take(&mut self.usage_buf);
        usage.clear();
        for (tree, sc) in inputs.trees.iter().zip(&scratch) {
            let sid = tree.session();
            for s in 1..tree.tree().len() {
                let st = sc.states[s];
                usage.push((
                    tree.in_link_at(s),
                    SessionLinkObs { session: sid, loss: st.loss, bytes: st.max_bytes },
                ));
            }
        }
        usage.sort_by_key(|&(l, _)| l);
        let stage_span = timing.then(Span::new);
        let mut cap_events: Vec<CapacityEvent> = Vec::new();
        self.estimator.update_sorted_traced(
            inputs.now,
            inputs.interval,
            &usage,
            &cfg,
            audit.is_some().then_some(&mut cap_events),
        );
        if let Some(a) = audit.as_deref_mut() {
            if let Some(span) = stage_span {
                a.stage_ns.push(("stage2_capacity", span.elapsed_ns()));
            }
            // Reset events surface in HashMap iteration order; a stable
            // sort by link makes the record deterministic while keeping
            // a link's reset ahead of its re-learn.
            cap_events.sort_by_key(|&(l, _, _)| l);
            a.capacity = capacity_audit(&cap_events);
        }

        // Stage 3 per session.
        let est = &self.estimator;
        let stage3 = |sc: &mut SessionScratch, tree: &SessionTree| {
            bottleneck::compute_into(
                tree,
                |l| est.capacity(l),
                &mut sc.bottleneck,
                &mut sc.max_handle,
            );
        };
        let stage_span = timing.then(Span::new);
        if nsess >= 2 {
            let work: Vec<(SessionScratch, &SessionTree)> =
                scratch.drain(..).zip(inputs.trees).collect();
            let done: Vec<SessionScratch> = work
                .into_par_iter()
                .map(|(mut sc, tree)| {
                    stage3(&mut sc, tree);
                    sc
                })
                .collect();
            scratch.extend(done);
        } else {
            for (sc, tree) in scratch.iter_mut().zip(inputs.trees) {
                stage3(sc, tree);
            }
        }
        if let Some(a) = audit.as_deref_mut() {
            if let Some(span) = stage_span {
                a.stage_ns.push(("stage3_bottleneck", span.elapsed_ns()));
            }
            a.bottleneck = bottleneck_audit(inputs.trees, &scratch);
        }

        // Stage 4 across sessions.
        let stage_span = timing.then(Span::new);
        sharing::compute_into(
            inputs.trees,
            inputs.specs,
            |l| est.capacity(l),
            &mut self.sharing_scratch,
        );
        if let Some(a) = audit.as_deref_mut() {
            if let Some(span) = stage_span {
                a.stage_ns.push(("stage4_sharing", span.elapsed_ns()));
            }
            a.sharing = sharing_audit(&self.sharing_scratch, inputs.trees);
        }

        // Stage 5 per session (sequential: shares one RNG stream).
        let stage_span = timing.then(Span::new);
        let mut outputs = AlgorithmOutputs::default();
        for (i, tree) in inputs.trees.iter().enumerate() {
            let sid = tree.session();
            let spec = inputs.specs[i];
            let t = tree.tree();
            let sc = &mut scratch[i];

            build_stage5_inputs(
                tree,
                i,
                spec,
                &cfg,
                inputs.interval,
                &self.sharing_scratch,
                &sc.obs,
                &sc.states,
                &sc.mem,
                &sc.max_handle,
                Self::border_cap_of(&self.border_caps, sid),
                &mut sc.inputs,
                &mut sc.level_cap,
            );

            let backoffs = self.backoffs.entry(sid).or_default();
            // A receiver sitting below the level we last supplied while its
            // loss is high just aborted a failed probe (possibly
            // unilaterally, if our drop suggestion died at the congested
            // link). Arm the backoff for the abandoned level here, because
            // the decision table never will: by the time it runs, the
            // receiver's current level already equals the reduced target.
            for s in t.slots() {
                let Some(o) = sc.obs[s] else { continue };
                let st = sc.states[s];
                let mem = sc.mem[s];
                if st.loss > cfg.high_loss && o.level < mem.supply_recent {
                    backoffs.arm(t.node_at(s), mem.supply_recent, inputs.now, &cfg, &mut self.rng);
                }
            }
            subscription::compute_into_traced(
                tree,
                spec,
                &cfg,
                inputs.now,
                &sc.inputs,
                &sc.level_cap,
                backoffs,
                &mut self.rng,
                &mut sc.demand,
                &mut sc.supply,
                timing.then_some(&mut sc.branches),
            );

            if std::env::var_os("TOPOSENSE_TRACE").is_some() {
                let mut line = format!("t={:.0}s s{}:", inputs.now.as_secs_f64(), sid.0);
                for s in t.slots() {
                    let inp = &sc.inputs[s];
                    line.push_str(&format!(
                        " n{}[h{:03b} loss={:.2} gp={:.0}k cur={:?} cap={} d={} s={}]",
                        t.node_at(s).0,
                        inp.hist.bits(),
                        inp.loss,
                        inp.goodput_bps / 1000.0,
                        inp.current_level,
                        sc.level_cap[s],
                        sc.demand[s],
                        sc.supply[s],
                    ));
                }
                eprintln!("{line}");
            }

            // Persist this interval's history/byte updates together with
            // the new supply/demand windows. The dense copy is written
            // back too: the incremental path reads next interval's prior
            // memory from `sc.mem`, never from the map.
            for s in t.slots() {
                let mut mem = sc.mem[s];
                mem.supply_older = mem.supply_recent;
                mem.supply_recent = sc.supply[s];
                mem.demand_prev = Some(sc.demand[s]);
                sc.mem[s] = mem;
                self.memories.insert((sid, t.node_at(s)), mem);
            }
            outputs.root_supply.push(sc.supply[0]);

            // Suggestions for every registered receiver of this session
            // whose node is in the (possibly stale) tree.
            for &(app, node, rsid) in inputs.registry {
                if rsid != sid {
                    continue;
                }
                if let Some(slot) = t.slot_of(node) {
                    outputs.suggestions.push(SuggestionOut {
                        receiver: app,
                        session: sid,
                        level: sc.supply[slot].clamp(1, spec.max_level()),
                    });
                }
            }

            if let Some(a) = audit.as_deref_mut() {
                // `suggested` mirrors the clamp applied to outgoing
                // suggestions, so the audit can be cross-checked against
                // the levels the controller actually sends.
                let mut suggested: Vec<Option<u8>> = vec![None; t.len()];
                for &(_, node, rsid) in inputs.registry {
                    if rsid != sid {
                        continue;
                    }
                    if let Some(slot) = t.slot_of(node) {
                        suggested[slot] = Some(sc.supply[slot].clamp(1, spec.max_level()));
                    }
                }
                a.subscription.push(subscription_session_audit(tree, sc, &suggested));
            }
        }
        if let Some(a) = audit {
            if let Some(span) = stage_span {
                a.stage_ns.push(("stage5_subscription", span.elapsed_ns()));
            }
            if let Some(span) = whole_span {
                a.stage_ns.push(("interval", span.elapsed_ns()));
            }
        }

        // `usage` is link-sorted, so deduping adjacent links enumerates
        // each crossed link once, already in output order.
        let mut last = None;
        for &(l, _) in &usage {
            if last == Some(l) {
                continue;
            }
            last = Some(l);
            if let Some(c) = self.estimator.capacity(l) {
                outputs.estimated_links.push((l, c));
            }
        }
        outputs.congested_nodes = congested_nodes;
        outputs.slots_recomputed = inputs.trees.iter().map(|t| 2 * t.tree().len() as u64).sum();
        scratch.extend(spare);
        self.scratch = scratch;
        self.usage_buf = usage;
        self.runs += 1;
        outputs
    }

    /// Change-driven variant of [`Self::run`]: recompute only the tree
    /// slots whose inputs changed since the previous interval, with
    /// byte-identical outputs. Falls back to the full [`Self::run`] (and
    /// reprimes the change cache) whenever the incremental invariants
    /// cannot be proven — first run, topology or membership change,
    /// interval change, pending capacity reset, failover.
    pub fn run_incremental(&mut self, inputs: &AlgorithmInputs<'_>) -> AlgorithmOutputs {
        self.run_incremental_audited(inputs, None)
    }

    /// [`Self::run_incremental`] with the same optional decision audit as
    /// [`Self::run_audited`]. An audited incremental run requires the
    /// previous run to have been audited too (clean slots reuse their
    /// cached branch labels); otherwise it falls back to a full run.
    pub fn run_incremental_audited(
        &mut self,
        inputs: &AlgorithmInputs<'_>,
        mut audit: Option<&mut IntervalAudit>,
    ) -> AlgorithmOutputs {
        let want_audit = audit.is_some();
        if !self.can_run_incremental(inputs, want_audit) {
            let out = self.run_audited(inputs, audit.as_deref_mut());
            self.rebuild_cache(inputs, want_audit);
            return out;
        }
        self.run_incremental_inner(inputs, audit)
    }

    /// Drop the incremental cache (flushing the dense node memories back
    /// into the persistent map first). Call on any external state
    /// transition — controller failover, restart — after which last
    /// interval's cached invariants no longer hold; the next run then
    /// takes the full path and reprimes the cache.
    pub fn invalidate(&mut self) {
        self.sync_memories();
    }

    /// Capture a [`Snapshot`](crate::checkpoint::Snapshot) of the
    /// persistent state *without perturbing it*: the incremental change
    /// cache (if live) stays valid, so a primary can serve resync
    /// checkpoints mid-stream without forcing its own next interval onto
    /// the full path. Dense per-slot memories are merged over the
    /// persistent map read-only — the same flush [`Self::invalidate`]
    /// performs, minus the invalidation.
    pub fn checkpoint(&self) -> crate::checkpoint::Snapshot {
        use crate::checkpoint::{BackoffEntry, EstimateEntry, MemoryEntry, Snapshot};
        let mut mem = self.memories.clone();
        if self.cache.valid {
            for (k, cs) in self.cache.sessions.iter().enumerate() {
                let t = cs.tree.tree();
                let sc = &self.scratch[k];
                for s in t.slots() {
                    mem.insert((cs.session, t.node_at(s)), sc.mem[s]);
                }
            }
        }
        let mut memories: Vec<MemoryEntry> = mem
            .iter()
            .map(|(&(sid, node), m)| MemoryEntry {
                session: sid.0,
                node: node.0,
                hist: m.hist.bits(),
                bytes_older: m.bytes_older,
                bytes_recent: m.bytes_recent,
                supply_older: m.supply_older,
                supply_recent: m.supply_recent,
                demand_prev: m.demand_prev,
            })
            .collect();
        memories.sort_by_key(|e| (e.session, e.node));
        let estimates = self
            .estimator
            .snapshot()
            .into_iter()
            .map(|(link, bits, set_at)| EstimateEntry {
                link: link.0,
                capacity_bits: bits,
                set_at_ns: set_at.0,
            })
            .collect();
        let mut backoffs: Vec<BackoffEntry> = Vec::new();
        for (&sid, table) in &self.backoffs {
            for (node, level, until, fails) in table.snapshot() {
                backoffs.push(BackoffEntry {
                    session: sid.0,
                    node: node.0,
                    level,
                    until_ns: until.map(|t| t.0),
                    failures: fails,
                });
            }
        }
        backoffs.sort_by_key(|b| (b.session, b.node, b.level));
        Snapshot {
            config_fingerprint: self.cfg.fingerprint(),
            runs: self.runs,
            rng: self.rng.state(),
            estimates,
            memories,
            backoffs,
        }
    }

    /// Rebuild a state from a [`Snapshot`](crate::checkpoint::Snapshot).
    /// `cfg` must be the parameter set the snapshot was taken under
    /// (checked via [`Config::fingerprint`] — the pipeline is only
    /// byte-deterministic for a fixed config). The restored state's first
    /// run takes the full pipeline path once (the change cache is cold),
    /// which is byte-identical — RNG draw sequence included — to what the
    /// uninterrupted original would have produced (DESIGN.md §11).
    pub fn restore(cfg: Config, snap: &crate::checkpoint::Snapshot) -> Result<Self, String> {
        if cfg.fingerprint() != snap.config_fingerprint {
            return Err(format!(
                "checkpoint was taken under a different Config (fingerprint {:#018x}, ours {:#018x})",
                snap.config_fingerprint,
                cfg.fingerprint()
            ));
        }
        let mut st = Self::new(cfg, 0);
        st.rng = RngStream::from_state(snap.rng);
        st.runs = snap.runs;
        let est: Vec<(DirLinkId, u64, SimTime)> = snap
            .estimates
            .iter()
            .map(|e| (DirLinkId(e.link), e.capacity_bits, SimTime(e.set_at_ns)))
            .collect();
        st.estimator = CapacityEstimator::restore(&est);
        st.memories = snap
            .memories
            .iter()
            .map(|m| {
                (
                    (SessionId(m.session), NodeId(m.node)),
                    NodeMemory {
                        hist: CongestionHistory::from_bits(m.hist),
                        bytes_older: m.bytes_older,
                        bytes_recent: m.bytes_recent,
                        supply_older: m.supply_older,
                        supply_recent: m.supply_recent,
                        demand_prev: m.demand_prev,
                    },
                )
            })
            .collect();
        type BackoffRows = Vec<(NodeId, u8, Option<SimTime>, u32)>;
        let mut per: HashMap<SessionId, BackoffRows> = HashMap::new();
        for b in &snap.backoffs {
            per.entry(SessionId(b.session)).or_default().push((
                NodeId(b.node),
                b.level,
                b.until_ns.map(SimTime),
                b.failures,
            ));
        }
        st.backoffs =
            per.into_iter().map(|(sid, rows)| (sid, BackoffTable::restore(&rows))).collect();
        Ok(st)
    }

    /// Flush the dense per-slot node memories back into the `memories`
    /// map and invalidate the cache. The incremental path updates only
    /// the dense copies, so this must run before anything reads the map.
    fn sync_memories(&mut self) {
        if !self.cache.valid {
            return;
        }
        self.cache.valid = false;
        for (k, cs) in self.cache.sessions.iter().enumerate() {
            let t = cs.tree.tree();
            let sc = &self.scratch[k];
            for s in t.slots() {
                self.memories.insert((cs.session, t.node_at(s)), sc.mem[s]);
            }
        }
    }

    /// Can this interval be served from the change cache? Every check
    /// guards a specific invariant the incremental kernels assume.
    fn can_run_incremental(&self, inputs: &AlgorithmInputs<'_>, want_audit: bool) -> bool {
        let c = &self.cache;
        if !c.valid || (want_audit && !c.branches_valid) || inputs.interval != c.interval {
            return false;
        }
        if inputs.trees.len() != c.sessions.len()
            || inputs.registry != c.registry.as_slice()
            || inputs.reports.len() != c.reports.len()
        {
            return false;
        }
        // Routing equality only: per-edge layer attributes may differ
        // (receivers moving a subscription level under steering is the
        // steady-state common case). A layer feeds exactly one input —
        // the no-report fallback level of its own slot — so stage 5
        // re-decides the changed slots instead of the cache dying.
        for ((tree, spec), cs) in inputs.trees.iter().zip(inputs.specs).zip(&c.sessions) {
            if tree.session() != cs.session || **spec != cs.spec || !tree.routing_eq(&cs.tree) {
                return false;
            }
        }
        // Report *keys* must match index-for-index so the cached
        // slot attribution still applies; values are what gets diffed.
        for (new, old) in inputs.reports.iter().zip(&c.reports) {
            if (new.receiver, new.node, new.session) != (old.receiver, old.node, old.session) {
                return false;
            }
        }
        // A due capacity reset rewrites estimator state outside the
        // change-tracking model; let the full path run it.
        !self.estimator.has_pending_reset(inputs.now, &self.cfg)
    }

    /// Prime the change cache from `inputs` right after a full run, so the
    /// next interval can be served incrementally.
    fn rebuild_cache(&mut self, inputs: &AlgorithmInputs<'_>, audited: bool) {
        let c = &mut self.cache;
        c.interval = inputs.interval;
        c.registry.clear();
        c.registry.extend_from_slice(inputs.registry);
        c.reports.clear();
        c.reports.extend_from_slice(inputs.reports);
        c.border_caps.clear();
        c.border_caps.extend_from_slice(&self.border_caps);

        c.report_target.clear();
        for r in inputs.reports {
            let target =
                inputs.trees.iter().position(|t| t.session() == r.session).and_then(|k| {
                    inputs.trees[k].tree().slot_of(r.node).map(|s| (k as u32, s as u32))
                });
            c.report_target.push(target.unwrap_or((u32::MAX, u32::MAX)));
        }

        c.sessions.clear();
        for (k, tree) in inputs.trees.iter().enumerate() {
            let t = tree.tree();
            let sid = tree.session();
            // Counting sort into a CSR keeps each slot's report indices in
            // global report order — the order the full path folds in.
            let mut rep_start = vec![0u32; t.len() + 1];
            for &(sess, slot) in &c.report_target {
                if sess as usize == k {
                    rep_start[slot as usize + 1] += 1;
                }
            }
            for i in 1..rep_start.len() {
                rep_start[i] += rep_start[i - 1];
            }
            let mut cursor = rep_start.clone();
            let mut rep_idx = vec![0u32; *rep_start.last().unwrap() as usize];
            for (i, &(sess, slot)) in c.report_target.iter().enumerate() {
                if sess as usize == k {
                    rep_idx[cursor[slot as usize] as usize] = i as u32;
                    cursor[slot as usize] += 1;
                }
            }
            let sugg_route = inputs
                .registry
                .iter()
                .filter(|&&(_, _, rsid)| rsid == sid)
                .filter_map(|&(app, node, _)| t.slot_of(node).map(|s| (app, s as u32)))
                .collect();
            let mut backoff_slots: Vec<u32> = self
                .backoffs
                .get(&sid)
                .map(|b| b.armed_nodes().filter_map(|n| t.slot_of(n)).map(|s| s as u32).collect())
                .unwrap_or_default();
            backoff_slots.sort_unstable();
            backoff_slots.dedup();
            c.sessions.push(SessionCache {
                session: sid,
                tree: tree.clone(),
                spec: inputs.specs[k].clone(),
                rep_start,
                rep_idx,
                sugg_route,
                backoff_slots,
                // The full run's persistence wrote every slot; the first
                // incremental interval must treat them all as moved.
                mem5_dirty: (0..t.len() as u32).collect(),
            });
        }

        // `usage_meta` parallels the link-sorted usage buffer the full run
        // left in `self.usage_buf`: regenerate the rows in the same order
        // and stable-sort by the same key, so row `i` annotates
        // `usage_buf[i]`.
        let mut rows: Vec<(DirLinkId, u32, u32)> = Vec::new();
        for (k, tree) in inputs.trees.iter().enumerate() {
            for s in 1..tree.tree().len() {
                rows.push((tree.in_link_at(s), k as u32, s as u32));
            }
        }
        rows.sort_by_key(|&(l, _, _)| l);
        debug_assert_eq!(rows.len(), self.usage_buf.len());
        c.usage_meta.clear();
        c.usage_meta.extend(rows.iter().map(|&(_, k, s)| (k, s)));
        c.crossed_links.clear();
        c.crossed_links.extend(rows.iter().map(|&(l, _, _)| l));
        c.crossed_links.dedup();

        c.branches_valid = audited;
        c.valid = true;
    }

    /// The incremental interval body. Preconditions established by
    /// [`Self::can_run_incremental`]: same sessions/trees/specs/registry
    /// and report keys as the cached interval, no pending capacity reset,
    /// and (when auditing) branch labels current for every slot.
    fn run_incremental_inner(
        &mut self,
        inputs: &AlgorithmInputs<'_>,
        mut audit: Option<&mut IntervalAudit>,
    ) -> AlgorithmOutputs {
        let cfg = self.cfg;
        let nsess = inputs.trees.len();
        let timing = audit.is_some();
        let whole_span = timing.then(Span::new);

        let mut cache = std::mem::take(&mut self.cache);
        let mut dirty = std::mem::take(&mut self.dirty);
        let mut dirty_aux = std::mem::take(&mut self.dirty_aux);
        let mut scratch = std::mem::take(&mut self.scratch);
        let spare = scratch.split_off(nsess);
        let mut outputs = AlgorithmOutputs { incremental: true, ..AlgorithmOutputs::default() };
        let mut slots_recomputed: u64 = 0;

        // Stage 1 (incremental): diff the reports against the previous
        // interval's copy; each changed row dirties the slot it folds
        // into, and every ancestor of a dirty slot re-runs the bottom-up
        // kernel (its child fold reads the recomputed state).
        let stage_span = timing.then(Span::new);
        let mut report_dirty: Vec<(u32, u32)> = Vec::new();
        for ((new, old), &target) in
            inputs.reports.iter().zip(&cache.reports).zip(&cache.report_target)
        {
            if new != old && target.0 != u32::MAX {
                report_dirty.push(target);
            }
        }
        let mut state_changed: Vec<(u32, u32)> = Vec::new();
        let mut congested_nodes = 0usize;
        for (k, tree) in inputs.trees.iter().enumerate() {
            let t = tree.tree();
            let sc = &mut scratch[k];
            let cs = &cache.sessions[k];
            // Snapshot last interval's states: stage 5 diffs against this
            // to find slots whose inputs (own/parent/sibling congestion,
            // loss) moved.
            sc.states_prev.clone_from(&sc.states);
            dirty.begin(t.len());
            for &(sess, slot) in &report_dirty {
                if sess as usize != k || !dirty.mark(slot as usize) {
                    continue;
                }
                // Re-aggregate this slot's observation from its reports,
                // in global report order — the same fold as the full path.
                let slot = slot as usize;
                sc.obs[slot] = None;
                let (lo, hi) = (cs.rep_start[slot] as usize, cs.rep_start[slot + 1] as usize);
                for &ri in &cs.rep_idx[lo..hi] {
                    let r = &inputs.reports[ri as usize];
                    let e = sc.obs[slot].get_or_insert(LeafObs {
                        loss: f64::INFINITY,
                        bytes: 0,
                        level: 0,
                    });
                    e.loss = e.loss.min(r.loss_rate());
                    e.bytes = e.bytes.max(r.bytes);
                    e.level = e.level.max(r.level);
                }
            }
            sc.obs_dirty.clear();
            sc.obs_dirty.extend_from_slice(dirty.slots());
            for i in 0..sc.obs_dirty.len() {
                // Start the walk at the parent: the changed slot is already
                // marked, and `mark_ancestors` stops at the first marked slot.
                if let Some(p) = t.parent_slot_of(sc.obs_dirty[i] as usize) {
                    tree.mark_ancestors(p, &mut dirty);
                }
            }
            dirty.sort_descending();
            slots_recomputed += dirty.len() as u64;
            for &s in dirty.slots() {
                let s = s as usize;
                let old = sc.states[s];
                let new = congestion::slot_state(tree, s, &sc.obs, &sc.states, &cfg);
                sc.states[s] = new;
                // Bit-compare: what stage 2 reads from a state is its
                // (loss, bytes) pair; NaN-safe and exact.
                if old.loss.to_bits() != new.loss.to_bits() || old.max_bytes != new.max_bytes {
                    state_changed.push((k as u32, s as u32));
                }
            }
            // One fused top-down pass over the session: congestion
            // propagation (inlined from `congestion::propagate_down`,
            // semantics identical), the congested-node count, the memory
            // fold, and the stage-5 feed diffs. Slots whose memory or
            // propagated state actually moved are recorded for the stage-5
            // input diff — in steady state (stable history, stable byte
            // counts) the fold is a fixed point and both lists stay short.
            sc.mem_dirty.clear();
            sc.state_dirty.clear();
            for s in t.slots() {
                let parent_congested =
                    t.parent_slot_of(s).map(|p| sc.states[p].congested).unwrap_or(false);
                sc.states[s].parent_congested = parent_congested;
                sc.states[s].congested = sc.states[s].self_congested || parent_congested;
                let st = sc.states[s];
                congested_nodes += st.congested as usize;
                let old = sc.states_prev[s];
                if old.congested != st.congested
                    || old.parent_congested != st.parent_congested
                    || old.loss.to_bits() != st.loss.to_bits()
                {
                    sc.state_dirty.push(s as u32);
                }
                let mut mem = sc.mem[s];
                if st.has_data || st.parent_congested {
                    mem.hist.push(st.congested);
                    mem.bytes_older = mem.bytes_recent;
                    mem.bytes_recent = st.max_bytes;
                } else {
                    mem.hist.push(mem.hist.now());
                }
                if mem != sc.mem[s] {
                    sc.mem_dirty.push(s as u32);
                    sc.mem[s] = mem;
                }
            }
        }
        if let Some(a) = audit.as_deref_mut() {
            if let Some(span) = stage_span {
                a.stage_ns.push(("stage1_congestion", span.elapsed_ns()));
            }
            a.congestion = congestion_audit(inputs.trees, &scratch);
        }

        // Stage 2 (incremental): links holding an estimate always re-run —
        // creep/hold/recompute fire even on clean intervals — and links
        // under a changed observation re-run to learn. Skipping the rest
        // is provably a no-op: learning is a pure function of the link's
        // unchanged observations (it declined identically last time), and
        // the reset pass was proven empty before entry.
        let stage_span = timing.then(Span::new);
        let mut cap_events: Vec<CapacityEvent> = Vec::new();
        let mut candidates: Vec<DirLinkId> = self
            .estimator
            .iter()
            .map(|(l, _)| l)
            .filter(|l| cache.crossed_links.binary_search(l).is_ok())
            .collect();
        for &(sess, slot) in &state_changed {
            if slot != 0 {
                candidates.push(inputs.trees[sess as usize].in_link_at(slot as usize));
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        let mut cap_changed: Vec<DirLinkId> = Vec::new();
        let mut run_buf: Vec<SessionLinkObs> = Vec::new();
        for &link in &candidates {
            let lo = self.usage_buf.partition_point(|&(l, _)| l < link);
            let hi = self.usage_buf.partition_point(|&(l, _)| l <= link);
            run_buf.clear();
            for &(sess, slot) in &cache.usage_meta[lo..hi] {
                let st = scratch[sess as usize].states[slot as usize];
                run_buf.push(SessionLinkObs {
                    session: inputs.trees[sess as usize].session(),
                    loss: st.loss,
                    bytes: st.max_bytes,
                });
            }
            let before = self.estimator.capacity(link).map(f64::to_bits);
            self.estimator.update_link_traced(
                inputs.now,
                inputs.interval,
                link,
                &run_buf,
                &cfg,
                timing.then_some(&mut cap_events),
            );
            if self.estimator.capacity(link).map(f64::to_bits) != before {
                cap_changed.push(link);
            }
        }
        if let Some(a) = audit.as_deref_mut() {
            if let Some(span) = stage_span {
                a.stage_ns.push(("stage2_capacity", span.elapsed_ns()));
            }
            cap_events.sort_by_key(|&(l, _, _)| l);
            a.capacity = capacity_audit(&cap_events);
        }

        // Stage 3 (incremental): the bottleneck curves are a pure function
        // of tree + estimates, so only sessions crossing a changed link
        // need a recompute.
        let est = &self.estimator;
        let stage_span = timing.then(Span::new);
        if !cap_changed.is_empty() {
            for (tree, sc) in inputs.trees.iter().zip(scratch.iter_mut()) {
                let crosses = (1..tree.tree().len())
                    .any(|s| cap_changed.binary_search(&tree.in_link_at(s)).is_ok());
                if crosses {
                    bottleneck::compute_into(
                        tree,
                        |l| est.capacity(l),
                        &mut sc.bottleneck,
                        &mut sc.max_handle,
                    );
                }
            }
        }
        if let Some(a) = audit.as_deref_mut() {
            if let Some(span) = stage_span {
                a.stage_ns.push(("stage3_bottleneck", span.elapsed_ns()));
            }
            a.bottleneck = bottleneck_audit(inputs.trees, &scratch);
        }

        // Stage 4 (incremental): session-granular refresh around the
        // changed capacities; a no-op when none changed.
        let stage_span = timing.then(Span::new);
        let refreshed_sessions = sharing::compute_incremental_into(
            inputs.trees,
            inputs.specs,
            |l| est.capacity(l),
            &mut self.sharing_scratch,
            &cap_changed,
        );
        if let Some(a) = audit.as_deref_mut() {
            if let Some(span) = stage_span {
                a.stage_ns.push(("stage4_sharing", span.elapsed_ns()));
            }
            a.sharing = sharing_audit(&self.sharing_scratch, inputs.trees);
        }

        // Stage 5 (incremental, sequential: shares one RNG stream).
        let stage_span = timing.then(Span::new);
        for (k, tree) in inputs.trees.iter().enumerate() {
            let sid = tree.session();
            let spec = inputs.specs[k];
            let t = tree.tree();
            let sc = &mut scratch[k];
            let cs = &mut cache.sessions[k];

            let border_cap = Self::border_cap_of(&self.border_caps, sid);
            let border_cap_moved = border_cap != Self::border_cap_of(&cache.border_caps, sid);
            dirty.begin(t.len());
            if refreshed_sessions.binary_search(&(k as u32)).is_ok() {
                // Sharing refreshed this session's allowances: any slot's
                // level cap may have moved, so rebuild inputs for every
                // slot and diff to find the dirty decisions.
                build_stage5_inputs(
                    tree,
                    k,
                    spec,
                    &cfg,
                    inputs.interval,
                    &self.sharing_scratch,
                    &sc.obs,
                    &sc.states,
                    &sc.mem,
                    &sc.max_handle,
                    border_cap,
                    &mut sc.inputs_new,
                    &mut sc.level_cap_new,
                );
                for s in t.slots() {
                    if sc.inputs_new[s] != sc.inputs[s] || sc.level_cap_new[s] != sc.level_cap[s] {
                        dirty.mark(s);
                    }
                }
                std::mem::swap(&mut sc.inputs, &mut sc.inputs_new);
                std::mem::swap(&mut sc.level_cap, &mut sc.level_cap_new);
            } else {
                // Allowances untouched: a slot's inputs can only have moved
                // through one of its trackable feeds — a re-folded
                // observation, a memory write (stage-1 fold this interval
                // or stage-5 persistence last interval), or a congestion
                // state change at the slot, its parent, or a sibling.
                // Rebuild inputs for exactly those candidates.
                dirty_aux.begin(t.len());
                if border_cap_moved {
                    // The cap feeds exactly one input — the root's level
                    // cap — so the root is the (only) candidate; the
                    // full-width supply pass below propagates the change
                    // to every descendant.
                    dirty_aux.mark(0);
                }
                for &s in &sc.obs_dirty {
                    dirty_aux.mark(s as usize);
                }
                for &s in &sc.mem_dirty {
                    dirty_aux.mark(s as usize);
                }
                for &s in &cs.mem5_dirty {
                    dirty_aux.mark(s as usize);
                }
                // Per-edge layer moves (routing unchanged — the entry
                // precondition) alter the no-report fallback level of
                // exactly their own slot.
                for s in 1..t.len() {
                    if tree.max_layer_at(s) != cs.tree.max_layer_at(s) {
                        dirty_aux.mark(s);
                    }
                }
                for i in 0..sc.state_dirty.len() {
                    let s = sc.state_dirty[i] as usize;
                    dirty_aux.mark(s);
                    // Siblings read this slot's `congested` in their
                    // sibling scan.
                    if sc.states_prev[s].congested != sc.states[s].congested {
                        if let Some(p) = t.parent_slot_of(s) {
                            for sib in t.child_slots(p) {
                                dirty_aux.mark(sib);
                            }
                        }
                    }
                }
                for &s in dirty_aux.slots() {
                    let s = s as usize;
                    let (inp, lc) = stage5_input_at(
                        tree,
                        k,
                        spec,
                        &cfg,
                        inputs.interval,
                        &self.sharing_scratch,
                        &sc.obs,
                        &sc.states,
                        &sc.mem,
                        &sc.max_handle,
                        border_cap,
                        s,
                    );
                    if inp != sc.inputs[s] || lc != sc.level_cap[s] {
                        sc.inputs[s] = inp;
                        sc.level_cap[s] = lc;
                        dirty.mark(s);
                    }
                }
            }

            let backoffs = self.backoffs.entry(sid).or_default();
            // Pre-loop arming: identical scan, conditions, and order as
            // the full path, so the RNG draw sequence stays aligned.
            for s in t.slots() {
                let Some(o) = sc.obs[s] else { continue };
                let st = sc.states[s];
                let mem = sc.mem[s];
                if st.loss > cfg.high_loss && o.level < mem.supply_recent {
                    backoffs.arm(t.node_at(s), mem.supply_recent, inputs.now, &cfg, &mut self.rng);
                }
            }
            // The full kernel expires timers before its demand pass.
            backoffs.expire(inputs.now);
            // A timer influences `blocked` for its whole subtree: dirty
            // the subtrees of every live timer, and of every slot that
            // held one after the previous run — expiry itself changes
            // `blocked`, so those subtrees must re-decide once.
            for &s in &cs.backoff_slots {
                tree.mark_subtree(s as usize, &mut dirty);
            }
            for node in backoffs.armed_nodes() {
                if let Some(s) = t.slot_of(node) {
                    tree.mark_subtree(s, &mut dirty);
                }
            }

            // Demand over dirty slots, in the full kernel's bottom-up
            // order. A clean slot repeats last interval's decision by
            // construction (same inputs, same children demands, same
            // backoff view — and no RNG draw: had its branch armed a
            // timer, the slot would be backoff-dirty). A changed demand
            // dirties the parent, which sits at a lower slot and is
            // therefore still ahead of the scan.
            for s in (0..t.len()).rev() {
                if !dirty.contains(s) {
                    continue;
                }
                let (d, br) = subscription::decide_slot(
                    tree,
                    spec,
                    &cfg,
                    inputs.now,
                    s,
                    &sc.inputs[s],
                    sc.level_cap[s],
                    &sc.demand,
                    backoffs,
                    &mut self.rng,
                );
                slots_recomputed += 1;
                if timing {
                    sc.branches[s] = br;
                }
                if sc.demand[s] != d {
                    sc.demand[s] = d;
                    if let Some(p) = t.parent_slot_of(s) {
                        dirty.mark(p);
                    }
                }
            }
            // Supply, top-down — full width, exactly the kernel's pass.
            for s in t.slots() {
                let v = match t.parent_slot_of(s) {
                    None => sc.demand[s].min(sc.level_cap[s]),
                    Some(p) => sc.demand[s].min(sc.supply[p]).min(sc.level_cap[s]),
                };
                sc.supply[s] = v.max(1);
            }

            if std::env::var_os("TOPOSENSE_TRACE").is_some() {
                let mut line = format!("t={:.0}s s{}:", inputs.now.as_secs_f64(), sid.0);
                for s in t.slots() {
                    let inp = &sc.inputs[s];
                    line.push_str(&format!(
                        " n{}[h{:03b} loss={:.2} gp={:.0}k cur={:?} cap={} d={} s={}]",
                        t.node_at(s).0,
                        inp.hist.bits(),
                        inp.loss,
                        inp.goodput_bps / 1000.0,
                        inp.current_level,
                        sc.level_cap[s],
                        sc.demand[s],
                        sc.supply[s],
                    ));
                }
                eprintln!("{line}");
            }

            // Persist into the dense copies only; the `memories` map is
            // synced lazily on the next full run or invalidation. Slots
            // whose memory moved feed the next interval's input diff.
            cs.mem5_dirty.clear();
            for s in t.slots() {
                let mut mem = sc.mem[s];
                mem.supply_older = mem.supply_recent;
                mem.supply_recent = sc.supply[s];
                mem.demand_prev = Some(sc.demand[s]);
                if mem != sc.mem[s] {
                    cs.mem5_dirty.push(s as u32);
                    sc.mem[s] = mem;
                }
            }
            outputs.root_supply.push(sc.supply[0]);

            // Suggestions via the cached route — registry order, exactly
            // the receivers the full path would address.
            for &(app, slot) in &cs.sugg_route {
                outputs.suggestions.push(SuggestionOut {
                    receiver: app,
                    session: sid,
                    level: sc.supply[slot as usize].clamp(1, spec.max_level()),
                });
            }

            if let Some(a) = audit.as_deref_mut() {
                let mut suggested: Vec<Option<u8>> = vec![None; t.len()];
                for &(_, slot) in &cs.sugg_route {
                    suggested[slot as usize] =
                        Some(sc.supply[slot as usize].clamp(1, spec.max_level()));
                }
                a.subscription.push(subscription_session_audit(tree, sc, &suggested));
            }
        }
        if let Some(a) = audit {
            if let Some(span) = stage_span {
                a.stage_ns.push(("stage5_subscription", span.elapsed_ns()));
            }
            if let Some(span) = whole_span {
                a.stage_ns.push(("interval", span.elapsed_ns()));
            }
        }

        // Estimated links: the cached crossed-link list is the sorted
        // dedup of the usage buffer — the same enumeration the full path
        // derives by scanning it.
        for &l in &cache.crossed_links {
            if let Some(c) = self.estimator.capacity(l) {
                outputs.estimated_links.push((l, c));
            }
        }
        outputs.congested_nodes = congested_nodes;
        outputs.slots_recomputed = slots_recomputed;

        // Refresh the cache for the next interval: new report values
        // (keys unchanged), the border caps just applied, fresh backoff
        // snapshots, and — without an audit — stale branch labels at the
        // slots just re-decided.
        cache.reports.clear();
        cache.reports.extend_from_slice(inputs.reports);
        cache.border_caps.clear();
        cache.border_caps.extend_from_slice(&self.border_caps);
        for (k, tree) in inputs.trees.iter().enumerate() {
            let t = tree.tree();
            let cs = &mut cache.sessions[k];
            // Adopt this interval's per-edge layers (routing is unchanged
            // by the entry precondition): the next interval's layer diff
            // must run against what stage 5 just decided from.
            if !tree.structure_eq(&cs.tree) {
                cs.tree = tree.clone();
            }
            cs.backoff_slots.clear();
            if let Some(b) = self.backoffs.get(&tree.session()) {
                cs.backoff_slots
                    .extend(b.armed_nodes().filter_map(|n| t.slot_of(n)).map(|s| s as u32));
            }
            cs.backoff_slots.sort_unstable();
            cs.backoff_slots.dedup();
        }
        if !timing {
            cache.branches_valid = false;
        }

        scratch.extend(spare);
        self.scratch = scratch;
        self.cache = cache;
        self.dirty = dirty;
        self.dirty_aux = dirty_aux;
        self.runs += 1;
        outputs
    }
}

/// Assemble one session's stage-5 per-slot inputs and level caps from the
/// stage-1..4 results. Shared verbatim by the full and incremental paths:
/// the incremental path builds into double buffers and diffs, so any
/// drift between two copies of this logic would silently break the
/// byte-identity invariant.
#[allow(clippy::too_many_arguments)]
fn build_stage5_inputs(
    tree: &SessionTree,
    sess_idx: usize,
    spec: &LayerSpec,
    cfg: &Config,
    interval: SimDuration,
    sharing: &SharingScratch,
    obs: &[Option<LeafObs>],
    states: &[NodeState],
    mem: &[NodeMemory],
    max_handle: &[f64],
    border_cap: u8,
    inputs: &mut Vec<NodeInputs>,
    level_cap: &mut Vec<u8>,
) {
    let t = tree.tree();
    inputs.clear();
    level_cap.clear();
    for s in t.slots() {
        let (inp, lc) = stage5_input_at(
            tree, sess_idx, spec, cfg, interval, sharing, obs, states, mem, max_handle, border_cap,
            s,
        );
        inputs.push(inp);
        level_cap.push(lc);
    }
}

/// The stage-5 decision inputs and level cap of a single slot — the unit
/// both the full path (every slot) and the incremental path (candidate
/// slots only) build from, so the two can never drift.
#[allow(clippy::too_many_arguments)]
fn stage5_input_at(
    tree: &SessionTree,
    sess_idx: usize,
    spec: &LayerSpec,
    cfg: &Config,
    interval: SimDuration,
    sharing: &SharingScratch,
    obs: &[Option<LeafObs>],
    states: &[NodeState],
    mem: &[NodeMemory],
    max_handle: &[f64],
    border_cap: u8,
    s: usize,
) -> (NodeInputs, u8) {
    let t = tree.tree();
    let st = states[s];
    let sibling_congested = match t.parent_slot_of(s) {
        None => false,
        Some(p) => t.child_slots(p).any(|c| c != s && states[c].congested),
    };
    let m = mem[s];
    // Receivers that did not report this interval fall back to
    // the subscription implied by the tree itself.
    let reported = obs[s].map(|o| o.level).or_else(|| (s != 0).then(|| tree.max_layer_at(s) + 1));
    // Reports lag suggestions by up to an interval. While a node
    // is clean, a reported level below our last supply is just
    // that lag (the receiver is catching up to the suggestion),
    // not a deliberate drop — trusting the stale value makes the
    // controller re-suggest it and flap. Under congestion the
    // report is authoritative (unilateral drops are real).
    // The trust is bounded to one unreported step (`r + 1`):
    // with a stale discovery tool the reports lag by much more
    // than an interval, and trusting the full supply would let
    // the controller climb on the echo of its own suggestions.
    let current_level = reported.map(|r| {
        if st.congested || st.loss > cfg.p_threshold {
            r
        } else {
            r.max(m.supply_recent.min(r + 1))
        }
    });
    let inp = NodeInputs {
        hist: m.hist,
        parent_congested: st.parent_congested,
        sibling_congested,
        bw: BwEquality::classify(m.bytes_older, m.bytes_recent, cfg.bw_equal_tolerance),
        loss: st.loss,
        supply_older: m.supply_older,
        supply_recent: m.supply_recent,
        demand_prev: m.demand_prev,
        current_level,
        // Two-interval max: during a neighbour's transient
        // probe this interval's goodput dips, but the prior
        // interval still witnesses the sustainable level, so
        // innocent subtrees are not dragged down with the
        // prober (see reduce_target).
        goodput_bps: m.bytes_recent.max(m.bytes_older) as f64 * 8.0
            / interval.as_secs_f64().max(1e-9),
    };
    let bw = sharing.allowed_at(sess_idx, s).min(max_handle[s]);
    let mut lc = spec.level_fitting(bw);
    if s == 0 {
        // Federation border cap (DESIGN.md §16): an externally imposed
        // ceiling on what this domain's root may carry. Applied at the
        // root only — the top-down supply pass min-folds it over every
        // slot, so one capped slot steers the whole domain.
        lc = lc.min(border_cap);
    }
    (inp, lc)
}

/// Stage-1 audit record, shared by the full and incremental paths.
fn congestion_audit(
    trees: &[SessionTree],
    scratch: &[SessionScratch],
) -> Vec<SessionNodes<CongestionNode>> {
    trees
        .iter()
        .zip(scratch)
        .map(|(tree, sc)| {
            let t = tree.tree();
            SessionNodes {
                session: tree.session().0 as u64,
                nodes: t
                    .slots()
                    .map(|s| {
                        let st = sc.states[s];
                        CongestionNode {
                            node: t.node_at(s).0 as u64,
                            loss: st.loss,
                            self_congested: st.self_congested,
                            congested: st.congested,
                            parent_congested: st.parent_congested,
                        }
                    })
                    .collect(),
            }
        })
        .collect()
}

/// Stage-2 audit record from link-sorted capacity events.
fn capacity_audit(events: &[CapacityEvent]) -> Vec<CapacityLink> {
    events
        .iter()
        .map(|&(l, bps, event)| CapacityLink { link: l.0 as u64, bps, event: event.into() })
        .collect()
}

/// Stage-3 audit record, shared by the full and incremental paths.
fn bottleneck_audit(
    trees: &[SessionTree],
    scratch: &[SessionScratch],
) -> Vec<SessionNodes<BottleneckNode>> {
    trees
        .iter()
        .zip(scratch)
        .map(|(tree, sc)| {
            let t = tree.tree();
            SessionNodes {
                session: tree.session().0 as u64,
                nodes: t
                    .slots()
                    .map(|s| BottleneckNode {
                        node: t.node_at(s).0 as u64,
                        bottleneck_bps: sc.bottleneck[s],
                        max_handle_bps: sc.max_handle[s],
                    })
                    .collect(),
            }
        })
        .collect()
}

/// Stage-4 audit record, shared by the full and incremental paths.
fn sharing_audit(sharing: &SharingScratch, trees: &[SessionTree]) -> Vec<SharingEntry> {
    sharing
        .shares_sorted()
        .into_iter()
        .map(|(l, i, bps)| SharingEntry {
            link: l.0 as u64,
            session: trees[i as usize].session().0 as u64,
            allowed_bps: bps,
        })
        .collect()
}

/// One session's stage-5 audit record; `suggested` mirrors the clamp
/// applied to outgoing suggestions, so the audit can be cross-checked
/// against the levels the controller actually sends.
fn subscription_session_audit(
    tree: &SessionTree,
    sc: &SessionScratch,
    suggested: &[Option<u8>],
) -> SessionNodes<SubscriptionNode> {
    let t = tree.tree();
    SessionNodes {
        session: tree.session().0 as u64,
        nodes: t
            .slots()
            .map(|s| SubscriptionNode {
                node: t.node_at(s).0 as u64,
                branch: sc.branches[s].into(),
                demand: sc.demand[s],
                supply: sc.supply[s],
                suggested: suggested[s],
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{GroupId, GroupSnapshot};
    use topology::discovery::{LinkView, TopologyView};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn l(i: u32) -> DirLinkId {
        DirLinkId(i)
    }

    /// One session: 0 -> 1 -> {2, 3}, receivers at 2 and 3.
    fn one_session_tree() -> SessionTree {
        let view = TopologyView {
            time: SimTime::ZERO,
            links: vec![
                LinkView { id: l(0), from: n(0), to: n(1) },
                LinkView { id: l(1), from: n(1), to: n(2) },
                LinkView { id: l(2), from: n(1), to: n(3) },
            ],
            groups: vec![GroupSnapshot {
                group: GroupId(0),
                root: n(0),
                active_links: vec![l(0), l(1), l(2)],
                member_nodes: vec![n(2), n(3)],
            }],
        };
        SessionTree::build(&view, SessionId(0), &[GroupId(0)]).unwrap()
    }

    fn report(
        app: u32,
        node: u32,
        level: u8,
        received: u64,
        lost: u64,
        bytes: u64,
    ) -> ReceiverReport {
        ReceiverReport {
            receiver: AppId(app),
            node: n(node),
            session: SessionId(0),
            level,
            received,
            lost,
            bytes,
        }
    }

    fn run_once(
        state: &mut AlgorithmState,
        tree: &SessionTree,
        spec: &LayerSpec,
        reports: &[ReceiverReport],
        now_secs: u64,
    ) -> AlgorithmOutputs {
        let registry = vec![(AppId(10), n(2), SessionId(0)), (AppId(11), n(3), SessionId(0))];
        let inputs = AlgorithmInputs {
            now: SimTime::from_secs(now_secs),
            interval: SimDuration::from_secs(2),
            trees: std::slice::from_ref(tree),
            specs: &[spec],
            registry: &registry,
            reports,
        };
        state.run(&inputs)
    }

    #[test]
    fn clean_network_lets_receivers_explore() {
        let tree = one_session_tree();
        let spec = LayerSpec::paper_default();
        let mut state = AlgorithmState::new(Config::default(), 7);
        let reports = vec![report(10, 2, 2, 100, 0, 24_000), report(11, 3, 2, 100, 0, 24_000)];
        // First runs settle the supply history at the current level; the
        // add-layer rule requires two stable runs before exploring.
        let _ = run_once(&mut state, &tree, &spec, &reports, 2);
        let _ = run_once(&mut state, &tree, &spec, &reports, 4);
        let out = run_once(&mut state, &tree, &spec, &reports, 6);
        assert_eq!(out.suggestions.len(), 2);
        for s in &out.suggestions {
            assert_eq!(s.level, 3, "uncongested, settled receivers step up one layer");
        }
        assert!(out.estimated_links.is_empty());
        assert_eq!(out.congested_nodes, 0);
    }

    #[test]
    fn shared_loss_reduces_supply_without_estimating_private_links() {
        let tree = one_session_tree();
        let spec = LayerSpec::paper_default();
        let mut state = AlgorithmState::new(Config::default(), 7);
        // Both receivers at level 3 with ~30% similar loss on a
        // single-session tree: the links carry only one session, so (per
        // Fig. 4: estimates are for *shared* links) no capacity estimate is
        // set — control comes from the congestion states instead.
        let reports = vec![
            report(10, 2, 3, 70, 30, 37_500), // 37.5 kB / 2 s = 150 kb/s
            report(11, 3, 3, 72, 28, 37_500),
        ];
        let out = run_once(&mut state, &tree, &spec, &reports, 2);
        assert!(out.congested_nodes > 0);
        assert_eq!(state.capacity_estimate(l(0)), None, "single-session link");
        // The congested subtree root reduces; goodput (150 kb/s -> 2 layers)
        // floors the reduction, so suggestions land exactly on 2.
        for s in &out.suggestions {
            assert_eq!(s.level, 2, "expected the goodput-floored level");
        }
    }

    #[test]
    fn suggestions_address_registered_receivers() {
        let tree = one_session_tree();
        let spec = LayerSpec::paper_default();
        let mut state = AlgorithmState::new(Config::default(), 7);
        let reports = vec![report(10, 2, 1, 10, 0, 2500)];
        let out = run_once(&mut state, &tree, &spec, &reports, 2);
        let who: Vec<AppId> = out.suggestions.iter().map(|s| s.receiver).collect();
        // Both registered receivers get suggestions (node 3 is in the tree
        // even without a report this interval).
        assert!(who.contains(&AppId(10)));
        assert!(who.contains(&AppId(11)));
    }

    #[test]
    fn determinism_same_seed_same_output() {
        let tree = one_session_tree();
        let spec = LayerSpec::paper_default();
        let go = || {
            let mut state = AlgorithmState::new(Config::default(), 99);
            let mut outs = Vec::new();
            for t in 1..10u64 {
                let reports = vec![
                    report(10, 2, 2, 80, (t % 3) * 10, 20_000),
                    report(11, 3, 2, 80, 5, 20_000),
                ];
                outs.push(run_once(&mut state, &tree, &spec, &reports, 2 * t).suggestions);
            }
            outs
        };
        assert_eq!(go(), go());
    }

    #[test]
    fn silence_inherits_prior_state_and_never_climbs() {
        // Drive the tree congested, then cut every report (all receivers
        // quarantined/evicted upstream). The silent intervals are no-data:
        // nothing may stay labelled congested (the infinite child-min seed
        // hazard), but the congestion history must not be walked back to
        // "never congested" either — the old fabricated all-clear let the
        // controller climb the subscription on pure silence.
        let tree = one_session_tree();
        let spec = LayerSpec::paper_default();
        let mut state = AlgorithmState::new(Config::default(), 7);
        let lossy = vec![report(10, 2, 2, 70, 30, 20_000), report(11, 3, 2, 72, 28, 20_000)];
        let mut pre = 0u8;
        for t in 1..=3u64 {
            let out = run_once(&mut state, &tree, &spec, &lossy, 2 * t);
            assert!(out.congested_nodes > 0, "similar sibling loss must congest");
            pre = out.suggestions.iter().map(|s| s.level).max().unwrap();
        }
        for t in 4..=8u64 {
            let out = run_once(&mut state, &tree, &spec, &[], 2 * t);
            assert_eq!(out.congested_nodes, 0, "silence alone is not congestion");
            for s in &out.suggestions {
                assert!(
                    s.level <= pre,
                    "climbed to {} on silence (pre-silence max {pre})",
                    s.level
                );
            }
        }
    }

    #[test]
    fn run_counter_increments() {
        let tree = one_session_tree();
        let spec = LayerSpec::paper_default();
        let mut state = AlgorithmState::new(Config::default(), 1);
        assert_eq!(state.runs(), 0);
        run_once(&mut state, &tree, &spec, &[], 2);
        run_once(&mut state, &tree, &spec, &[], 4);
        assert_eq!(state.runs(), 2);
    }

    #[test]
    fn empty_tree_session_produces_no_suggestions() {
        // Session with no receivers: root-only tree.
        let view = TopologyView {
            time: SimTime::ZERO,
            links: vec![LinkView { id: l(0), from: n(0), to: n(1) }],
            groups: vec![GroupSnapshot {
                group: GroupId(0),
                root: n(0),
                active_links: vec![],
                member_nodes: vec![],
            }],
        };
        let tree = SessionTree::build(&view, SessionId(0), &[GroupId(0)]).unwrap();
        let spec = LayerSpec::paper_default();
        let mut state = AlgorithmState::new(Config::default(), 1);
        let inputs = AlgorithmInputs {
            now: SimTime::from_secs(2),
            interval: SimDuration::from_secs(2),
            trees: std::slice::from_ref(&tree),
            specs: &[&spec],
            registry: &[(AppId(10), n(2), SessionId(0))],
            reports: &[],
        };
        let out = state.run(&inputs);
        // Receiver's node is not in the stale tree: no suggestion for it.
        assert!(out.suggestions.is_empty());
        // A subscriber-less session still reports a root supply (its value
        // is inconsequential — there is nobody to suggest anything to).
        assert_eq!(out.root_supply.len(), 1);
    }

    /// Report churn for interval `t` in the differential tests below:
    /// loss, bytes, and levels all move so every stage sees changes.
    fn churn_reports(t: u64) -> Vec<ReceiverReport> {
        let lost = match t % 5 {
            0 => 30,
            1 => 0,
            _ => 5,
        };
        vec![
            report(10, 2, 2, 100 - lost, lost, 20_000 + (t % 3) * 4_000),
            report(11, 3, (2 + (t % 2)) as u8, 95, 5, 24_000),
        ]
    }

    #[test]
    fn incremental_matches_full_run_byte_for_byte() {
        let tree = one_session_tree();
        let spec = LayerSpec::paper_default();
        let registry = vec![(AppId(10), n(2), SessionId(0)), (AppId(11), n(3), SessionId(0))];
        let mut full = AlgorithmState::new(Config::default(), 42);
        let mut inc = AlgorithmState::new(Config::default(), 42);
        for t in 1..40u64 {
            let reports = churn_reports(t);
            let inputs = AlgorithmInputs {
                now: SimTime::from_secs(2 * t),
                interval: SimDuration::from_secs(2),
                trees: std::slice::from_ref(&tree),
                specs: &[&spec],
                registry: &registry,
                reports: &reports,
            };
            let a = full.run(&inputs);
            let b = inc.run_incremental(&inputs);
            assert!(!a.incremental);
            if t > 1 {
                assert!(b.incremental, "interval {t} unexpectedly fell back");
            }
            assert_eq!(a.suggestions, b.suggestions, "interval {t}");
            assert_eq!(a.root_supply, b.root_supply, "interval {t}");
            assert_eq!(a.congested_nodes, b.congested_nodes, "interval {t}");
            assert_eq!(a.estimated_links, b.estimated_links, "interval {t}");
        }
    }

    #[test]
    fn audited_incremental_matches_audited_full_including_records() {
        let tree = one_session_tree();
        let spec = LayerSpec::paper_default();
        let registry = vec![(AppId(10), n(2), SessionId(0)), (AppId(11), n(3), SessionId(0))];
        let mut full = AlgorithmState::new(Config::default(), 5);
        let mut inc = AlgorithmState::new(Config::default(), 5);
        for t in 1..25u64 {
            let reports = churn_reports(t);
            let inputs = AlgorithmInputs {
                now: SimTime::from_secs(2 * t),
                interval: SimDuration::from_secs(2),
                trees: std::slice::from_ref(&tree),
                specs: &[&spec],
                registry: &registry,
                reports: &reports,
            };
            let mut aa = telemetry::IntervalAudit::new(full.runs(), 0);
            let mut ab = telemetry::IntervalAudit::new(inc.runs(), 0);
            let a = full.run_audited(&inputs, Some(&mut aa));
            let b = inc.run_incremental_audited(&inputs, Some(&mut ab));
            assert_eq!(a.suggestions, b.suggestions, "interval {t}");
            // Every deterministic audit record must be identical too —
            // incremental recomputation may not even change the *story*
            // the telemetry tells.
            assert_eq!(aa.congestion, ab.congestion, "interval {t}");
            assert_eq!(aa.capacity, ab.capacity, "interval {t}");
            assert_eq!(aa.bottleneck, ab.bottleneck, "interval {t}");
            assert_eq!(aa.sharing, ab.sharing, "interval {t}");
            assert_eq!(aa.subscription, ab.subscription, "interval {t}");
        }
    }

    #[test]
    fn incremental_falls_back_on_change_and_stays_correct() {
        let tree = one_session_tree();
        let spec = LayerSpec::paper_default();
        let registry_a = vec![(AppId(10), n(2), SessionId(0)), (AppId(11), n(3), SessionId(0))];
        let registry_b = vec![(AppId(10), n(2), SessionId(0))];
        let mut full = AlgorithmState::new(Config::default(), 9);
        let mut inc = AlgorithmState::new(Config::default(), 9);
        for t in 1..30u64 {
            // Membership changes at t=10 and t=20 must force the full
            // path; in between the incremental path serves, and outputs
            // stay identical to the full-only twin throughout.
            let registry: &[(AppId, NodeId, SessionId)] =
                if (10..20).contains(&t) { &registry_b } else { &registry_a };
            let reports = churn_reports(t);
            let reports: &[ReceiverReport] =
                if (10..20).contains(&t) { &reports[..1] } else { &reports };
            let inputs = AlgorithmInputs {
                now: SimTime::from_secs(2 * t),
                interval: SimDuration::from_secs(2),
                trees: std::slice::from_ref(&tree),
                specs: &[&spec],
                registry,
                reports,
            };
            let a = full.run(&inputs);
            let b = inc.run_incremental(&inputs);
            if t == 10 || t == 20 {
                assert!(!b.incremental, "interval {t} must fall back");
            }
            assert_eq!(a.suggestions, b.suggestions, "interval {t}");
            assert_eq!(a.root_supply, b.root_supply, "interval {t}");
            assert_eq!(a.congested_nodes, b.congested_nodes, "interval {t}");
        }
    }

    #[test]
    fn direct_full_run_after_incremental_sees_synced_memories() {
        let tree = one_session_tree();
        let spec = LayerSpec::paper_default();
        let registry = vec![(AppId(10), n(2), SessionId(0)), (AppId(11), n(3), SessionId(0))];
        let mut full = AlgorithmState::new(Config::default(), 3);
        let mut inc = AlgorithmState::new(Config::default(), 3);
        for t in 1..30u64 {
            let reports = churn_reports(t);
            let inputs = AlgorithmInputs {
                now: SimTime::from_secs(2 * t),
                interval: SimDuration::from_secs(2),
                trees: std::slice::from_ref(&tree),
                specs: &[&spec],
                registry: &registry,
                reports: &reports,
            };
            let a = full.run(&inputs);
            // Interleave: incremental mostly, but a direct full run every
            // few intervals (as a failover would) — the lazily synced
            // memories must make both entry points interchangeable.
            let b = if t % 7 == 0 {
                inc.invalidate();
                inc.run(&inputs)
            } else {
                inc.run_incremental(&inputs)
            };
            assert_eq!(a.suggestions, b.suggestions, "interval {t}");
            assert_eq!(a.root_supply, b.root_supply, "interval {t}");
        }
    }
}
