//! The algorithm driver: wires the five stages together and owns every
//! piece of state that persists across intervals (congestion histories,
//! byte/supply windows, capacity estimates, backoff timers).
//!
//! [`AlgorithmState::run`] is a pure-ish function of its inputs: given the
//! same sequence of `(trees, reports)` and the same seed it produces the
//! same suggestions, which is what makes whole simulations reproducible.

use crate::config::Config;
use crate::history::BwEquality;
use crate::history::CongestionHistory;
use crate::stages::bottleneck;
use crate::stages::capacity::{CapacityEstimator, CapacityEvent, SessionLinkObs};
use crate::stages::congestion::{self, LeafObs, NodeState};
use crate::stages::sharing::{self, SharingScratch};
use crate::stages::subscription::{self, BackoffTable, NodeInputs};
use netsim::{AppId, DirLinkId, NodeId, RngStream, SessionId, SimDuration, SimTime};
use rayon::prelude::*;
use std::collections::HashMap;
use telemetry::{
    BottleneckNode, CapacityLink, CongestionNode, IntervalAudit, SessionNodes, SharingEntry, Span,
    SubscriptionNode,
};
use topology::SessionTree;
use traffic::LayerSpec;

/// One receiver's aggregated report for the interval.
#[derive(Clone, Copy, Debug)]
pub struct ReceiverReport {
    pub receiver: AppId,
    pub node: NodeId,
    pub session: SessionId,
    /// Subscription level during the window.
    pub level: u8,
    pub received: u64,
    pub lost: u64,
    pub bytes: u64,
}

impl ReceiverReport {
    pub fn loss_rate(&self) -> f64 {
        let expected = self.received + self.lost;
        if expected == 0 {
            0.0
        } else {
            self.lost as f64 / expected as f64
        }
    }
}

/// Everything one interval of the algorithm consumes.
pub struct AlgorithmInputs<'a> {
    pub now: SimTime,
    /// Time since the previous run.
    pub interval: SimDuration,
    /// `trees[i]` describes session `i` (aligned with `specs`).
    pub trees: &'a [SessionTree],
    pub specs: &'a [&'a LayerSpec],
    /// All receivers known to the controller (reporters or not).
    pub registry: &'a [(AppId, NodeId, SessionId)],
    /// The interval's reports.
    pub reports: &'a [ReceiverReport],
}

/// A prescribed subscription level for one receiver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SuggestionOut {
    pub receiver: AppId,
    pub session: SessionId,
    pub level: u8,
}

/// One interval's outputs plus diagnostics.
#[derive(Clone, Debug, Default)]
pub struct AlgorithmOutputs {
    pub suggestions: Vec<SuggestionOut>,
    /// Links with a finite capacity estimate after this run.
    pub estimated_links: Vec<(DirLinkId, f64)>,
    /// Nodes labelled congested this run (across sessions).
    pub congested_nodes: usize,
    /// Per-session supply at the root (levels) — the session-wide ceiling.
    pub root_supply: Vec<u8>,
}

#[derive(Clone, Copy, Debug)]
struct NodeMemory {
    hist: CongestionHistory,
    bytes_older: u64,
    bytes_recent: u64,
    supply_older: u8,
    supply_recent: u8,
    demand_prev: Option<u8>,
}

impl Default for NodeMemory {
    fn default() -> Self {
        NodeMemory {
            hist: CongestionHistory::new(),
            bytes_older: 0,
            bytes_recent: 0,
            supply_older: 1,
            supply_recent: 1,
            demand_prev: None,
        }
    }
}

/// Per-session scratch buffers, slot-indexed against the session's tree.
///
/// One of these lives in [`AlgorithmState`] per concurrent session and is
/// reused every interval: each vector is cleared and refilled (allocation
/// kept), so the steady-state hot path allocates nothing.
#[derive(Debug, Default)]
struct SessionScratch {
    /// Aggregated leaf observation per tree slot (stage 1 input).
    obs: Vec<Option<LeafObs>>,
    /// Congestion state per tree slot (stage 1 output).
    states: Vec<NodeState>,
    /// This interval's working copy of each node's persistent memory.
    mem: Vec<NodeMemory>,
    /// Stage-3 outputs per tree slot.
    bottleneck: Vec<f64>,
    max_handle: Vec<f64>,
    /// Stage-5 inputs/outputs per tree slot.
    inputs: Vec<NodeInputs>,
    level_cap: Vec<u8>,
    demand: Vec<u8>,
    supply: Vec<u8>,
    /// Table I branch labels per tree slot (filled only when auditing).
    branches: Vec<&'static str>,
}

/// The controller's persistent algorithm state.
pub struct AlgorithmState {
    cfg: Config,
    rng: RngStream,
    estimator: CapacityEstimator,
    memories: HashMap<(SessionId, NodeId), NodeMemory>,
    backoffs: HashMap<SessionId, BackoffTable>,
    runs: u64,
    scratch: Vec<SessionScratch>,
    sharing_scratch: SharingScratch,
    usage_buf: Vec<(DirLinkId, SessionLinkObs)>,
}

impl AlgorithmState {
    pub fn new(cfg: Config, seed: u64) -> Self {
        cfg.validate();
        AlgorithmState {
            cfg,
            rng: RngStream::derive(seed, "toposense/algorithm"),
            estimator: CapacityEstimator::new(),
            memories: HashMap::new(),
            backoffs: HashMap::new(),
            runs: 0,
            scratch: Vec::new(),
            sharing_scratch: SharingScratch::default(),
            usage_buf: Vec::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Number of completed runs.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Current capacity estimate for a link (diagnostics / tests).
    pub fn capacity_estimate(&self, link: DirLinkId) -> Option<f64> {
        self.estimator.capacity(link)
    }

    /// Run one interval of the five-stage algorithm.
    pub fn run(&mut self, inputs: &AlgorithmInputs<'_>) -> AlgorithmOutputs {
        self.run_audited(inputs, None)
    }

    /// [`Self::run`] plus an optional decision audit: when `audit` is
    /// `Some`, every stage's intermediate output is copied into it after
    /// the stage runs, along with wall-clock spans per kernel. The audit
    /// is strictly write-only — auditing cannot alter any decision or the
    /// RNG draw sequence, so outputs are identical either way (the
    /// telemetry determinism test pins this down).
    pub fn run_audited(
        &mut self,
        inputs: &AlgorithmInputs<'_>,
        mut audit: Option<&mut IntervalAudit>,
    ) -> AlgorithmOutputs {
        assert_eq!(inputs.trees.len(), inputs.specs.len());
        let cfg = self.cfg;
        let nsess = inputs.trees.len();
        let timing = audit.is_some();
        let whole_span = timing.then(Span::new);

        // Borrow the scratch pool for the interval; reinstalled at the end
        // so every buffer's allocation survives into the next run.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.resize_with(nsess.max(scratch.len()), SessionScratch::default);
        let spare = scratch.split_off(nsess);

        // Stage 1 per session: aggregate this session's reports per tree
        // slot (loss = min, bytes/level = max), compute congestion states,
        // and fold the interval into a working copy of each node's
        // persistent memory. Returns the session's congested-node count.
        let memories = &self.memories;
        let stage1 = |sc: &mut SessionScratch, tree: &SessionTree| -> usize {
            let sid = tree.session();
            let t = tree.tree();
            sc.obs.clear();
            sc.obs.resize(t.len(), None);
            for r in inputs.reports {
                if r.session != sid {
                    continue;
                }
                // Reports from nodes outside the (possibly stale) tree
                // cannot be attributed to a subtree; skip them.
                let Some(slot) = t.slot_of(r.node) else { continue };
                let e =
                    sc.obs[slot].get_or_insert(LeafObs { loss: f64::INFINITY, bytes: 0, level: 0 });
                e.loss = e.loss.min(r.loss_rate());
                e.bytes = e.bytes.max(r.bytes);
                e.level = e.level.max(r.level);
            }
            congestion::compute_into(tree, &sc.obs, &cfg, &mut sc.states);
            sc.mem.clear();
            sc.mem.resize(t.len(), NodeMemory::default());
            let mut congested = 0;
            for s in t.slots() {
                let st = sc.states[s];
                congested += st.congested as usize;
                let mut mem = memories.get(&(sid, t.node_at(s))).copied().unwrap_or_default();
                mem.hist.push(st.congested);
                mem.bytes_older = mem.bytes_recent;
                mem.bytes_recent = st.max_bytes;
                sc.mem[s] = mem;
            }
            congested
        };
        let stage_span = timing.then(Span::new);
        let congested_nodes: usize = if nsess >= 2 {
            let work: Vec<(SessionScratch, &SessionTree)> =
                scratch.drain(..).zip(inputs.trees).collect();
            let done: Vec<(SessionScratch, usize)> = work
                .into_par_iter()
                .map(|(mut sc, tree)| {
                    let c = stage1(&mut sc, tree);
                    (sc, c)
                })
                .collect();
            let mut total = 0;
            for (sc, c) in done {
                scratch.push(sc);
                total += c;
            }
            total
        } else {
            scratch.iter_mut().zip(inputs.trees).map(|(sc, tree)| stage1(sc, tree)).sum()
        };
        if let Some(a) = audit.as_deref_mut() {
            if let Some(span) = stage_span {
                a.stage_ns.push(("stage1_congestion", span.elapsed_ns()));
            }
            a.congestion = inputs
                .trees
                .iter()
                .zip(&scratch)
                .map(|(tree, sc)| {
                    let t = tree.tree();
                    SessionNodes {
                        session: tree.session().0 as u64,
                        nodes: t
                            .slots()
                            .map(|s| {
                                let st = sc.states[s];
                                CongestionNode {
                                    node: t.node_at(s).0 as u64,
                                    loss: st.loss,
                                    self_congested: st.self_congested,
                                    congested: st.congested,
                                    parent_congested: st.parent_congested,
                                }
                            })
                            .collect(),
                    }
                })
                .collect();
        }

        // Stage 2: capacity estimation over every link any session crosses.
        // The flat usage buffer is stably sorted by link, so each link's
        // observations are contiguous and keep tree order — the estimator
        // sees exactly the per-link lists the map-based path would build.
        let mut usage = std::mem::take(&mut self.usage_buf);
        usage.clear();
        for (tree, sc) in inputs.trees.iter().zip(&scratch) {
            let sid = tree.session();
            for s in 1..tree.tree().len() {
                let st = sc.states[s];
                usage.push((
                    tree.in_link_at(s),
                    SessionLinkObs { session: sid, loss: st.loss, bytes: st.max_bytes },
                ));
            }
        }
        usage.sort_by_key(|&(l, _)| l);
        let stage_span = timing.then(Span::new);
        let mut cap_events: Vec<CapacityEvent> = Vec::new();
        self.estimator.update_sorted_traced(
            inputs.now,
            inputs.interval,
            &usage,
            &cfg,
            audit.is_some().then_some(&mut cap_events),
        );
        if let Some(a) = audit.as_deref_mut() {
            if let Some(span) = stage_span {
                a.stage_ns.push(("stage2_capacity", span.elapsed_ns()));
            }
            // Reset events surface in HashMap iteration order; a stable
            // sort by link makes the record deterministic while keeping
            // a link's reset ahead of its re-learn.
            cap_events.sort_by_key(|&(l, _, _)| l);
            a.capacity = cap_events
                .iter()
                .map(|&(l, bps, event)| CapacityLink { link: l.0 as u64, bps, event: event.into() })
                .collect();
        }

        // Stage 3 per session.
        let est = &self.estimator;
        let stage3 = |sc: &mut SessionScratch, tree: &SessionTree| {
            bottleneck::compute_into(
                tree,
                |l| est.capacity(l),
                &mut sc.bottleneck,
                &mut sc.max_handle,
            );
        };
        let stage_span = timing.then(Span::new);
        if nsess >= 2 {
            let work: Vec<(SessionScratch, &SessionTree)> =
                scratch.drain(..).zip(inputs.trees).collect();
            let done: Vec<SessionScratch> = work
                .into_par_iter()
                .map(|(mut sc, tree)| {
                    stage3(&mut sc, tree);
                    sc
                })
                .collect();
            scratch.extend(done);
        } else {
            for (sc, tree) in scratch.iter_mut().zip(inputs.trees) {
                stage3(sc, tree);
            }
        }
        if let Some(a) = audit.as_deref_mut() {
            if let Some(span) = stage_span {
                a.stage_ns.push(("stage3_bottleneck", span.elapsed_ns()));
            }
            a.bottleneck = inputs
                .trees
                .iter()
                .zip(&scratch)
                .map(|(tree, sc)| {
                    let t = tree.tree();
                    SessionNodes {
                        session: tree.session().0 as u64,
                        nodes: t
                            .slots()
                            .map(|s| BottleneckNode {
                                node: t.node_at(s).0 as u64,
                                bottleneck_bps: sc.bottleneck[s],
                                max_handle_bps: sc.max_handle[s],
                            })
                            .collect(),
                    }
                })
                .collect();
        }

        // Stage 4 across sessions.
        let stage_span = timing.then(Span::new);
        sharing::compute_into(
            inputs.trees,
            inputs.specs,
            |l| est.capacity(l),
            &mut self.sharing_scratch,
        );
        if let Some(a) = audit.as_deref_mut() {
            if let Some(span) = stage_span {
                a.stage_ns.push(("stage4_sharing", span.elapsed_ns()));
            }
            a.sharing = self
                .sharing_scratch
                .shares_sorted()
                .into_iter()
                .map(|(l, i, bps)| SharingEntry {
                    link: l.0 as u64,
                    session: inputs.trees[i as usize].session().0 as u64,
                    allowed_bps: bps,
                })
                .collect();
        }

        // Stage 5 per session (sequential: shares one RNG stream).
        let stage_span = timing.then(Span::new);
        let mut outputs = AlgorithmOutputs::default();
        for (i, tree) in inputs.trees.iter().enumerate() {
            let sid = tree.session();
            let spec = inputs.specs[i];
            let t = tree.tree();
            let sc = &mut scratch[i];

            sc.inputs.clear();
            for s in t.slots() {
                let st = sc.states[s];
                let sibling_congested = match t.parent_slot_of(s) {
                    None => false,
                    Some(p) => t.child_slots(p).any(|c| c != s && sc.states[c].congested),
                };
                let mem = sc.mem[s];
                // Receivers that did not report this interval fall back to
                // the subscription implied by the tree itself.
                let reported = sc.obs[s]
                    .map(|o| o.level)
                    .or_else(|| (s != 0).then(|| tree.max_layer_at(s) + 1));
                // Reports lag suggestions by up to an interval. While a node
                // is clean, a reported level below our last supply is just
                // that lag (the receiver is catching up to the suggestion),
                // not a deliberate drop — trusting the stale value makes the
                // controller re-suggest it and flap. Under congestion the
                // report is authoritative (unilateral drops are real).
                // The trust is bounded to one unreported step (`r + 1`):
                // with a stale discovery tool the reports lag by much more
                // than an interval, and trusting the full supply would let
                // the controller climb on the echo of its own suggestions.
                let current_level = reported.map(|r| {
                    if st.congested || st.loss > cfg.p_threshold {
                        r
                    } else {
                        r.max(mem.supply_recent.min(r + 1))
                    }
                });
                sc.inputs.push(NodeInputs {
                    hist: mem.hist,
                    parent_congested: st.parent_congested,
                    sibling_congested,
                    bw: BwEquality::classify(
                        mem.bytes_older,
                        mem.bytes_recent,
                        cfg.bw_equal_tolerance,
                    ),
                    loss: st.loss,
                    supply_older: mem.supply_older,
                    supply_recent: mem.supply_recent,
                    demand_prev: mem.demand_prev,
                    current_level,
                    // Two-interval max: during a neighbour's transient
                    // probe this interval's goodput dips, but the prior
                    // interval still witnesses the sustainable level, so
                    // innocent subtrees are not dragged down with the
                    // prober (see reduce_target).
                    goodput_bps: mem.bytes_recent.max(mem.bytes_older) as f64 * 8.0
                        / inputs.interval.as_secs_f64().max(1e-9),
                });
            }

            sc.level_cap.clear();
            for s in t.slots() {
                let bw = self.sharing_scratch.allowed_at(i, s).min(sc.max_handle[s]);
                sc.level_cap.push(spec.level_fitting(bw));
            }

            let backoffs = self.backoffs.entry(sid).or_default();
            // A receiver sitting below the level we last supplied while its
            // loss is high just aborted a failed probe (possibly
            // unilaterally, if our drop suggestion died at the congested
            // link). Arm the backoff for the abandoned level here, because
            // the decision table never will: by the time it runs, the
            // receiver's current level already equals the reduced target.
            for s in t.slots() {
                let Some(o) = sc.obs[s] else { continue };
                let st = sc.states[s];
                let mem = sc.mem[s];
                if st.loss > cfg.high_loss && o.level < mem.supply_recent {
                    backoffs.arm(t.node_at(s), mem.supply_recent, inputs.now, &cfg, &mut self.rng);
                }
            }
            subscription::compute_into_traced(
                tree,
                spec,
                &cfg,
                inputs.now,
                &sc.inputs,
                &sc.level_cap,
                backoffs,
                &mut self.rng,
                &mut sc.demand,
                &mut sc.supply,
                timing.then_some(&mut sc.branches),
            );

            if std::env::var_os("TOPOSENSE_TRACE").is_some() {
                let mut line = format!("t={:.0}s s{}:", inputs.now.as_secs_f64(), sid.0);
                for s in t.slots() {
                    let inp = &sc.inputs[s];
                    line.push_str(&format!(
                        " n{}[h{:03b} loss={:.2} gp={:.0}k cur={:?} cap={} d={} s={}]",
                        t.node_at(s).0,
                        inp.hist.bits(),
                        inp.loss,
                        inp.goodput_bps / 1000.0,
                        inp.current_level,
                        sc.level_cap[s],
                        sc.demand[s],
                        sc.supply[s],
                    ));
                }
                eprintln!("{line}");
            }

            // Persist this interval's history/byte updates together with
            // the new supply/demand windows.
            for s in t.slots() {
                let mut mem = sc.mem[s];
                mem.supply_older = mem.supply_recent;
                mem.supply_recent = sc.supply[s];
                mem.demand_prev = Some(sc.demand[s]);
                self.memories.insert((sid, t.node_at(s)), mem);
            }
            outputs.root_supply.push(sc.supply[0]);

            // Suggestions for every registered receiver of this session
            // whose node is in the (possibly stale) tree.
            for &(app, node, rsid) in inputs.registry {
                if rsid != sid {
                    continue;
                }
                if let Some(slot) = t.slot_of(node) {
                    outputs.suggestions.push(SuggestionOut {
                        receiver: app,
                        session: sid,
                        level: sc.supply[slot].clamp(1, spec.max_level()),
                    });
                }
            }

            if let Some(a) = audit.as_deref_mut() {
                // `suggested` mirrors the clamp applied to outgoing
                // suggestions, so the audit can be cross-checked against
                // the levels the controller actually sends.
                let mut suggested: Vec<Option<u8>> = vec![None; t.len()];
                for &(_, node, rsid) in inputs.registry {
                    if rsid != sid {
                        continue;
                    }
                    if let Some(slot) = t.slot_of(node) {
                        suggested[slot] = Some(sc.supply[slot].clamp(1, spec.max_level()));
                    }
                }
                a.subscription.push(SessionNodes {
                    session: sid.0 as u64,
                    nodes: t
                        .slots()
                        .map(|s| SubscriptionNode {
                            node: t.node_at(s).0 as u64,
                            branch: sc.branches[s].into(),
                            demand: sc.demand[s],
                            supply: sc.supply[s],
                            suggested: suggested[s],
                        })
                        .collect(),
                });
            }
        }
        if let Some(a) = audit {
            if let Some(span) = stage_span {
                a.stage_ns.push(("stage5_subscription", span.elapsed_ns()));
            }
            if let Some(span) = whole_span {
                a.stage_ns.push(("interval", span.elapsed_ns()));
            }
        }

        // `usage` is link-sorted, so deduping adjacent links enumerates
        // each crossed link once, already in output order.
        let mut last = None;
        for &(l, _) in &usage {
            if last == Some(l) {
                continue;
            }
            last = Some(l);
            if let Some(c) = self.estimator.capacity(l) {
                outputs.estimated_links.push((l, c));
            }
        }
        outputs.congested_nodes = congested_nodes;
        scratch.extend(spare);
        self.scratch = scratch;
        self.usage_buf = usage;
        self.runs += 1;
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{GroupId, GroupSnapshot};
    use topology::discovery::{LinkView, TopologyView};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn l(i: u32) -> DirLinkId {
        DirLinkId(i)
    }

    /// One session: 0 -> 1 -> {2, 3}, receivers at 2 and 3.
    fn one_session_tree() -> SessionTree {
        let view = TopologyView {
            time: SimTime::ZERO,
            links: vec![
                LinkView { id: l(0), from: n(0), to: n(1) },
                LinkView { id: l(1), from: n(1), to: n(2) },
                LinkView { id: l(2), from: n(1), to: n(3) },
            ],
            groups: vec![GroupSnapshot {
                group: GroupId(0),
                root: n(0),
                active_links: vec![l(0), l(1), l(2)],
                member_nodes: vec![n(2), n(3)],
            }],
        };
        SessionTree::build(&view, SessionId(0), &[GroupId(0)]).unwrap()
    }

    fn report(
        app: u32,
        node: u32,
        level: u8,
        received: u64,
        lost: u64,
        bytes: u64,
    ) -> ReceiverReport {
        ReceiverReport {
            receiver: AppId(app),
            node: n(node),
            session: SessionId(0),
            level,
            received,
            lost,
            bytes,
        }
    }

    fn run_once(
        state: &mut AlgorithmState,
        tree: &SessionTree,
        spec: &LayerSpec,
        reports: &[ReceiverReport],
        now_secs: u64,
    ) -> AlgorithmOutputs {
        let registry = vec![(AppId(10), n(2), SessionId(0)), (AppId(11), n(3), SessionId(0))];
        let inputs = AlgorithmInputs {
            now: SimTime::from_secs(now_secs),
            interval: SimDuration::from_secs(2),
            trees: std::slice::from_ref(tree),
            specs: &[spec],
            registry: &registry,
            reports,
        };
        state.run(&inputs)
    }

    #[test]
    fn clean_network_lets_receivers_explore() {
        let tree = one_session_tree();
        let spec = LayerSpec::paper_default();
        let mut state = AlgorithmState::new(Config::default(), 7);
        let reports = vec![report(10, 2, 2, 100, 0, 24_000), report(11, 3, 2, 100, 0, 24_000)];
        // First runs settle the supply history at the current level; the
        // add-layer rule requires two stable runs before exploring.
        let _ = run_once(&mut state, &tree, &spec, &reports, 2);
        let _ = run_once(&mut state, &tree, &spec, &reports, 4);
        let out = run_once(&mut state, &tree, &spec, &reports, 6);
        assert_eq!(out.suggestions.len(), 2);
        for s in &out.suggestions {
            assert_eq!(s.level, 3, "uncongested, settled receivers step up one layer");
        }
        assert!(out.estimated_links.is_empty());
        assert_eq!(out.congested_nodes, 0);
    }

    #[test]
    fn shared_loss_reduces_supply_without_estimating_private_links() {
        let tree = one_session_tree();
        let spec = LayerSpec::paper_default();
        let mut state = AlgorithmState::new(Config::default(), 7);
        // Both receivers at level 3 with ~30% similar loss on a
        // single-session tree: the links carry only one session, so (per
        // Fig. 4: estimates are for *shared* links) no capacity estimate is
        // set — control comes from the congestion states instead.
        let reports = vec![
            report(10, 2, 3, 70, 30, 37_500), // 37.5 kB / 2 s = 150 kb/s
            report(11, 3, 3, 72, 28, 37_500),
        ];
        let out = run_once(&mut state, &tree, &spec, &reports, 2);
        assert!(out.congested_nodes > 0);
        assert_eq!(state.capacity_estimate(l(0)), None, "single-session link");
        // The congested subtree root reduces; goodput (150 kb/s -> 2 layers)
        // floors the reduction, so suggestions land exactly on 2.
        for s in &out.suggestions {
            assert_eq!(s.level, 2, "expected the goodput-floored level");
        }
    }

    #[test]
    fn suggestions_address_registered_receivers() {
        let tree = one_session_tree();
        let spec = LayerSpec::paper_default();
        let mut state = AlgorithmState::new(Config::default(), 7);
        let reports = vec![report(10, 2, 1, 10, 0, 2500)];
        let out = run_once(&mut state, &tree, &spec, &reports, 2);
        let who: Vec<AppId> = out.suggestions.iter().map(|s| s.receiver).collect();
        // Both registered receivers get suggestions (node 3 is in the tree
        // even without a report this interval).
        assert!(who.contains(&AppId(10)));
        assert!(who.contains(&AppId(11)));
    }

    #[test]
    fn determinism_same_seed_same_output() {
        let tree = one_session_tree();
        let spec = LayerSpec::paper_default();
        let go = || {
            let mut state = AlgorithmState::new(Config::default(), 99);
            let mut outs = Vec::new();
            for t in 1..10u64 {
                let reports = vec![
                    report(10, 2, 2, 80, (t % 3) * 10, 20_000),
                    report(11, 3, 2, 80, 5, 20_000),
                ];
                outs.push(run_once(&mut state, &tree, &spec, &reports, 2 * t).suggestions);
            }
            outs
        };
        assert_eq!(go(), go());
    }

    #[test]
    fn run_counter_increments() {
        let tree = one_session_tree();
        let spec = LayerSpec::paper_default();
        let mut state = AlgorithmState::new(Config::default(), 1);
        assert_eq!(state.runs(), 0);
        run_once(&mut state, &tree, &spec, &[], 2);
        run_once(&mut state, &tree, &spec, &[], 4);
        assert_eq!(state.runs(), 2);
    }

    #[test]
    fn empty_tree_session_produces_no_suggestions() {
        // Session with no receivers: root-only tree.
        let view = TopologyView {
            time: SimTime::ZERO,
            links: vec![LinkView { id: l(0), from: n(0), to: n(1) }],
            groups: vec![GroupSnapshot {
                group: GroupId(0),
                root: n(0),
                active_links: vec![],
                member_nodes: vec![],
            }],
        };
        let tree = SessionTree::build(&view, SessionId(0), &[GroupId(0)]).unwrap();
        let spec = LayerSpec::paper_default();
        let mut state = AlgorithmState::new(Config::default(), 1);
        let inputs = AlgorithmInputs {
            now: SimTime::from_secs(2),
            interval: SimDuration::from_secs(2),
            trees: std::slice::from_ref(&tree),
            specs: &[&spec],
            registry: &[(AppId(10), n(2), SessionId(0))],
            reports: &[],
        };
        let out = state.run(&inputs);
        // Receiver's node is not in the stale tree: no suggestion for it.
        assert!(out.suggestions.is_empty());
        // A subscriber-less session still reports a root supply (its value
        // is inconsequential — there is nobody to suggest anything to).
        assert_eq!(out.root_supply.len(), 1);
    }
}
