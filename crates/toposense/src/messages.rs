//! Control-plane messages between receivers and the controller.
//!
//! These travel as opaque payloads inside ordinary simulated packets, so
//! they queue behind media traffic and can be lost at congested links —
//! the paper made this deliberate by stationing the controller at a source
//! node "so control messages could be lost due to congestion".

use netsim::{AppId, NodeId, SessionId, SimTime};

/// Receiver -> controller: announce existence (sent once at startup and
/// re-sent until the first suggestion arrives).
#[derive(Clone, Debug, PartialEq)]
pub struct Register {
    pub receiver: AppId,
    pub node: NodeId,
    pub session: SessionId,
    /// Subscription level at registration time.
    pub level: u8,
}

/// Receiver -> controller: one report window of loss/throughput data.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    pub receiver: AppId,
    pub node: NodeId,
    pub session: SessionId,
    /// Subscription level during the window.
    pub level: u8,
    /// Packets received across all subscribed layers in the window.
    pub received: u64,
    /// Packets lost (sequence gaps) across all subscribed layers.
    pub lost: u64,
    /// Bytes received across all subscribed layers.
    pub bytes: u64,
    /// When the window closed.
    pub time: SimTime,
}

impl Report {
    /// Loss rate of the window.
    pub fn loss_rate(&self) -> f64 {
        let expected = self.received + self.lost;
        if expected == 0 {
            0.0
        } else {
            self.lost as f64 / expected as f64
        }
    }
}

/// Controller -> receiver: the prescribed subscription level.
#[derive(Clone, Debug, PartialEq)]
pub struct Suggestion {
    pub receiver: AppId,
    pub session: SessionId,
    /// Subscribe to exactly this many layers.
    pub level: u8,
    /// When the controller computed it.
    pub time: SimTime,
    /// Node the suggesting controller runs on. Receivers report to whoever
    /// last spoke to them, so suggestions from a failed-over standby
    /// redirect the control plane without extra round trips.
    pub from: NodeId,
}

/// Controller -> receiver: registration confirmed. Lets the receiver stop
/// re-announcing itself, and — after a failover — redirects it to the
/// newly-active controller.
#[derive(Clone, Debug, PartialEq)]
pub struct RegisterAck {
    pub receiver: AppId,
    /// Node the active controller answers from.
    pub controller: NodeId,
    pub time: SimTime,
}

/// Receiver -> controller: an orderly departure. Without it a receiver that
/// leaves mid-session lingers in the controller's registry until the
/// silence deadline evicts it.
#[derive(Clone, Debug, PartialEq)]
pub struct Deregister {
    pub receiver: AppId,
    pub session: SessionId,
    pub time: SimTime,
}

/// Active controller -> warm standby: liveness beacon, sent once per
/// interval. The standby takes over when beacons stop.
#[derive(Clone, Debug, PartialEq)]
pub struct Heartbeat {
    pub from: NodeId,
    pub time: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_loss_rate() {
        let mut r = Report {
            receiver: AppId(1),
            node: NodeId(2),
            session: SessionId(0),
            level: 3,
            received: 90,
            lost: 10,
            bytes: 90_000,
            time: SimTime::ZERO,
        };
        assert!((r.loss_rate() - 0.1).abs() < 1e-12);
        r.received = 0;
        r.lost = 0;
        assert_eq!(r.loss_rate(), 0.0);
    }
}
