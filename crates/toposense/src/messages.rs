//! Control-plane messages between receivers and the controller.
//!
//! These travel as opaque payloads inside ordinary simulated packets, so
//! they queue behind media traffic and can be lost at congested links —
//! the paper made this deliberate by stationing the controller at a source
//! node "so control messages could be lost due to congestion".

use crate::algorithm::ReceiverReport;
use netsim::{AppId, NodeId, SessionId, SimDuration, SimTime};
use topology::discovery::TopologyView;

/// Deterministic cause id for one receiver report: a splitmix64-style mix
/// of (receiver, session, report sequence number). The receiver mints it
/// when the report is sent; the controller copies it onto the decision the
/// report feeds and onto the suggestion it sends back, and the receiver
/// stamps it onto the layer change it applies — one id, one causal chain,
/// reconstructable from the JSONL trail (`telemetry::causal`). This is
/// also the correlation-id groundwork a real transport needs.
///
/// Zero is reserved for "no known cause" (e.g. a fallback suggestion from
/// a standby that never saw the triggering report).
pub fn cause_id(receiver: u64, session: u64, seq: u64) -> u64 {
    let mut z = receiver
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(session.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(seq)
        .wrapping_add(0x94d0_49bb_1331_11eb);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // Never collide with the reserved "no cause" value.
    if z == 0 {
        1
    } else {
        z
    }
}

/// Receiver -> controller: announce existence (sent once at startup and
/// re-sent until the first suggestion arrives).
#[derive(Clone, Debug, PartialEq)]
pub struct Register {
    pub receiver: AppId,
    pub node: NodeId,
    pub session: SessionId,
    /// Subscription level at registration time.
    pub level: u8,
}

/// Receiver -> controller: one report window of loss/throughput data.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    pub receiver: AppId,
    pub node: NodeId,
    pub session: SessionId,
    /// Subscription level during the window.
    pub level: u8,
    /// Packets received across all subscribed layers in the window.
    pub received: u64,
    /// Packets lost (sequence gaps) across all subscribed layers.
    pub lost: u64,
    /// Bytes received across all subscribed layers.
    pub bytes: u64,
    /// When the window closed.
    pub time: SimTime,
    /// Deterministic causal-trace id ([`cause_id`]). Wire size is fixed by
    /// config, so carrying it never changes simulation behaviour.
    pub cause: u64,
}

impl Report {
    /// Loss rate of the window.
    pub fn loss_rate(&self) -> f64 {
        let expected = self.received + self.lost;
        if expected == 0 {
            0.0
        } else {
            self.lost as f64 / expected as f64
        }
    }
}

/// Controller -> receiver: the prescribed subscription level.
#[derive(Clone, Debug, PartialEq)]
pub struct Suggestion {
    pub receiver: AppId,
    pub session: SessionId,
    /// Subscribe to exactly this many layers.
    pub level: u8,
    /// When the controller computed it.
    pub time: SimTime,
    /// Node the suggesting controller runs on. Receivers report to whoever
    /// last spoke to them, so suggestions from a failed-over standby
    /// redirect the control plane without extra round trips.
    pub from: NodeId,
    /// Cause id of the report that fed this decision (`0` = none known,
    /// e.g. a suggestion computed without a fresh report).
    pub cause: u64,
}

/// Controller -> receiver: registration confirmed. Lets the receiver stop
/// re-announcing itself, and — after a failover — redirects it to the
/// newly-active controller.
#[derive(Clone, Debug, PartialEq)]
pub struct RegisterAck {
    pub receiver: AppId,
    /// Node the active controller answers from.
    pub controller: NodeId,
    pub time: SimTime,
}

/// Receiver -> controller: an orderly departure. Without it a receiver that
/// leaves mid-session lingers in the controller's registry until the
/// silence deadline evicts it.
#[derive(Clone, Debug, PartialEq)]
pub struct Deregister {
    pub receiver: AppId,
    pub session: SessionId,
    pub time: SimTime,
}

/// Active controller -> warm standby: liveness beacon, sent once per
/// interval. The standby takes over when beacons stop.
#[derive(Clone, Debug, PartialEq)]
pub struct Heartbeat {
    pub from: NodeId,
    pub time: SimTime,
}

/// Active controller -> replica: one interval's complete pipeline inputs
/// (DESIGN.md §14). The replica feeds them through its own copy of the
/// byte-deterministic five-stage pipeline; because the inputs — not the
/// outputs — are replicated, the replica's `AlgorithmState` stays a live
/// twin of the primary's and a takeover needs zero re-learning.
#[derive(Clone, Debug)]
pub struct ReplicateInputs {
    /// Interval sequence number: the primary's completed-run count *before*
    /// this interval ran. A replica applying seq `n` goes from `n` to
    /// `n + 1` completed runs.
    pub seq: u64,
    /// The primary's algorithm-RNG seed. A replica joining at seq 0
    /// re-seeds its pipeline with this so the twin tracks the primary's
    /// draw sequence bit-for-bit.
    pub algo_seed: u64,
    pub now: SimTime,
    pub interval: SimDuration,
    /// The (staleness-filtered, domain-clipped) topology the primary built
    /// its session trees from.
    pub view: TopologyView,
    /// The primary's quarantine-filtered registry, sorted by receiver.
    pub registry: Vec<(AppId, NodeId, SessionId)>,
    /// The interval's report batch, exactly as the pipeline consumed it.
    pub reports: Vec<ReceiverReport>,
    /// The border caps in force when the primary ran (federation input,
    /// DESIGN.md §16). Replicated like every other pipeline input so the
    /// twin's root ceilings — and therefore its output fingerprint — stay
    /// byte-identical to the primary's.
    pub border_caps: Vec<(SessionId, u8)>,
    /// The primary's own output fingerprint for this interval
    /// ([`crate::replication::fingerprint_outputs`]) — what the replica's
    /// ack is cross-checked against.
    pub fingerprint: u64,
    pub from: NodeId,
}

/// Replica -> active controller: receipt + cross-check of one replicated
/// interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicaAck {
    pub seq: u64,
    /// The replica's own output fingerprint; `None` means the replica
    /// cannot apply this seq (it joined late or lost a batch) and needs a
    /// checkpoint resync.
    pub fingerprint: Option<u64>,
    pub from: NodeId,
}

/// Active controller -> replica: a full `AlgorithmState` checkpoint
/// (`toposense.checkpoint.v1` JSON) bringing a behind replica back in
/// sync. After restoring, the replica expects seq `next_seq`.
#[derive(Clone, Debug)]
pub struct CheckpointTransfer {
    /// The primary's completed-run count at capture time — the next seq
    /// the restored replica can apply.
    pub next_seq: u64,
    /// Canonical checkpoint JSON ([`crate::checkpoint::Snapshot::encode`]).
    pub blob: String,
    pub from: NodeId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_loss_rate() {
        let mut r = Report {
            receiver: AppId(1),
            node: NodeId(2),
            session: SessionId(0),
            level: 3,
            received: 90,
            lost: 10,
            bytes: 90_000,
            time: SimTime::ZERO,
            cause: cause_id(1, 0, 0),
        };
        assert!((r.loss_rate() - 0.1).abs() < 1e-12);
        r.received = 0;
        r.lost = 0;
        assert_eq!(r.loss_rate(), 0.0);
    }

    #[test]
    fn cause_ids_are_deterministic_distinct_and_never_zero() {
        assert_eq!(cause_id(1, 0, 0), cause_id(1, 0, 0));
        assert_ne!(cause_id(1, 0, 0), cause_id(1, 0, 1));
        assert_ne!(cause_id(1, 0, 0), cause_id(2, 0, 0));
        assert_ne!(cause_id(1, 0, 0), cause_id(1, 1, 0));
        for seq in 0..64 {
            assert_ne!(cause_id(0, 0, seq), 0, "zero is reserved for 'no cause'");
        }
    }
}
