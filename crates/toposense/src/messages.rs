//! Control-plane messages between receivers and the controller.
//!
//! These travel as opaque payloads inside ordinary simulated packets, so
//! they queue behind media traffic and can be lost at congested links —
//! the paper made this deliberate by stationing the controller at a source
//! node "so control messages could be lost due to congestion".

use crate::algorithm::ReceiverReport;
use netsim::{AppId, NodeId, SessionId, SimDuration, SimTime};
use topology::discovery::TopologyView;

/// Receiver -> controller: announce existence (sent once at startup and
/// re-sent until the first suggestion arrives).
#[derive(Clone, Debug, PartialEq)]
pub struct Register {
    pub receiver: AppId,
    pub node: NodeId,
    pub session: SessionId,
    /// Subscription level at registration time.
    pub level: u8,
}

/// Receiver -> controller: one report window of loss/throughput data.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    pub receiver: AppId,
    pub node: NodeId,
    pub session: SessionId,
    /// Subscription level during the window.
    pub level: u8,
    /// Packets received across all subscribed layers in the window.
    pub received: u64,
    /// Packets lost (sequence gaps) across all subscribed layers.
    pub lost: u64,
    /// Bytes received across all subscribed layers.
    pub bytes: u64,
    /// When the window closed.
    pub time: SimTime,
}

impl Report {
    /// Loss rate of the window.
    pub fn loss_rate(&self) -> f64 {
        let expected = self.received + self.lost;
        if expected == 0 {
            0.0
        } else {
            self.lost as f64 / expected as f64
        }
    }
}

/// Controller -> receiver: the prescribed subscription level.
#[derive(Clone, Debug, PartialEq)]
pub struct Suggestion {
    pub receiver: AppId,
    pub session: SessionId,
    /// Subscribe to exactly this many layers.
    pub level: u8,
    /// When the controller computed it.
    pub time: SimTime,
    /// Node the suggesting controller runs on. Receivers report to whoever
    /// last spoke to them, so suggestions from a failed-over standby
    /// redirect the control plane without extra round trips.
    pub from: NodeId,
}

/// Controller -> receiver: registration confirmed. Lets the receiver stop
/// re-announcing itself, and — after a failover — redirects it to the
/// newly-active controller.
#[derive(Clone, Debug, PartialEq)]
pub struct RegisterAck {
    pub receiver: AppId,
    /// Node the active controller answers from.
    pub controller: NodeId,
    pub time: SimTime,
}

/// Receiver -> controller: an orderly departure. Without it a receiver that
/// leaves mid-session lingers in the controller's registry until the
/// silence deadline evicts it.
#[derive(Clone, Debug, PartialEq)]
pub struct Deregister {
    pub receiver: AppId,
    pub session: SessionId,
    pub time: SimTime,
}

/// Active controller -> warm standby: liveness beacon, sent once per
/// interval. The standby takes over when beacons stop.
#[derive(Clone, Debug, PartialEq)]
pub struct Heartbeat {
    pub from: NodeId,
    pub time: SimTime,
}

/// Active controller -> replica: one interval's complete pipeline inputs
/// (DESIGN.md §14). The replica feeds them through its own copy of the
/// byte-deterministic five-stage pipeline; because the inputs — not the
/// outputs — are replicated, the replica's `AlgorithmState` stays a live
/// twin of the primary's and a takeover needs zero re-learning.
#[derive(Clone, Debug)]
pub struct ReplicateInputs {
    /// Interval sequence number: the primary's completed-run count *before*
    /// this interval ran. A replica applying seq `n` goes from `n` to
    /// `n + 1` completed runs.
    pub seq: u64,
    /// The primary's algorithm-RNG seed. A replica joining at seq 0
    /// re-seeds its pipeline with this so the twin tracks the primary's
    /// draw sequence bit-for-bit.
    pub algo_seed: u64,
    pub now: SimTime,
    pub interval: SimDuration,
    /// The (staleness-filtered, domain-clipped) topology the primary built
    /// its session trees from.
    pub view: TopologyView,
    /// The primary's quarantine-filtered registry, sorted by receiver.
    pub registry: Vec<(AppId, NodeId, SessionId)>,
    /// The interval's report batch, exactly as the pipeline consumed it.
    pub reports: Vec<ReceiverReport>,
    /// The primary's own output fingerprint for this interval
    /// ([`crate::replication::fingerprint_outputs`]) — what the replica's
    /// ack is cross-checked against.
    pub fingerprint: u64,
    pub from: NodeId,
}

/// Replica -> active controller: receipt + cross-check of one replicated
/// interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicaAck {
    pub seq: u64,
    /// The replica's own output fingerprint; `None` means the replica
    /// cannot apply this seq (it joined late or lost a batch) and needs a
    /// checkpoint resync.
    pub fingerprint: Option<u64>,
    pub from: NodeId,
}

/// Active controller -> replica: a full `AlgorithmState` checkpoint
/// (`toposense.checkpoint.v1` JSON) bringing a behind replica back in
/// sync. After restoring, the replica expects seq `next_seq`.
#[derive(Clone, Debug)]
pub struct CheckpointTransfer {
    /// The primary's completed-run count at capture time — the next seq
    /// the restored replica can apply.
    pub next_seq: u64,
    /// Canonical checkpoint JSON ([`crate::checkpoint::Snapshot::encode`]).
    pub blob: String,
    pub from: NodeId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_loss_rate() {
        let mut r = Report {
            receiver: AppId(1),
            node: NodeId(2),
            session: SessionId(0),
            level: 3,
            received: 90,
            lost: 10,
            bytes: 90_000,
            time: SimTime::ZERO,
        };
        assert!((r.loss_rate() - 0.1).abs() < 1e-12);
        r.received = 0;
        r.lost = 0;
        assert_eq!(r.loss_rate(), 0.0);
    }
}
