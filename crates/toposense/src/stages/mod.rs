//! The five stages of the TopoSense algorithm (paper Fig. 4).
//!
//! Each stage is a pure function over session trees plus the controller's
//! persistent memory, so every one is unit-tested in isolation; the
//! [`crate::algorithm`] module wires them together in paper order:
//!
//! ```text
//! for each session:   compute congestion state for each node
//! estimate link bandwidths for all shared links
//! for each session:   find bottleneck bandwidths; estimate fair shares
//! for each session:   compute subscription level for each leaf
//! ```

pub mod bottleneck;
pub mod capacity;
pub mod congestion;
#[doc(hidden)]
pub mod reference;
pub mod sharing;
pub mod subscription;

pub use bottleneck::BottleneckMap;
pub use capacity::{CapacityEstimator, SessionLinkObs};
pub use congestion::{LeafObs, NodeState, SessionCongestion};
pub use sharing::{ShareMap, SharingScratch};
pub use subscription::{DemandContext, SubscriptionResult};
