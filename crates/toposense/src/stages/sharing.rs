//! Stage 4 — sharing bandwidth between competing sessions.
//!
//! Min-max fair allocations may not exist for discrete layers (Sarkar &
//! Tassiulas), so the paper uses an intuitive proportional rule. At each
//! shared link with estimated capacity `B`:
//!
//! 1. compute, per session, the **maximum possible demand** `x_i` (in
//!    layers) the session could use through this link if every other
//!    session took only its base layer — a top-down pass followed by a
//!    bottom-up max over children;
//! 2. allocate `share_i = x_i · B / Σ_j x_j`.
//!
//! A session bottlenecked further downstream therefore asks for little and
//! cedes the rest: with downstream bottlenecks of 250 kb/s and 1 Mb/s the
//! paper expects exactly those allocations, not an equal split.

use netsim::{DirLinkId, NodeId};
use std::collections::HashMap;
use topology::SessionTree;
use traffic::LayerSpec;

/// Stage-4 output: per-session allowed bandwidth at every tree node.
#[derive(Clone, Debug, Default)]
pub struct ShareMap {
    pub(crate) allowed: Vec<HashMap<NodeId, f64>>,
}

impl ShareMap {
    /// The bandwidth session `idx` may use at `node` (∞ if unconstrained).
    pub fn allowed(&self, idx: usize, node: NodeId) -> f64 {
        self.allowed.get(idx).and_then(|m| m.get(&node)).copied().unwrap_or(f64::INFINITY)
    }
}

/// Reusable cross-session scratch for [`compute_into`], held by the
/// algorithm driver so one allocation serves every interval.
///
/// `crossing`'s per-link vectors are cleared (not dropped) between
/// intervals; entries left empty by a topology change are skipped, so the
/// map only ever grows to the set of links seen so far.
#[derive(Debug, Default)]
pub struct SharingScratch {
    /// Which sessions cross each link, and the slot where that link enters
    /// each session's tree.
    crossing: HashMap<DirLinkId, Vec<(u32, u32)>>,
    /// Proportional share per `(link, session index)` on shared links.
    share: HashMap<(DirLinkId, u32), f64>,
    /// Pass A/B/final results per session, indexed by tree slot.
    maxposs: Vec<Vec<f64>>,
    aggdem: Vec<Vec<f64>>,
    allowed: Vec<Vec<f64>>,
}

impl SharingScratch {
    /// The bandwidth session `idx` may use at tree `slot` (∞ if
    /// unconstrained). Valid until the next [`compute_into`] call.
    pub fn allowed_at(&self, idx: usize, slot: usize) -> f64 {
        self.allowed[idx][slot]
    }

    /// The proportional shares computed at shared links, as
    /// `(link, session index, share_bps)` rows sorted by link then
    /// session — a deterministic audit view of the `share` map. Valid
    /// until the next [`compute_into`] call.
    pub fn shares_sorted(&self) -> Vec<(DirLinkId, u32, f64)> {
        let mut rows: Vec<(DirLinkId, u32, f64)> =
            self.share.iter().map(|(&(link, i), &bps)| (link, i, bps)).collect();
        rows.sort_by_key(|&(link, i, _)| (link, i));
        rows
    }
}

/// Proportional share of capacity `b` for a session demanding `x` of
/// `total` layers across `n` sessions crossing the link.
///
/// Guards the paper's `x_i · B / Σ_j x_j`: if every crossing session's
/// demand rounded to zero layers the division would be `0/0 = NaN` (or
/// `x/0 = ∞`) and poison every downstream min it feeds, so a zero total
/// degrades to the equal split `B / n` instead.
pub(crate) fn proportional_share(x: u32, total: u32, b: f64, n: usize) -> f64 {
    if total == 0 {
        b / n as f64
    } else {
        x as f64 * b / total as f64
    }
}

/// Compute fair shares. `trees[i]` and `specs[i]` describe session `i`;
/// `capacity` is the stage-2 estimate (`None` = infinite). Thin adapter
/// over [`compute_into`] for callers that index by [`NodeId`]; the
/// algorithm driver uses the dense entry point directly.
pub fn compute(
    trees: &[SessionTree],
    specs: &[&LayerSpec],
    capacity: impl Fn(DirLinkId) -> Option<f64>,
) -> ShareMap {
    let mut scratch = SharingScratch::default();
    compute_into(trees, specs, capacity, &mut scratch);
    let allowed = trees
        .iter()
        .enumerate()
        .map(|(i, tree)| {
            let t = tree.tree();
            t.slots().map(|s| (t.node_at(s), scratch.allowed[i][s])).collect()
        })
        .collect();
    ShareMap { allowed }
}

/// Dense stage-4 core: fills `scratch.allowed[i][slot]` with the bandwidth
/// session `i` may use at tree slot `slot`.
pub fn compute_into(
    trees: &[SessionTree],
    specs: &[&LayerSpec],
    capacity: impl Fn(DirLinkId) -> Option<f64>,
    scratch: &mut SharingScratch,
) {
    assert_eq!(trees.len(), specs.len());

    // Which sessions cross each link, and where that link enters their tree.
    let crossing = &mut scratch.crossing;
    for v in crossing.values_mut() {
        v.clear();
    }
    for (i, tree) in trees.iter().enumerate() {
        for s in 1..tree.tree().len() {
            crossing.entry(tree.in_link_at(s)).or_default().push((i as u32, s as u32));
        }
    }

    let resize_per_session = |bufs: &mut Vec<Vec<f64>>| {
        bufs.resize_with(trees.len().max(bufs.len()), Vec::new);
        for (tree, buf) in trees.iter().zip(bufs.iter_mut()) {
            buf.clear();
            buf.resize(tree.tree().len(), f64::INFINITY);
        }
    };

    // Pass A (top-down): max bandwidth possible per node if all *other*
    // sessions on each link took only their base layer.
    resize_per_session(&mut scratch.maxposs);
    for (i, tree) in trees.iter().enumerate() {
        let t = tree.tree();
        let m = &mut scratch.maxposs[i];
        for s in t.slots() {
            let Some(p) = t.parent_slot_of(s) else { continue };
            let link = tree.in_link_at(s);
            let avail = match capacity(link) {
                None => f64::INFINITY,
                Some(b) => {
                    let others_base: f64 = crossing[&link]
                        .iter()
                        .filter(|&&(j, _)| j as usize != i)
                        .map(|&(j, _)| specs[j as usize].base_rate())
                        .sum();
                    // Every session is assumed to get at least its own
                    // base layer's worth.
                    (b - others_base).max(specs[i].base_rate())
                }
            };
            m[s] = m[p].min(avail);
        }
    }

    // Pass B (bottom-up): a node's max possible demand is the max over its
    // children; leaves keep their own.
    resize_per_session(&mut scratch.aggdem);
    for (i, tree) in trees.iter().enumerate() {
        let t = tree.tree();
        let (maxposs, m) = (&scratch.maxposs[i], &mut scratch.aggdem[i]);
        for s in t.slots_bottom_up() {
            let cs = t.child_slots(s);
            m[s] = if cs.is_empty() {
                maxposs[s]
            } else {
                cs.map(|c| m[c]).fold(f64::NEG_INFINITY, f64::max)
            };
        }
    }

    // Per shared link: x_i in layers, then the proportional share.
    let share = &mut scratch.share;
    share.clear();
    for (&link, sessions) in crossing.iter() {
        if sessions.len() < 2 {
            continue;
        }
        let Some(b) = capacity(link) else { continue };
        let total: u32 = sessions
            .iter()
            .map(|&(i, head)| {
                specs[i as usize].level_fitting(scratch.aggdem[i as usize][head as usize]).max(1)
                    as u32
            })
            .sum();
        for &(i, head) in sessions {
            let x = specs[i as usize]
                .level_fitting(scratch.aggdem[i as usize][head as usize])
                .max(1) as u32;
            share.insert((link, i), proportional_share(x, total, b, sessions.len()));
        }
    }

    // Final top-down pass: allowed bandwidth per node = min over the path of
    // (fair share on shared links, raw estimate on private links).
    resize_per_session(&mut scratch.allowed);
    for (i, tree) in trees.iter().enumerate() {
        let t = tree.tree();
        let m = &mut scratch.allowed[i];
        for s in t.slots() {
            let Some(p) = t.parent_slot_of(s) else { continue };
            let link = tree.in_link_at(s);
            let limit = share
                .get(&(link, i as u32))
                .copied()
                .or_else(|| capacity(link))
                .unwrap_or(f64::INFINITY);
            m[s] = m[p].min(limit);
        }
    }
}

/// Incremental stage-4 update: refresh `scratch` after a capacity change
/// on exactly the links in `cap_changed` (sorted, deduplicated), assuming
/// the topology (`trees`/`specs`) is unchanged since the last
/// [`compute_into`] over the same `scratch`.
///
/// Effect propagation, session-granular:
///
/// * sessions crossing a changed link get fresh `maxposs`/`aggdem`
///   (a changed capacity alters their pass-A path mins);
/// * every link those sessions cross — plus the changed links themselves —
///   may see its proportional share move (shares read the crossing
///   sessions' `aggdem` heads), so those links' shares are recomputed;
/// * sessions crossing any such link get a fresh final `allowed` pass.
///
/// Links and sessions outside that closure provably keep their previous
/// values: an untouched link has unchanged capacity and (by construction)
/// no crossing session with changed `aggdem`, so its share — and every
/// `allowed` path through it — is byte-identical to a full recompute. The
/// caller guarantees estimates never *disappear* between incremental runs
/// (a periodic reset forces the full path), which is what keeps stale
/// `share` entries for untouched links valid.
///
/// With an empty `cap_changed` this is a no-op — the steady-state hot path.
pub(crate) fn compute_incremental_into(
    trees: &[SessionTree],
    specs: &[&LayerSpec],
    capacity: impl Fn(DirLinkId) -> Option<f64>,
    scratch: &mut SharingScratch,
    cap_changed: &[DirLinkId],
) -> Vec<u32> {
    if cap_changed.is_empty() {
        return Vec::new();
    }
    debug_assert_eq!(trees.len(), specs.len());
    debug_assert!(scratch.allowed.len() >= trees.len(), "scratch not primed by a full pass");
    let SharingScratch { crossing, share, maxposs, aggdem, allowed } = scratch;

    // Sessions whose pass-A/B results the changed capacities can reach.
    let mut in_a = vec![false; trees.len()];
    for &link in cap_changed {
        if let Some(sessions) = crossing.get(&link) {
            for &(i, _) in sessions {
                in_a[i as usize] = true;
            }
        }
    }

    // Fresh maxposs/aggdem for those sessions (same code as the full pass).
    for (i, tree) in trees.iter().enumerate() {
        if !in_a[i] {
            continue;
        }
        let t = tree.tree();
        let m = &mut maxposs[i];
        m.clear();
        m.resize(t.len(), f64::INFINITY);
        for s in t.slots() {
            let Some(p) = t.parent_slot_of(s) else { continue };
            let link = tree.in_link_at(s);
            let avail = match capacity(link) {
                None => f64::INFINITY,
                Some(b) => {
                    let others_base: f64 = crossing[&link]
                        .iter()
                        .filter(|&&(j, _)| j as usize != i)
                        .map(|&(j, _)| specs[j as usize].base_rate())
                        .sum();
                    (b - others_base).max(specs[i].base_rate())
                }
            };
            m[s] = m[p].min(avail);
        }
        let (maxposs_i, m) = (&maxposs[i], &mut aggdem[i]);
        m.clear();
        m.resize(t.len(), f64::INFINITY);
        for s in t.slots_bottom_up() {
            let cs = t.child_slots(s);
            m[s] = if cs.is_empty() {
                maxposs_i[s]
            } else {
                cs.map(|c| m[c]).fold(f64::NEG_INFINITY, f64::max)
            };
        }
    }

    // Links whose share inputs may have moved: the changed links, plus
    // everything a refreshed session crosses.
    let mut affected: Vec<DirLinkId> = cap_changed.to_vec();
    for (i, tree) in trees.iter().enumerate() {
        if !in_a[i] {
            continue;
        }
        for s in 1..tree.tree().len() {
            affected.push(tree.in_link_at(s));
        }
    }
    affected.sort_unstable();
    affected.dedup();

    // Recompute those links' shares; sessions crossing them need a fresh
    // final pass (their path mins read the recomputed entries).
    let mut in_b = in_a;
    for &link in &affected {
        let Some(sessions) = crossing.get(&link) else { continue };
        for &(i, _) in sessions {
            in_b[i as usize] = true;
        }
        if sessions.len() < 2 {
            continue;
        }
        let Some(b) = capacity(link) else { continue };
        let total: u32 = sessions
            .iter()
            .map(|&(i, head)| {
                specs[i as usize].level_fitting(aggdem[i as usize][head as usize]).max(1) as u32
            })
            .sum();
        for &(i, head) in sessions {
            let x =
                specs[i as usize].level_fitting(aggdem[i as usize][head as usize]).max(1) as u32;
            share.insert((link, i), proportional_share(x, total, b, sessions.len()));
        }
    }

    for (i, tree) in trees.iter().enumerate() {
        if !in_b[i] {
            continue;
        }
        let t = tree.tree();
        let m = &mut allowed[i];
        m.clear();
        m.resize(t.len(), f64::INFINITY);
        for s in t.slots() {
            let Some(p) = t.parent_slot_of(s) else { continue };
            let link = tree.in_link_at(s);
            let limit = share
                .get(&(link, i as u32))
                .copied()
                .or_else(|| capacity(link))
                .unwrap_or(f64::INFINITY);
            m[s] = m[p].min(limit);
        }
    }
    // The refreshed sessions, so downstream stages know whose per-slot
    // allowances (and hence level caps) may have moved.
    in_b.iter().enumerate().filter_map(|(i, &b)| b.then_some(i as u32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{GroupId, GroupSnapshot, SessionId, SimTime};
    use topology::discovery::{LinkView, TopologyView};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn l(i: u32) -> DirLinkId {
        DirLinkId(i)
    }

    /// Two sessions sharing link 0 (agg(0) -> dist(1)), then private links
    /// 1 and 2 to receivers 2 and 3. Sources both at node 0.
    fn two_sessions() -> (Vec<SessionTree>, LayerSpec) {
        let links = vec![
            LinkView { id: l(0), from: n(0), to: n(1) },
            LinkView { id: l(1), from: n(1), to: n(2) },
            LinkView { id: l(2), from: n(1), to: n(3) },
        ];
        let mk = |gid: u32, leaf_link: DirLinkId, leaf: NodeId| TopologyView {
            time: SimTime::ZERO,
            links: links.clone(),
            groups: vec![GroupSnapshot {
                group: GroupId(gid),
                root: n(0),
                active_links: vec![l(0), leaf_link],
                member_nodes: vec![leaf],
            }],
        };
        let t0 = SessionTree::build(&mk(0, l(1), n(2)), SessionId(0), &[GroupId(0)]).unwrap();
        let t1 = SessionTree::build(&mk(1, l(2), n(3)), SessionId(1), &[GroupId(1)]).unwrap();
        (vec![t0, t1], LayerSpec::paper_default())
    }

    #[test]
    fn no_estimates_means_no_constraint() {
        let (trees, spec) = two_sessions();
        let m = compute(&trees, &[&spec, &spec], |_| None);
        assert_eq!(m.allowed(0, n(2)), f64::INFINITY);
        assert_eq!(m.allowed(1, n(3)), f64::INFINITY);
    }

    #[test]
    fn equal_sessions_split_evenly() {
        let (trees, spec) = two_sessions();
        // Shared link estimated at 1 Mb/s, downstream unconstrained.
        let m = compute(&trees, &[&spec, &spec], |id| (id == l(0)).then_some(1_000_000.0));
        let a0 = m.allowed(0, n(2));
        let a1 = m.allowed(1, n(3));
        assert!((a0 - 500_000.0).abs() < 1.0, "got {a0}");
        assert!((a1 - 500_000.0).abs() < 1.0, "got {a1}");
        // Conservation: shares sum to B.
        assert!((a0 + a1 - 1_000_000.0).abs() < 1.0);
    }

    #[test]
    fn downstream_bottleneck_cedes_bandwidth() {
        let (trees, spec) = two_sessions();
        // Session 0's private link is tiny (fits only the base layer);
        // session 1 unconstrained downstream. B = 1 Mb/s on the shared link.
        let m = compute(&trees, &[&spec, &spec], |id| match id.0 {
            0 => Some(1_000_000.0),
            1 => Some(40_000.0),
            _ => None,
        });
        // x_0 = 1 layer, x_1 = level_fitting(1M - 32k) = 4 layers.
        // share_0 = 1/5 MB, share_1 = 4/5 MB.
        let a0 = m.allowed(0, n(2));
        let a1 = m.allowed(1, n(3));
        assert!((a1 - 800_000.0).abs() < 1.0, "got {a1}");
        // Session 0 is further capped by its own 40 kb/s private link.
        assert!((a0 - 40_000.0).abs() < 1.0, "got {a0}");
        assert!(a1 > a0 * 10.0);
    }

    #[test]
    fn single_session_links_use_raw_estimate() {
        let (trees, spec) = two_sessions();
        let m = compute(&trees, &[&spec, &spec], |id| (id == l(1)).then_some(123_000.0));
        // Link 1 carries only session 0: no sharing, raw estimate applies.
        assert!((m.allowed(0, n(2)) - 123_000.0).abs() < 1.0);
        assert_eq!(m.allowed(1, n(3)), f64::INFINITY);
    }

    #[test]
    fn every_session_keeps_at_least_base_worth_of_x() {
        let (trees, spec) = two_sessions();
        // Shared link barely fits one base layer; both sessions still get
        // x >= 1, so neither share is zero.
        let m = compute(&trees, &[&spec, &spec], |id| (id == l(0)).then_some(40_000.0));
        assert!(m.allowed(0, n(2)) > 0.0);
        assert!(m.allowed(1, n(3)) > 0.0);
        let sum = m.allowed(0, n(2)) + m.allowed(1, n(3));
        assert!((sum - 40_000.0).abs() < 1.0);
    }

    #[test]
    fn zero_total_demand_falls_back_to_equal_split() {
        // If every crossing session's demand rounds to zero layers,
        // `x·B/Σx` is 0/0 = NaN and would poison every downstream min.
        // The guard returns the equal split instead.
        let s = proportional_share(0, 0, 1_000_000.0, 4);
        assert!(s.is_finite(), "got {s}");
        assert_eq!(s, 250_000.0);
        // Non-zero x with a zero total (inconsistent inputs) must not
        // produce infinity either.
        assert!(proportional_share(3, 0, 1_000_000.0, 2).is_finite());
        // The normal path is untouched.
        assert_eq!(proportional_share(1, 5, 1_000_000.0, 2), 200_000.0);
        assert_eq!(proportional_share(4, 5, 1_000_000.0, 2), 800_000.0);
    }

    #[test]
    fn sixteen_equal_sessions_each_get_a_sixteenth() {
        // Mirror of the paper's Topology B at n=16.
        let links: Vec<LinkView> = std::iter::once(LinkView { id: l(0), from: n(0), to: n(1) })
            .chain((0..16).map(|i| LinkView { id: l(1 + i), from: n(1), to: n(2 + i) }))
            .collect();
        let spec = LayerSpec::paper_default();
        let trees: Vec<SessionTree> = (0..16u32)
            .map(|i| {
                let view = TopologyView {
                    time: SimTime::ZERO,
                    links: links.clone(),
                    groups: vec![GroupSnapshot {
                        group: GroupId(i),
                        root: n(0),
                        active_links: vec![l(0), l(1 + i)],
                        member_nodes: vec![n(2 + i)],
                    }],
                };
                SessionTree::build(&view, SessionId(i), &[GroupId(i)]).unwrap()
            })
            .collect();
        let specs: Vec<&LayerSpec> = (0..16).map(|_| &spec).collect();
        let b = 16.0 * 500_000.0;
        let m = compute(&trees, &specs, |id| (id == l(0)).then_some(b));
        for i in 0..16 {
            let a = m.allowed(i, n(2 + i as u32));
            assert!((a - 500_000.0).abs() < 1.0, "session {i} got {a}");
        }
    }
}
