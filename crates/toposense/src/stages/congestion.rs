//! Stage 1 — computing congestion states.
//!
//! Packet loss is known only at the leaves (receiver reports). The loss rate
//! of an internal node is the **minimum** of its children's: "if all the
//! children of a node are congested, then all the children will have to
//! reduce their bandwidth demands", i.e. the parent is only as constrained
//! as its least-lossy descendant. States flow bottom-up; parental congestion
//! then flows back down, because a node whose parent is congested is
//! congested too (and must defer action to the parent).
//!
//! An internal node is **self-congested** when all children exceed
//! `p_threshold` *and* at least `eta_similar` of them sit close to the mean
//! child loss — similar losses across siblings point at the shared upstream
//! link rather than at independent downstream bottlenecks.
//!
//! The stage also records, per node, the maximum bytes received by any
//! receiver in the subtree — the input to the capacity estimator.

use crate::config::Config;
use netsim::NodeId;
use std::collections::HashMap;
use topology::SessionTree;

/// Aggregated observation at a node that hosts receivers.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LeafObs {
    /// Loss rate over the last interval (min across co-located receivers).
    pub loss: f64,
    /// Bytes received over the last interval (max across co-located
    /// receivers).
    pub bytes: u64,
    /// Current subscription level (max across co-located receivers).
    pub level: u8,
}

/// Stage-1 output for one node.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NodeState {
    /// Effective loss rate at the node (min over children / own report).
    pub loss: f64,
    /// Congested by its own subtree's evidence.
    pub self_congested: bool,
    /// Congested overall (self, or any ancestor congested).
    pub congested: bool,
    /// Whether the parent is congested (leaves defer action when so).
    pub parent_congested: bool,
    /// Max bytes received by any receiver in the subtree.
    pub max_bytes: u64,
    /// Whether any receiver in the subtree reported this interval. A
    /// report-less subtree (all receivers quarantined/evicted, or an
    /// outage) carries **no evidence** either way: its loss is a
    /// placeholder, it is excluded from its parent's child-min fold, and
    /// callers should inherit the node's prior state rather than treat
    /// the silence as all-clear.
    pub has_data: bool,
}

/// Stage-1 output for one session.
#[derive(Clone, Debug, Default)]
pub struct SessionCongestion {
    pub nodes: HashMap<NodeId, NodeState>,
}

impl SessionCongestion {
    /// The state of `node` (default all-clear for unknown nodes).
    pub fn node(&self, node: NodeId) -> NodeState {
        self.nodes.get(&node).copied().unwrap_or_default()
    }
}

/// Compute congestion states for one session tree.
///
/// `obs` maps receiver-hosting nodes to their aggregated report data.
/// Thin adapter over [`compute_into`] for callers that index by
/// [`NodeId`]; the algorithm driver uses the dense entry point directly.
pub fn compute(
    tree: &SessionTree,
    obs: &HashMap<NodeId, LeafObs>,
    cfg: &Config,
) -> SessionCongestion {
    let t = tree.tree();
    let mut slot_obs: Vec<Option<LeafObs>> = vec![None; t.len()];
    for (&node, &o) in obs {
        if let Some(s) = t.slot_of(node) {
            slot_obs[s] = Some(o);
        }
    }
    let mut states = Vec::new();
    compute_into(tree, &slot_obs, cfg, &mut states);
    let nodes = t.slots().map(|s| (t.node_at(s), states[s])).collect();
    SessionCongestion { nodes }
}

/// Dense stage-1 core: `obs[slot]` holds the aggregated observation for
/// the node at that tree slot; `states[slot]` receives its state. The
/// output vector is cleared and refilled, reusing its allocation.
pub fn compute_into(
    tree: &SessionTree,
    obs: &[Option<LeafObs>],
    cfg: &Config,
    states: &mut Vec<NodeState>,
) {
    let t = tree.tree();
    debug_assert_eq!(obs.len(), t.len());
    states.clear();
    states.resize(t.len(), NodeState::default());

    // Bottom-up: loss, self-congestion, subtree byte maxima. Children
    // occupy higher slots than their parent, so reverse slot order visits
    // every child first.
    for s in t.slots_bottom_up() {
        let st = slot_state(tree, s, obs, states, cfg);
        states[s] = st;
    }

    propagate_down(tree, states);
}

/// The per-slot bottom-up kernel of [`compute_into`]: the state of one
/// slot given its children's (already computed) states. Exposed to the
/// crate so the incremental path reuses the exact same code and cannot
/// drift from the full pass. Only the bottom-up fields are set here;
/// `congested` / `parent_congested` come from [`propagate_down`].
pub(crate) fn slot_state(
    tree: &SessionTree,
    s: usize,
    obs: &[Option<LeafObs>],
    states: &[NodeState],
    cfg: &Config,
) -> NodeState {
    let t = tree.tree();
    let own = obs[s];
    let mut state = NodeState::default();
    if t.is_leaf_slot(s) {
        // A silent leaf (quarantined, evicted, or outside the report
        // horizon) is no-data, not all-clear: its placeholder state
        // must not feed the parent's child-min fold, or an interval
        // of silence would mask real sibling loss (and the seed
        // `f64::INFINITY` below could survive the fold when *every*
        // child is silent, freezing the node as CONGESTED).
        let o = own.unwrap_or_default();
        state.loss = o.loss;
        state.max_bytes = o.bytes;
        state.self_congested = own.is_some() && o.loss > cfg.p_threshold;
        state.has_data = own.is_some();
    } else {
        // Child losses, plus the node's own receivers as a pseudo-child
        // when it hosts any (a member node can be internal). Two passes
        // over the contiguous child range instead of a scratch vector:
        // the first folds min/sum/max, the second (mean in hand) counts
        // the similar ones. Report-less children are skipped: they are
        // no-data, and folding their placeholder 0.0 loss (or keeping
        // the infinite seed when all of them are silent) would be
        // evidence invented from silence.
        let cs = t.child_slots(s);
        let mut loss = f64::INFINITY;
        let mut sum = 0.0;
        let mut count = 0usize;
        let mut all_lossy = true;
        let mut max_bytes = 0u64;
        for c in cs.clone() {
            if !states[c].has_data {
                continue;
            }
            let l = states[c].loss;
            loss = loss.min(l);
            sum += l;
            count += 1;
            all_lossy &= l > cfg.p_threshold;
            max_bytes = max_bytes.max(states[c].max_bytes);
        }
        if let Some(o) = own {
            loss = loss.min(o.loss);
            sum += o.loss;
            count += 1;
            all_lossy &= o.loss > cfg.p_threshold;
            max_bytes = max_bytes.max(o.bytes);
        }
        if count == 0 {
            // Whole subtree silent this interval: no-data, with a
            // finite placeholder loss instead of the infinite seed.
            state.has_data = false;
        } else {
            state.loss = loss;
            state.max_bytes = max_bytes;
            state.has_data = true;
            if all_lossy {
                let mean = sum / count as f64;
                let close = cs
                    .filter(|&c| states[c].has_data)
                    .map(|c| states[c].loss)
                    .chain(own.map(|o| o.loss))
                    .filter(|l| (l - mean).abs() <= cfg.similarity_tolerance)
                    .count();
                let frac = close as f64 / count as f64;
                state.self_congested = frac >= cfg.eta_similar;
            }
        }
    }
    state
}

/// The top-down half of stage 1: parental congestion propagates. Shared by
/// the full pass and the incremental path (which re-runs it over the whole
/// tree — it is a cheap linear scan, and localizing it would have to track
/// congestion flips across arbitrary subtrees for no measurable win).
pub(crate) fn propagate_down(tree: &SessionTree, states: &mut [NodeState]) {
    let t = tree.tree();
    for s in t.slots() {
        let parent_congested = t.parent_slot_of(s).map(|p| states[p].congested).unwrap_or(false);
        states[s].parent_congested = parent_congested;
        states[s].congested = states[s].self_congested || parent_congested;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{DirLinkId, GroupId, GroupSnapshot, SessionId, SimTime};
    use topology::discovery::{LinkView, TopologyView};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// Tree: 0 -> 1 -> {2, 3}; receivers at 2 and 3.
    fn tree() -> SessionTree {
        let view = TopologyView {
            time: SimTime::ZERO,
            links: vec![
                LinkView { id: DirLinkId(0), from: n(0), to: n(1) },
                LinkView { id: DirLinkId(1), from: n(1), to: n(2) },
                LinkView { id: DirLinkId(2), from: n(1), to: n(3) },
            ],
            groups: vec![GroupSnapshot {
                group: GroupId(0),
                root: n(0),
                active_links: vec![DirLinkId(0), DirLinkId(1), DirLinkId(2)],
                member_nodes: vec![n(2), n(3)],
            }],
        };
        SessionTree::build(&view, SessionId(0), &[GroupId(0)]).unwrap()
    }

    fn obs(pairs: &[(u32, f64, u64)]) -> HashMap<NodeId, LeafObs> {
        pairs.iter().map(|&(i, loss, bytes)| (n(i), LeafObs { loss, bytes, level: 1 })).collect()
    }

    #[test]
    fn all_clear_when_no_loss() {
        let sc = compute(&tree(), &obs(&[(2, 0.0, 1000), (3, 0.0, 2000)]), &Config::default());
        for i in [0u32, 1, 2, 3] {
            assert!(!sc.node(n(i)).congested, "node {i}");
        }
        // Byte maxima propagate up.
        assert_eq!(sc.node(n(1)).max_bytes, 2000);
        assert_eq!(sc.node(n(0)).max_bytes, 2000);
    }

    #[test]
    fn single_lossy_leaf_congests_only_itself() {
        let sc = compute(&tree(), &obs(&[(2, 0.2, 1000), (3, 0.0, 2000)]), &Config::default());
        assert!(sc.node(n(2)).congested);
        assert!(sc.node(n(2)).self_congested);
        // Internal loss = min(0.2, 0.0) = 0 -> not congested.
        assert!(!sc.node(n(1)).congested);
        assert_eq!(sc.node(n(1)).loss, 0.0);
        assert!(!sc.node(n(3)).congested);
    }

    #[test]
    fn similar_sibling_losses_congest_the_parent() {
        // Both leaves lossy at similar rates -> shared upstream bottleneck.
        let sc = compute(&tree(), &obs(&[(2, 0.10, 1000), (3, 0.12, 1000)]), &Config::default());
        assert!(sc.node(n(1)).self_congested);
        assert!(sc.node(n(1)).congested);
        // Parental congestion flows down to the leaves' flags.
        assert!(sc.node(n(2)).parent_congested);
        assert!(sc.node(n(3)).parent_congested);
        // Root: child (node 1) is its only child with loss 0.10 > threshold;
        // single-child similarity trivially holds, so the root also
        // self-congests under the letter of the rule.
        assert!(sc.node(n(0)).congested);
    }

    #[test]
    fn dissimilar_sibling_losses_do_not_congest_the_parent() {
        // Both lossy but very different: independent downstream causes.
        let cfg = Config { eta_similar: 0.9, ..Config::default() };
        let sc = compute(&tree(), &obs(&[(2, 0.05, 1000), (3, 0.60, 1000)]), &cfg);
        assert!(!sc.node(n(1)).self_congested);
        assert!(sc.node(n(2)).congested);
        assert!(sc.node(n(3)).congested);
    }

    #[test]
    fn internal_loss_is_min_of_children() {
        let sc = compute(&tree(), &obs(&[(2, 0.3, 10), (3, 0.08, 20)]), &Config::default());
        assert!((sc.node(n(1)).loss - 0.08).abs() < 1e-12);
    }

    #[test]
    fn missing_observation_is_no_data_not_all_clear() {
        let sc = compute(&tree(), &obs(&[(2, 0.5, 10)]), &Config::default());
        // Node 3 never reported: it carries no evidence, so it does not
        // pull the parent's child-min down to 0. The parent's state comes
        // from the one reporting child alone.
        assert!(!sc.node(n(3)).has_data);
        assert!(!sc.node(n(3)).self_congested);
        assert!(sc.node(n(1)).has_data);
        assert!((sc.node(n(1)).loss - 0.5).abs() < 1e-12);
        assert!(sc.node(n(1)).self_congested, "silence must not mask the lossy sibling");
    }

    #[test]
    fn fully_silent_subtree_is_no_data_with_finite_loss() {
        // Nobody reports at all (e.g. every receiver quarantined or
        // evicted this interval): every node is no-data, nothing is
        // congested, and no infinite loss survives the child-min fold.
        let sc = compute(&tree(), &obs(&[]), &Config::default());
        for i in [0u32, 1, 2, 3] {
            let s = sc.node(n(i));
            assert!(!s.has_data, "node {i}");
            assert!(!s.congested, "node {i} must not be congested on silence");
            assert!(s.loss.is_finite(), "node {i} loss must stay finite, got {}", s.loss);
        }
    }

    #[test]
    fn unknown_node_defaults() {
        let sc = compute(&tree(), &obs(&[]), &Config::default());
        let s = sc.node(n(99));
        assert!(!s.congested && s.loss == 0.0 && s.max_bytes == 0);
    }
}
