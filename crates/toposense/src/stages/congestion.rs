//! Stage 1 — computing congestion states.
//!
//! Packet loss is known only at the leaves (receiver reports). The loss rate
//! of an internal node is the **minimum** of its children's: "if all the
//! children of a node are congested, then all the children will have to
//! reduce their bandwidth demands", i.e. the parent is only as constrained
//! as its least-lossy descendant. States flow bottom-up; parental congestion
//! then flows back down, because a node whose parent is congested is
//! congested too (and must defer action to the parent).
//!
//! An internal node is **self-congested** when all children exceed
//! `p_threshold` *and* at least `eta_similar` of them sit close to the mean
//! child loss — similar losses across siblings point at the shared upstream
//! link rather than at independent downstream bottlenecks.
//!
//! The stage also records, per node, the maximum bytes received by any
//! receiver in the subtree — the input to the capacity estimator.

use crate::config::Config;
use netsim::NodeId;
use std::collections::HashMap;
use topology::SessionTree;

/// Aggregated observation at a node that hosts receivers.
#[derive(Clone, Copy, Debug, Default)]
pub struct LeafObs {
    /// Loss rate over the last interval (min across co-located receivers).
    pub loss: f64,
    /// Bytes received over the last interval (max across co-located
    /// receivers).
    pub bytes: u64,
    /// Current subscription level (max across co-located receivers).
    pub level: u8,
}

/// Stage-1 output for one node.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeState {
    /// Effective loss rate at the node (min over children / own report).
    pub loss: f64,
    /// Congested by its own subtree's evidence.
    pub self_congested: bool,
    /// Congested overall (self, or any ancestor congested).
    pub congested: bool,
    /// Whether the parent is congested (leaves defer action when so).
    pub parent_congested: bool,
    /// Max bytes received by any receiver in the subtree.
    pub max_bytes: u64,
}

/// Stage-1 output for one session.
#[derive(Clone, Debug, Default)]
pub struct SessionCongestion {
    pub nodes: HashMap<NodeId, NodeState>,
}

impl SessionCongestion {
    /// The state of `node` (default all-clear for unknown nodes).
    pub fn node(&self, node: NodeId) -> NodeState {
        self.nodes.get(&node).copied().unwrap_or_default()
    }
}

/// Compute congestion states for one session tree.
///
/// `obs` maps receiver-hosting nodes to their aggregated report data.
pub fn compute(
    tree: &SessionTree,
    obs: &HashMap<NodeId, LeafObs>,
    cfg: &Config,
) -> SessionCongestion {
    let t = tree.tree();
    let mut out: HashMap<NodeId, NodeState> = HashMap::with_capacity(t.len());

    // Bottom-up: loss, self-congestion, subtree byte maxima.
    for node in t.bottom_up() {
        let children = t.children(node);
        let own = obs.get(&node);
        let mut state = NodeState::default();
        if children.is_empty() {
            let o = own.copied().unwrap_or_default();
            state.loss = o.loss;
            state.max_bytes = o.bytes;
            state.self_congested = o.loss > cfg.p_threshold;
        } else {
            // Child losses, plus the node's own receivers as a pseudo-child
            // when it hosts any (a member node can be internal).
            let mut losses: Vec<f64> = children.iter().map(|c| out[c].loss).collect();
            if let Some(o) = own {
                losses.push(o.loss);
            }
            state.loss = losses.iter().copied().fold(f64::INFINITY, f64::min);
            state.max_bytes = children
                .iter()
                .map(|c| out[c].max_bytes)
                .chain(own.map(|o| o.bytes))
                .max()
                .unwrap_or(0);
            let all_lossy = losses.iter().all(|&l| l > cfg.p_threshold);
            if all_lossy {
                let mean = losses.iter().sum::<f64>() / losses.len() as f64;
                let close = losses
                    .iter()
                    .filter(|&&l| (l - mean).abs() <= cfg.similarity_tolerance)
                    .count();
                let frac = close as f64 / losses.len() as f64;
                state.self_congested = frac >= cfg.eta_similar;
            }
        }
        out.insert(node, state);
    }

    // Top-down: parental congestion propagates.
    for node in t.top_down() {
        let parent_congested = t
            .parent(node)
            .map(|p| out[&p].congested)
            .unwrap_or(false);
        let s = out.get_mut(&node).expect("visited in bottom-up pass");
        s.parent_congested = parent_congested;
        s.congested = s.self_congested || parent_congested;
    }

    SessionCongestion { nodes: out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{DirLinkId, GroupId, GroupSnapshot, SessionId, SimTime};
    use topology::discovery::{LinkView, TopologyView};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// Tree: 0 -> 1 -> {2, 3}; receivers at 2 and 3.
    fn tree() -> SessionTree {
        let view = TopologyView {
            time: SimTime::ZERO,
            links: vec![
                LinkView { id: DirLinkId(0), from: n(0), to: n(1) },
                LinkView { id: DirLinkId(1), from: n(1), to: n(2) },
                LinkView { id: DirLinkId(2), from: n(1), to: n(3) },
            ],
            groups: vec![GroupSnapshot {
                group: GroupId(0),
                root: n(0),
                active_links: vec![DirLinkId(0), DirLinkId(1), DirLinkId(2)],
                member_nodes: vec![n(2), n(3)],
            }],
        };
        SessionTree::build(&view, SessionId(0), &[GroupId(0)]).unwrap()
    }

    fn obs(pairs: &[(u32, f64, u64)]) -> HashMap<NodeId, LeafObs> {
        pairs
            .iter()
            .map(|&(i, loss, bytes)| (n(i), LeafObs { loss, bytes, level: 1 }))
            .collect()
    }

    #[test]
    fn all_clear_when_no_loss() {
        let sc = compute(&tree(), &obs(&[(2, 0.0, 1000), (3, 0.0, 2000)]), &Config::default());
        for i in [0u32, 1, 2, 3] {
            assert!(!sc.node(n(i)).congested, "node {i}");
        }
        // Byte maxima propagate up.
        assert_eq!(sc.node(n(1)).max_bytes, 2000);
        assert_eq!(sc.node(n(0)).max_bytes, 2000);
    }

    #[test]
    fn single_lossy_leaf_congests_only_itself() {
        let sc = compute(&tree(), &obs(&[(2, 0.2, 1000), (3, 0.0, 2000)]), &Config::default());
        assert!(sc.node(n(2)).congested);
        assert!(sc.node(n(2)).self_congested);
        // Internal loss = min(0.2, 0.0) = 0 -> not congested.
        assert!(!sc.node(n(1)).congested);
        assert_eq!(sc.node(n(1)).loss, 0.0);
        assert!(!sc.node(n(3)).congested);
    }

    #[test]
    fn similar_sibling_losses_congest_the_parent() {
        // Both leaves lossy at similar rates -> shared upstream bottleneck.
        let sc = compute(&tree(), &obs(&[(2, 0.10, 1000), (3, 0.12, 1000)]), &Config::default());
        assert!(sc.node(n(1)).self_congested);
        assert!(sc.node(n(1)).congested);
        // Parental congestion flows down to the leaves' flags.
        assert!(sc.node(n(2)).parent_congested);
        assert!(sc.node(n(3)).parent_congested);
        // Root: child (node 1) is its only child with loss 0.10 > threshold;
        // single-child similarity trivially holds, so the root also
        // self-congests under the letter of the rule.
        assert!(sc.node(n(0)).congested);
    }

    #[test]
    fn dissimilar_sibling_losses_do_not_congest_the_parent() {
        // Both lossy but very different: independent downstream causes.
        let cfg = Config { eta_similar: 0.9, ..Config::default() };
        let sc = compute(&tree(), &obs(&[(2, 0.05, 1000), (3, 0.60, 1000)]), &cfg);
        assert!(!sc.node(n(1)).self_congested);
        assert!(sc.node(n(2)).congested);
        assert!(sc.node(n(3)).congested);
    }

    #[test]
    fn internal_loss_is_min_of_children() {
        let sc = compute(&tree(), &obs(&[(2, 0.3, 10), (3, 0.08, 20)]), &Config::default());
        assert!((sc.node(n(1)).loss - 0.08).abs() < 1e-12);
    }

    #[test]
    fn missing_observation_is_all_clear() {
        let sc = compute(&tree(), &obs(&[(2, 0.5, 10)]), &Config::default());
        // Node 3 never reported: loss 0, so the parent sees min = 0.
        assert_eq!(sc.node(n(3)).loss, 0.0);
        assert!(!sc.node(n(1)).self_congested);
    }

    #[test]
    fn unknown_node_defaults() {
        let sc = compute(&tree(), &obs(&[]), &Config::default());
        let s = sc.node(n(99));
        assert!(!s.congested && s.loss == 0.0 && s.max_bytes == 0);
    }
}
