//! Stage 3 — finding bottleneck bandwidths.
//!
//! Two passes over each session tree:
//!
//! * **top-down**: propagate the minimum (estimated) link capacity from the
//!   source to every node — `bottleneck(node)`;
//! * **bottom-up**: the maximum bandwidth a node "can handle" is the maximum
//!   bottleneck over its children — `max_handle(node)`, which caps the
//!   subscription of a whole subtree at the best receiver's bottleneck
//!   ("TopoSense limits the maximum subscription of layers in a subtree to
//!   the maximum bandwidth between any receiver in the subtree and the
//!   source").

use netsim::{DirLinkId, NodeId};
use std::collections::HashMap;
use topology::SessionTree;

/// Stage-3 output for one session.
#[derive(Clone, Debug, Default)]
pub struct BottleneckMap {
    pub(crate) bottleneck: HashMap<NodeId, f64>,
    pub(crate) max_handle: HashMap<NodeId, f64>,
}

impl BottleneckMap {
    /// Minimum capacity on the path source -> `node` (∞ if unconstrained).
    pub fn bottleneck(&self, node: NodeId) -> f64 {
        self.bottleneck.get(&node).copied().unwrap_or(f64::INFINITY)
    }

    /// Max bottleneck over the subtree's receivers (∞ if unconstrained).
    pub fn max_handle(&self, node: NodeId) -> f64 {
        self.max_handle.get(&node).copied().unwrap_or(f64::INFINITY)
    }
}

/// Compute both passes. `capacity(link)` returns the stage-2 estimate
/// (`None` = infinite). Thin adapter over [`compute_into`] for callers
/// that index by [`NodeId`]; the algorithm driver uses the dense entry
/// point directly.
pub fn compute(tree: &SessionTree, capacity: impl Fn(DirLinkId) -> Option<f64>) -> BottleneckMap {
    let t = tree.tree();
    let mut bottleneck_v = Vec::new();
    let mut max_handle_v = Vec::new();
    compute_into(tree, capacity, &mut bottleneck_v, &mut max_handle_v);
    let bottleneck = t.slots().map(|s| (t.node_at(s), bottleneck_v[s])).collect();
    let max_handle = t.slots().map(|s| (t.node_at(s), max_handle_v[s])).collect();
    BottleneckMap { bottleneck, max_handle }
}

/// Dense stage-3 core: `bottleneck[slot]` / `max_handle[slot]` receive
/// the two passes' results per tree slot. Both vectors are cleared and
/// refilled, reusing their allocations.
pub fn compute_into(
    tree: &SessionTree,
    capacity: impl Fn(DirLinkId) -> Option<f64>,
    bottleneck: &mut Vec<f64>,
    max_handle: &mut Vec<f64>,
) {
    let t = tree.tree();
    bottleneck.clear();
    bottleneck.resize(t.len(), f64::INFINITY);
    for s in t.slots() {
        if let Some(p) = t.parent_slot_of(s) {
            let cap = capacity(tree.in_link_at(s)).unwrap_or(f64::INFINITY);
            bottleneck[s] = bottleneck[p].min(cap);
        }
    }
    max_handle.clear();
    max_handle.resize(t.len(), f64::INFINITY);
    for s in t.slots_bottom_up() {
        let cs = t.child_slots(s);
        max_handle[s] = if cs.is_empty() {
            bottleneck[s]
        } else {
            cs.map(|c| max_handle[c]).fold(f64::NEG_INFINITY, f64::max)
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{GroupId, GroupSnapshot, SessionId, SimTime};
    use topology::discovery::{LinkView, TopologyView};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn l(i: u32) -> DirLinkId {
        DirLinkId(i)
    }

    /// 0 -> 1 (link 0); 1 -> 2 (link 1); 1 -> 3 (link 2).
    fn tree() -> SessionTree {
        let view = TopologyView {
            time: SimTime::ZERO,
            links: vec![
                LinkView { id: l(0), from: n(0), to: n(1) },
                LinkView { id: l(1), from: n(1), to: n(2) },
                LinkView { id: l(2), from: n(1), to: n(3) },
            ],
            groups: vec![GroupSnapshot {
                group: GroupId(0),
                root: n(0),
                active_links: vec![l(0), l(1), l(2)],
                member_nodes: vec![n(2), n(3)],
            }],
        };
        SessionTree::build(&view, SessionId(0), &[GroupId(0)]).unwrap()
    }

    #[test]
    fn all_infinite_without_estimates() {
        let m = compute(&tree(), |_| None);
        for i in [0u32, 1, 2, 3] {
            assert_eq!(m.bottleneck(n(i)), f64::INFINITY);
            assert_eq!(m.max_handle(n(i)), f64::INFINITY);
        }
    }

    #[test]
    fn min_propagates_down() {
        // link 0 = 500k, link 1 = 100k, link 2 unconstrained.
        let m = compute(&tree(), |id| match id.0 {
            0 => Some(500_000.0),
            1 => Some(100_000.0),
            _ => None,
        });
        assert_eq!(m.bottleneck(n(0)), f64::INFINITY);
        assert_eq!(m.bottleneck(n(1)), 500_000.0);
        assert_eq!(m.bottleneck(n(2)), 100_000.0);
        assert_eq!(m.bottleneck(n(3)), 500_000.0);
    }

    #[test]
    fn max_handle_is_best_child() {
        let m = compute(&tree(), |id| match id.0 {
            0 => Some(500_000.0),
            1 => Some(100_000.0),
            _ => None,
        });
        // Leaves handle their own bottleneck.
        assert_eq!(m.max_handle(n(2)), 100_000.0);
        assert_eq!(m.max_handle(n(3)), 500_000.0);
        // Node 1 can handle the best of its children.
        assert_eq!(m.max_handle(n(1)), 500_000.0);
        assert_eq!(m.max_handle(n(0)), 500_000.0);
    }

    #[test]
    fn tighter_upstream_cap_dominates() {
        // Upstream link 0 tighter than everything below.
        let m = compute(&tree(), |id| match id.0 {
            0 => Some(50_000.0),
            1 => Some(100_000.0),
            _ => None,
        });
        assert_eq!(m.bottleneck(n(2)), 50_000.0);
        assert_eq!(m.bottleneck(n(3)), 50_000.0);
        assert_eq!(m.max_handle(n(0)), 50_000.0);
    }

    #[test]
    fn unknown_node_is_unconstrained() {
        let m = compute(&tree(), |_| None);
        assert_eq!(m.bottleneck(n(42)), f64::INFINITY);
    }
}
