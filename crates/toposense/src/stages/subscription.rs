//! Stage 5 — computing subscription levels.
//!
//! Two passes per session:
//!
//! * **demand**, bottom-up, driven by the Table I decision table. A leaf's
//!   demand starts from its current subscription; an internal node's from
//!   the aggregate (max) of its children. If a node's parent is congested
//!   the node defers — "in case of congestion in a sub-tree, action is
//!   taken by the root of that sub-tree". A node that reduces its demand
//!   sets a **backoff timer for the highest layer being dropped** so no
//!   receiver in the subtree re-subscribes it soon — this is how receiver
//!   coordination is achieved.
//! * **supply**, top-down: each node gets the minimum of its demand, its
//!   parent's supply, and the stage-3/4 bandwidth cap. Leaf supplies are
//!   the suggestions sent to receivers.

use crate::config::Config;
use crate::decision::{decide, Action, NodeKind, SupplyWindow};
use crate::history::{BwEquality, CongestionHistory};
use netsim::{NodeId, RngStream, SimTime};
use std::collections::HashMap;
use topology::SessionTree;
use traffic::LayerSpec;

/// Per-node inputs assembled by the algorithm driver.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeInputs {
    /// 3-bit congestion history with the current interval at bit 0.
    pub hist: CongestionHistory,
    /// Whether the parent is congested this interval (defer if so).
    pub parent_congested: bool,
    /// Whether any sibling subtree is congested this interval. Adding a
    /// layer while a sibling hurts is exactly the topology-blind mistake of
    /// Fig. 1 — the shared upstream link may be the cause — so exploration
    /// pauses until the neighbourhood is clean.
    pub sibling_congested: bool,
    /// BW-equality classification of the last two intervals.
    pub bw: BwEquality,
    /// Effective loss rate this interval.
    pub loss: f64,
    /// Supply allocated two runs ago (`T0–Tn`, the older window), levels.
    pub supply_older: u8,
    /// Supply allocated last run (`Tn–T2n`, the recent window), levels.
    pub supply_recent: u8,
    /// Demand computed last run.
    pub demand_prev: Option<u8>,
    /// Current subscription level (receiver-hosting nodes).
    pub current_level: Option<u8>,
    /// Bandwidth demonstrably delivered to the subtree this interval
    /// (max receiver bytes x 8 / interval). Reductions never go below the
    /// level this goodput fits: that much bandwidth evidently exists, so
    /// shedding further only under-subscribes (see DESIGN.md §5).
    pub goodput_bps: f64,
}

impl Default for NodeInputs {
    fn default() -> Self {
        NodeInputs {
            hist: CongestionHistory::new(),
            parent_congested: false,
            sibling_congested: false,
            bw: BwEquality::Equal,
            loss: 0.0,
            supply_older: 1,
            supply_recent: 1,
            demand_prev: None,
            current_level: None,
            goodput_bps: 0.0,
        }
    }
}

/// Per-session backoff timers: `(node, level) -> expiry`.
///
/// A leaf may raise its demand to `level` only if neither it nor any
/// ancestor holds an active backoff for that level.
#[derive(Clone, Debug, Default)]
pub struct BackoffTable {
    until: HashMap<(NodeId, u8), SimTime>,
    /// How often this (node, level) has been backed off; each repeat
    /// doubles the drawn duration (capped), so a layer that keeps failing
    /// gets probed more and more rarely — the same exponential persistence
    /// RLM applies to its join timers.
    failures: HashMap<(NodeId, u8), u32>,
}

/// Cap on the exponential backoff doubling (2^3 = 8x the base draw).
const MAX_BACKOFF_EXPONENT: u32 = 3;

impl BackoffTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm a timer at `node` for `level`, drawing a random base duration
    /// from `cfg` and doubling it per previous failure of the same pair.
    pub fn arm(
        &mut self,
        node: NodeId,
        level: u8,
        now: SimTime,
        cfg: &Config,
        rng: &mut RngStream,
    ) {
        let fails = self.failures.entry((node, level)).or_insert(0);
        let lo = cfg.backoff_min.nanos();
        let hi = cfg.backoff_max.nanos().max(lo + 1);
        let base = rng.range_u64(lo, hi);
        let scaled = base.saturating_mul(1 << (*fails).min(MAX_BACKOFF_EXPONENT));
        *fails += 1;
        self.set(node, level, now + netsim::SimDuration(scaled));
    }

    /// Arm a timer at `node` for `level` with an explicit expiry.
    pub fn set(&mut self, node: NodeId, level: u8, until: SimTime) {
        let e = self.until.entry((node, level)).or_insert(until);
        *e = (*e).max(until);
    }

    /// Is subscribing `level` blocked at `node` (checking ancestors too)?
    pub fn blocked(&self, tree: &SessionTree, node: NodeId, level: u8, now: SimTime) -> bool {
        if self.until.is_empty() {
            return false;
        }
        let t = tree.tree();
        let mut cur = Some(node);
        while let Some(n) = cur {
            if self.until.get(&(n, level)).is_some_and(|&u| u > now) {
                return true;
            }
            cur = t.parent(n);
        }
        false
    }

    /// Drop expired timers.
    pub fn expire(&mut self, now: SimTime) {
        self.until.retain(|_, &mut u| u > now);
    }

    /// The nodes holding at least one live timer, in `HashMap` iteration
    /// order (callers needing determinism must sort). The incremental path
    /// uses this to dirty the subtrees a timer can influence — `blocked`
    /// consults ancestors, so an entry at a node affects every descendant.
    pub fn armed_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.until.keys().map(|&(node, _)| node)
    }

    /// Flatten the table to `(node, level, expiry, failures)` sorted by
    /// `(node, level)` — the checkpoint-stable rendering. Failure counts
    /// without a live timer are kept: they scale future backoff draws.
    pub(crate) fn snapshot(&self) -> Vec<(NodeId, u8, Option<SimTime>, u32)> {
        let mut keys: Vec<(NodeId, u8)> =
            self.until.keys().chain(self.failures.keys()).copied().collect();
        keys.sort();
        keys.dedup();
        keys.into_iter()
            .map(|k| {
                (k.0, k.1, self.until.get(&k).copied(), self.failures.get(&k).copied().unwrap_or(0))
            })
            .collect()
    }

    /// Rebuild a table from a [`Self::snapshot`] rendering.
    pub(crate) fn restore(entries: &[(NodeId, u8, Option<SimTime>, u32)]) -> Self {
        let mut t = Self::new();
        for &(node, level, until, fails) in entries {
            if let Some(u) = until {
                t.until.insert((node, level), u);
            }
            if fails > 0 {
                t.failures.insert((node, level), fails);
            }
        }
        t
    }

    /// Number of live timers (diagnostics).
    pub fn len(&self) -> usize {
        self.until.len()
    }

    /// True when no timers are armed.
    pub fn is_empty(&self) -> bool {
        self.until.is_empty()
    }
}

/// Stage-5 output.
#[derive(Clone, Debug, Default)]
pub struct SubscriptionResult {
    /// Demand per node (levels).
    pub demand: HashMap<NodeId, u8>,
    /// Supply per node (levels); leaf entries are the suggestions.
    pub supply: HashMap<NodeId, u8>,
}

/// Everything stage 5 needs for one session.
pub struct DemandContext<'a> {
    pub tree: &'a SessionTree,
    pub spec: &'a LayerSpec,
    pub cfg: &'a Config,
    pub now: SimTime,
    pub inputs: &'a HashMap<NodeId, NodeInputs>,
    /// Bandwidth cap per node from stages 3+4, already in level units.
    pub level_cap: &'a dyn Fn(NodeId) -> u8,
}

/// Run both passes. `backoffs` is the session's persistent backoff table;
/// `rng` draws the random backoff durations. Thin adapter over
/// [`compute_into`] for callers that index by [`NodeId`]; the algorithm
/// driver uses the dense entry point directly.
pub fn compute(
    ctx: &DemandContext<'_>,
    backoffs: &mut BackoffTable,
    rng: &mut RngStream,
) -> SubscriptionResult {
    let t = ctx.tree.tree();
    let mut inputs = Vec::with_capacity(t.len());
    let mut level_cap = Vec::with_capacity(t.len());
    for s in t.slots() {
        let node = t.node_at(s);
        inputs.push(ctx.inputs.get(&node).copied().unwrap_or_default());
        level_cap.push((ctx.level_cap)(node));
    }
    let mut demand_v = Vec::new();
    let mut supply_v = Vec::new();
    compute_into(
        ctx.tree,
        ctx.spec,
        ctx.cfg,
        ctx.now,
        &inputs,
        &level_cap,
        backoffs,
        rng,
        &mut demand_v,
        &mut supply_v,
    );
    let demand = t.slots().map(|s| (t.node_at(s), demand_v[s])).collect();
    let supply = t.slots().map(|s| (t.node_at(s), supply_v[s])).collect();
    SubscriptionResult { demand, supply }
}

/// Dense stage-5 core: `inputs[slot]` / `level_cap[slot]` describe the
/// node at each tree slot; `demand[slot]` / `supply[slot]` receive the
/// two passes' results (cleared and refilled, reusing allocations).
///
/// Backoff timers stay keyed by [`NodeId`] because they outlive any one
/// tree shape; the bottom-up slot order equals the reverse-BFS node order,
/// so the RNG draw sequence matches the [`NodeId`]-indexed adapter.
#[allow(clippy::too_many_arguments)]
pub fn compute_into(
    tree: &SessionTree,
    spec: &LayerSpec,
    cfg: &Config,
    now: SimTime,
    inputs: &[NodeInputs],
    level_cap: &[u8],
    backoffs: &mut BackoffTable,
    rng: &mut RngStream,
    demand: &mut Vec<u8>,
    supply: &mut Vec<u8>,
) {
    compute_into_traced(
        tree, spec, cfg, now, inputs, level_cap, backoffs, rng, demand, supply, None,
    );
}

/// [`compute_into`] plus an optional per-slot audit of which Table I
/// branch each decision took (`branches[slot]` receives a label like
/// `"leaf.add"` or `"internal.reduce_half"`). The trace is write-only —
/// passing `Some` vs `None` cannot change demand/supply or the RNG draw
/// sequence, which is what keeps telemetry a pure observer.
#[allow(clippy::too_many_arguments)]
pub fn compute_into_traced(
    tree: &SessionTree,
    spec: &LayerSpec,
    cfg: &Config,
    now: SimTime,
    inputs: &[NodeInputs],
    level_cap: &[u8],
    backoffs: &mut BackoffTable,
    rng: &mut RngStream,
    demand: &mut Vec<u8>,
    supply: &mut Vec<u8>,
    mut branches: Option<&mut Vec<&'static str>>,
) {
    let t = tree.tree();
    debug_assert_eq!(inputs.len(), t.len());
    debug_assert_eq!(level_cap.len(), t.len());
    demand.clear();
    demand.resize(t.len(), 1);
    if let Some(b) = branches.as_deref_mut() {
        b.clear();
        b.resize(t.len(), "");
    }

    backoffs.expire(now);

    // Demand, bottom-up.
    for s in t.slots_bottom_up() {
        let (d, branch) =
            decide_slot(tree, spec, cfg, now, s, &inputs[s], level_cap[s], demand, backoffs, rng);
        if let Some(b) = branches.as_deref_mut() {
            b[s] = branch;
        }
        demand[s] = d;
    }

    // Supply, top-down.
    supply.clear();
    supply.resize(t.len(), 1);
    for s in t.slots() {
        let v = match t.parent_slot_of(s) {
            None => demand[s].min(level_cap[s]),
            Some(p) => demand[s].min(supply[p]).min(level_cap[s]),
        };
        // The paper assumes every session keeps at least its base layer.
        supply[s] = v.max(1);
    }
}

/// The per-slot Table I decision kernel of [`compute_into_traced`]: one
/// slot's demand (already clamped to the base layer) and branch label,
/// given its children's (already computed) entries in `demand`. Exposed to
/// the crate so the incremental path runs the exact same decision code —
/// including the same backoff arming and RNG draws — as the full pass.
#[allow(clippy::too_many_arguments)]
pub(crate) fn decide_slot(
    tree: &SessionTree,
    spec: &LayerSpec,
    cfg: &Config,
    now: SimTime,
    s: usize,
    inp: &NodeInputs,
    cap: u8,
    demand: &[u8],
    backoffs: &mut BackoffTable,
    rng: &mut RngStream,
) -> (u8, &'static str) {
    let t = tree.tree();
    let inp = *inp;
    let cs = t.child_slots(s);
    let branch;
    let d = if cs.is_empty() {
        let cur = inp.current_level.unwrap_or(1).max(1);
        if inp.parent_congested {
            // Defer: the congested ancestor acts for the subtree.
            branch = "leaf.defer";
            cur
        } else {
            let node = t.node_at(s);
            let floor = spec.level_fitting(inp.goodput_bps);
            match decide(NodeKind::Leaf, inp.hist, inp.bw) {
                Action::AddLayer => {
                    // Explore only after the current level has been held
                    // for two runs: loss feedback lags a join by about
                    // one interval, and climbing every interval would
                    // overshoot bottlenecks by several layers before the
                    // first loss report lands.
                    let settled = inp.supply_recent == cur && inp.supply_older == cur;
                    let target = (cur + 1).min(spec.max_level());
                    // Climbing toward a *freshly estimated fair share*
                    // is not an experiment — the bandwidth is known to
                    // exist — so neither the settling gate nor a backoff
                    // from an earlier over-subscription applies. This is
                    // what makes freed capacity get "fairly and fully
                    // utilized" quickly after a crash.
                    let known_safe = cap < spec.max_level() && target <= cap;
                    if target > cur
                        && !inp.sibling_congested
                        && (known_safe || (settled && !backoffs.blocked(tree, node, target, now)))
                    {
                        branch = "leaf.add";
                        target
                    } else {
                        branch = "leaf.add.hold";
                        cur
                    }
                }
                Action::DropIfLossHigh => {
                    if inp.loss > cfg.high_loss && cur > 1 {
                        let d = reduce_target(cur - 1, floor, cap, cur);
                        if d < cur {
                            backoffs.arm(node, cur, now, cfg, rng);
                        }
                        branch = "leaf.drop_loss";
                        d
                    } else {
                        branch = "leaf.drop_loss.hold";
                        cur
                    }
                }
                Action::Maintain => {
                    branch = "leaf.maintain";
                    cur
                }
                Action::ReduceToSupply(w) => {
                    branch = "leaf.reduce_supply";
                    reduce_target(supply_of(&inp, w), floor, cap, cur)
                }
                Action::ReduceToHalfSupply { window, backoff } => {
                    let tgt = half_supply_level(spec, &inp, window);
                    let d = reduce_target(tgt, floor, cap, cur);
                    if backoff && cur > d {
                        backoffs.arm(node, cur, now, cfg, rng);
                    }
                    branch = "leaf.reduce_half";
                    d
                }
                Action::ReduceToHalfSupplyIfLossVeryHigh(w) => {
                    if inp.loss > cfg.very_high_loss {
                        let tgt = half_supply_level(spec, &inp, w);
                        branch = "leaf.reduce_half_vhl";
                        reduce_target(tgt, floor, cap, cur)
                    } else {
                        branch = "leaf.reduce_half_vhl.hold";
                        cur
                    }
                }
                Action::AcceptChildren => unreachable!("leaf cannot accept children"),
            }
        }
    } else {
        let childmax = cs.map(|c| demand[c]).max().unwrap_or(1);
        if inp.parent_congested {
            branch = "internal.defer";
            childmax
        } else {
            let floor = spec.level_fitting(inp.goodput_bps);
            match decide(NodeKind::Internal, inp.hist, inp.bw) {
                Action::AcceptChildren => {
                    branch = "internal.accept";
                    childmax
                }
                Action::Maintain => {
                    branch = "internal.maintain";
                    childmax.min(inp.demand_prev.unwrap_or(childmax))
                }
                Action::ReduceToHalfSupply { window, backoff } => {
                    let tgt = half_supply_level(spec, &inp, window);
                    let d = reduce_target(tgt, floor, cap, childmax);
                    if backoff && childmax > d {
                        backoffs.arm(t.node_at(s), childmax, now, cfg, rng);
                    }
                    branch = "internal.reduce_half";
                    d
                }
                other => unreachable!("internal rows never yield {other:?}"),
            }
        }
    };
    (d.max(1), branch)
}

/// Clamp a table-prescribed reduction `target` (from `basis`, the current
/// level or child max):
///
/// * never below the **goodput floor** — the level whose cumulative rate
///   the subtree demonstrably received this interval;
/// * snapped up to the fair-share **cap** when the cap is what explains the
///   congestion (we are above it): reducing below the freshly estimated
///   fair share only under-subscribes and re-probes later;
/// * never above `basis` (this is a reduction) and never below base.
pub(crate) fn reduce_target(target: u8, floor: u8, cap: u8, basis: u8) -> u8 {
    let mut t = target.max(floor);
    if cap < basis {
        t = t.max(cap);
    }
    t.min(basis).max(1)
}

pub(crate) fn supply_of(inp: &NodeInputs, w: SupplyWindow) -> u8 {
    match w {
        SupplyWindow::Older => inp.supply_older,
        SupplyWindow::Recent => inp.supply_recent,
    }
}

/// The level whose cumulative rate fits half the window's supplied
/// bandwidth (never below the base layer).
pub(crate) fn half_supply_level(spec: &LayerSpec, inp: &NodeInputs, w: SupplyWindow) -> u8 {
    let bw = spec.cumulative_rate(supply_of(inp, w)) / 2.0;
    spec.level_fitting(bw).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{DirLinkId, GroupId, GroupSnapshot, SessionId, SimTime};
    use topology::discovery::{LinkView, TopologyView};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// Tree 0 -> 1 -> {2, 3}; receivers at 2 and 3.
    fn tree() -> SessionTree {
        let view = TopologyView {
            time: SimTime::ZERO,
            links: vec![
                LinkView { id: DirLinkId(0), from: n(0), to: n(1) },
                LinkView { id: DirLinkId(1), from: n(1), to: n(2) },
                LinkView { id: DirLinkId(2), from: n(1), to: n(3) },
            ],
            groups: vec![GroupSnapshot {
                group: GroupId(0),
                root: n(0),
                active_links: vec![DirLinkId(0), DirLinkId(1), DirLinkId(2)],
                member_nodes: vec![n(2), n(3)],
            }],
        };
        SessionTree::build(&view, SessionId(0), &[GroupId(0)]).unwrap()
    }

    fn run(
        inputs: HashMap<NodeId, NodeInputs>,
        cap: impl Fn(NodeId) -> u8 + 'static,
        backoffs: &mut BackoffTable,
        now: SimTime,
    ) -> SubscriptionResult {
        let tree = tree();
        let spec = LayerSpec::paper_default();
        let cfg = Config::default();
        let cap: Box<dyn Fn(NodeId) -> u8> = Box::new(cap);
        let ctx = DemandContext {
            tree: &tree,
            spec: &spec,
            cfg: &cfg,
            now,
            inputs: &inputs,
            level_cap: &cap,
        };
        let mut rng = RngStream::derive(1, "stage5-test");
        compute(&ctx, backoffs, &mut rng)
    }

    fn leaf_inp(level: u8, hist: u8, bw: BwEquality, loss: f64) -> NodeInputs {
        NodeInputs {
            hist: CongestionHistory::from_bits(hist),
            bw,
            loss,
            current_level: Some(level),
            supply_older: level,
            supply_recent: level,
            ..NodeInputs::default()
        }
    }

    #[test]
    fn uncongested_leaves_explore_one_layer() {
        let inputs = HashMap::from([
            (n(2), leaf_inp(2, 0, BwEquality::Equal, 0.0)),
            (n(3), leaf_inp(3, 0, BwEquality::Equal, 0.0)),
        ]);
        let r = run(inputs, |_| 6, &mut BackoffTable::new(), SimTime::from_secs(10));
        assert_eq!(r.supply[&n(2)], 3);
        assert_eq!(r.supply[&n(3)], 4);
        // Internal demand aggregates the max.
        assert_eq!(r.demand[&n(1)], 4);
    }

    #[test]
    fn cap_clamps_supply_but_not_demand() {
        let inputs = HashMap::from([
            (n(2), leaf_inp(3, 0, BwEquality::Equal, 0.0)),
            (n(3), leaf_inp(3, 0, BwEquality::Equal, 0.0)),
        ]);
        let r = run(inputs, |_| 2, &mut BackoffTable::new(), SimTime::from_secs(10));
        assert_eq!(r.demand[&n(2)], 4, "demand may explore past the cap");
        assert_eq!(r.supply[&n(2)], 2, "supply respects the cap");
        assert_eq!(r.supply[&n(3)], 2);
    }

    #[test]
    fn lossy_leaf_drops_and_backs_off() {
        let mut backoffs = BackoffTable::new();
        // hist=1 (congested now), BW grew -> Lesser -> drop if loss high.
        let inputs = HashMap::from([
            (n(2), leaf_inp(3, 1, BwEquality::Lesser, 0.4)),
            (n(3), leaf_inp(1, 0, BwEquality::Equal, 0.0)),
        ]);
        let now = SimTime::from_secs(10);
        let r = run(inputs, |_| 6, &mut backoffs, now);
        assert_eq!(r.supply[&n(2)], 2);
        // Level 3 is now backed off at node 2.
        assert!(backoffs.blocked(&tree(), n(2), 3, now + netsim::SimDuration::from_secs(1)));
        // Far in the future the timer has expired.
        assert!(!backoffs.blocked(&tree(), n(2), 3, now + netsim::SimDuration::from_secs(100)));
    }

    #[test]
    fn low_loss_does_not_trigger_the_drop_rule() {
        let inputs = HashMap::from([(n(2), leaf_inp(3, 1, BwEquality::Lesser, 0.05))]);
        let r = run(inputs, |_| 6, &mut BackoffTable::new(), SimTime::from_secs(10));
        assert_eq!(r.demand[&n(2)], 3, "loss below high_loss maintains");
    }

    #[test]
    fn backoff_blocks_exploration_including_ancestors() {
        let mut backoffs = BackoffTable::new();
        let now = SimTime::from_secs(10);
        // Backoff armed at the *internal* node 1 for level 3.
        backoffs.set(n(1), 3, now + netsim::SimDuration::from_secs(30));
        let inputs = HashMap::from([(n(2), leaf_inp(2, 0, BwEquality::Equal, 0.0))]);
        let r = run(inputs, |_| 6, &mut backoffs, now);
        assert_eq!(r.demand[&n(2)], 2, "add blocked by ancestor backoff");
    }

    #[test]
    fn persistent_congestion_halves_supply() {
        // hist=7, Equal at a leaf whose parent is NOT congested:
        // reduce to half the older supply. Older supply = 4 (480 kb/s);
        // half = 240 kb/s -> level 3 (224k).
        let mut inp = leaf_inp(4, 7, BwEquality::Equal, 0.2);
        inp.supply_older = 4;
        let inputs = HashMap::from([(n(2), inp)]);
        let r = run(inputs, |_| 6, &mut BackoffTable::new(), SimTime::from_secs(10));
        assert_eq!(r.demand[&n(2)], 3);
    }

    #[test]
    fn children_defer_to_congested_parent() {
        // Parent (node 1) congested: leaves maintain; node 1 acts.
        let mut l2 = leaf_inp(3, 1, BwEquality::Lesser, 0.4);
        l2.parent_congested = true;
        let mut l3 = leaf_inp(3, 1, BwEquality::Lesser, 0.4);
        l3.parent_congested = true;
        let n1 = NodeInputs {
            hist: CongestionHistory::from_bits(1),
            bw: BwEquality::Lesser,
            supply_older: 3,
            supply_recent: 3,
            ..NodeInputs::default()
        };
        let inputs = HashMap::from([(n(2), l2), (n(3), l3), (n(1), n1)]);
        let mut backoffs = BackoffTable::new();
        let now = SimTime::from_secs(10);
        let r = run(inputs, |_| 6, &mut backoffs, now);
        // Leaves kept demand 3 (deferred)...
        assert_eq!(r.demand[&n(2)], 3);
        assert_eq!(r.demand[&n(3)], 3);
        // ...but node 1 reduced to half its older supply:
        // cum(3) = 224k, half = 112k -> level 2.
        assert_eq!(r.demand[&n(1)], 2);
        assert_eq!(r.supply[&n(2)], 2);
        assert_eq!(r.supply[&n(3)], 2);
        // The highest dropped layer (3) is backed off at the subtree root.
        assert!(backoffs.blocked(&tree(), n(2), 3, now + netsim::SimDuration::from_secs(1)));
    }

    #[test]
    fn supply_never_below_base() {
        let mut inp = leaf_inp(1, 7, BwEquality::Equal, 0.9);
        inp.supply_older = 1;
        let inputs = HashMap::from([(n(2), inp)]);
        let r = run(inputs, |_| 0, &mut BackoffTable::new(), SimTime::from_secs(10));
        assert_eq!(r.supply[&n(2)], 1);
    }

    #[test]
    fn internal_maintain_uses_previous_demand() {
        // Node 1 hist=3 (congested, already reduced last run): maintain the
        // reduced demand even though children ask for more.
        let l2 = leaf_inp(4, 0, BwEquality::Equal, 0.0);
        let n1 = NodeInputs {
            hist: CongestionHistory::from_bits(3),
            bw: BwEquality::Equal,
            demand_prev: Some(2),
            ..NodeInputs::default()
        };
        let inputs = HashMap::from([(n(2), l2), (n(1), n1)]);
        let r = run(inputs, |_| 6, &mut BackoffTable::new(), SimTime::from_secs(10));
        assert_eq!(r.demand[&n(1)], 2);
        assert_eq!(r.supply[&n(2)], 2);
    }

    #[test]
    fn very_high_loss_rule_on_greater() {
        // hist=3, Greater: only reduces when loss is very high.
        let mild = HashMap::from([(n(2), leaf_inp(4, 3, BwEquality::Greater, 0.2))]);
        let r = run(mild, |_| 6, &mut BackoffTable::new(), SimTime::from_secs(10));
        assert_eq!(r.demand[&n(2)], 4, "20% loss is not 'very high'");
        let severe = HashMap::from([(n(2), leaf_inp(4, 3, BwEquality::Greater, 0.5))]);
        let r = run(severe, |_| 6, &mut BackoffTable::new(), SimTime::from_secs(10));
        // half of cum(4)=480k -> 240k -> level 3.
        assert_eq!(r.demand[&n(2)], 3);
    }

    #[test]
    fn backoff_table_expire_and_len() {
        let mut b = BackoffTable::new();
        b.set(n(1), 2, SimTime::from_secs(5));
        b.set(n(1), 3, SimTime::from_secs(50));
        assert_eq!(b.len(), 2);
        b.expire(SimTime::from_secs(10));
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }

    #[test]
    fn arm_scales_exponentially_per_failure() {
        let mut b = BackoffTable::new();
        let cfg = Config::default();
        let mut rng = RngStream::derive(1, "arm-test");
        let now = SimTime::from_secs(100);
        // Repeated failures of the same (node, level) must stay blocked for
        // geometrically longer horizons (capped at 8x the max base draw).
        let base_max = cfg.backoff_max.as_secs_f64();
        let mut prev_horizon = 0.0;
        for k in 0..4 {
            let mut fresh = b.clone();
            fresh.arm(n(3), 4, now, &cfg, &mut rng);
            // Find the expiry by probing.
            let mut horizon = 0.0;
            for secs in 1..(base_max as u64 * 16) {
                let t = now + netsim::SimDuration::from_secs(secs);
                if !fresh.blocked(&tree(), n(3), 4, t) {
                    horizon = secs as f64;
                    break;
                }
            }
            assert!(horizon > 0.0, "failure {k}: timer never expired in probe range");
            assert!(
                horizon >= prev_horizon * 0.9,
                "failure {k}: horizon {horizon} shrank from {prev_horizon}"
            );
            // Within the cap.
            assert!(horizon <= base_max * 8.0 + 1.0, "failure {k}: {horizon}");
            prev_horizon = horizon;
            // Arm for real to bump the failure counter.
            b.arm(n(3), 4, now, &cfg, &mut rng);
        }
        // After 4 failures the scale factor is at the 8x cap.
        let mut capped = b.clone();
        capped.arm(n(3), 4, now, &cfg, &mut rng);
        let far = now + netsim::SimDuration::from_secs((base_max * 8.0) as u64 + 2);
        assert!(!capped.blocked(&tree(), n(3), 4, far), "must respect the 8x cap");
    }

    #[test]
    fn arm_counters_are_per_node_and_level() {
        let mut b = BackoffTable::new();
        let cfg = Config::default();
        let mut rng = RngStream::derive(2, "arm-iso");
        let now = SimTime::from_secs(10);
        for _ in 0..4 {
            b.arm(n(3), 4, now, &cfg, &mut rng);
        }
        // A different level at the same node still gets a base-range draw.
        b.arm(n(3), 2, now, &cfg, &mut rng);
        let past_base =
            now + netsim::SimDuration::from_secs(cfg.backoff_max.as_secs_f64() as u64 + 1);
        assert!(!b.blocked(&tree(), n(3), 2, past_base), "level 2 not scaled");
    }

    #[test]
    fn backoff_set_keeps_latest_expiry() {
        let mut b = BackoffTable::new();
        b.set(n(1), 2, SimTime::from_secs(50));
        b.set(n(1), 2, SimTime::from_secs(5));
        assert!(b.blocked(&tree(), n(1), 2, SimTime::from_secs(30)));
    }

    /// The branch trace is a pure observer: traced and untraced runs make
    /// identical decisions and draw the same randomness, and the trace
    /// labels every slot with the Table I branch that fired.
    #[test]
    fn traced_run_labels_branches_without_changing_decisions() {
        let tree = tree();
        let t = tree.tree();
        let spec = LayerSpec::paper_default();
        let cfg = Config::default();
        let now = SimTime::from_secs(10);
        let by_node = HashMap::from([
            // Congested leaf with a loss spike: must halve (Table I row 4).
            (n(2), leaf_inp(4, 0b111, BwEquality::Equal, 0.3)),
            // Clean leaf: must explore one layer up.
            (n(3), leaf_inp(3, 0, BwEquality::Equal, 0.0)),
        ]);
        let inputs: Vec<NodeInputs> =
            t.slots().map(|s| by_node.get(&t.node_at(s)).copied().unwrap_or_default()).collect();
        let level_cap = vec![6u8; t.len()];

        let go = |branches: Option<&mut Vec<&'static str>>| {
            let mut backoffs = BackoffTable::new();
            let mut rng = RngStream::derive(7, "stage5-trace-test");
            let (mut demand, mut supply) = (Vec::new(), Vec::new());
            compute_into_traced(
                &tree,
                &spec,
                &cfg,
                now,
                &inputs,
                &level_cap,
                &mut backoffs,
                &mut rng,
                &mut demand,
                &mut supply,
                branches,
            );
            // Drain the RNG once more: any extra draw in the traced run
            // would desynchronize this value.
            (demand, supply, rng.range_u64(0, u64::MAX))
        };
        let untraced = go(None);
        let mut branches = Vec::new();
        let traced = go(Some(&mut branches));
        assert_eq!(untraced, traced, "tracing must not alter decisions or RNG draws");

        assert_eq!(branches.len(), t.len());
        assert!(branches.iter().all(|b| !b.is_empty()), "every slot labelled: {branches:?}");
        let label_of =
            |node: NodeId| t.slots().find(|&s| t.node_at(s) == node).map(|s| branches[s]).unwrap();
        assert_eq!(label_of(n(3)), "leaf.add");
        assert!(
            label_of(n(2)).starts_with("leaf.reduce_half"),
            "lossy congested leaf halves, got {}",
            label_of(n(2))
        );
        assert!(label_of(n(1)).starts_with("internal."));
    }
}
