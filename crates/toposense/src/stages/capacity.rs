//! Stage 2 — estimating link capacities.
//!
//! The controller has no access to network internals beyond topology, so
//! link capacities start at **infinity** and are learned from loss:
//!
//! 1. the overall loss at the link's head node exceeds a threshold, *and*
//! 2. **every** session sharing the link sees loss above the threshold
//!    (one lossy session alone may just have a congested node further
//!    downstream — per-session loss at an internal node is only the minimum
//!    over its subtree),
//!
//! then the capacity is taken to be the bits observed crossing the link in
//! the interval. A set estimate creeps upward a little every interval
//! (reported bytes can under-count packets still in flight) and is reset to
//! infinity periodically so transient flows and downstream bottlenecks
//! cannot poison it forever.

use crate::config::Config;
use netsim::{DirLinkId, SessionId, SimDuration, SimTime};
use std::collections::HashMap;

/// One audit event from the estimator: what happened to `link`'s
/// estimate this interval. The `f64` is the estimate after the event
/// (for `"reset"`, the value that was discarded); the label is one of
/// `"learned"`, `"recomputed"`, `"crept"`, `"held"`, `"reset"`.
pub type CapacityEvent = (DirLinkId, f64, &'static str);

/// One session's view of one shared link for the current interval.
#[derive(Clone, Copy, Debug)]
pub struct SessionLinkObs {
    pub session: SessionId,
    /// The session's loss at the link's head node (min over subtree).
    pub loss: f64,
    /// Max bytes received by any of the session's receivers below the link
    /// this interval — the best available proxy for bytes that crossed it.
    pub bytes: u64,
}

#[derive(Clone, Copy, Debug)]
struct Estimate {
    capacity_bps: f64,
    set_at: SimTime,
}

/// The persistent link-capacity estimator.
#[derive(Debug, Default)]
pub struct CapacityEstimator {
    estimates: HashMap<DirLinkId, Estimate>,
    /// Reusable buffer for one link's observation run in
    /// [`Self::update_sorted`].
    run_scratch: Vec<SessionLinkObs>,
}

impl CapacityEstimator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current estimate for `link`; `None` means "assumed infinite".
    pub fn capacity(&self, link: DirLinkId) -> Option<f64> {
        self.estimates.get(&link).map(|e| e.capacity_bps)
    }

    /// Number of links with a finite estimate.
    pub fn estimated_links(&self) -> usize {
        self.estimates.len()
    }

    /// Iterate `(link, capacity_bps)` over every finite estimate, in
    /// `HashMap` order (callers needing determinism must sort). The set of
    /// estimated links is typically tiny next to the tree, which is what
    /// makes this the cheap way to enumerate them on the incremental path.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (DirLinkId, f64)> + '_ {
        self.estimates.iter().map(|(&l, e)| (l, e.capacity_bps))
    }

    /// Whether any estimate has aged past the periodic reset horizon, i.e.
    /// the next [`Self::begin_interval`] would discard something. The
    /// incremental path checks this up front and falls back to the full
    /// run when a reset is due — resets rewrite capacity state that
    /// incremental change tracking deliberately does not model.
    pub(crate) fn has_pending_reset(&self, now: SimTime, cfg: &Config) -> bool {
        self.estimates.values().any(|e| now.since(e.set_at) >= cfg.capacity_reset)
    }

    /// Flatten every finite estimate to `(link, capacity bits, set_at)`
    /// sorted by link — the checkpoint-stable rendering of the estimator.
    /// Capacities travel as raw `f64` bits so restore is exact.
    pub(crate) fn snapshot(&self) -> Vec<(DirLinkId, u64, SimTime)> {
        let mut out: Vec<_> =
            self.estimates.iter().map(|(&l, e)| (l, e.capacity_bps.to_bits(), e.set_at)).collect();
        out.sort_by_key(|&(l, ..)| l);
        out
    }

    /// Rebuild the estimator from a [`Self::snapshot`] rendering.
    pub(crate) fn restore(entries: &[(DirLinkId, u64, SimTime)]) -> Self {
        let mut est = Self::new();
        for &(link, bits, set_at) in entries {
            est.estimates.insert(link, Estimate { capacity_bps: f64::from_bits(bits), set_at });
        }
        est
    }

    /// Update a single link from this interval's observations, exactly as
    /// [`Self::update_sorted_traced`] would when reaching `link`'s run —
    /// minus the reset pass, which the incremental caller has already
    /// proven to be a no-op via [`Self::has_pending_reset`].
    pub(crate) fn update_link_traced(
        &mut self,
        now: SimTime,
        interval: SimDuration,
        link: DirLinkId,
        sessions: &[SessionLinkObs],
        cfg: &Config,
        events: Option<&mut Vec<CapacityEvent>>,
    ) {
        self.update_link(now, interval.as_secs_f64(), link, sessions, cfg, events);
    }

    /// Run one interval's update over every link seen in the session trees.
    ///
    /// `usage` maps each directed link to the per-session observations of
    /// the sessions crossing it this interval.
    pub fn update(
        &mut self,
        now: SimTime,
        interval: SimDuration,
        usage: &HashMap<DirLinkId, Vec<SessionLinkObs>>,
        cfg: &Config,
    ) {
        self.begin_interval(now, cfg, None);
        let secs = interval.as_secs_f64();
        for (&link, sessions) in usage {
            self.update_link(now, secs, link, sessions, cfg, None);
        }
    }

    /// Like [`Self::update`], but over a link-sorted flat slice (the
    /// algorithm driver's reusable scratch buffer): consecutive entries
    /// with the same link form that link's observation list. The slice
    /// must be sorted by link with a stable sort so per-link session order
    /// is preserved.
    pub fn update_sorted(
        &mut self,
        now: SimTime,
        interval: SimDuration,
        sorted: &[(DirLinkId, SessionLinkObs)],
        cfg: &Config,
    ) {
        self.update_sorted_traced(now, interval, sorted, cfg, None);
    }

    /// [`Self::update_sorted`] plus an optional audit of what happened to
    /// each estimate (see [`CapacityEvent`]). The event log is write-only:
    /// passing `Some` vs `None` cannot change any estimate. Events from
    /// the periodic reset pass come from `HashMap` iteration, so callers
    /// that need determinism must sort the collected events by link.
    pub fn update_sorted_traced(
        &mut self,
        now: SimTime,
        interval: SimDuration,
        sorted: &[(DirLinkId, SessionLinkObs)],
        cfg: &Config,
        mut events: Option<&mut Vec<CapacityEvent>>,
    ) {
        debug_assert!(sorted.windows(2).all(|w| w[0].0 <= w[1].0), "input must be link-sorted");
        self.begin_interval(now, cfg, events.as_deref_mut());
        let secs = interval.as_secs_f64();
        let mut start = 0;
        while start < sorted.len() {
            let link = sorted[start].0;
            let end = start + sorted[start..].iter().take_while(|&&(l, _)| l == link).count();
            self.run_scratch.clear();
            self.run_scratch.extend(sorted[start..end].iter().map(|&(_, o)| o));
            let run = std::mem::take(&mut self.run_scratch);
            self.update_link(now, secs, link, &run, cfg, events.as_deref_mut());
            self.run_scratch = run;
            start = end;
        }
    }

    /// Periodic reset: stale estimates return to infinity and must be
    /// re-earned ("the capacity is reset to infinity at periodic
    /// intervals and recomputed").
    fn begin_interval(
        &mut self,
        now: SimTime,
        cfg: &Config,
        mut events: Option<&mut Vec<CapacityEvent>>,
    ) {
        self.estimates.retain(|&link, e| {
            let keep = now.since(e.set_at) < cfg.capacity_reset;
            if !keep {
                if let Some(ev) = events.as_deref_mut() {
                    ev.push((link, e.capacity_bps, "reset"));
                }
            }
            keep
        });
    }

    fn update_link(
        &mut self,
        now: SimTime,
        secs: f64,
        link: DirLinkId,
        sessions: &[SessionLinkObs],
        cfg: &Config,
        mut events: Option<&mut Vec<CapacityEvent>>,
    ) {
        let mut audit = move |bps: f64, what: &'static str| {
            if let Some(ev) = events.as_deref_mut() {
                ev.push((link, bps, what));
            }
        };
        if sessions.is_empty() {
            return;
        }
        // Dead air: an interval in which nothing crossed the link (an
        // outage, or every receiver below it quarantined) says nothing
        // about its capacity. It must not divide the byte-weighted loss
        // by zero, and it must not count as a "clean interval" for the
        // upward creep — creeping on silence would inflate the estimate
        // without a single packet to justify it. Hold any estimate as-is
        // (the reset clock still runs in `begin_interval`).
        let total_bytes: u64 = sessions.iter().map(|s| s.bytes).sum();
        if total_bytes == 0 {
            if let Some(e) = self.estimates.get(&link) {
                audit(e.capacity_bps, "held");
            }
            return;
        }
        // Fig. 4: "Estimate link bandwidths for all *shared* links."
        // An estimate exists to split capacity between sessions; a
        // single-session link is governed by the congestion states and
        // the decision table instead, and estimating it would mistake
        // one session's transient goodput for the link's capacity.
        if sessions.len() < 2 {
            // A leftover estimate (the link was shared until recently)
            // may only creep upward on a *clean* interval: creeping
            // while the remaining session is losing packets inflates a
            // stale estimate the loss itself says is already too high.
            let clean = sessions.iter().all(|s| s.loss <= cfg.capacity_loss_threshold);
            if let Some(e) = self.estimates.get_mut(&link) {
                if clean {
                    e.capacity_bps *= 1.0 + cfg.capacity_creep;
                    audit(e.capacity_bps, "crept");
                } else {
                    audit(e.capacity_bps, "held");
                }
            }
            return;
        }
        // Byte-weighted loss across sessions (dead air returned above,
        // so `total_bytes > 0` here).
        let overall_loss =
            sessions.iter().map(|s| s.loss * s.bytes as f64).sum::<f64>() / total_bytes as f64;
        // The paper's condition 2 asks for *all* sessions to be lossy.
        // With many sessions a single momentarily-clean low-rate session
        // would forever block the estimate, so we use a quorum: most
        // sessions (by count), carrying most of the bytes, must see loss
        // above a (lower) per-session bar. Documented in DESIGN.md §5.
        let per_session_bar = cfg.capacity_loss_threshold / 3.0;
        let lossy: Vec<&SessionLinkObs> =
            sessions.iter().filter(|s| s.loss > per_session_bar).collect();
        let lossy_count_frac = lossy.len() as f64 / sessions.len() as f64;
        let lossy_bytes: u64 = lossy.iter().map(|s| s.bytes).sum();
        let lossy_bytes_frac = lossy_bytes as f64 / total_bytes as f64;
        let congested = overall_loss > cfg.capacity_loss_threshold
            && lossy_count_frac >= 0.75
            && lossy_bytes_frac >= 0.9;

        let observed_bps = total_bytes as f64 * 8.0 / secs.max(1e-9);
        match self.estimates.get_mut(&link) {
            Some(e) if congested => {
                // Congested again: recompute from what actually got
                // through this interval. This lets a creep-inflated
                // estimate correct itself downward in one interval
                // instead of waiting for the periodic reset, and counts
                // as a fresh computation for the reset clock.
                e.capacity_bps = observed_bps;
                e.set_at = now;
                audit(observed_bps, "recomputed");
            }
            Some(e) => {
                // Clean interval: creep upward ("the estimate is
                // increased every interval by a small amount").
                e.capacity_bps *= 1.0 + cfg.capacity_creep;
                audit(e.capacity_bps, "crept");
            }
            None if congested && secs > 0.0 => {
                self.estimates.insert(link, Estimate { capacity_bps: observed_bps, set_at: now });
                audit(observed_bps, "learned");
            }
            None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> DirLinkId {
        DirLinkId(i)
    }

    fn obs(session: u32, loss: f64, bytes: u64) -> SessionLinkObs {
        SessionLinkObs { session: SessionId(session), loss, bytes }
    }

    fn cfg() -> Config {
        Config::default()
    }

    const INTERVAL: SimDuration = SimDuration(2_000_000_000);

    #[test]
    fn no_loss_keeps_infinity() {
        let mut est = CapacityEstimator::new();
        let usage = HashMap::from([(l(0), vec![obs(0, 0.0, 100_000), obs(1, 0.0, 25_000)])]);
        est.update(SimTime::from_secs(2), INTERVAL, &usage, &cfg());
        assert_eq!(est.capacity(l(0)), None);
    }

    #[test]
    fn loss_on_all_sessions_sets_estimate_from_throughput() {
        let mut est = CapacityEstimator::new();
        // 125_000 B over 2 s = 500 kb/s.
        let usage = HashMap::from([(l(0), vec![obs(0, 0.1, 100_000), obs(1, 0.08, 25_000)])]);
        est.update(SimTime::from_secs(2), INTERVAL, &usage, &cfg());
        let c = est.capacity(l(0)).unwrap();
        assert!((c - 500_000.0).abs() < 1.0, "got {c}");
    }

    #[test]
    fn one_clean_session_blocks_the_estimate() {
        // Session 1 has loss below the threshold: the shared link may not be
        // the culprit, so capacity stays infinite.
        let mut est = CapacityEstimator::new();
        let usage = HashMap::from([(l(0), vec![obs(0, 0.2, 100_000), obs(1, 0.0, 50_000)])]);
        est.update(SimTime::from_secs(2), INTERVAL, &usage, &cfg());
        assert_eq!(est.capacity(l(0)), None);
    }

    #[test]
    fn estimate_creeps_upward_each_interval() {
        let mut est = CapacityEstimator::new();
        let usage = HashMap::from([(l(0), vec![obs(0, 0.1, 100_000), obs(1, 0.1, 25_000)])]);
        est.update(SimTime::from_secs(2), INTERVAL, &usage, &cfg());
        let c0 = est.capacity(l(0)).unwrap();
        // Next interval, no matter the loss, the estimate creeps by 5%.
        let quiet = HashMap::from([(l(0), vec![obs(0, 0.0, 100_000), obs(1, 0.0, 25_000)])]);
        est.update(SimTime::from_secs(4), INTERVAL, &quiet, &cfg());
        let c1 = est.capacity(l(0)).unwrap();
        assert!((c1 / c0 - 1.05).abs() < 1e-9);
    }

    #[test]
    fn periodic_reset_returns_to_infinity() {
        let mut est = CapacityEstimator::new();
        let usage = HashMap::from([(l(0), vec![obs(0, 0.1, 100_000), obs(1, 0.1, 25_000)])]);
        est.update(SimTime::from_secs(2), INTERVAL, &usage, &cfg());
        assert!(est.capacity(l(0)).is_some());
        // Fast-forward past the reset period with clean traffic.
        let quiet = HashMap::from([(l(0), vec![obs(0, 0.0, 100_000), obs(1, 0.0, 25_000)])]);
        est.update(SimTime::from_secs(2 + 30), INTERVAL, &quiet, &cfg());
        assert_eq!(est.capacity(l(0)), None, "estimate must reset to infinity");
    }

    #[test]
    fn reset_then_relearn() {
        let mut est = CapacityEstimator::new();
        let lossy = HashMap::from([(l(0), vec![obs(0, 0.1, 100_000), obs(1, 0.1, 25_000)])]);
        est.update(SimTime::from_secs(2), INTERVAL, &lossy, &cfg());
        // Past reset, still lossy: re-learned in the same update.
        let lossy2 = HashMap::from([(l(0), vec![obs(0, 0.1, 200_000), obs(1, 0.1, 50_000)])]);
        est.update(SimTime::from_secs(40), INTERVAL, &lossy2, &cfg());
        let c = est.capacity(l(0)).unwrap();
        assert!((c - 1_000_000.0).abs() < 1.0, "got {c}");
    }

    #[test]
    fn zero_bytes_never_sets_a_zero_capacity() {
        let mut est = CapacityEstimator::new();
        let usage = HashMap::from([(l(0), vec![obs(0, 0.5, 0), obs(1, 0.5, 0)])]);
        est.update(SimTime::from_secs(2), INTERVAL, &usage, &cfg());
        assert_eq!(est.capacity(l(0)), None);
    }

    #[test]
    fn lossy_single_session_does_not_creep_stale_estimate() {
        // Learn an estimate while the link is shared, then drop to a
        // single session. While that session is lossy the leftover
        // estimate must hold still — creeping it upward would inflate a
        // number the loss already says is too high. A clean interval may
        // creep as usual.
        let mut est = CapacityEstimator::new();
        let shared = HashMap::from([(l(0), vec![obs(0, 0.1, 100_000), obs(1, 0.1, 25_000)])]);
        est.update(SimTime::from_secs(2), INTERVAL, &shared, &cfg());
        let c0 = est.capacity(l(0)).unwrap();

        let lossy_solo = HashMap::from([(l(0), vec![obs(0, 0.2, 100_000)])]);
        est.update(SimTime::from_secs(4), INTERVAL, &lossy_solo, &cfg());
        let c1 = est.capacity(l(0)).unwrap();
        assert_eq!(c1, c0, "lossy single-session interval must not creep");

        let clean_solo = HashMap::from([(l(0), vec![obs(0, 0.0, 100_000)])]);
        est.update(SimTime::from_secs(6), INTERVAL, &clean_solo, &cfg());
        let c2 = est.capacity(l(0)).unwrap();
        assert!((c2 / c1 - 1.05).abs() < 1e-9, "clean single-session interval creeps");
    }

    #[test]
    fn dead_air_interval_neither_divides_by_zero_nor_creeps() {
        // Learn an estimate, then run an interval in which no bytes
        // crossed the link at all (dead air / outage). The estimate must
        // hold exactly — a silent interval is not evidence the link has
        // more headroom — and nothing may go NaN. The same goes for a
        // dead-air interval on a link down to a single session.
        let mut est = CapacityEstimator::new();
        let shared = HashMap::from([(l(0), vec![obs(0, 0.1, 100_000), obs(1, 0.1, 25_000)])]);
        est.update(SimTime::from_secs(2), INTERVAL, &shared, &cfg());
        let c0 = est.capacity(l(0)).unwrap();

        let mut ev = Vec::new();
        let dead = vec![(l(0), obs(0, 0.0, 0)), (l(0), obs(1, 0.0, 0))];
        est.update_sorted_traced(SimTime::from_secs(4), INTERVAL, &dead, &cfg(), Some(&mut ev));
        let c1 = est.capacity(l(0)).unwrap();
        assert!(c1.is_finite());
        assert_eq!(c1, c0, "dead-air shared interval must hold, not creep");
        assert_eq!((ev[0].0, ev[0].2), (l(0), "held"));

        let dead_solo = HashMap::from([(l(0), vec![obs(0, 0.0, 0)])]);
        est.update(SimTime::from_secs(6), INTERVAL, &dead_solo, &cfg());
        let c2 = est.capacity(l(0)).unwrap();
        assert_eq!(c2, c0, "dead-air single-session interval must hold, not creep");

        // Traffic resumes clean: the creep picks back up as usual.
        let quiet = HashMap::from([(l(0), vec![obs(0, 0.0, 100_000), obs(1, 0.0, 25_000)])]);
        est.update(SimTime::from_secs(8), INTERVAL, &quiet, &cfg());
        let c3 = est.capacity(l(0)).unwrap();
        assert!((c3 / c0 - 1.05).abs() < 1e-9);
    }

    #[test]
    fn update_sorted_matches_update() {
        let c = cfg();
        let mut a = CapacityEstimator::new();
        let mut b = CapacityEstimator::new();
        let usage = HashMap::from([
            (l(0), vec![obs(0, 0.1, 100_000), obs(1, 0.1, 25_000)]),
            (l(1), vec![obs(0, 0.0, 100_000), obs(1, 0.0, 25_000)]),
            (l(2), vec![obs(1, 0.3, 50_000)]),
        ]);
        a.update(SimTime::from_secs(2), INTERVAL, &usage, &c);

        let mut flat: Vec<(DirLinkId, SessionLinkObs)> =
            usage.iter().flat_map(|(&link, v)| v.iter().map(move |&o| (link, o))).collect();
        flat.sort_by_key(|&(link, _)| link);
        b.update_sorted(SimTime::from_secs(2), INTERVAL, &flat, &c);

        for i in 0..3 {
            assert_eq!(a.capacity(l(i)), b.capacity(l(i)), "link {i}");
        }
        assert_eq!(a.estimated_links(), b.estimated_links());
    }

    #[test]
    fn traced_update_reports_learn_creep_and_reset() {
        let c = cfg();
        let mut est = CapacityEstimator::new();
        let lossy = vec![(l(0), obs(0, 0.1, 100_000)), (l(0), obs(1, 0.1, 25_000))];
        let quiet = vec![(l(0), obs(0, 0.0, 100_000)), (l(0), obs(1, 0.0, 25_000))];

        let mut ev = Vec::new();
        est.update_sorted_traced(SimTime::from_secs(2), INTERVAL, &lossy, &c, Some(&mut ev));
        assert_eq!(ev.len(), 1);
        assert_eq!((ev[0].0, ev[0].2), (l(0), "learned"));
        let learned_bps = ev[0].1;

        ev.clear();
        est.update_sorted_traced(SimTime::from_secs(4), INTERVAL, &quiet, &c, Some(&mut ev));
        assert_eq!((ev[0].0, ev[0].2), (l(0), "crept"));
        assert!(ev[0].1 > learned_bps);

        // Lossy single-session interval: the estimate is held, and the
        // audit says so.
        ev.clear();
        let solo = vec![(l(0), obs(0, 0.3, 100_000))];
        est.update_sorted_traced(SimTime::from_secs(6), INTERVAL, &solo, &c, Some(&mut ev));
        assert_eq!((ev[0].0, ev[0].2), (l(0), "held"));

        // Past the reset horizon with clean traffic: reset is reported
        // with the discarded value.
        ev.clear();
        est.update_sorted_traced(SimTime::from_secs(60), INTERVAL, &quiet, &c, Some(&mut ev));
        assert_eq!((ev[0].0, ev[0].2), (l(0), "reset"));
        assert!(est.capacity(l(0)).is_none());

        // Tracing must not perturb the estimates: an untraced twin ends
        // in the same state.
        let mut twin = CapacityEstimator::new();
        for (t, usage) in [(2u64, &lossy), (4, &quiet), (6, &solo), (60, &quiet)] {
            twin.update_sorted(SimTime::from_secs(t), INTERVAL, usage, &c);
        }
        assert_eq!(twin.capacity(l(0)), est.capacity(l(0)));
        assert_eq!(twin.estimated_links(), est.estimated_links());
    }

    #[test]
    fn links_are_independent() {
        let mut est = CapacityEstimator::new();
        let usage = HashMap::from([
            (l(0), vec![obs(0, 0.1, 100_000), obs(1, 0.1, 25_000)]),
            (l(1), vec![obs(0, 0.0, 100_000), obs(1, 0.0, 25_000)]),
        ]);
        est.update(SimTime::from_secs(2), INTERVAL, &usage, &cfg());
        assert!(est.capacity(l(0)).is_some());
        assert!(est.capacity(l(1)).is_none());
        assert_eq!(est.estimated_links(), 1);
    }
}
