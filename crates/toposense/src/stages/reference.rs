//! Pre-refactor `HashMap`-indexed stage implementations, kept verbatim as
//! the oracle for the differential test suite (`tests/differential.rs` in
//! the workspace root): the dense slot-indexed cores must produce
//! identical congestion states, bottlenecks, shares, and subscription
//! levels on arbitrary trees. Not part of the public API.

use crate::config::Config;
use crate::decision::{decide, Action, NodeKind};
use crate::stages::bottleneck::BottleneckMap;
use crate::stages::congestion::{LeafObs, NodeState, SessionCongestion};
use crate::stages::sharing::ShareMap;
use crate::stages::subscription::{
    half_supply_level, reduce_target, supply_of, BackoffTable, DemandContext, SubscriptionResult,
};
use netsim::{DirLinkId, NodeId, RngStream};
use std::collections::HashMap;
use topology::SessionTree;
use traffic::LayerSpec;

/// The original stage-1 implementation.
pub fn congestion_compute(
    tree: &SessionTree,
    obs: &HashMap<NodeId, LeafObs>,
    cfg: &Config,
) -> SessionCongestion {
    let t = tree.tree();
    let mut out: HashMap<NodeId, NodeState> = HashMap::with_capacity(t.len());

    // Bottom-up: loss, self-congestion, subtree byte maxima. Mirrors the
    // dense kernel's no-data rule: report-less children carry no evidence
    // and are skipped; a node whose whole subtree is silent is no-data
    // itself (finite placeholder loss, never self-congested).
    for node in t.bottom_up() {
        let children = t.children(node);
        let own = obs.get(&node);
        let mut state = NodeState::default();
        if children.is_empty() {
            let o = own.copied().unwrap_or_default();
            state.loss = o.loss;
            state.max_bytes = o.bytes;
            state.self_congested = own.is_some() && o.loss > cfg.p_threshold;
            state.has_data = own.is_some();
        } else {
            let mut losses: Vec<f64> =
                children.iter().filter(|c| out[c].has_data).map(|c| out[c].loss).collect();
            if let Some(o) = own {
                losses.push(o.loss);
            }
            if losses.is_empty() {
                state.has_data = false;
            } else {
                state.loss = losses.iter().copied().fold(f64::INFINITY, f64::min);
                state.max_bytes = children
                    .iter()
                    .filter(|c| out[c].has_data)
                    .map(|c| out[c].max_bytes)
                    .chain(own.map(|o| o.bytes))
                    .max()
                    .unwrap_or(0);
                state.has_data = true;
                let all_lossy = losses.iter().all(|&l| l > cfg.p_threshold);
                if all_lossy {
                    let mean = losses.iter().sum::<f64>() / losses.len() as f64;
                    let close = losses
                        .iter()
                        .filter(|&&l| (l - mean).abs() <= cfg.similarity_tolerance)
                        .count();
                    let frac = close as f64 / losses.len() as f64;
                    state.self_congested = frac >= cfg.eta_similar;
                }
            }
        }
        out.insert(node, state);
    }

    // Top-down: parental congestion propagates.
    for node in t.top_down() {
        let parent_congested = t.parent(node).map(|p| out[&p].congested).unwrap_or(false);
        let s = out.get_mut(&node).expect("visited in bottom-up pass");
        s.parent_congested = parent_congested;
        s.congested = s.self_congested || parent_congested;
    }

    SessionCongestion { nodes: out }
}

/// The original stage-3 implementation.
pub fn bottleneck_compute(
    tree: &SessionTree,
    capacity: impl Fn(DirLinkId) -> Option<f64>,
) -> BottleneckMap {
    let t = tree.tree();
    let mut bottleneck: HashMap<NodeId, f64> = HashMap::with_capacity(t.len());
    for node in t.top_down() {
        let b = match t.parent(node) {
            None => f64::INFINITY,
            Some(p) => {
                let up = bottleneck[&p];
                let cap = tree.in_link(node).and_then(&capacity).unwrap_or(f64::INFINITY);
                up.min(cap)
            }
        };
        bottleneck.insert(node, b);
    }
    let mut max_handle: HashMap<NodeId, f64> = HashMap::with_capacity(t.len());
    for node in t.bottom_up() {
        let children = t.children(node);
        let m = if children.is_empty() {
            bottleneck[&node]
        } else {
            children.iter().map(|c| max_handle[c]).fold(f64::NEG_INFINITY, f64::max)
        };
        max_handle.insert(node, m);
    }
    BottleneckMap { bottleneck, max_handle }
}

/// The original stage-4 implementation.
pub fn sharing_compute(
    trees: &[SessionTree],
    specs: &[&LayerSpec],
    capacity: impl Fn(DirLinkId) -> Option<f64>,
) -> ShareMap {
    assert_eq!(trees.len(), specs.len());

    let mut crossing: HashMap<DirLinkId, Vec<(usize, NodeId)>> = HashMap::new();
    for (i, tree) in trees.iter().enumerate() {
        for (node, link, _) in tree.edges() {
            crossing.entry(link).or_default().push((i, node));
        }
    }

    let mut maxposs: Vec<HashMap<NodeId, f64>> = Vec::with_capacity(trees.len());
    for (i, tree) in trees.iter().enumerate() {
        let t = tree.tree();
        let mut m: HashMap<NodeId, f64> = HashMap::with_capacity(t.len());
        for node in t.top_down() {
            let v = match t.parent(node) {
                None => f64::INFINITY,
                Some(p) => {
                    let up = m[&p];
                    let link = tree.in_link(node).expect("non-root node has an in-link");
                    let avail = match capacity(link) {
                        None => f64::INFINITY,
                        Some(b) => {
                            let others_base: f64 = crossing[&link]
                                .iter()
                                .filter(|&&(j, _)| j != i)
                                .map(|&(j, _)| specs[j].base_rate())
                                .sum();
                            (b - others_base).max(specs[i].base_rate())
                        }
                    };
                    up.min(avail)
                }
            };
            m.insert(node, v);
        }
        maxposs.push(m);
    }

    let mut aggdem: Vec<HashMap<NodeId, f64>> = Vec::with_capacity(trees.len());
    for (i, tree) in trees.iter().enumerate() {
        let t = tree.tree();
        let mut m: HashMap<NodeId, f64> = HashMap::with_capacity(t.len());
        for node in t.bottom_up() {
            let children = t.children(node);
            let v = if children.is_empty() {
                maxposs[i][&node]
            } else {
                children.iter().map(|c| m[c]).fold(f64::NEG_INFINITY, f64::max)
            };
            m.insert(node, v);
        }
        aggdem.push(m);
    }

    let mut share: HashMap<(DirLinkId, usize), f64> = HashMap::new();
    for (&link, sessions) in &crossing {
        if sessions.len() < 2 {
            continue;
        }
        let Some(b) = capacity(link) else { continue };
        let xs: Vec<(usize, u32)> = sessions
            .iter()
            .map(|&(i, head)| {
                let level = specs[i].level_fitting(aggdem[i][&head]).max(1);
                (i, level as u32)
            })
            .collect();
        let total: u32 = xs.iter().map(|&(_, x)| x).sum();
        let n = xs.len();
        for (i, x) in xs {
            // Same guard as the dense kernel (`sharing::proportional_share`):
            // a zero Σx would make the division NaN/∞ and poison the final
            // top-down mins, so it degrades to an equal split of `b`.
            let bps = if total == 0 { b / n as f64 } else { x as f64 * b / total as f64 };
            share.insert((link, i), bps);
        }
    }

    let mut allowed: Vec<HashMap<NodeId, f64>> = Vec::with_capacity(trees.len());
    for (i, tree) in trees.iter().enumerate() {
        let t = tree.tree();
        let mut m: HashMap<NodeId, f64> = HashMap::with_capacity(t.len());
        for node in t.top_down() {
            let v = match t.parent(node) {
                None => f64::INFINITY,
                Some(p) => {
                    let up = m[&p];
                    let link = tree.in_link(node).expect("non-root node has an in-link");
                    let limit = share
                        .get(&(link, i))
                        .copied()
                        .or_else(|| capacity(link))
                        .unwrap_or(f64::INFINITY);
                    up.min(limit)
                }
            };
            m.insert(node, v);
        }
        allowed.push(m);
    }

    ShareMap { allowed }
}

/// The original stage-5 implementation.
pub fn subscription_compute(
    ctx: &DemandContext<'_>,
    backoffs: &mut BackoffTable,
    rng: &mut RngStream,
) -> SubscriptionResult {
    let t = ctx.tree.tree();
    let cfg = ctx.cfg;
    let spec = ctx.spec;
    let mut demand: HashMap<NodeId, u8> = HashMap::with_capacity(t.len());

    backoffs.expire(ctx.now);

    // Demand, bottom-up.
    for node in t.bottom_up() {
        let inp = ctx.inputs.get(&node).copied().unwrap_or_default();
        let children = t.children(node);
        let d = if children.is_empty() {
            let cur = inp.current_level.unwrap_or(1).max(1);
            if inp.parent_congested {
                cur
            } else {
                let floor = spec.level_fitting(inp.goodput_bps);
                let cap = (ctx.level_cap)(node);
                match decide(NodeKind::Leaf, inp.hist, inp.bw) {
                    Action::AddLayer => {
                        let settled = inp.supply_recent == cur && inp.supply_older == cur;
                        let target = (cur + 1).min(spec.max_level());
                        let known_safe = cap < spec.max_level() && target <= cap;
                        if target > cur
                            && !inp.sibling_congested
                            && (known_safe
                                || (settled && !backoffs.blocked(ctx.tree, node, target, ctx.now)))
                        {
                            target
                        } else {
                            cur
                        }
                    }
                    Action::DropIfLossHigh => {
                        if inp.loss > cfg.high_loss && cur > 1 {
                            let d = reduce_target(cur - 1, floor, cap, cur);
                            if d < cur {
                                backoffs.arm(node, cur, ctx.now, cfg, rng);
                            }
                            d
                        } else {
                            cur
                        }
                    }
                    Action::Maintain => cur,
                    Action::ReduceToSupply(w) => reduce_target(supply_of(&inp, w), floor, cap, cur),
                    Action::ReduceToHalfSupply { window, backoff } => {
                        let tgt = half_supply_level(spec, &inp, window);
                        let d = reduce_target(tgt, floor, cap, cur);
                        if backoff && cur > d {
                            backoffs.arm(node, cur, ctx.now, cfg, rng);
                        }
                        d
                    }
                    Action::ReduceToHalfSupplyIfLossVeryHigh(w) => {
                        if inp.loss > cfg.very_high_loss {
                            let tgt = half_supply_level(spec, &inp, w);
                            reduce_target(tgt, floor, cap, cur)
                        } else {
                            cur
                        }
                    }
                    Action::AcceptChildren => unreachable!("leaf cannot accept children"),
                }
            }
        } else {
            let childmax = children.iter().map(|c| demand[c]).max().unwrap_or(1);
            if inp.parent_congested {
                childmax
            } else {
                let floor = spec.level_fitting(inp.goodput_bps);
                let cap = (ctx.level_cap)(node);
                match decide(NodeKind::Internal, inp.hist, inp.bw) {
                    Action::AcceptChildren => childmax,
                    Action::Maintain => childmax.min(inp.demand_prev.unwrap_or(childmax)),
                    Action::ReduceToHalfSupply { window, backoff } => {
                        let tgt = half_supply_level(spec, &inp, window);
                        let d = reduce_target(tgt, floor, cap, childmax);
                        if backoff && childmax > d {
                            backoffs.arm(node, childmax, ctx.now, cfg, rng);
                        }
                        d
                    }
                    other => unreachable!("internal rows never yield {other:?}"),
                }
            }
        };
        demand.insert(node, d.max(1));
    }

    // Supply, top-down.
    let mut supply: HashMap<NodeId, u8> = HashMap::with_capacity(t.len());
    for node in t.top_down() {
        let cap = (ctx.level_cap)(node);
        let s = match t.parent(node) {
            None => demand[&node].min(cap),
            Some(p) => demand[&node].min(supply[&p]).min(cap),
        };
        supply.insert(node, s.max(1));
    }

    SubscriptionResult { demand, supply }
}
