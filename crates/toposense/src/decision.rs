//! Table I — the demand decision table.
//!
//! Reproduced verbatim from the paper (decision table for computing demand
//! at each node at time `T2`). The table is a **total function** over
//! `(node kind, 3-bit history, BW equality)`; [`decide`] encodes every row
//! and the tests enumerate the full domain against the printed table.
//!
//! | Kind     | History     | BW Equality    | Action |
//! |----------|-------------|----------------|--------|
//! | Leaf     | 0           | Lesser         | Add next layer, if not backing off |
//! | Leaf     | 1           | Lesser         | If loss rate is high, drop layer, set backoff |
//! | Leaf     | 2,4,5,6     | Lesser         | Maintain demand |
//! | Leaf     | 3           | Lesser         | Reduce demand to supply in `T0–Tn` |
//! | Leaf     | 7           | Lesser         | Reduce demand to half the supply in `T0–Tn`, set backoff |
//! | Leaf     | 0,4         | Equal          | Add next layer, if not backing off |
//! | Leaf     | 1,2,5,6     | Equal          | Maintain demand |
//! | Leaf     | 3,7         | Equal          | Reduce demand to half the supply in `T0–Tn`, set backoff |
//! | Leaf     | 0           | Greater        | Add next layer, if not backing off |
//! | Leaf     | 1,2,4,5,6   | Greater        | Maintain demand |
//! | Leaf     | 3,7         | Greater        | If loss very high, reduce demand to half the supply in `T0–Tn` |
//! | Internal | 0,4         | all            | Accept all demands of the child nodes |
//! | Internal | 1,5,7       | Greater        | Reduce demand to half the supply in `Tn–T2n` |
//! | Internal | 1,5,7       | Equal, Lesser  | Reduce demand to half the supply in `T0–Tn` |
//! | Internal | 2,3,6       | all            | Maintain demand |
//!
//! The paper's interval naming: `T0–Tn` is the **older** of the two
//! remembered supply windows and `Tn–T2n` the **recent** one.

use crate::history::{BwEquality, CongestionHistory};

/// Whether the deciding node is a leaf (a receiver host) or internal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    Leaf,
    Internal,
}

/// Which remembered supply window a reduction refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SupplyWindow {
    /// `T0–Tn`: the older window.
    Older,
    /// `Tn–T2n`: the recent window.
    Recent,
}

/// The action Table I prescribes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Add the next layer, unless a backoff timer forbids it.
    AddLayer,
    /// Drop the top layer and set its backoff timer, but only if the loss
    /// rate is high.
    DropIfLossHigh,
    /// Keep the current demand.
    Maintain,
    /// Set demand to the supply of the given window.
    ReduceToSupply(SupplyWindow),
    /// Set demand to half the supply of the given window; `backoff` says
    /// whether the dropped layers also get backoff timers.
    ReduceToHalfSupply { window: SupplyWindow, backoff: bool },
    /// Like `ReduceToHalfSupply`, but only if the loss rate is very high.
    ReduceToHalfSupplyIfLossVeryHigh(SupplyWindow),
    /// Internal nodes: demand is the aggregation of the children's demands.
    AcceptChildren,
}

/// Look up Table I.
///
/// ```
/// use toposense::decision::decide;
/// use toposense::{Action, NodeKind};
/// use toposense::history::{BwEquality, CongestionHistory};
/// // Never congested, bandwidth stable: explore the next layer.
/// let a = decide(NodeKind::Leaf, CongestionHistory::from_bits(0), BwEquality::Equal);
/// assert_eq!(a, Action::AddLayer);
/// ```
pub fn decide(kind: NodeKind, history: CongestionHistory, bw: BwEquality) -> Action {
    use Action::*;
    use BwEquality::*;
    use NodeKind::*;
    use SupplyWindow::*;
    let h = history.bits();
    match kind {
        Leaf => match (h, bw) {
            (0, Lesser) => AddLayer,
            (1, Lesser) => DropIfLossHigh,
            (2 | 4 | 5 | 6, Lesser) => Maintain,
            (3, Lesser) => ReduceToSupply(Older),
            (7, Lesser) => ReduceToHalfSupply { window: Older, backoff: true },
            (0 | 4, Equal) => AddLayer,
            (1 | 2 | 5 | 6, Equal) => Maintain,
            (3 | 7, Equal) => ReduceToHalfSupply { window: Older, backoff: true },
            (0, Greater) => AddLayer,
            (1 | 2 | 4 | 5 | 6, Greater) => Maintain,
            (3 | 7, Greater) => ReduceToHalfSupplyIfLossVeryHigh(Older),
            _ => unreachable!("3-bit history"),
        },
        Internal => match (h, bw) {
            (0 | 4, _) => AcceptChildren,
            (1 | 5 | 7, Greater) => ReduceToHalfSupply { window: Recent, backoff: true },
            (1 | 5 | 7, Equal | Lesser) => ReduceToHalfSupply { window: Older, backoff: true },
            (2 | 3 | 6, _) => Maintain,
            _ => unreachable!("3-bit history"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Action::*;
    use BwEquality::*;
    use SupplyWindow::*;

    fn leaf(h: u8, bw: BwEquality) -> Action {
        decide(NodeKind::Leaf, CongestionHistory::from_bits(h), bw)
    }
    fn internal(h: u8, bw: BwEquality) -> Action {
        decide(NodeKind::Internal, CongestionHistory::from_bits(h), bw)
    }

    #[test]
    fn leaf_lesser_rows() {
        assert_eq!(leaf(0, Lesser), AddLayer);
        assert_eq!(leaf(1, Lesser), DropIfLossHigh);
        for h in [2, 4, 5, 6] {
            assert_eq!(leaf(h, Lesser), Maintain, "history {h}");
        }
        assert_eq!(leaf(3, Lesser), ReduceToSupply(Older));
        assert_eq!(leaf(7, Lesser), ReduceToHalfSupply { window: Older, backoff: true });
    }

    #[test]
    fn leaf_equal_rows() {
        for h in [0, 4] {
            assert_eq!(leaf(h, Equal), AddLayer, "history {h}");
        }
        for h in [1, 2, 5, 6] {
            assert_eq!(leaf(h, Equal), Maintain, "history {h}");
        }
        for h in [3, 7] {
            assert_eq!(
                leaf(h, Equal),
                ReduceToHalfSupply { window: Older, backoff: true },
                "history {h}"
            );
        }
    }

    #[test]
    fn leaf_greater_rows() {
        assert_eq!(leaf(0, Greater), AddLayer);
        for h in [1, 2, 4, 5, 6] {
            assert_eq!(leaf(h, Greater), Maintain, "history {h}");
        }
        for h in [3, 7] {
            assert_eq!(leaf(h, Greater), ReduceToHalfSupplyIfLossVeryHigh(Older), "history {h}");
        }
    }

    #[test]
    fn internal_rows() {
        for bw in [Lesser, Equal, Greater] {
            for h in [0, 4] {
                assert_eq!(internal(h, bw), AcceptChildren, "history {h} bw {bw:?}");
            }
            for h in [2, 3, 6] {
                assert_eq!(internal(h, bw), Maintain, "history {h} bw {bw:?}");
            }
        }
        for h in [1, 5, 7] {
            assert_eq!(
                internal(h, Greater),
                ReduceToHalfSupply { window: Recent, backoff: true },
                "history {h}"
            );
            for bw in [Equal, Lesser] {
                assert_eq!(
                    internal(h, bw),
                    ReduceToHalfSupply { window: Older, backoff: true },
                    "history {h} bw {bw:?}"
                );
            }
        }
    }

    #[test]
    fn table_is_total() {
        // Every (kind, history, bw) combination returns without panicking.
        for h in 0..8u8 {
            for bw in [Lesser, Equal, Greater] {
                let _ = leaf(h, bw);
                let _ = internal(h, bw);
            }
        }
    }

    #[test]
    fn uncongested_nodes_never_reduce() {
        // Any history with bit 0 clear (not congested now) must not reduce
        // demand at a leaf: reductions are rows 1, 3, 7 (and 1,5,7
        // internal), all of which have the current-interval bit set.
        for h in [0u8, 2, 4, 6] {
            for bw in [Lesser, Equal, Greater] {
                let a = leaf(h, bw);
                assert!(
                    matches!(a, AddLayer | Maintain),
                    "history {h} bw {bw:?} unexpectedly {a:?}"
                );
            }
        }
    }

    #[test]
    fn persistent_congestion_always_reduces_at_leaf() {
        // History 7 (congested three intervals running) reduces or is
        // conditioned on very-high loss, in every BW column.
        for bw in [Lesser, Equal, Greater] {
            let a = leaf(7, bw);
            assert!(
                matches!(a, ReduceToHalfSupply { .. } | ReduceToHalfSupplyIfLossVeryHigh(_)),
                "history 7 bw {bw:?} unexpectedly {a:?}"
            );
        }
    }
}
