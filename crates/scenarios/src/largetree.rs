//! Large-domain workload generator for the incremental-pipeline benchmarks.
//!
//! The paper's topologies top out at tens of receivers; the change-driven
//! pipeline (DESIGN.md §11) is aimed at session trees orders of magnitude
//! larger, where recomputing every slot each interval is the bottleneck.
//! This module builds balanced multicast domains of configurable size
//! (`fanout^depth` leaves — fanout 10, depth 4 gives an 11,111-node domain)
//! and drives them with deterministic report churn at a configurable dirty
//! fraction, so full and incremental runs can be compared on identical
//! inputs. `crates/bench`'s `incremental` bench and the large-tree smoke
//! test in `tests/incremental.rs` both draw their workloads from here.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use netsim::sim::{NetworkBuilder, SimConfig};
use netsim::{
    App, AppId, Ctx, DirLinkId, EgressApp, GroupId, GroupSnapshot, LinkConfig, NodeId, Outbox,
    Packet, QueueBackend, RelayApp, SessionId, ShardedSim, SimDuration, SimTime, Simulator,
};
use topology::discovery::{LinkView, TopologyView};
use topology::SessionTree;
use toposense::algorithm::ReceiverReport;

/// Build a balanced session tree with `fanout^depth` leaves.
///
/// Node 0 is the root/source; nodes are numbered breadth-first. Returns the
/// tree plus the list of leaf nodes (the receivers).
pub fn balanced_session_tree(
    session: u32,
    fanout: usize,
    depth: usize,
) -> (SessionTree, Vec<NodeId>) {
    assert!(fanout >= 1 && depth >= 1);
    let mut links = Vec::new();
    let mut active = Vec::new();
    let mut members = Vec::new();
    let mut next_id = 1u32;
    let mut frontier = vec![0u32];
    let mut link_id = 0u32;
    for level in 0..depth {
        let mut next_frontier = Vec::new();
        for &parent in &frontier {
            for _ in 0..fanout {
                let child = next_id;
                next_id += 1;
                links.push(LinkView {
                    id: DirLinkId(link_id),
                    from: NodeId(parent),
                    to: NodeId(child),
                });
                active.push(DirLinkId(link_id));
                link_id += 1;
                if level + 1 == depth {
                    members.push(NodeId(child));
                }
                next_frontier.push(child);
            }
        }
        frontier = next_frontier;
    }
    let view = TopologyView {
        time: SimTime::ZERO,
        links,
        groups: vec![GroupSnapshot {
            group: GroupId(session),
            root: NodeId(0),
            active_links: active,
            member_nodes: members.clone(),
        }],
    };
    let tree = SessionTree::build(&view, SessionId(session), &[GroupId(session)])
        .expect("balanced tree is valid");
    (tree, members)
}

/// One report per leaf with a deterministic loss pattern (every
/// `lossy_mod`-th receiver sees 10 % loss; `0` disables loss entirely).
pub fn reports_for_leaves(
    session: u32,
    leaves: &[NodeId],
    level: u8,
    lossy_mod: usize,
) -> Vec<ReceiverReport> {
    leaves
        .iter()
        .enumerate()
        .map(|(i, &node)| {
            let lossy = lossy_mod != 0 && i % lossy_mod == 0;
            ReceiverReport {
                receiver: AppId(1000 + i as u32),
                node,
                session: SessionId(session),
                level,
                received: if lossy { 90 } else { 100 },
                lost: if lossy { 10 } else { 0 },
                bytes: 25_000,
            }
        })
        .collect()
}

/// The registry matching [`reports_for_leaves`].
pub fn registry_for_leaves(session: u32, leaves: &[NodeId]) -> Vec<(AppId, NodeId, SessionId)> {
    leaves
        .iter()
        .enumerate()
        .map(|(i, &node)| (AppId(1000 + i as u32), node, SessionId(session)))
        .collect()
}

/// Mutate a `dirty_fraction` of the reports in place, deterministically.
///
/// The touched receivers are stride-spread across the report list and the
/// stride offset rotates with `round`, so successive intervals dirty
/// different (but same-sized) receiver sets — the access pattern an
/// incremental pipeline sees in steady state, not a fixed hot set it could
/// get lucky on. Every touched report genuinely changes (its byte counter
/// toggles), so the diff pass cannot skip it; the perturbation stays in
/// the bytes field so the congestion regime is steady and the measured
/// dirty fraction is exactly the requested one — toggling loss instead
/// would accumulate congested receivers across rounds and swing global
/// supply, turning a nominal 1 % churn into a near-full recompute. Returns
/// how many reports were touched.
pub fn churn_fraction(reports: &mut [ReceiverReport], dirty_fraction: f64, round: u64) -> usize {
    assert!((0.0..=1.0).contains(&dirty_fraction));
    let n = reports.len();
    let k = ((n as f64 * dirty_fraction).round() as usize).min(n);
    if k == 0 {
        return 0;
    }
    let stride = (n / k).max(1);
    let offset = (round as usize) % stride;
    let mut touched = 0usize;
    let mut i = offset;
    while i < n && touched < k {
        let r = &mut reports[i];
        r.bytes = if r.bytes == 25_000 { 24_000 } else { 25_000 };
        i += stride;
        touched += 1;
    }
    touched
}

// ---------------------------------------------------------------------------
// Federated multi-domain worlds (DESIGN.md §16)
// ---------------------------------------------------------------------------

/// Build `k` federated domains, each a balanced `fanout^depth` subtree with
/// its own registry — the multi-domain world the federation campaign and
/// `tests/multidomain.rs` drive (10 domains × fanout 10 × depth 4 is the
/// full-profile 100k-receiver world). Every domain gets its own
/// deterministic pipeline stream derived from `(seed, domain id)`. Returns
/// the domains plus the shared per-domain leaf list (all domains are
/// shape-identical, so one list serves them all).
pub fn federated_domains(
    k: usize,
    fanout: usize,
    depth: usize,
    cfg: toposense::Config,
    seed: u64,
) -> (Vec<toposense::federation::Domain>, Vec<NodeId>) {
    assert!(k >= 1);
    let mut domains = Vec::with_capacity(k);
    let mut shared_leaves = Vec::new();
    for i in 0..k {
        let (tree, leaves) = balanced_session_tree(0, fanout, depth);
        let registry = registry_for_leaves(0, &leaves);
        domains.push(toposense::federation::Domain::new(
            i as u32,
            cfg,
            seed,
            tree,
            traffic::LayerSpec::paper_default(),
            registry,
        ));
        shared_leaves = leaves;
    }
    (domains, shared_leaves)
}

/// The reports a domain's receivers file when the whole domain sits behind
/// one `cap_bps` border link: a receiver subscribed past the fitting level
/// sees loss in proportion to the overshoot, and delivered bytes saturate
/// at the link capacity — the deterministic capacity oracle the federated
/// drives use in place of a packet-level simulation.
pub fn reports_behind_border(
    session: u32,
    leaves: &[NodeId],
    levels: &[u8],
    cap_bps: f64,
    spec: &traffic::LayerSpec,
    window: SimDuration,
) -> Vec<ReceiverReport> {
    assert_eq!(levels.len(), leaves.len());
    assert!(cap_bps > 0.0);
    leaves
        .iter()
        .zip(levels)
        .enumerate()
        .map(|(i, (&node, &level))| {
            let cum = spec.cumulative_rate(level);
            let frac = if cum <= cap_bps { 1.0 } else { cap_bps / cum };
            let received = (100.0 * frac).round() as u64;
            ReceiverReport {
                receiver: AppId(1000 + i as u32),
                node,
                session: SessionId(session),
                level,
                received,
                lost: 100 - received,
                bytes: (cum.min(cap_bps) / 8.0 * window.as_secs_f64()) as u64,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Campaign zoo: flash crowds, diurnal churn, heterogeneous last miles
// (DESIGN.md §13)
// ---------------------------------------------------------------------------

/// Deterministic diurnal churn profile: a triangle wave over `period`
/// rounds between `low` (night) and `high` (midday peak), peaking at
/// `period / 2`. A triangle instead of a sinusoid keeps the profile exactly
/// reproducible across platforms (no libm calls) while still sweeping the
/// dirty fraction smoothly through the day.
pub fn diurnal_fraction(round: u64, period: u64, low: f64, high: f64) -> f64 {
    assert!(period >= 2, "a day needs at least two rounds");
    assert!((0.0..=1.0).contains(&low) && (0.0..=1.0).contains(&high) && low <= high);
    let phase = round % period;
    let half = period as f64 / 2.0;
    // 0 at dawn, 1 at midday, back to 0 at dusk.
    let up = 1.0 - ((phase as f64 - half).abs() / half);
    low + (high - low) * up
}

/// A balanced multicast domain whose *last-mile* links are heterogeneous:
/// the backbone (every tier but the last) is fat, and each leaf's access
/// link cycles through `lastmile_kbps` — the paper's "last mile problem"
/// pushed to its extreme, where every bottleneck sits on a leaf edge and
/// the controller must steer each receiver to its own fitting level.
///
/// Receivers are grouped into sets by their capacity class (index into
/// `lastmile_kbps`), so oracle checks and campaign gates can reason per
/// class. One session, source and controller at the root.
pub fn heterogeneous_lastmile(
    fanout: usize,
    depth: usize,
    lastmile_kbps: &[f64],
) -> topology::spec::TopoSpec {
    use topology::spec::{NodeRole, TopoSpec};
    assert!(fanout >= 1 && depth >= 2, "need at least one backbone tier plus the last mile");
    assert!(!lastmile_kbps.is_empty());
    let latency = netsim::SimDuration(200 * 1_000_000);
    let fat = netsim::LinkConfig::kbps(100_000.0).with_delay(latency);
    let mut s = TopoSpec::new(format!("het-lastmile/{fanout}x{depth}"));
    let root = s.node("src", vec![NodeRole::Source { session: 0 }, NodeRole::Controller]);
    let mut frontier = vec![root];
    let mut leaf_idx = 0usize;
    for level in 0..depth {
        let last = level + 1 == depth;
        let mut next = Vec::with_capacity(frontier.len() * fanout);
        for &parent in &frontier {
            for c in 0..fanout {
                let (label, roles, cfg) = if last {
                    let class = leaf_idx % lastmile_kbps.len();
                    leaf_idx += 1;
                    (
                        format!("rcv{}.{c}", leaf_idx - 1),
                        vec![NodeRole::Receiver { session: 0, set: class as u32 }],
                        netsim::LinkConfig::kbps(lastmile_kbps[class]).with_delay(latency),
                    )
                } else {
                    (format!("t{level}.{c}"), vec![NodeRole::Router], fat)
                };
                let node = s.node(label, roles);
                s.link(parent, node, cfg);
                next.push(node);
            }
        }
        frontier = next;
    }
    s
}

/// One step of a flash-crowd drive: the registry/report pair visible to the
/// controller at `round`. Before `join_round` only the first `core` leaves
/// are registered (the steady overnight audience); from `join_round` on,
/// every leaf is — the paper-scale "100k joins inside one control interval"
/// event, compressed into a single registry snapshot change.
pub fn flash_crowd_membership(
    session: u32,
    leaves: &[NodeId],
    core: usize,
    round: u64,
    join_round: u64,
    level: u8,
    lossy_mod: usize,
) -> (Vec<(AppId, NodeId, SessionId)>, Vec<ReceiverReport>) {
    assert!(core >= 1 && core <= leaves.len());
    let active = if round < join_round { &leaves[..core] } else { leaves };
    (registry_for_leaves(session, active), reports_for_leaves(session, active, level, lossy_mod))
}

// ---------------------------------------------------------------------------
// Packet-level media workload (the netsim fast-path benchmark, DESIGN.md §12)
// ---------------------------------------------------------------------------

/// A timer-driven CBR media source multicasting fixed-size packets.
struct MediaSource {
    group: GroupId,
    rate_pps: u64,
    seq: u64,
}

impl App for MediaSource {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_millis(1), 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        ctx.send_media(self.group, SessionId(0), 0, self.seq, 1000);
        self.seq += 1;
        ctx.set_timer(SimDuration(1_000_000_000 / self.rate_pps), 0);
    }
}

/// A counting receiver that joins the group on start.
struct MediaSink {
    group: GroupId,
    delivered: Arc<AtomicU64>,
}

impl App for MediaSink {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.join(self.group);
    }
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: &Packet) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
    }
}

/// A ready-to-run packet-level simulation of a balanced multicast domain.
pub struct MediaSim {
    pub sim: Simulator,
    pub group: GroupId,
    pub root: NodeId,
    pub leaves: Vec<NodeId>,
    pub sinks: usize,
    delivered: Arc<AtomicU64>,
}

impl MediaSim {
    /// Packets delivered to sinks so far.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }
}

/// Build a balanced `fanout^depth` packet-level domain carrying CBR media.
///
/// Node 0 is the root and hosts the source (`rate_pps` packets/s of 1000 B);
/// every `sink_stride`-th leaf hosts a counting receiver that joins the
/// group. All links are 100 Mbit/s. The same workload runs under either
/// [`QueueBackend`], which is how the differential tests and
/// `BENCH_netsim.json` compare the calendar wheel against the binary heap
/// on identical input.
pub fn media_sim(
    fanout: usize,
    depth: usize,
    sink_stride: usize,
    rate_pps: u64,
    backend: QueueBackend,
) -> MediaSim {
    assert!(fanout >= 1 && depth >= 1 && sink_stride >= 1 && rate_pps >= 1);
    let mut nb = NetworkBuilder::new(SimConfig { queue: backend, ..SimConfig::default() });
    let root = nb.add_node("root");
    let mut frontier = vec![root];
    let mut leaves: Vec<NodeId> = Vec::new();
    for level in 0..depth {
        let mut next = Vec::with_capacity(frontier.len() * fanout);
        for &parent in &frontier {
            for _ in 0..fanout {
                let n = nb.add_node("n");
                nb.add_link(parent, n, LinkConfig::kbps(100_000.0));
                if level + 1 == depth {
                    leaves.push(n);
                }
                next.push(n);
            }
        }
        frontier = next;
    }
    let mut sim = nb.build();
    let group = sim.create_group(root);
    let delivered = Arc::new(AtomicU64::new(0));
    let mut sinks = 0usize;
    for (i, &leaf) in leaves.iter().enumerate() {
        if i % sink_stride == 0 {
            sim.add_app(leaf, Box::new(MediaSink { group, delivered: Arc::clone(&delivered) }));
            sinks += 1;
        }
    }
    sim.add_app(root, Box::new(MediaSource { group, rate_pps, seq: 0 }));
    MediaSim { sim, group, root, leaves, sinks, delivered }
}

// ---------------------------------------------------------------------------
// Federated packet world: sharded twin + sequential oracle (DESIGN.md §17)
// ---------------------------------------------------------------------------

/// Shape of a federated packet-level world: a core shard (source plus one
/// border stub per domain) feeding `domains` balanced `fanout^depth`
/// multicast domains across fixed-latency inter-domain handoffs.
#[derive(Clone, Copy, Debug)]
pub struct FederationWorldParams {
    /// Federation domains (each becomes one shard; the core is shard 0).
    pub domains: usize,
    /// Branching factor of each domain's balanced tree.
    pub fanout: usize,
    /// Depth of each domain's balanced tree (`fanout^depth` leaves).
    pub depth: usize,
    /// Every `sink_stride`-th leaf hosts a counting receiver.
    pub sink_stride: usize,
    /// Core feed rate: control packets per second towards every stub.
    pub rate_pps: u64,
    /// Inter-domain propagation latency — the conservative lookahead.
    pub handoff_delay: SimDuration,
    /// Event-queue backend for every shard and the oracle.
    pub backend: QueueBackend,
    /// Structured-trace capacity per simulator (0 disables tracing).
    pub trace_cap: usize,
}

impl Default for FederationWorldParams {
    fn default() -> Self {
        FederationWorldParams {
            domains: 3,
            fanout: 3,
            depth: 2,
            sink_stride: 2,
            rate_pps: 100,
            handoff_delay: SimDuration::from_millis(20),
            backend: QueueBackend::CalendarWheel,
            trace_cap: 0,
        }
    }
}

impl FederationWorldParams {
    /// Receivers across all domains (`domains * ceil(leaves / stride)`).
    pub fn receivers(&self) -> usize {
        let leaves = self.fanout.pow(self.depth as u32);
        self.domains * leaves.div_ceil(self.sink_stride)
    }
}

/// Ticks `period`-spaced control packets to every border stub — the core
/// traffic that crosses the inter-domain handoffs.
struct FeedSource {
    stubs: Vec<NodeId>,
    period: SimDuration,
}

impl App for FeedSource {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_millis(1), 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        for &s in &self.stubs {
            ctx.send_control(s, 1000, Arc::new(()));
        }
        ctx.set_timer(self.period, 0);
    }
}

/// Re-originates every packet arriving at a domain border as a media packet
/// on the domain's local multicast group.
struct BorderFeeder {
    group: GroupId,
    seq: u64,
}

impl App for BorderFeeder {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _packet: &Packet) {
        ctx.send_media(self.group, SessionId(0), 0, self.seq, 1000);
        self.seq += 1;
    }
}

/// A counting receiver. It is subscribed via the batched join at build time
/// and re-joins itself after a crash/restart cycle (a crash wipes the
/// node's membership), exercising both the batched and the incremental
/// graft paths.
struct DomainSink {
    group: GroupId,
    delivered: Arc<AtomicU64>,
}

impl App for DomainSink {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: &Packet) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
    }
    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        ctx.join(self.group);
    }
}

/// A federated packet world built twice from the same parameters: once as a
/// [`ShardedSim`] (core shard + one shard per domain, mailbox handoffs) and
/// once as a single sequential [`Simulator`] where each border stub hosts a
/// [`RelayApp`] — the differential oracle. Node and link id maps translate
/// oracle ids to `(shard, local id)` so fault plans and per-link stats can
/// be compared across the two worlds.
pub struct FederatedMediaWorld {
    pub params: FederationWorldParams,
    pub sharded: ShardedSim,
    pub oracle: Simulator,
    /// Per-domain delivery counters in the sharded world.
    pub delivered_sharded: Vec<Arc<AtomicU64>>,
    /// Per-domain delivery counters in the oracle.
    pub delivered_oracle: Vec<Arc<AtomicU64>>,
    /// Oracle node id (by index) → `(shard, shard-local node id)`.
    pub node_map: Vec<(usize, NodeId)>,
    /// Oracle directed link id (by index) → `(shard, shard-local link id)`.
    pub link_map: Vec<(usize, DirLinkId)>,
    /// Oracle duplex pairs of the core `src → stub` links, one per domain.
    pub core_links: Vec<(DirLinkId, DirLinkId)>,
    /// Oracle node ids per domain, border first then breadth-first tiers.
    pub domain_nodes: Vec<Vec<NodeId>>,
    /// Oracle duplex link pairs per domain, in construction order.
    pub domain_links: Vec<Vec<(DirLinkId, DirLinkId)>>,
}

/// Add one balanced `fanout^depth` domain tree to `nb`. Returns the border
/// (root), all nodes breadth-first (border first), the leaves, and the
/// duplex link pairs in construction order.
#[allow(clippy::type_complexity)]
fn add_domain_tree(
    nb: &mut NetworkBuilder,
    domain: usize,
    fanout: usize,
    depth: usize,
) -> (NodeId, Vec<NodeId>, Vec<NodeId>, Vec<(DirLinkId, DirLinkId)>) {
    let border = nb.add_node(format!("d{domain}/border"));
    let mut all = vec![border];
    let mut leaves = Vec::new();
    let mut links = Vec::new();
    let mut frontier = vec![border];
    for level in 0..depth {
        let mut next = Vec::with_capacity(frontier.len() * fanout);
        for &parent in &frontier {
            for _ in 0..fanout {
                let n = nb.add_node("n");
                links.push(nb.add_link(parent, n, LinkConfig::kbps(100_000.0)));
                if level + 1 == depth {
                    leaves.push(n);
                }
                all.push(n);
                next.push(n);
            }
        }
        frontier = next;
    }
    (border, all, leaves, links)
}

/// Per-domain topology handles: `(border, all nodes, leaves, duplex links)`
/// in the id space of whichever builder produced them.
type DomainHandles = (NodeId, Vec<NodeId>, Vec<NodeId>, Vec<(DirLinkId, DirLinkId)>);

/// The sharded half of a federated world on its own — what the 1M-receiver
/// wall-budget runs and the throughput bench use, where building the
/// sequential oracle twin alongside would double the footprint for nothing.
pub struct FederatedShardedWorld {
    pub params: FederationWorldParams,
    pub sharded: ShardedSim,
    /// Per-domain delivery counters.
    pub delivered: Vec<Arc<AtomicU64>>,
}

impl FederatedShardedWorld {
    /// Total deliveries across all domains.
    pub fn delivered_total(&self) -> u64 {
        self.delivered.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

/// Assemble the sharded half: core shard + one shard per domain, handoffs
/// registered. Also returns the per-domain shard-local handles and the
/// core duplex pairs so the twin builder can line up its id maps.
#[allow(clippy::type_complexity)]
fn build_sharded_half(
    params: &FederationWorldParams,
) -> (ShardedSim, Vec<Arc<AtomicU64>>, Vec<DomainHandles>, Vec<(DirLinkId, DirLinkId)>) {
    assert!(params.domains >= 1 && params.fanout >= 1 && params.depth >= 1);
    assert!(params.sink_stride >= 1 && params.rate_pps >= 1);
    let cfg = || SimConfig { queue: params.backend, ..SimConfig::default() };
    let period = SimDuration(1_000_000_000 / params.rate_pps);

    // Core shard 0: source plus one egress stub per domain.
    let mut nb0 = NetworkBuilder::new(cfg());
    let src = nb0.add_node("src");
    let stubs: Vec<NodeId> =
        (0..params.domains).map(|d| nb0.add_node(format!("stub{d}"))).collect();
    let core_pairs: Vec<(DirLinkId, DirLinkId)> =
        stubs.iter().map(|&s| nb0.add_link(src, s, LinkConfig::kbps(100_000.0))).collect();
    let mut core = nb0.build();
    if params.trace_cap > 0 {
        core.trace.enable(params.trace_cap);
    }
    core.add_app(src, Box::new(FeedSource { stubs: stubs.clone(), period }));
    let outboxes: Vec<Outbox> = (0..params.domains).map(|_| Outbox::default()).collect();
    for (d, &stub) in stubs.iter().enumerate() {
        core.add_app(stub, Box::new(EgressApp::new(Arc::clone(&outboxes[d]))));
    }

    // One shard per domain: border feeder plus batch-joined sinks.
    let mut shards = vec![core];
    let mut shard_domains = Vec::new();
    let mut delivered_sharded = Vec::new();
    for d in 0..params.domains {
        let mut nb = NetworkBuilder::new(cfg());
        let (border, all, leaves, links) = add_domain_tree(&mut nb, d, params.fanout, params.depth);
        let mut sim = nb.build();
        if params.trace_cap > 0 {
            sim.trace.enable(params.trace_cap);
        }
        let group = sim.create_group(border);
        sim.add_app(border, Box::new(BorderFeeder { group, seq: 0 }));
        let delivered = Arc::new(AtomicU64::new(0));
        let mut members = Vec::new();
        for (i, &leaf) in leaves.iter().enumerate() {
            if i % params.sink_stride == 0 {
                let app = sim.add_app(
                    leaf,
                    Box::new(DomainSink { group, delivered: Arc::clone(&delivered) }),
                );
                members.push((leaf, app));
            }
        }
        sim.batch_join(group, &members);
        delivered_sharded.push(delivered);
        shards.push(sim);
        shard_domains.push((border, all, leaves, links));
    }

    let mut sharded = ShardedSim::new(shards);
    for (d, outbox) in outboxes.into_iter().enumerate() {
        let border = shard_domains[d].0;
        sharded.add_handoff(0, outbox, d + 1, border, params.handoff_delay);
    }
    (sharded, delivered_sharded, shard_domains, core_pairs)
}

/// Build only the sharded half of a federated world (no oracle twin).
pub fn federated_media_sharded(params: FederationWorldParams) -> FederatedShardedWorld {
    let (sharded, delivered, _, _) = build_sharded_half(&params);
    FederatedShardedWorld { params, sharded, delivered }
}

/// Build the sharded world and its sequential oracle from one parameter set.
///
/// Both worlds are constructed in the identical order (core first, then each
/// domain), so the oracle's core ids coincide with shard 0's local ids and
/// every domain maps by a fixed offset; the maps in the returned world make
/// that explicit. The only structural difference is the stub app: an
/// [`EgressApp`] capturing into the handoff mailbox on the sharded side, a
/// [`RelayApp`] re-injecting after the same delay on the oracle side.
pub fn federated_media_world(params: FederationWorldParams) -> FederatedMediaWorld {
    let (sharded, delivered_sharded, shard_domains, core_pairs) = build_sharded_half(&params);
    let cfg = || SimConfig { queue: params.backend, ..SimConfig::default() };
    let period = SimDuration(1_000_000_000 / params.rate_pps);

    // Core ids coincide between shard 0 and the oracle (identical build
    // order), so the maps start as the identity.
    let mut node_map: Vec<(usize, NodeId)> =
        (0..1 + params.domains as u32).map(|i| (0, NodeId(i))).collect();
    let mut link_map: Vec<(usize, DirLinkId)> =
        (0..2 * params.domains as u32).map(|i| (0, DirLinkId(i))).collect();

    // --- Oracle: the same world in one simulator ---------------------------
    let mut nb = NetworkBuilder::new(cfg());
    let osrc = nb.add_node("src");
    let ostubs: Vec<NodeId> =
        (0..params.domains).map(|d| nb.add_node(format!("stub{d}"))).collect();
    let core_links: Vec<(DirLinkId, DirLinkId)> =
        ostubs.iter().map(|&s| nb.add_link(osrc, s, LinkConfig::kbps(100_000.0))).collect();
    // Identical build order makes the core id maps the identity.
    assert_eq!(core_pairs, core_links);
    let mut oracle_domains = Vec::new();
    for d in 0..params.domains {
        oracle_domains.push(add_domain_tree(&mut nb, d, params.fanout, params.depth));
    }
    let mut oracle = nb.build();
    if params.trace_cap > 0 {
        oracle.trace.enable(params.trace_cap);
    }
    oracle.add_app(osrc, Box::new(FeedSource { stubs: ostubs.clone(), period }));
    for (d, &stub) in ostubs.iter().enumerate() {
        let border = oracle_domains[d].0;
        oracle.add_app(stub, Box::new(RelayApp { dest: border, delay: params.handoff_delay }));
    }
    let mut delivered_oracle = Vec::new();
    let mut domain_nodes = Vec::new();
    let mut domain_links = Vec::new();
    for (d, (border, all, leaves, links)) in oracle_domains.iter().enumerate() {
        let group = oracle.create_group(*border);
        oracle.add_app(*border, Box::new(BorderFeeder { group, seq: 0 }));
        let delivered = Arc::new(AtomicU64::new(0));
        let mut members = Vec::new();
        for (i, &leaf) in leaves.iter().enumerate() {
            if i % params.sink_stride == 0 {
                let app = oracle.add_app(
                    leaf,
                    Box::new(DomainSink { group, delivered: Arc::clone(&delivered) }),
                );
                members.push((leaf, app));
            }
        }
        oracle.batch_join(group, &members);
        delivered_oracle.push(delivered);

        // Extend the id maps: oracle id → (shard d+1, domain-local id).
        // Both worlds built the domain with the same helper, so the oracle
        // ids are exactly the next contiguous block and zip lines them up.
        let (_, local_all, _, local_links) = &shard_domains[d];
        assert_eq!(all.len(), local_all.len());
        for (o, &l) in all.iter().zip(local_all) {
            assert_eq!(o.index(), node_map.len());
            node_map.push((d + 1, l));
        }
        for (&(oa, _), &(la, lb)) in links.iter().zip(local_links) {
            assert_eq!(oa.0 as usize, link_map.len());
            link_map.push((d + 1, la));
            link_map.push((d + 1, lb));
        }
        domain_nodes.push(all.clone());
        domain_links.push(links.clone());
    }

    FederatedMediaWorld {
        params,
        sharded,
        oracle,
        delivered_sharded,
        delivered_oracle,
        node_map,
        link_map,
        core_links,
        domain_nodes,
        domain_links,
    }
}

impl FederatedMediaWorld {
    /// Install one fault plan (expressed in oracle ids) into both worlds:
    /// verbatim into the oracle, and partitioned by node/link ownership into
    /// per-shard plans with shard-local ids. Must be called before either
    /// world starts running.
    pub fn install_faults(&mut self, plan: &netsim::FaultPlan) {
        use netsim::FaultKind;
        self.oracle.install_faults(plan);
        let mut per_shard: Vec<netsim::FaultPlan> =
            (0..self.sharded.shard_count()).map(|_| netsim::FaultPlan::new()).collect();
        for &(t, kind) in plan.events() {
            let (shard, local) = match kind {
                FaultKind::LinkDown(l) => {
                    let (s, ll) = self.link_map[l.0 as usize];
                    (s, FaultKind::LinkDown(ll))
                }
                FaultKind::LinkUp(l) => {
                    let (s, ll) = self.link_map[l.0 as usize];
                    (s, FaultKind::LinkUp(ll))
                }
                FaultKind::NodeCrash(n) => {
                    let (s, ln) = self.node_map[n.index()];
                    (s, FaultKind::NodeCrash(ln))
                }
                FaultKind::NodeRestart(n) => {
                    let (s, ln) = self.node_map[n.index()];
                    (s, FaultKind::NodeRestart(ln))
                }
            };
            per_shard[shard] = std::mem::take(&mut per_shard[shard]).at(t, local);
        }
        for (s, p) in per_shard.iter().enumerate() {
            if !p.is_empty() {
                self.sharded.install_faults(s, p);
            }
        }
    }

    /// Run both worlds to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.sharded.run_until(deadline);
        self.oracle.run_until(deadline);
    }

    /// Total deliveries per world: `(sharded, oracle)`.
    pub fn delivered(&self) -> (u64, u64) {
        let s = self.delivered_sharded.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        let o = self.delivered_oracle.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        (s, o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_tree_shape() {
        let (tree, leaves) = balanced_session_tree(0, 3, 3);
        assert_eq!(leaves.len(), 27);
        assert_eq!(tree.tree().len(), 1 + 3 + 9 + 27);
        assert!(leaves.iter().all(|&l| tree.tree().is_leaf(l)));
    }

    #[test]
    fn ten_k_domain_is_reachable() {
        let (tree, leaves) = balanced_session_tree(0, 10, 4);
        assert_eq!(leaves.len(), 10_000);
        assert!(tree.tree().len() >= 10_000, "domain must span ≥10k nodes");
    }

    #[test]
    fn churn_touches_requested_fraction() {
        let (_, leaves) = balanced_session_tree(0, 10, 3);
        let mut reports = reports_for_leaves(0, &leaves, 3, 0);
        let before = reports.clone();
        let touched = churn_fraction(&mut reports, 0.01, 1);
        assert_eq!(touched, 10);
        let changed = reports.iter().zip(&before).filter(|(a, b)| a != b).count();
        assert_eq!(changed, touched, "every touched report must differ");
        // A later round with the same fraction rotates to a different set.
        let mid = reports.clone();
        churn_fraction(&mut reports, 0.01, 2);
        assert_ne!(reports, mid);
    }

    #[test]
    fn churn_full_fraction_touches_everything() {
        let (_, leaves) = balanced_session_tree(0, 4, 2);
        let mut reports = reports_for_leaves(0, &leaves, 3, 0);
        let before = reports.clone();
        let touched = churn_fraction(&mut reports, 1.0, 0);
        assert_eq!(touched, before.len());
        assert!(reports.iter().zip(&before).all(|(a, b)| a != b));
    }

    #[test]
    fn media_sim_delivers_and_backends_agree() {
        let mut results = Vec::new();
        for backend in [QueueBackend::CalendarWheel, QueueBackend::BinaryHeap] {
            let mut m = media_sim(3, 3, 2, 50, backend);
            assert_eq!(m.leaves.len(), 27);
            assert_eq!(m.sinks, 14);
            m.sim.run_until(SimTime::from_secs(2));
            assert!(m.delivered() > 0, "sinks must receive media");
            results.push((m.sim.events_processed(), m.delivered()));
        }
        assert_eq!(results[0], results[1], "wheel and heap must agree exactly");
    }

    #[test]
    fn diurnal_profile_peaks_at_midday_and_repeats() {
        let p = 24u64;
        assert_eq!(diurnal_fraction(0, p, 0.01, 0.5), 0.01);
        assert_eq!(diurnal_fraction(12, p, 0.01, 0.5), 0.5);
        assert_eq!(diurnal_fraction(0, p, 0.01, 0.5), diurnal_fraction(24, p, 0.01, 0.5));
        // Monotone up the morning, down the evening.
        for r in 0..12 {
            assert!(diurnal_fraction(r, p, 0.0, 1.0) < diurnal_fraction(r + 1, p, 0.0, 1.0));
        }
        for r in 12..23 {
            assert!(diurnal_fraction(r, p, 0.0, 1.0) > diurnal_fraction(r + 1, p, 0.0, 1.0));
        }
    }

    #[test]
    fn heterogeneous_lastmile_cycles_capacity_classes() {
        let caps = [150.0, 600.0, 2500.0];
        let s = heterogeneous_lastmile(3, 2, &caps);
        let receivers = s.receivers();
        assert_eq!(receivers.len(), 9);
        // Every class is represented and matches its leaf link capacity.
        for (node, (_, set)) in receivers {
            let parent = s.links.iter().find(|l| l.b == node).map(|l| l.a).unwrap();
            let cap = s.capacity_between(parent, node).unwrap();
            assert_eq!(cap, caps[set as usize] * 1000.0);
        }
        // Buildable into a simulator.
        let built = s.instantiate(Default::default());
        assert_eq!(built.sim.network().node_count(), s.nodes.len());
    }

    #[test]
    fn flash_crowd_membership_jumps_at_join_round() {
        let (_, leaves) = balanced_session_tree(0, 4, 2);
        let (reg_before, rep_before) = flash_crowd_membership(0, &leaves, 3, 4, 5, 1, 0);
        assert_eq!(reg_before.len(), 3);
        assert_eq!(rep_before.len(), 3);
        let (reg_after, rep_after) = flash_crowd_membership(0, &leaves, 3, 5, 5, 1, 0);
        assert_eq!(reg_after.len(), leaves.len());
        assert_eq!(rep_after.len(), leaves.len());
        // The core keeps its identities across the join (no re-keying).
        assert_eq!(&reg_after[..3], &reg_before[..]);
    }

    #[test]
    fn border_capacity_oracle_matches_fitting_levels() {
        let spec = traffic::LayerSpec::paper_default();
        let (_, leaves) = balanced_session_tree(0, 2, 2);
        let fit = vec![2u8; leaves.len()];
        let ok =
            reports_behind_border(0, &leaves, &fit, 150_000.0, &spec, SimDuration::from_secs(2));
        assert!(ok.iter().all(|r| r.lost == 0), "at the fitting level nothing is lost");
        let over = vec![3u8; leaves.len()];
        let lossy =
            reports_behind_border(0, &leaves, &over, 150_000.0, &spec, SimDuration::from_secs(2));
        assert!(lossy.iter().all(|r| r.lost > 0), "overshooting the border loses packets");
        // Bytes saturate at the border: observed throughput re-derives the
        // capacity, which is what parent stage 2 learns from the fold.
        assert_eq!(lossy[0].bytes, (150_000.0 / 8.0 * 2.0) as u64);
    }

    #[test]
    fn federated_world_shape() {
        let (domains, leaves) = federated_domains(3, 2, 2, toposense::Config::default(), 1);
        assert_eq!(domains.len(), 3);
        assert_eq!(leaves.len(), 4);
        assert!(domains.iter().all(|d| d.receivers() == 4));
    }

    #[test]
    fn federated_media_world_twin_agrees() {
        let mut w = federated_media_world(FederationWorldParams::default());
        assert_eq!(w.sharded.shard_count(), 4, "core + 3 domains");
        // Maps cover every oracle node and directed link.
        assert_eq!(w.node_map.len(), w.oracle.network().node_count());
        assert_eq!(w.link_map.len(), w.oracle.network().link_count());
        w.run_until(SimTime::from_secs(2));
        let (s, o) = w.delivered();
        assert_eq!(s, o, "sharded and oracle deliveries diverged");
        assert!(s > 0, "the twin must carry real traffic");
        assert_eq!(w.sharded.events_processed(), w.oracle.events_processed());
        assert_eq!(w.sharded.packets_live(), w.oracle.packets_live());
        for i in 0..w.sharded.shard_count() {
            w.sharded.shard(i).network().multicast_audit().unwrap();
        }
        w.oracle.network().multicast_audit().unwrap();
    }

    #[test]
    fn federated_media_world_faults_stay_twinned() {
        let mut w = federated_media_world(FederationWorldParams::default());
        // Crash a mid-tier node of domain 1 and flap its border link to the
        // core — faults on both sides of a handoff, in oracle ids.
        let mid = w.domain_nodes[1][1];
        let plan = netsim::FaultPlan::new()
            .node_outage(mid, SimTime::from_millis(300), SimTime::from_millis(900))
            .link_outage(w.core_links[1], SimTime::from_millis(500), SimTime::from_millis(700));
        w.install_faults(&plan);
        w.run_until(SimTime::from_secs(2));
        let (s, o) = w.delivered();
        assert_eq!(s, o, "faulted sharded and oracle deliveries diverged");
        assert_eq!(w.sharded.events_processed(), w.oracle.events_processed());
    }

    #[test]
    fn churn_zero_fraction_is_a_noop() {
        let (_, leaves) = balanced_session_tree(0, 2, 2);
        let mut reports = reports_for_leaves(0, &leaves, 3, 2);
        let before = reports.clone();
        assert_eq!(churn_fraction(&mut reports, 0.0, 5), 0);
        assert_eq!(reports, before);
    }
}
