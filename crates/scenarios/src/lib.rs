//! # scenarios — end-to-end experiment harness
//!
//! Assembles a [`topology::TopoSpec`] into a live simulation — sources,
//! receivers, controller — runs it, and collects the measurements the
//! paper's figures are built from.
//!
//! * [`runner`] — one scenario = one simulation run ([`runner::run`]).
//! * [`experiments`] — the parameter sweeps behind every figure of the
//!   paper (Figs. 1 and 6–10 plus the §IV convergence claims), each
//!   returning typed rows so binaries print them and tests assert on them.
//! * [`ablations`] — sweeps for the open questions of the paper's §V
//!   (interval size, leave latency, layer granularity, queue discipline,
//!   control-traffic scaling).
//! * [`chaos`] — canned fault plans (link flap, router crash, discovery
//!   outage, controller failover, seeded chaos) and the recovery-bound
//!   checker behind `tests/chaos.rs`.
//! * [`largetree`] — balanced ≥10k-node domains with deterministic report
//!   churn at a configurable dirty fraction, the workload behind the
//!   incremental-pipeline bench and smoke tests.
//! * [`campaign`] — the deterministic evaluation-campaign harness
//!   (DESIGN.md §13): a scenario-matrix builder over the zoo workloads
//!   with pass/fail gates and byte-identical JSON/markdown artifacts.

pub mod ablations;
pub mod campaign;
pub mod chaos;
pub mod experiments;
pub mod largetree;
pub mod runner;

pub use campaign::{CampaignReport, CampaignSpec, Gate, GateStatus, Profile, RunRecord};
pub use runner::{run, ControlMode, ReceiverOutcome, Scenario, ScenarioResult, SpecFault};
