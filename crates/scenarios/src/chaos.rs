//! Canned chaos scenarios (DESIGN.md §9): the fault plans the integration
//! suite (`tests/chaos.rs`), the CI determinism check, and the README
//! example all run.
//!
//! Each constructor returns the prepared [`Scenario`] plus the instant the
//! *last* fault heals — the reference point for the recovery bound checked
//! by [`verify_recovery`]: every surviving receiver back within one layer
//! of its oracle level within a bounded number of control intervals.

use crate::runner::{Scenario, ScenarioResult, SpecFault};
use netsim::{LinkConfig, SimDuration, SimTime};
use topology::generators;
use topology::spec::{NodeRole, TopoSpec};
use traffic::TrafficModel;

/// The paper's 200 ms link latency (matches `topology::generators`).
const LATENCY: SimDuration = SimDuration(200 * 1_000_000);

/// The toposense config the chaos plans run under: identical to the
/// defaults except for a much shorter re-add backoff (4–8 s instead of
/// 14–40 s), so a receiver that shed layers during a fault can climb back
/// within the 10-interval recovery bound after the fault heals.
pub fn chaos_config() -> toposense::Config {
    toposense::Config {
        backoff_min: SimDuration::from_secs(4),
        backoff_max: SimDuration::from_secs(8),
        ..toposense::Config::default()
    }
}

/// Bottleneck link flap on Topology A: the 150 kb/s `core -> lan0` link
/// (spec link 1) goes down for 3 s, three times, 15 s apart.
pub fn link_flap(seed: u64) -> (Scenario, SimTime) {
    let s = Scenario::new(generators::topology_a_default(2), TrafficModel::Cbr, seed)
        .with_config(chaos_config())
        .with_duration(SimDuration::from_secs(150))
        .with_fault(SpecFault::LinkFlap {
            link: 1,
            first_down: SimTime::from_secs(40),
            down_for: SimDuration::from_secs(3),
            period: SimDuration::from_secs(15),
            repeats: 3,
        });
    // Last down at 70 s, healed 3 s later.
    (s, SimTime::from_secs(73))
}

/// Router crash on Topology A: the `lan0` router (spec node 2) crashes at
/// 40 s and restarts at 44 s with empty multicast state — its receivers go
/// dark until their dead-air repair re-grafts the tree.
pub fn router_crash(seed: u64) -> (Scenario, SimTime) {
    let s = Scenario::new(generators::topology_a_default(2), TrafficModel::Cbr, seed)
        .with_config(chaos_config())
        .with_duration(SimDuration::from_secs(150))
        .with_fault(SpecFault::NodeOutage {
            node: 2,
            from: SimTime::from_secs(40),
            until: SimTime::from_secs(44),
        });
    (s, SimTime::from_secs(44))
}

/// Total discovery outage on Topology A over `[40 s, 60 s)`: the controller
/// degrades to last-known-good, then suspends, then resumes.
pub fn discovery_outage(seed: u64) -> (Scenario, SimTime) {
    let s = Scenario::new(generators::topology_a_default(2), TrafficModel::Cbr, seed)
        .with_config(chaos_config())
        .with_duration(SimDuration::from_secs(150))
        .with_discovery_outage(SimTime::from_secs(40), SimTime::from_secs(60));
    (s, SimTime::from_secs(60))
}

/// Partial discovery outage on Topology A: over `[40 s, 60 s)` the tool
/// answers with the whole `lan1` subtree (spec nodes 5–7) missing, so the
/// controller steers only the receivers it can still see.
pub fn partial_discovery_outage(seed: u64) -> (Scenario, SimTime) {
    let s = Scenario::new(generators::topology_a_default(2), TrafficModel::Cbr, seed)
        .with_config(chaos_config())
        .with_duration(SimDuration::from_secs(150))
        .with_discovery_partial_outage(
            SimTime::from_secs(40),
            SimTime::from_secs(60),
            vec![5, 6, 7],
        );
    (s, SimTime::from_secs(60))
}

/// Topology A with the controller on a dedicated node plus a warm-standby
/// node, so the controller can crash without killing the source:
///
/// ```text
///   src ---- core ---- [150] lan0 -- 2 receivers
///   ctl ----/    \---- [600] lan1 -- 2 receivers
///   ctl2 ---/
/// ```
pub fn failover_topo() -> TopoSpec {
    let fat = || LinkConfig::kbps(100_000.0).with_delay(LATENCY);
    let thin = |kbps: f64| LinkConfig::kbps(kbps).with_delay(LATENCY);
    let mut s = TopoSpec::new("failover-a");
    let src = s.node("src", vec![NodeRole::Source { session: 0 }]);
    let ctl = s.node("ctl", vec![NodeRole::Controller]);
    let ctl2 = s.node("ctl2", vec![NodeRole::Router]);
    let core = s.node("core", vec![NodeRole::Router]);
    s.link(src, core, fat());
    s.link(ctl, core, fat());
    s.link(ctl2, core, fat());
    for (set, cap) in [(0u32, 150.0), (1u32, 600.0)] {
        let lan = s.node(format!("lan{set}"), vec![NodeRole::Router]);
        s.link(core, lan, thin(cap));
        for r in 0..2 {
            let rcv = s.node(format!("rcv{set}.{r}"), vec![NodeRole::Receiver { session: 0, set }]);
            s.link(lan, rcv, fat());
        }
    }
    s
}

/// `failover_topo` with the controller on a *slow* control uplink (3 s
/// one-way on `ctl — core`): every report reaches the controller 3.4 s
/// after it was sent, so the controller's first post-restart tick (+2 s)
/// provably runs before any post-restart report can have arrived.
fn blackout_topo() -> TopoSpec {
    let fat = || LinkConfig::kbps(100_000.0).with_delay(LATENCY);
    let slow = LinkConfig::kbps(100_000.0).with_delay(SimDuration::from_secs(3));
    let thin = |kbps: f64| LinkConfig::kbps(kbps).with_delay(LATENCY);
    let mut s = TopoSpec::new("blackout-a");
    let src = s.node("src", vec![NodeRole::Source { session: 0 }]);
    let ctl = s.node("ctl", vec![NodeRole::Controller]);
    let core = s.node("core", vec![NodeRole::Router]);
    s.link(src, core, fat());
    s.link(ctl, core, slow);
    for (set, cap) in [(0u32, 150.0), (1u32, 600.0)] {
        let lan = s.node(format!("lan{set}"), vec![NodeRole::Router]);
        s.link(core, lan, thin(cap));
        for r in 0..2 {
            let rcv = s.node(format!("rcv{set}.{r}"), vec![NodeRole::Receiver { session: 0, set }]);
            s.link(lan, rcv, fat());
        }
    }
    s
}

/// Solo-controller blackout: the only controller (`blackout_topo`'s `ctl`,
/// spec node 1 — no standby) goes dark from 40 s to 72 s and restarts.
/// Its uplink (spec link 1) fails for the same window, flushing the
/// reports already riding the 3 s wire — so the first post-restart tick
/// at 74 s provably runs before any report can have refreshed a silence
/// clock (earliest post-heal arrival is ≥ 75 s). The outage (32 s) is
/// longer than `evict_after` (24 s): only the restart-instant re-anchor
/// keeps the registry from being evicted wholesale for quiet accrued
/// during the controller's *own* outage.
pub fn controller_blackout(seed: u64) -> (Scenario, SimTime) {
    let s = Scenario::new(blackout_topo(), TrafficModel::Cbr, seed)
        .with_config(chaos_config())
        .with_duration(SimDuration::from_secs(150))
        .with_fault(SpecFault::NodeOutage {
            node: 1,
            from: SimTime::from_secs(40),
            until: SimTime::from_secs(72),
        })
        .with_fault(SpecFault::LinkOutage {
            link: 1,
            from: SimTime::from_secs(40),
            until: SimTime::from_secs(72),
        });
    (s, SimTime::from_secs(72))
}

/// Controller failover: the primary's node (spec node 1) crashes for good
/// at 40 s; the warm standby on spec node 2 must take over and keep
/// steering the receivers.
pub fn controller_failover(seed: u64) -> (Scenario, SimTime) {
    let s = Scenario::new(failover_topo(), TrafficModel::Cbr, seed)
        .with_config(chaos_config())
        .with_duration(SimDuration::from_secs(150))
        .with_standby(2)
        .with_fault(SpecFault::NodeCrash { node: 1, from: SimTime::from_secs(40) });
    (s, SimTime::from_secs(40))
}

/// Primary crash *mid-interval*: the primary's node (spec node 1) dies for
/// good at 41 s — between its 40 s and 42 s ticks, so the interval in
/// flight is lost along with it. The input-synced standby on spec node 2
/// (replication on by default) must take over within
/// `failover_after + interval` and resume the suggestion stream from its
/// own replicated `AlgorithmState` with zero re-learning.
pub fn primary_crash_mid_interval(seed: u64) -> (Scenario, SimTime) {
    let s = Scenario::new(failover_topo(), TrafficModel::Cbr, seed)
        .with_config(chaos_config())
        .with_duration(SimDuration::from_secs(150))
        .with_standby(2)
        .with_fault(SpecFault::NodeCrash { node: 1, from: SimTime::from_millis(41_000) });
    (s, SimTime::from_millis(41_000))
}

/// Replica partition: the standby's uplink (spec link 2, `ctl2 -> core`)
/// goes down over `[40 s, 50 s)`. The replica misses input batches, falls
/// behind, and on heal must catch back up through a checkpoint resync —
/// exercising the `CheckpointTransfer` path end to end over the wire.
pub fn replica_partition(seed: u64) -> (Scenario, SimTime) {
    let s = Scenario::new(failover_topo(), TrafficModel::Cbr, seed)
        .with_config(chaos_config())
        .with_duration(SimDuration::from_secs(150))
        .with_standby(2)
        .with_fault(SpecFault::LinkOutage {
            link: 2,
            from: SimTime::from_secs(40),
            until: SimTime::from_secs(50),
        });
    (s, SimTime::from_secs(50))
}

/// Seeded-random chaos across every link and node of Topology A: 6 outages
/// of 0.5–10 s inside `[40 s, 100 s)`. Used for the no-panic/determinism
/// invariants, not the recovery bound (the plan may crash the source or
/// the controller itself).
pub fn random_chaos(seed: u64) -> (Scenario, SimTime) {
    let s = Scenario::new(generators::topology_a_default(2), TrafficModel::Cbr, seed)
        .with_config(chaos_config())
        .with_duration(SimDuration::from_secs(180))
        .with_fault(SpecFault::Chaos {
            seed: netsim::derive_stream_seed(seed, "chaos-plan", 0),
            from: SimTime::from_secs(40),
            until: SimTime::from_secs(100),
            events: 6,
        });
    // Chaos outages last at most 10 s past the window's edge.
    (s, SimTime::from_secs(110))
}

/// One cell of the campaign matrix's fault axis (DESIGN.md §13): a fault
/// shape that can be stamped onto *any* scenario, with the fault window
/// scaled to the scenario's duration (middle third) so every workload sees
/// comparable injury and a known heal instant for the recovery gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAxis {
    /// Fault-free control cell.
    None,
    /// Spec link `link` flaps three times, 3 s down per flap.
    LinkFlap { link: usize },
    /// Spec node `node` crashes and restarts 4 s later.
    RouterCrash { node: usize },
    /// Seeded random chaos, `events` outages across the whole topology.
    Chaos { events: u32 },
}

impl FaultAxis {
    /// A short stable label for artifacts and run ids.
    pub fn label(&self) -> String {
        match *self {
            FaultAxis::None => "none".into(),
            FaultAxis::LinkFlap { link } => format!("flap-l{link}"),
            FaultAxis::RouterCrash { node } => format!("crash-n{node}"),
            FaultAxis::Chaos { events } => format!("chaos-{events}"),
        }
    }

    /// Stamp the fault onto `s`. Returns the scenario plus the instant the
    /// last fault heals (`None` for the control cell and for chaos, whose
    /// recovery is unbounded by design — a chaos plan may crash the source
    /// or the controller for good).
    pub fn apply(&self, s: Scenario) -> (Scenario, Option<SimTime>) {
        let dur = s.duration.as_secs_f64();
        let third = SimTime::ZERO + SimDuration::from_secs_f64(dur / 3.0);
        match *self {
            FaultAxis::None => (s, None),
            FaultAxis::LinkFlap { link } => {
                let period = SimDuration::from_secs(15);
                let down = SimDuration::from_secs(3);
                let s = s.with_fault(SpecFault::LinkFlap {
                    link,
                    first_down: third,
                    down_for: down,
                    period,
                    repeats: 3,
                });
                (s, Some(third + period * 2 + down))
            }
            FaultAxis::RouterCrash { node } => {
                let heal = third + SimDuration::from_secs(4);
                let s = s.with_fault(SpecFault::NodeOutage { node, from: third, until: heal });
                (s, Some(heal))
            }
            FaultAxis::Chaos { events } => {
                let seed = netsim::derive_stream_seed(s.seed, "chaos-plan", 1);
                let until = SimTime::ZERO + SimDuration::from_secs_f64(dur * 2.0 / 3.0);
                let s = s.with_fault(SpecFault::Chaos { seed, from: third, until, events });
                (s, None)
            }
        }
    }
}

/// Check the §9 recovery bound: every surviving receiver must return to
/// within one layer of its oracle level within `max_intervals` controller
/// intervals of `heal_at`. First return, not settling — the controller's
/// steady state keeps probing a layer above the optimum and backing off.
pub fn verify_recovery(
    r: &ScenarioResult,
    cfg: &toposense::Config,
    heal_at: SimTime,
    max_intervals: u64,
) -> Result<(), String> {
    let horizon = SimTime::ZERO + r.duration;
    for rec in &r.receivers {
        let series = rec.level_series();
        let rt = metrics::recovery_time(&series, heal_at, rec.optimal as f64, 1.0, horizon)
            .ok_or_else(|| {
                format!(
                    "receiver {:?} (set {}) never recovered to ~{}; changes: {:?}",
                    rec.node, rec.set, rec.optimal, rec.stats.changes
                )
            })?;
        let intervals = metrics::intervals_to_recover(rt, cfg.interval);
        if intervals > max_intervals {
            return Err(format!(
                "receiver {:?} (set {}) took {intervals} intervals (> {max_intervals}); changes: {:?}",
                rec.node, rec.set, rec.stats.changes
            ));
        }
    }
    Ok(())
}

/// Build a `blackbox.v1` failure dump from a completed run: the
/// controllers' flight-recorder windows, the simulator's profile counters,
/// the seed and the effective-config fingerprint. Harnesses write it next
/// to their artifacts when [`verify_recovery`] trips or a campaign gate
/// fails, so the last moments survive without a re-run.
pub fn blackbox(
    r: &ScenarioResult,
    cfg: &toposense::Config,
    seed: u64,
    reason: &str,
    label: &str,
) -> telemetry::Blackbox {
    let mut counters: Vec<(String, u64)> = r
        .profile
        .counter_entries()
        .iter()
        .map(|&(n, v)| (format!("netsim.profile.{n}"), v))
        .collect();
    counters.push(("scenario.control_bytes".into(), r.control_bytes));
    counters.push(("scenario.events".into(), r.events));
    counters.push(("scenario.total_drops".into(), r.total_drops));
    counters.sort();
    let mut occurrences = Vec::new();
    let mut ring_dropped = 0;
    for c in [r.controller.as_ref(), r.standby.as_ref()].into_iter().flatten() {
        occurrences.extend(c.flight.occurrences());
        ring_dropped += c.flight.dropped();
    }
    // Two rings interleave (primary + standby); restore one timeline.
    occurrences.sort_by_key(|o| (o.t_ns, o.seq));
    telemetry::Blackbox {
        reason: reason.to_string(),
        label: label.to_string(),
        seed,
        config_fingerprint: format!("{:016x}", cfg.fingerprint()),
        t_ns: r.duration.nanos(),
        counters,
        occurrences,
        ring_dropped,
    }
}

/// A stable, fully-deterministic text rendering of a scenario result — the
/// CI determinism check runs a fixed fault plan twice and diffs this.
pub fn fingerprint(r: &ScenarioResult) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "events={} drops={} control_bytes={}", r.events, r.total_drops, r.control_bytes)
        .unwrap();
    for (tag, c) in [("ctrl", r.controller.as_ref()), ("standby", r.standby.as_ref())] {
        if let Some(c) = c {
            writeln!(
                out,
                "{tag} intervals={} suggestions={} registered={} degraded={} suspended={} \
                 partial={} quarantined={} evicted={} acks={} failover={:?}",
                c.intervals,
                c.suggestions_sent,
                c.registered,
                c.degraded_intervals,
                c.suspended_intervals,
                c.partial_intervals,
                c.quarantined,
                c.evicted,
                c.acks_sent,
                c.failover_at,
            )
            .unwrap();
            writeln!(
                out,
                "{tag}.repl applied={} acks={} divergences={} quarantined={} resyncs={}",
                c.replica_applied,
                c.replica_acks,
                c.replica_divergences,
                c.replica_quarantined,
                c.replica_resyncs,
            )
            .unwrap();
        }
    }
    for rec in &r.receivers {
        writeln!(
            out,
            "rcv node={:?} session={} set={} optimal={} final={} reports={} registers={} \
             rejoins={} unilateral={} suggestions={} changes={:?}",
            rec.node,
            rec.session,
            rec.set,
            rec.optimal,
            rec.stats.final_level(),
            rec.stats.reports_sent,
            rec.stats.registers_sent,
            rec.stats.rejoins,
            rec.stats.unilateral_actions,
            rec.stats.suggestions_received,
            rec.stats.changes,
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_topo_is_well_formed() {
        let t = failover_topo();
        assert_eq!(t.controller(), 1);
        assert_eq!(t.receivers().len(), 4);
        assert_eq!(t.sources(), vec![(0, 0)]);
        // Spec node 2 (the standby host) is a plain router.
        assert_eq!(t.nodes[2].roles, vec![NodeRole::Router]);
    }

    #[test]
    fn canned_plans_build() {
        for (s, heal) in [
            link_flap(1),
            router_crash(1),
            discovery_outage(1),
            partial_discovery_outage(1),
            controller_failover(1),
            primary_crash_mid_interval(1),
            replica_partition(1),
            random_chaos(1),
        ] {
            assert!(SimTime::ZERO + s.duration > heal, "must run past the heal point");
            s.cfg.validate();
        }
    }
}
