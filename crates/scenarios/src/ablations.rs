//! Ablation studies for the open questions of the paper's §V
//! ("Challenges in using topology"), each a small parameter sweep:
//!
//! * **interval size** — "choosing the optimal interval size is crucial";
//! * **group-leave latency** — "the latency in dropping a layer can cause
//!   congestion";
//! * **layer granularity** — "finer granularity … limits the magnitude of
//!   possible congestion [but] can delay convergence";
//! * **queue discipline** — drop-tail (the paper's choice) vs. the
//!   layer-priority dropping of Bajaj/Breslau/Shenker it cites;
//! * **control traffic** — "the number of information packets exchanged in
//!   every interval is linear with respect to the number of receivers and
//!   sessions".

use crate::runner::{self, Scenario};
use netsim::{QueueDiscipline, SimDuration, SimTime};
use rayon::prelude::*;
use topology::generators;
use traffic::{LayerSpec, TrafficModel};

/// One ablation measurement.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// The knob value, printed as given.
    pub knob: String,
    /// Mean relative deviation (whole run).
    pub deviation: f64,
    /// Mean receiver loss rate (whole run).
    pub mean_loss: f64,
    /// Max subscription changes by any receiver.
    pub max_changes: usize,
    /// Control bytes exchanged.
    pub control_bytes: u64,
}

fn measure(scenario: &Scenario, knob: String) -> AblationRow {
    let r = runner::run(scenario);
    let end = SimTime::ZERO + scenario.duration;
    let mean_loss = r.receivers.iter().map(|x| x.mean_loss(SimTime::ZERO, end)).sum::<f64>()
        / r.receivers.len() as f64;
    let (max_changes, _) = r.stability(SimTime::from_secs(5), end);
    AblationRow {
        knob,
        deviation: r.mean_relative_deviation(SimTime::ZERO, end).unwrap_or(f64::NAN),
        mean_loss,
        max_changes,
        control_bytes: r.control_bytes,
    }
}

/// §V "Interval size": sweep the controller interval on Topology A.
pub fn interval_size(intervals_secs: &[u64], duration: SimDuration, seed: u64) -> Vec<AblationRow> {
    intervals_secs
        .par_iter()
        .map(|&iv| {
            let mut cfg = toposense::Config::default();
            cfg.interval = SimDuration::from_secs(iv);
            cfg.report_interval = SimDuration::from_secs(1).min(cfg.interval);
            let s = Scenario::new(
                generators::topology_a_default(2),
                TrafficModel::Vbr { p: 3.0 },
                seed,
            )
            .with_config(cfg)
            .with_duration(duration);
            measure(&s, format!("{iv}s"))
        })
        .collect()
}

/// §V "Group-leave latency": sweep the IGMP leave latency on Topology A.
pub fn leave_latency(latencies_ms: &[u64], duration: SimDuration, seed: u64) -> Vec<AblationRow> {
    latencies_ms
        .par_iter()
        .map(|&ms| {
            let s = Scenario::new(generators::topology_a_default(2), TrafficModel::Cbr, seed)
                .with_leave_latency(SimDuration::from_millis(ms))
                .with_duration(duration);
            measure(&s, format!("{ms}ms"))
        })
        .collect()
}

/// §V "Layer granularity": the paper's 6 doubling layers vs. a
/// finer-grained 12-layer encoding with the same total rate (each doubling
/// step split into two equal halves).
pub fn layer_granularity(duration: SimDuration, seed: u64) -> Vec<AblationRow> {
    let coarse = LayerSpec::paper_default();
    let fine = LayerSpec::from_rates(vec![
        16_000.0, 16_000.0, 32_000.0, 32_000.0, 64_000.0, 64_000.0, 128_000.0, 128_000.0,
        256_000.0, 256_000.0, 512_000.0, 512_000.0,
    ]);
    let variants: Vec<(String, LayerSpec)> =
        vec![("6 layers (paper)".into(), coarse), ("12 fine layers".into(), fine)];
    variants
        .par_iter()
        .map(|(name, layers)| {
            let s = Scenario::new(generators::topology_a_default(2), TrafficModel::Cbr, seed)
                .with_layers(layers.clone())
                .with_duration(duration);
            measure(&s, name.clone())
        })
        .collect()
}

/// Drop-tail (paper) vs. layer-priority dropping (cited alternative) on
/// Topology A: priority dropping protects base layers during probes, so
/// receivers at their optimum should see less loss.
pub fn queue_discipline(duration: SimDuration, seed: u64) -> Vec<AblationRow> {
    let variants = vec![
        ("drop-tail (paper)".to_string(), QueueDiscipline::DropTail),
        ("priority-drop".to_string(), QueueDiscipline::PriorityDrop),
    ];
    variants
        .par_iter()
        .map(|(name, d)| {
            let topo = generators::topology_a_default(2).with_discipline_everywhere(*d);
            let s = Scenario::new(topo, TrafficModel::Cbr, seed).with_duration(duration);
            measure(&s, name.clone())
        })
        .collect()
}

/// §V "Minimizing control traffic": control bytes vs. receiver count on
/// Topology A — should scale linearly.
pub fn control_traffic(
    receiver_counts: &[usize],
    duration: SimDuration,
    seed: u64,
) -> Vec<AblationRow> {
    receiver_counts
        .par_iter()
        .map(|&n| {
            let s = Scenario::new(generators::topology_a_default(n), TrafficModel::Cbr, seed)
                .with_duration(duration);
            measure(&s, format!("{} receivers", 2 * n))
        })
        .collect()
}

/// §V "Estimating link capacity": how accurate is the shared-link estimate
/// against ground truth? Runs Topology B (n sessions, true shared capacity
/// `n x 500 kb/s`) and reports the fraction of intervals in which the
/// shared link had a finite estimate and the mean relative error of those
/// estimates.
#[derive(Clone, Debug)]
pub struct EstimatorAccuracy {
    pub sessions: usize,
    /// Fraction of controller intervals with a finite shared-link estimate.
    pub coverage: f64,
    /// Mean of `|estimate - true| / true` over covered intervals.
    pub mean_rel_error: f64,
    /// Worst-case relative error.
    pub max_rel_error: f64,
}

pub fn estimator_accuracy(
    session_counts: &[usize],
    duration: SimDuration,
    seed: u64,
) -> Vec<EstimatorAccuracy> {
    session_counts
        .par_iter()
        .map(|&n| {
            let s = Scenario::new(
                generators::topology_b_default(n),
                TrafficModel::Vbr { p: 3.0 },
                seed,
            )
            .with_duration(duration);
            let r = runner::run(&s);
            let ctrl = r.controller.as_ref().expect("TopoSense mode");
            // The shared link is the first spec link: forward half id 0.
            let shared = netsim::DirLinkId(0);
            let true_cap = n as f64 * 500_000.0;
            let errors: Vec<f64> = ctrl
                .estimate_series
                .iter()
                .filter(|&&(_, l, _)| l == shared)
                .map(|&(_, _, c)| (c - true_cap).abs() / true_cap)
                .collect();
            let intervals = ctrl.intervals.max(1) as f64;
            EstimatorAccuracy {
                sessions: n,
                coverage: errors.len() as f64 / intervals,
                mean_rel_error: if errors.is_empty() {
                    f64::NAN
                } else {
                    errors.iter().sum::<f64>() / errors.len() as f64
                },
                max_rel_error: errors.iter().copied().fold(f64::NAN, f64::max),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHORT: SimDuration = SimDuration(120_000_000_000);

    #[test]
    fn interval_sweep_runs() {
        let rows = interval_size(&[1, 4], SHORT, 3);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.deviation.is_finite()));
    }

    #[test]
    fn leave_latency_sweep_runs() {
        let rows = leave_latency(&[100, 2000], SHORT, 3);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn granularity_has_two_variants() {
        let rows = layer_granularity(SHORT, 3);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn control_traffic_grows_with_receivers() {
        let rows = control_traffic(&[1, 4], SimDuration::from_secs(200), 3);
        assert!(rows[1].control_bytes > rows[0].control_bytes);
        // Linear-ish: 4x the receivers should cost no more than ~6x bytes.
        assert!((rows[1].control_bytes as f64) < rows[0].control_bytes as f64 * 6.0, "{rows:?}");
    }

    #[test]
    fn discipline_variants_run() {
        let rows = queue_discipline(SHORT, 3);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn estimator_tracks_the_true_capacity() {
        let rows = estimator_accuracy(&[4], SimDuration::from_secs(300), 3);
        let r = &rows[0];
        assert!(r.coverage > 0.3, "estimate present {:.0}% of intervals", r.coverage * 100.0);
        // The series includes deliberately creep-inflated values (the
        // estimate probes upward between congestion events), so the mean
        // error is dominated by the sawtooth amplitude, not by bad
        // measurements.
        assert!(r.mean_rel_error < 0.6, "mean relative error {:.3} too large", r.mean_rel_error);
    }
}
