//! Scenario assembly and execution.
//!
//! [`run`] turns a declarative [`Scenario`] into a live simulation:
//! multicast groups (one per layer per session), a layered source per
//! session, a receiver agent per receiver role (TopoSense / RLM / fixed),
//! and — for TopoSense — the controller agent on the spec's controller
//! node. After `duration` simulated seconds it harvests every agent's
//! shared stats plus the ground-truth optimum from the oracle.

use baselines::oracle::{self, OptimalEntry};
use baselines::rlm::{RlmParams, RlmReceiver};
use baselines::tfrc::{TfrcParams, TfrcReceiver};
use baselines::FixedReceiver;
use metrics::StepSeries;
use netsim::sim::SimConfig;
use netsim::{
    derive_stream_seed, FaultPlan, GroupId, NodeId, QueueBackend, SessionId, SimDuration, SimTime,
};
use rayon::prelude::*;
use telemetry::{Record, Span, Telemetry};
use topology::spec::TopoSpec;
use toposense::controller::{Controller, ControllerShared};
use toposense::receiver::{Receiver, ReceiverHandle, ReceiverShared};
use traffic::session::SessionDef;
use traffic::{LayerSpec, LayeredSource, SessionCatalog, TrafficModel};

/// How receivers are controlled.
#[derive(Clone, Copy, Debug)]
pub enum ControlMode {
    /// The paper's system: controller + cooperating receivers, with the
    /// discovery tool serving snapshots at least `staleness` old.
    TopoSense { staleness: SimDuration },
    /// Receiver-driven baseline (no controller, no topology).
    Rlm(RlmParams),
    /// Equation-based (TCP-friendly) baseline.
    Tfrc(TfrcParams),
    /// Pin every receiver at a fixed level (no adaptation).
    Fixed(u8),
}

/// A fault expressed against **spec** indices (the runner resolves them to
/// simulator link/node ids at instantiation time).
#[derive(Clone, Debug)]
pub enum SpecFault {
    /// Both directed halves of spec link `link` go down over `[from, until)`.
    LinkOutage { link: usize, from: SimTime, until: SimTime },
    /// Periodic flap of spec link `link`.
    LinkFlap {
        link: usize,
        first_down: SimTime,
        down_for: SimDuration,
        period: SimDuration,
        repeats: u32,
    },
    /// Spec node `node` crashes at `from` and restarts at `until`.
    NodeOutage { node: usize, from: SimTime, until: SimTime },
    /// Spec node `node` crashes at `from` and never comes back.
    NodeCrash { node: usize, from: SimTime },
    /// Seeded-random chaos across every link and node of the topology.
    Chaos { seed: u64, from: SimTime, until: SimTime, events: u32 },
}

/// A complete experiment description.
#[derive(Clone, Debug)]
pub struct Scenario {
    pub topo: TopoSpec,
    pub layers: LayerSpec,
    pub traffic: TrafficModel,
    pub control: ControlMode,
    pub cfg: toposense::Config,
    pub seed: u64,
    pub duration: SimDuration,
    /// IGMP group-leave latency applied network-wide (§V ablation knob).
    pub leave_latency: SimDuration,
    /// Faults injected into the run (empty = today's fault-free behavior).
    pub faults: Vec<SpecFault>,
    /// Windows where the controller's discovery tool is down entirely.
    pub discovery_outages: Vec<(SimTime, SimTime)>,
    /// Windows where discovery answers with these spec nodes missing.
    pub discovery_partial_outages: Vec<(SimTime, SimTime, Vec<usize>)>,
    /// Spec node hosting a warm-standby controller (TopoSense only).
    pub standby: Option<usize>,
    /// Telemetry handle threaded through the controller and the harvest
    /// pass. Disabled by default; attaching a sink must not change the
    /// simulation (the telemetry determinism test pins this).
    pub telemetry: Telemetry,
    /// Structured-trace bound (events); 0 leaves tracing off.
    pub trace_cap: usize,
    /// Event-queue backend for the underlying simulator. The calendar
    /// wheel is the fast default; the binary heap is the differential
    /// oracle (both produce bit-identical runs).
    pub queue_backend: QueueBackend,
    /// Per-session control-mode overrides: receivers of a listed session
    /// run under that mode instead of `control`. This is how a TopoSense
    /// foreground session competes against RLM (or fixed-rate) background
    /// sessions on the same bottlenecks — the campaign zoo's mixed
    /// workload. Overriding to TopoSense is only valid when the base mode
    /// is TopoSense too (there is at most one controller).
    pub session_control: Vec<(u32, ControlMode)>,
    /// Per-session traffic-model overrides (mixed CBR/VBR worlds).
    pub session_traffic: Vec<(u32, TrafficModel)>,
}

impl Scenario {
    /// A scenario with the paper's defaults (6 doubling layers, TopoSense
    /// with an instantaneous discovery tool, 1200 s).
    pub fn new(topo: TopoSpec, traffic: TrafficModel, seed: u64) -> Self {
        Scenario {
            topo,
            layers: LayerSpec::paper_default(),
            traffic,
            control: ControlMode::TopoSense { staleness: SimDuration::ZERO },
            cfg: toposense::Config::default(),
            seed,
            duration: SimDuration::from_secs(1200),
            leave_latency: netsim::MulticastConfig::default().leave_latency,
            faults: Vec::new(),
            discovery_outages: Vec::new(),
            discovery_partial_outages: Vec::new(),
            standby: None,
            telemetry: Telemetry::disabled(),
            trace_cap: 0,
            queue_backend: QueueBackend::default(),
            session_control: Vec::new(),
            session_traffic: Vec::new(),
        }
    }

    /// Receivers of `session` run under `control` instead of the scenario's
    /// base mode (background-session competition).
    pub fn with_session_control(mut self, session: u32, control: ControlMode) -> Self {
        self.session_control.push((session, control));
        self
    }

    /// The source of `session` emits `traffic` instead of the scenario's
    /// base model (mixed CBR/VBR worlds).
    pub fn with_session_traffic(mut self, session: u32, traffic: TrafficModel) -> Self {
        self.session_traffic.push((session, traffic));
        self
    }

    /// Select the simulator's event-queue backend (differential testing).
    pub fn with_queue_backend(mut self, backend: QueueBackend) -> Self {
        self.queue_backend = backend;
        self
    }

    /// The same scenario with a different seed (for multi-seed sweeps).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attach a telemetry handle (audit records, timers, counters).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Enable the bounded structured trace (drops, link/node state).
    pub fn with_trace(mut self, cap: usize) -> Self {
        self.trace_cap = cap;
        self
    }

    pub fn with_control(mut self, control: ControlMode) -> Self {
        self.control = control;
        self
    }

    /// Inject a fault into the run (may be called repeatedly).
    pub fn with_fault(mut self, fault: SpecFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The controller's discovery tool is unavailable over `[from, until)`.
    pub fn with_discovery_outage(mut self, from: SimTime, until: SimTime) -> Self {
        self.discovery_outages.push((from, until));
        self
    }

    /// Discovery answers with the given spec nodes hidden over `[from, until)`.
    pub fn with_discovery_partial_outage(
        mut self,
        from: SimTime,
        until: SimTime,
        hidden_spec_nodes: Vec<usize>,
    ) -> Self {
        self.discovery_partial_outages.push((from, until, hidden_spec_nodes));
        self
    }

    /// Host a warm-standby controller on spec node `node` (TopoSense only).
    pub fn with_standby(mut self, node: usize) -> Self {
        self.standby = Some(node);
        self
    }

    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    pub fn with_config(mut self, cfg: toposense::Config) -> Self {
        self.cfg = cfg;
        self
    }

    pub fn with_layers(mut self, layers: LayerSpec) -> Self {
        self.layers = layers;
        self
    }

    pub fn with_leave_latency(mut self, leave_latency: SimDuration) -> Self {
        self.leave_latency = leave_latency;
        self
    }
}

/// One receiver's measurements plus its ground-truth optimum.
#[derive(Clone, Debug)]
pub struct ReceiverOutcome {
    /// Spec node index the receiver sits on.
    pub spec_node: usize,
    /// Simulator node id.
    pub node: NodeId,
    /// Simulator app id — the `receiver` field of the run's `"trace"`
    /// records, so chains reconstruct from a [`ScenarioResult`] alone.
    pub app: netsim::AppId,
    pub session: u32,
    pub set: u32,
    /// Oracle-optimal subscription level.
    pub optimal: u8,
    /// The receiver's recorded stats.
    pub stats: ReceiverShared,
}

impl ReceiverOutcome {
    /// The subscription level as a step series.
    pub fn level_series(&self) -> StepSeries {
        StepSeries::from_changes(&self.stats.changes)
    }

    /// Relative deviation from the optimum over `[start, end]`. `None`
    /// when the metric is undefined (zero optimum or empty window).
    pub fn relative_deviation(&self, start: SimTime, end: SimTime) -> Option<f64> {
        metrics::relative_deviation(&self.level_series(), self.optimal, start, end)
    }

    /// Mean loss rate over report windows in `[start, end)`.
    pub fn mean_loss(&self, start: SimTime, end: SimTime) -> f64 {
        let vals: Vec<f64> = self
            .stats
            .loss_series
            .iter()
            .filter(|&&(t, _)| t >= start && t < end)
            .map(|&(_, l)| l)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }
}

/// Everything a scenario run produced.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    pub receivers: Vec<ReceiverOutcome>,
    /// Controller stats when running TopoSense.
    pub controller: Option<ControllerShared>,
    /// Warm-standby controller stats, when one was hosted.
    pub standby: Option<ControllerShared>,
    pub duration: SimDuration,
    /// Total packets dropped at queues across all links.
    pub total_drops: u64,
    /// Estimated control bytes exchanged (registrations excluded): reports
    /// up plus suggestions down — the paper's §V claims this scales
    /// linearly in receivers and sessions.
    pub control_bytes: u64,
    /// Total events processed (throughput diagnostics).
    pub events: u64,
    /// The oracle allocation (aligned with nothing; lookup by node).
    pub optima: Vec<OptimalEntry>,
    /// Wall-clock spent assembling the simulation (nanoseconds). The
    /// pipeline has no separate warmup phase, so the issue's
    /// setup/warmup/run split collapses to setup/run/harvest here.
    pub setup_wall_ns: u64,
    /// Wall-clock spent inside the event loop (nanoseconds).
    pub run_wall_ns: u64,
    /// Wall-clock spent harvesting stats afterwards (nanoseconds).
    pub harvest_wall_ns: u64,
    /// True if the structured trace hit its bound and discarded events.
    pub trace_overflowed: bool,
    /// How many trace events were discarded past the bound.
    pub trace_dropped: u64,
    /// The simulator's always-on profile: per-event-type counts, drop
    /// reasons, slab/queue high-water marks, wheel internals.
    pub profile: netsim::SimProfile,
}

impl ScenarioResult {
    /// Mean relative deviation across receivers over `[start, end]`
    /// (the quantity Figs. 8 and 10 plot). `None` when nothing is there
    /// to average: the scenario had no receivers, the window is empty, or
    /// every receiver's optimum is zero (undefined receivers are skipped,
    /// mirroring [`metrics::mean_relative_deviation`]).
    pub fn mean_relative_deviation(&self, start: SimTime, end: SimTime) -> Option<f64> {
        let vals: Vec<f64> =
            self.receivers.iter().filter_map(|r| r.relative_deviation(start, end)).collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// `(max change count, mean gap)` over receivers in `[start, end)` —
    /// one Fig. 6/7 point. The initial base-layer join is excluded.
    pub fn stability(&self, start: SimTime, end: SimTime) -> (usize, f64) {
        let series: Vec<StepSeries> = self.receivers.iter().map(|r| r.level_series()).collect();
        let refs: Vec<&StepSeries> = series.iter().collect();
        metrics::stability::worst_receiver(&refs, start, end)
    }

    /// Per-session received bytes (fairness shares).
    pub fn session_bytes(&self) -> Vec<(u32, u64)> {
        let mut map = std::collections::BTreeMap::new();
        for r in &self.receivers {
            *map.entry(r.session).or_insert(0u64) += r.stats.bytes_total;
        }
        map.into_iter().collect()
    }

    /// Event-loop throughput: simulator events per wall-clock second of the
    /// run phase (setup and harvest excluded). Zero for a zero-length run.
    pub fn events_per_sec(&self) -> f64 {
        if self.run_wall_ns == 0 {
            0.0
        } else {
            self.events as f64 / (self.run_wall_ns as f64 / 1e9)
        }
    }
}

/// Run one scenario to completion.
pub fn run(scenario: &Scenario) -> ScenarioResult {
    let tel = &scenario.telemetry;
    tel.emit(&Record::Run {
        label: "scenario".to_string(),
        seed: scenario.seed,
        duration_ns: scenario.duration.nanos(),
    });
    let setup_span = Span::new();
    let topo = &scenario.topo;
    let sim_cfg = SimConfig {
        seed: scenario.seed,
        multicast: netsim::MulticastConfig {
            leave_latency: scenario.leave_latency,
            ..netsim::MulticastConfig::default()
        },
        queue: scenario.queue_backend,
    };
    let built = topo.instantiate(sim_cfg);
    let mut sim = built.sim;

    // Sessions: dense ids from the source roles.
    let mut sources = topo.sources();
    sources.sort_by_key(|&(_, s)| s);
    assert!(
        sources.iter().enumerate().all(|(i, &(_, s))| s == i as u32),
        "session ids must be dense 0..n"
    );

    // One multicast group per layer per session, rooted at the source node.
    let mut catalog = SessionCatalog::new();
    for &(node_idx, session) in &sources {
        let root = built.node_ids[node_idx];
        let groups: Vec<GroupId> =
            (0..scenario.layers.layer_count()).map(|_| sim.create_group(root)).collect();
        catalog.add(SessionDef {
            id: SessionId(session),
            source: root,
            groups,
            spec: scenario.layers.clone(),
        });
    }
    let catalog = catalog.share();

    // Controller (TopoSense only) — add first so suggestions start early.
    let mut standby_handle = None;
    let controller_handle = if let ControlMode::TopoSense { staleness } = scenario.control {
        let ctrl_node = built.node_ids[topo.controller()];
        let apply_outages = |mut c: Controller| {
            for &(from, until) in &scenario.discovery_outages {
                c = c.with_discovery_outage(from, until);
            }
            for (from, until, hidden) in &scenario.discovery_partial_outages {
                let hidden: Vec<NodeId> = hidden.iter().map(|&i| built.node_ids[i]).collect();
                c = c.with_discovery_partial_outage(*from, *until, hidden);
            }
            c
        };
        let (ctrl, handle) = Controller::new(
            std::sync::Arc::clone(&catalog),
            scenario.cfg,
            staleness,
            derive_stream_seed(scenario.seed, "controller", 0),
        );
        let mut ctrl = apply_outages(ctrl).with_telemetry(scenario.telemetry.clone());
        if let Some(standby_idx) = scenario.standby {
            let standby_node = built.node_ids[standby_idx];
            ctrl = ctrl.with_peer(standby_node);
            let (standby, handle) = Controller::new(
                std::sync::Arc::clone(&catalog),
                scenario.cfg,
                staleness,
                derive_stream_seed(scenario.seed, "controller", 1),
            );
            // The standby shares the handle: it only emits once active, so
            // the audit stream follows whichever controller is steering.
            let standby = apply_outages(standby)
                .with_telemetry(scenario.telemetry.clone())
                .with_peer(ctrl_node)
                .as_standby();
            sim.add_app(standby_node, Box::new(standby));
            standby_handle = Some(handle);
        }
        sim.add_app(ctrl_node, Box::new(ctrl));
        Some((ctrl_node, handle))
    } else {
        None
    };

    // Sources (per-session traffic overrides apply here).
    for &(node_idx, session) in &sources {
        let def = catalog.get(SessionId(session)).clone();
        let traffic = scenario
            .session_traffic
            .iter()
            .rev()
            .find(|&&(s, _)| s == session)
            .map(|&(_, t)| t)
            .unwrap_or(scenario.traffic);
        let src = LayeredSource::new(
            def,
            traffic,
            derive_stream_seed(scenario.seed, "source", session as u64),
        );
        sim.add_app(built.node_ids[node_idx], Box::new(src));
    }

    // Receivers.
    let optima = oracle::optimal_levels(topo, &scenario.layers, 1.0);
    let mut handles: Vec<(usize, NodeId, netsim::AppId, u32, u32, ReceiverHandle)> = Vec::new();
    for (i, (node_idx, (session, set))) in topo.receivers().into_iter().enumerate() {
        let node = built.node_ids[node_idx];
        let def = catalog.get(SessionId(session)).clone();
        let label = format!("s{session}.r{i}");
        let seed = derive_stream_seed(scenario.seed, "receiver", i as u64);
        let control = scenario
            .session_control
            .iter()
            .rev()
            .find(|&&(s, _)| s == session)
            .map(|&(_, c)| c)
            .unwrap_or(scenario.control);
        let (app, handle) = match control {
            ControlMode::TopoSense { .. } => {
                let ctrl_node = controller_handle
                    .as_ref()
                    .map(|&(n, _)| n)
                    .expect("TopoSense mode has a controller");
                let (rx, handle) = Receiver::new(def, ctrl_node, scenario.cfg, seed, &label);
                (sim.add_app(node, Box::new(rx)), handle)
            }
            ControlMode::Rlm(params) => {
                let (rx, handle) = RlmReceiver::new(def, params, seed, &label);
                (sim.add_app(node, Box::new(rx)), handle)
            }
            ControlMode::Tfrc(params) => {
                let (rx, handle) = TfrcReceiver::new(def, params, seed, &label);
                (sim.add_app(node, Box::new(rx)), handle)
            }
            ControlMode::Fixed(level) => {
                let (rx, handle) = FixedReceiver::new(def, level);
                (sim.add_app(node, Box::new(rx)), handle)
            }
        };
        handles.push((node_idx, node, app, session, set, handle));
    }

    // Faults: resolve spec indices to simulator ids and install the plan.
    // An empty plan is not installed at all, keeping fault-free runs on
    // exactly today's event sequence.
    let mut plan = FaultPlan::new();
    for fault in &scenario.faults {
        plan = match *fault {
            SpecFault::LinkOutage { link, from, until } => {
                plan.link_outage(built.link_ids[link], from, until)
            }
            SpecFault::LinkFlap { link, first_down, down_for, period, repeats } => {
                plan.link_flap(built.link_ids[link], first_down, down_for, period, repeats)
            }
            SpecFault::NodeOutage { node, from, until } => {
                plan.node_outage(built.node_ids[node], from, until)
            }
            SpecFault::NodeCrash { node, from } => plan.node_crash(built.node_ids[node], from),
            SpecFault::Chaos { seed, from, until, events } => {
                plan.chaos(seed, &built.link_ids, &built.node_ids, from, until, events)
            }
        };
    }
    if !plan.is_empty() {
        sim.install_faults(&plan);
    }
    if scenario.trace_cap > 0 {
        sim.trace.enable(scenario.trace_cap);
    }
    let setup_wall_ns = setup_span.elapsed_ns();
    tel.record_span_ns("scenario_setup", setup_wall_ns);

    // Run.
    let run_span = Span::new();
    sim.run_until(SimTime::ZERO + scenario.duration);
    let run_wall_ns = run_span.elapsed_ns();
    tel.record_span_ns("scenario_run", run_wall_ns);

    // Harvest.
    let harvest_span = Span::new();
    let receivers: Vec<ReceiverOutcome> = handles
        .into_iter()
        .map(|(spec_node, node, app, session, set, handle)| {
            let stats = handle.lock().unwrap().clone();
            let optimal = oracle::optimal_for_node(&optima, spec_node);
            ReceiverOutcome { spec_node, node, app, session, set, optimal, stats }
        })
        .collect();
    let net = sim.network();
    // Every finished run must leave the SoA multicast state internally
    // consistent — bitmaps, sorted member vectors, and desire refcounts are
    // re-derived from first principles and cross-checked.
    net.multicast_audit().expect("SoA multicast invariants violated after run");
    let total_drops: u64 = (0..net.link_count() as u32)
        .map(|i| net.link(netsim::DirLinkId(i)).stats.dropped_packets)
        .sum();
    let down_drops: u64 = (0..net.link_count() as u32)
        .map(|i| net.link(netsim::DirLinkId(i)).stats.down_dropped_packets)
        .sum();
    let controller = controller_handle.map(|(_, h)| h.lock().unwrap().clone());
    let standby = standby_handle.map(|h| h.lock().unwrap().clone());
    let control_bytes = receivers
        .iter()
        .map(|r| r.stats.reports_sent * scenario.cfg.report_size as u64)
        .sum::<u64>()
        + controller
            .as_ref()
            .map(|c| c.suggestions_sent * scenario.cfg.suggestion_size as u64)
            .unwrap_or(0);

    // Fold the silent operational events into the counter registry, then
    // close the stream: one counters snapshot, one timers record.
    if tel.is_enabled() {
        tel.set("netsim.queue_drops", total_drops);
        tel.set("netsim.down_link_drops", down_drops);
        tel.set("netsim.trace_dropped", sim.trace.dropped());
        tel.set("netsim.events", sim.events_processed());
        tel.set(
            "netsim.events_per_sec",
            if run_wall_ns == 0 {
                0
            } else {
                (sim.events_processed() as f64 / (run_wall_ns as f64 / 1e9)) as u64
            },
        );
        for (name, value) in sim.profile().counter_entries() {
            tel.set(&format!("netsim.profile.{name}"), value);
        }
        let sum = |f: fn(&ReceiverShared) -> u64| receivers.iter().map(|r| f(&r.stats)).sum();
        tel.set("receivers.reports_sent", sum(|s| s.reports_sent));
        tel.set("receivers.register_retries", sum(|s| s.registers_sent.saturating_sub(1)));
        tel.set("receivers.unilateral_actions", sum(|s| s.unilateral_actions));
        tel.set("receivers.dead_air_rejoins", sum(|s| s.rejoins));
        tel.set("receivers.suggestions_received", sum(|s| s.suggestions_received));
        // Close each causal chain: one "apply" hop per layer change a
        // suggestion actually caused (recorded receiver-side).
        for r in &receivers {
            for &(when, cause, _old, new) in &r.stats.applies {
                tel.emit(&Record::Trace {
                    seq: 0,
                    t_ns: when.nanos(),
                    phase: "apply".to_string(),
                    session: r.session as u64,
                    receiver: r.app.0 as u64,
                    cause,
                    level: new as u64,
                });
            }
        }
    }
    let harvest_wall_ns = harvest_span.elapsed_ns();
    tel.record_span_ns("scenario_harvest", harvest_wall_ns);
    tel.emit_counters(sim.now().nanos());
    tel.emit_timers();
    tel.flush();

    ScenarioResult {
        receivers,
        controller,
        standby,
        duration: scenario.duration,
        total_drops,
        control_bytes,
        events: sim.events_processed(),
        optima,
        setup_wall_ns,
        run_wall_ns,
        harvest_wall_ns,
        trace_overflowed: sim.trace.overflowed(),
        trace_dropped: sim.trace.dropped(),
        profile: sim.profile(),
    }
}

/// Run many scenarios concurrently (rayon), preserving input order in the
/// results. Each simulation is single-threaded and fully deterministic, so
/// the parallel sweep returns exactly what a sequential loop would — only
/// faster on multi-core hosts.
pub fn run_many(scenarios: &[Scenario]) -> Vec<ScenarioResult> {
    scenarios.par_iter().map(run).collect()
}

/// Run the same scenario under each seed in `seeds`, concurrently. Results
/// are ordered like `seeds`.
pub fn run_seeds(base: &Scenario, seeds: &[u64]) -> Vec<ScenarioResult> {
    let scenarios: Vec<Scenario> = seeds.iter().map(|&s| base.clone().with_seed(s)).collect();
    run_many(&scenarios)
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::generators;

    #[test]
    fn topology_a_scenario_assembles_and_runs() {
        let s = Scenario::new(generators::topology_a_default(2), TrafficModel::Cbr, 1)
            .with_duration(SimDuration::from_secs(60));
        let r = run(&s);
        assert_eq!(r.receivers.len(), 4);
        assert!(r.controller.is_some());
        let c = r.controller.as_ref().unwrap();
        assert!(c.intervals >= 25);
        assert_eq!(c.registered, 4);
        // Oracle optima as designed: 2 for set 0, 4 for set 1.
        for rec in &r.receivers {
            let expect = if rec.set == 0 { 2 } else { 4 };
            assert_eq!(rec.optimal, expect);
            assert!(rec.stats.reports_sent > 0);
        }
    }

    #[test]
    fn mean_relative_deviation_is_none_without_receivers() {
        // Regression: this used to assert (and panic) on an empty receiver
        // set instead of reporting "nothing to average".
        let r = ScenarioResult {
            receivers: Vec::new(),
            controller: None,
            standby: None,
            duration: SimDuration::from_secs(10),
            total_drops: 0,
            control_bytes: 0,
            events: 0,
            optima: Vec::new(),
            setup_wall_ns: 0,
            run_wall_ns: 0,
            harvest_wall_ns: 0,
            trace_overflowed: false,
            trace_dropped: 0,
            profile: netsim::SimProfile::default(),
        };
        assert_eq!(r.mean_relative_deviation(SimTime::ZERO, SimTime::from_secs(10)), None);
    }

    #[test]
    fn rlm_mode_runs_without_controller() {
        let s = Scenario::new(generators::topology_b_default(2), TrafficModel::Cbr, 1)
            .with_control(ControlMode::Rlm(RlmParams::default()))
            .with_duration(SimDuration::from_secs(30));
        let r = run(&s);
        assert!(r.controller.is_none());
        assert_eq!(r.receivers.len(), 2);
        for rec in &r.receivers {
            assert!(rec.stats.final_level() >= 1);
        }
    }

    #[test]
    fn fixed_mode_pins_levels() {
        let s = Scenario::new(generators::topology_b_default(2), TrafficModel::Cbr, 1)
            .with_control(ControlMode::Fixed(3))
            .with_duration(SimDuration::from_secs(20));
        let r = run(&s);
        for rec in &r.receivers {
            assert_eq!(rec.stats.final_level(), 3);
            assert_eq!(rec.stats.changes.len(), 1);
        }
    }

    #[test]
    fn determinism_across_identical_runs() {
        let go = || {
            let s =
                Scenario::new(generators::topology_a_default(1), TrafficModel::Vbr { p: 3.0 }, 42)
                    .with_duration(SimDuration::from_secs(90));
            let r = run(&s);
            (
                r.events,
                r.total_drops,
                r.receivers.iter().map(|x| x.stats.changes.clone()).collect::<Vec<_>>(),
            )
        };
        let a = go();
        let b = go();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
    }

    #[test]
    fn different_seeds_differ() {
        let go = |seed| {
            let s = Scenario::new(
                generators::topology_a_default(1),
                TrafficModel::Vbr { p: 3.0 },
                seed,
            )
            .with_duration(SimDuration::from_secs(90));
            run(&s).events
        };
        assert_ne!(go(1), go(2));
    }
}
