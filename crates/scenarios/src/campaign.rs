//! Deterministic evaluation campaigns (DESIGN.md §13).
//!
//! A campaign turns the paper's claims — layer-subscription convergence,
//! bounded deviation from the optimum, fair sharing among sessions, and
//! bounded recovery after faults — into machine-checked pass/fail gates
//! over a fixed **scenario matrix**: workload × topology × traffic ×
//! fault plan × config, expanded deterministically from a single
//! *seed-index*. Two invocations with the same seed-index produce
//! byte-identical artifacts (the campaign smoke test and CI both pin
//! this), so a campaign run is a regression fingerprint for the whole
//! system, not a one-off measurement.
//!
//! The **zoo** contributes five workload families beyond the per-figure
//! scenarios the repo already had:
//!
//! * `flash-crowd` — the whole audience joins inside one control
//!   interval (100k receivers in the full profile) and the pipeline must
//!   cover and stabilize them within a bounded number of intervals;
//! * `diurnal-churn` — report churn follows a deterministic day curve
//!   ([`largetree::diurnal_fraction`]) and the change-driven pipeline
//!   must track it (incremental rounds dominate; midday recomputes more
//!   slots than night);
//! * `het-lastmile` — every bottleneck sits on a leaf access link
//!   ([`largetree::heterogeneous_lastmile`]) and each capacity class
//!   must converge near its own fitting level, also under fault cells;
//! * `mixed-sessions` — a TopoSense CBR foreground shares a bottleneck
//!   with RLM-controlled VBR background sessions and must keep the
//!   session byte shares fair;
//! * `primary-crash-mid-interval` — the primary controller dies between
//!   ticks and the replicated standby must take over within
//!   `failover_after + interval` and steer within one interval of the
//!   takeover (the zero-re-learning bound, DESIGN.md §14);
//! * `federation` — the multi-domain control plane (DESIGN.md §16): ten
//!   sharded domains behind heterogeneous border links run their pipelines
//!   in parallel, the parent aggregator folds their border summaries, and
//!   the caps it hands back must converge every domain to its own border
//!   fit without any control interval overrunning the 2 s budget;
//! * `federation-packet` — the same federated world driven end-to-end at
//!   the *packet* level through the sharded simulator (DESIGN.md §17):
//!   1M receivers in the full profile, one calendar wheel per domain
//!   shard, conservative barrier epochs; every domain must deliver media,
//!   handoffs must flow, the SoA multicast invariants must audit clean,
//!   and the cell must fit its wall budget.
//!
//! Every run yields a [`RunRecord`] (its own JSON artifact) and the
//! campaign aggregates them into one JSON + one markdown report in the
//! `BENCH_*.json` style. **Coverage caps are never silent**: whenever a
//! profile truncates the matrix (smoke shrinking the flash crowd, seed
//! truncation, …) the cap is recorded in the artifact's `coverage_caps`
//! list; the binary cross-checks the list against the caps it applied and
//! screams `SILENT-CAP` — a CI failure — if anything was dropped
//! unrecorded.

use crate::chaos::{self, FaultAxis};
use crate::largetree::{
    self, balanced_session_tree, churn_fraction, registry_for_leaves, reports_for_leaves,
};
use crate::runner::{self, ControlMode, Scenario, ScenarioResult};
use baselines::rlm::RlmParams;
use metrics::{jain_index, max_min_ratio};
use netsim::{derive_stream_seed, SimDuration, SimTime};
use serde_json::{json, Value};
use telemetry::Telemetry;
use topology::generators;
use toposense::algorithm::{AlgorithmInputs, AlgorithmState};
use traffic::{LayerSpec, TrafficModel};

// ------------------------------------------------------------------ gates

/// Outcome of one gate check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GateStatus {
    Pass,
    Fail,
    /// The gate's metric was undefined on this run (e.g. mean relative
    /// deviation over zero receivers). Skips are explicit and carry a
    /// reason — a skipped gate is visible in the artifact, never folded
    /// into a pass.
    Skipped,
}

/// One pass/fail gate: a named metric compared against a threshold.
#[derive(Clone, Debug)]
pub struct Gate {
    pub name: String,
    pub status: GateStatus,
    /// The measured value (absent when skipped).
    pub value: Option<f64>,
    /// The bound the value was held to.
    pub threshold: f64,
    /// Human-readable detail: why skipped, or what failed.
    pub reason: String,
}

impl Gate {
    /// Gate on `value <= threshold`.
    pub fn at_most(name: &str, value: Option<f64>, threshold: f64, skip_reason: &str) -> Gate {
        Self::check(name, value, threshold, skip_reason, |v, t| v <= t, "<=")
    }

    /// Gate on `value >= threshold`.
    pub fn at_least(name: &str, value: Option<f64>, threshold: f64, skip_reason: &str) -> Gate {
        Self::check(name, value, threshold, skip_reason, |v, t| v >= t, ">=")
    }

    fn check(
        name: &str,
        value: Option<f64>,
        threshold: f64,
        skip_reason: &str,
        ok: impl Fn(f64, f64) -> bool,
        op: &str,
    ) -> Gate {
        match value {
            None => Gate {
                name: name.into(),
                status: GateStatus::Skipped,
                value: None,
                threshold,
                reason: format!("skipped: {skip_reason}"),
            },
            Some(v) if v.is_nan() => Gate {
                name: name.into(),
                status: GateStatus::Skipped,
                value: None,
                threshold,
                reason: format!("skipped: value is NaN ({skip_reason})"),
            },
            Some(v) => {
                let pass = ok(v, threshold);
                Gate {
                    name: name.into(),
                    status: if pass { GateStatus::Pass } else { GateStatus::Fail },
                    value: Some(v),
                    threshold,
                    reason: if pass {
                        String::new()
                    } else {
                        format!("{v:.6} violates {op} {threshold:.6}")
                    },
                }
            }
        }
    }

    fn to_json(&self) -> Value {
        json!({
            "name": self.name.as_str(),
            "status": match self.status {
                GateStatus::Pass => "pass",
                GateStatus::Fail => "fail",
                GateStatus::Skipped => "skipped",
            },
            "value": match self.value {
                Some(v) => Value::String(format!("{v:.6}")),
                None => Value::Null,
            },
            "threshold": format!("{:.6}", self.threshold),
            "reason": self.reason.as_str(),
        })
    }
}

// ------------------------------------------------------------------ records

/// Everything one cell of the matrix produced.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Stable id: `workload/variant/s<seed-ordinal>`.
    pub id: String,
    pub workload: String,
    /// The matrix coordinates this cell was expanded from.
    pub axes: Vec<(String, String)>,
    /// The derived per-run seed.
    pub seed: u64,
    /// Workload-specific deterministic measurements.
    pub metrics: Vec<(String, String)>,
    pub gates: Vec<Gate>,
}

impl RunRecord {
    pub fn failed(&self) -> bool {
        self.gates.iter().any(|g| g.status == GateStatus::Fail)
    }

    pub fn to_json(&self) -> Value {
        let axes: Vec<Value> = self
            .axes
            .iter()
            .map(|(k, v)| json!({"axis": k.as_str(), "value": v.as_str()}))
            .collect();
        let metrics: Vec<Value> = self
            .metrics
            .iter()
            .map(|(k, v)| json!({"name": k.as_str(), "value": v.as_str()}))
            .collect();
        let gates: Vec<Value> = self.gates.iter().map(Gate::to_json).collect();
        json!({
            "id": self.id.as_str(),
            "workload": self.workload.as_str(),
            "seed": self.seed,
            "axes": Value::Array(axes),
            "metrics": Value::Array(metrics),
            "gates": Value::Array(gates),
        })
    }
}

/// The whole campaign's outcome.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    pub name: String,
    pub seed_index: u64,
    pub profile: Profile,
    pub runs: Vec<RunRecord>,
    /// Every coverage cap the profile applied (scenario shrunk, seeds
    /// truncated, …). Recorded here *and* counted by the binary; a cap
    /// that was applied but not recorded is a `SILENT-CAP` CI failure.
    pub coverage_caps: Vec<String>,
    /// One black-box dump per failed run (`(run id, dump)`), built at
    /// judging time from the run's flight window and profile counters.
    /// [`CampaignReport::write_artifacts`] lands each one next to the
    /// run's JSON as `runs/<id>.blackbox.json`.
    pub blackboxes: Vec<(String, telemetry::Blackbox)>,
}

impl CampaignReport {
    pub fn gates_passed(&self) -> usize {
        self.gate_count(GateStatus::Pass)
    }
    pub fn gates_failed(&self) -> usize {
        self.gate_count(GateStatus::Fail)
    }
    pub fn gates_skipped(&self) -> usize {
        self.gate_count(GateStatus::Skipped)
    }
    fn gate_count(&self, s: GateStatus) -> usize {
        self.runs.iter().flat_map(|r| &r.gates).filter(|g| g.status == s).count()
    }

    /// Overall verdict: every gate of every run passed or was explicitly
    /// skipped.
    pub fn passed(&self) -> bool {
        self.gates_failed() == 0
    }

    /// The per-campaign JSON artifact (deterministic: no wall-clock, no
    /// dates — byte-identical across reruns with the same seed-index).
    pub fn to_json(&self) -> Value {
        let runs: Vec<Value> = self.runs.iter().map(RunRecord::to_json).collect();
        let caps: Vec<Value> =
            self.coverage_caps.iter().map(|c| Value::String(c.clone())).collect();
        json!({
            "campaign": self.name.as_str(),
            "seed_index": self.seed_index,
            "profile": self.profile.label(),
            "verdict": if self.passed() { "pass" } else { "fail" },
            "gates": json!({
                "passed": self.gates_passed() as u64,
                "failed": self.gates_failed() as u64,
                "skipped": self.gates_skipped() as u64,
            }),
            "coverage_caps": Value::Array(caps),
            "runs": Value::Array(runs),
        })
    }

    /// The per-campaign markdown artifact (same determinism contract).
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write;
        let mut md = String::new();
        writeln!(md, "# Campaign `{}` — profile `{}`", self.name, self.profile.label()).unwrap();
        writeln!(md).unwrap();
        writeln!(
            md,
            "Seed-index {} · verdict **{}** · gates: {} passed, {} failed, {} skipped",
            self.seed_index,
            if self.passed() { "PASS" } else { "FAIL" },
            self.gates_passed(),
            self.gates_failed(),
            self.gates_skipped(),
        )
        .unwrap();
        if !self.coverage_caps.is_empty() {
            writeln!(md, "\n## Coverage caps\n").unwrap();
            for c in &self.coverage_caps {
                writeln!(md, "- coverage-cap: {c}").unwrap();
            }
        }
        writeln!(md, "\n## Runs\n").unwrap();
        writeln!(md, "| run | gate | value | threshold | status |").unwrap();
        writeln!(md, "|---|---|---|---|---|").unwrap();
        for r in &self.runs {
            for g in &r.gates {
                let status = match g.status {
                    GateStatus::Pass => "pass".to_string(),
                    GateStatus::Fail => format!("**FAIL** ({})", g.reason),
                    GateStatus::Skipped => format!("skipped ({})", g.reason),
                };
                writeln!(
                    md,
                    "| {} | {} | {} | {:.4} | {} |",
                    r.id,
                    g.name,
                    g.value.map(|v| format!("{v:.4}")).unwrap_or_else(|| "—".into()),
                    g.threshold,
                    status,
                )
                .unwrap();
            }
        }
        md
    }

    /// Write `campaign.json`, `campaign.md`, and one `runs/<id>.json` per
    /// run under `dir`. Returns the paths written, in deterministic order.
    pub fn write_artifacts(
        &self,
        dir: &std::path::Path,
    ) -> std::io::Result<Vec<std::path::PathBuf>> {
        let runs_dir = dir.join("runs");
        std::fs::create_dir_all(&runs_dir)?;
        let mut paths = Vec::new();
        let json_path = dir.join("campaign.json");
        let body = serde_json::to_string_pretty(&self.to_json()).expect("pure-value tree");
        std::fs::write(&json_path, body + "\n")?;
        paths.push(json_path);
        let md_path = dir.join("campaign.md");
        std::fs::write(&md_path, self.to_markdown())?;
        paths.push(md_path);
        for r in &self.runs {
            let p = runs_dir.join(format!("{}.json", r.id.replace('/', "_")));
            let body = serde_json::to_string_pretty(&r.to_json()).expect("pure-value tree");
            std::fs::write(&p, body + "\n")?;
            paths.push(p);
        }
        for (id, bb) in &self.blackboxes {
            let p = runs_dir.join(format!("{}.blackbox.json", id.replace('/', "_")));
            bb.write(&p)?;
            paths.push(p);
        }
        Ok(paths)
    }
}

// ------------------------------------------------------------------ spec

/// How hard to push: smoke is the ≤30 s CI profile, full is the paper-scale
/// overnight profile. Whatever smoke shrinks relative to full is recorded
/// as a coverage cap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    Smoke,
    Full,
}

impl Profile {
    pub fn label(&self) -> &'static str {
        match self {
            Profile::Smoke => "smoke",
            Profile::Full => "full",
        }
    }
}

/// A campaign description: everything needed to expand and run the matrix.
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    pub name: String,
    /// Master seed of the whole campaign; every cell's seed is derived
    /// from it via [`derive_stream_seed`] on (seed_index, workload, cell).
    pub seed_index: u64,
    pub profile: Profile,
    /// Seeds per matrix cell (smoke truncates to 1 and records the cap).
    pub seeds_per_cell: usize,
    /// Config override for every scenario-level cell — the hook the
    /// broken-config regression test uses to prove gates can fail.
    pub config_override: Option<toposense::Config>,
    /// Campaign counters land here (`campaign.*` namespace); disabled by
    /// default.
    pub telemetry: Telemetry,
}

impl CampaignSpec {
    pub fn new(name: impl Into<String>, seed_index: u64, profile: Profile) -> Self {
        CampaignSpec {
            name: name.into(),
            seed_index,
            profile,
            seeds_per_cell: match profile {
                Profile::Smoke => 1,
                Profile::Full => 3,
            },
            config_override: None,
            telemetry: Telemetry::disabled(),
        }
    }

    pub fn with_config_override(mut self, cfg: toposense::Config) -> Self {
        self.config_override = Some(cfg);
        self
    }

    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    fn base_config(&self) -> toposense::Config {
        self.config_override.unwrap_or_else(chaos::chaos_config)
    }

    fn cell_seed(&self, workload: &str, cell: u64) -> u64 {
        derive_stream_seed(self.seed_index, workload, cell)
    }
}

// ------------------------------------------------------------------ zoo

/// Flash-crowd dimensions per profile.
struct FlashParams {
    fanout: usize,
    depth: usize,
    core: usize,
    join_round: u64,
    rounds: u64,
    lossy_mod: usize,
}

fn flash_params(profile: Profile) -> (FlashParams, Option<String>) {
    match profile {
        Profile::Full => (
            // 10^5 leaves: the paper-scale 100k-joins-in-one-interval event.
            FlashParams {
                fanout: 10,
                depth: 5,
                core: 100,
                join_round: 4,
                rounds: 16,
                lossy_mod: 7,
            },
            None,
        ),
        Profile::Smoke => (
            FlashParams { fanout: 10, depth: 3, core: 10, join_round: 4, rounds: 12, lossy_mod: 7 },
            Some(
                "flash-crowd: smoke joins 1000 receivers instead of the full profile's 100000"
                    .to_string(),
            ),
        ),
    }
}

/// Drive the five-stage pipeline through a flash crowd: a small overnight
/// core, then every leaf registered and reporting from `join_round` on.
fn run_flash_crowd(
    spec: &CampaignSpec,
    seed: u64,
    id: String,
    axes: Vec<(String, String)>,
) -> RunRecord {
    let p = flash_params(spec.profile).0;
    let (tree, leaves) = balanced_session_tree(0, p.fanout, p.depth);
    let layer_spec = LayerSpec::paper_default();
    let trees = [tree];
    let specs = [&layer_spec];
    let cfg = spec.base_config();
    let mut state = AlgorithmState::new(cfg, derive_stream_seed(seed, "campaign-flash", 0));
    let mut levels = vec![1u8; leaves.len()];
    let mut prev_suggestions: Vec<(u32, u8)> = Vec::new();
    let mut join_coverage: Option<f64> = None;
    let mut stabilized_after: Option<u64> = None;
    for round in 0..p.rounds {
        let (registry, mut reports) = largetree::flash_crowd_membership(
            0,
            &leaves,
            p.core,
            round,
            p.join_round,
            1,
            p.lossy_mod,
        );
        for (r, &lv) in reports.iter_mut().zip(&levels) {
            r.level = lv;
        }
        let inputs = AlgorithmInputs {
            now: SimTime::from_secs(2 * (round + 1)),
            interval: SimDuration::from_secs(2),
            trees: &trees,
            specs: &specs,
            registry: &registry,
            reports: &reports,
        };
        let out = state.run_incremental(&inputs);
        let suggestions: Vec<(u32, u8)> =
            out.suggestions.iter().map(|s| (s.receiver.0, s.level)).collect();
        for s in &out.suggestions {
            let i = (s.receiver.0 - 1000) as usize;
            levels[i] = s.level;
        }
        if round == p.join_round {
            join_coverage = Some(out.suggestions.len() as f64 / registry.len() as f64);
        }
        if round > p.join_round && stabilized_after.is_none() && suggestions == prev_suggestions {
            stabilized_after = Some(round - p.join_round);
        }
        prev_suggestions = suggestions;
    }
    let mean_level = levels.iter().map(|&l| l as f64).sum::<f64>() / levels.len() as f64;
    let gates = vec![
        Gate::at_least("join_coverage", join_coverage, 1.0, "join round never ran"),
        Gate::at_most(
            "stabilize_intervals",
            stabilized_after.map(|v| v as f64),
            (p.rounds - p.join_round) as f64 - 1.0,
            "suggestions never stabilized inside the run",
        ),
    ];
    RunRecord {
        id,
        workload: "flash-crowd".into(),
        axes,
        seed,
        metrics: vec![
            ("joins".into(), format!("{}", leaves.len() - p.core)),
            ("mean_final_level".into(), format!("{mean_level:.4}")),
            (
                "stabilize_intervals".into(),
                stabilized_after.map(|v| v.to_string()).unwrap_or_else(|| "never".into()),
            ),
        ],
        gates,
    }
}

/// Diurnal-churn dimensions per profile.
struct DiurnalParams {
    fanout: usize,
    depth: usize,
    period: u64,
    days: u64,
    low: f64,
    high: f64,
}

fn diurnal_params(profile: Profile) -> (DiurnalParams, Option<String>) {
    match profile {
        Profile::Full => (
            DiurnalParams { fanout: 10, depth: 4, period: 24, days: 4, low: 0.01, high: 0.5 },
            None,
        ),
        Profile::Smoke => (
            DiurnalParams { fanout: 10, depth: 3, period: 24, days: 2, low: 0.01, high: 0.5 },
            Some(
                "diurnal-churn: smoke runs 2 days over a 1k-leaf domain instead of 4 days over 10k"
                    .to_string(),
            ),
        ),
    }
}

/// Drive the change-driven pipeline through deterministic day/night report
/// churn and check it tracks the profile: incremental rounds dominate, and
/// midday dirties more slots than the dead of night.
fn run_diurnal(
    spec: &CampaignSpec,
    seed: u64,
    id: String,
    axes: Vec<(String, String)>,
) -> RunRecord {
    let p = diurnal_params(spec.profile).0;
    let (tree, leaves) = balanced_session_tree(0, p.fanout, p.depth);
    let layer_spec = LayerSpec::paper_default();
    let trees = [tree];
    let specs = [&layer_spec];
    // The base config keeps `incremental: true`; an override that turns
    // change-driven recomputation off is *meant* to fail this workload's
    // incremental-fraction gate.
    let cfg = spec.base_config();
    let mut state = AlgorithmState::new(cfg, derive_stream_seed(seed, "campaign-diurnal", 0));
    let registry = registry_for_leaves(0, &leaves);
    let mut reports = reports_for_leaves(0, &leaves, 3, 11);
    let rounds = p.period * p.days;
    let mut incremental_rounds = 0u64;
    let mut night_slots = 0u64;
    let mut peak_slots = 0u64;
    for round in 0..rounds {
        let frac = largetree::diurnal_fraction(round, p.period, p.low, p.high);
        churn_fraction(&mut reports, frac, round);
        let inputs = AlgorithmInputs {
            now: SimTime::from_secs(2 * (round + 1)),
            interval: SimDuration::from_secs(2),
            trees: &trees,
            specs: &specs,
            registry: &registry,
            reports: &reports,
        };
        // `cfg.incremental` is the controller's knob, honored here the way
        // the live controller honors it: off means every interval is a
        // full recompute, which the incremental-fraction gate flags.
        let out = if cfg.incremental { state.run_incremental(&inputs) } else { state.run(&inputs) };
        if out.incremental {
            incremental_rounds += 1;
        }
        // Sample the second day onward (the first interval is a full run).
        if round >= p.period {
            match round % p.period {
                0 => night_slots += out.slots_recomputed,
                r if r == p.period / 2 => peak_slots += out.slots_recomputed,
                _ => {}
            }
        }
    }
    let inc_fraction = incremental_rounds as f64 / rounds as f64;
    let peak_over_night =
        if night_slots == 0 { None } else { Some(peak_slots as f64 / night_slots as f64) };
    let gates = vec![
        Gate::at_least("incremental_fraction", Some(inc_fraction), 0.9, ""),
        Gate::at_least(
            "peak_over_night_slots",
            peak_over_night,
            2.0,
            "no night samples (run shorter than one day)",
        ),
    ];
    RunRecord {
        id,
        workload: "diurnal-churn".into(),
        axes,
        seed,
        metrics: vec![
            ("rounds".into(), rounds.to_string()),
            ("incremental_rounds".into(), incremental_rounds.to_string()),
            ("night_slots".into(), night_slots.to_string()),
            ("peak_slots".into(), peak_slots.to_string()),
        ],
        gates,
    }
}

/// Federation dimensions per profile.
struct FederationParams {
    domains: usize,
    fanout: usize,
    depth: usize,
    rounds: u64,
}

fn federation_params(profile: Profile) -> (FederationParams, Option<String>) {
    match profile {
        Profile::Full => (
            // 10 domains x 10^4 leaves: the paper-scale 100k-receiver
            // federated world.
            FederationParams { domains: 10, fanout: 10, depth: 4, rounds: 16 },
            None,
        ),
        Profile::Smoke => (
            FederationParams { domains: 10, fanout: 10, depth: 2, rounds: 12 },
            Some(
                "federation: smoke federates 10 domains of 100 receivers instead of the full \
                 profile's 10x10000"
                    .to_string(),
            ),
        ),
    }
}

/// Per-domain border capacities cycle through these classes (kb/s);
/// fitting levels 2 / 4 / 5 under the paper layer spec.
const FEDERATION_GW_KBPS: [f64; 3] = [150.0, 600.0, 1200.0];

/// Drive the federated control plane (DESIGN.md §16) over a multi-domain
/// world: per-domain pipelines in parallel, border summaries folded by the
/// parent aggregator, caps handed back. Gates: every domain converges to
/// its own border fit, the caps land within one probe layer of the fits,
/// and no control interval overruns the paper's 2 s budget wall-clock.
fn run_federation(
    spec: &CampaignSpec,
    seed: u64,
    id: String,
    axes: Vec<(String, String)>,
) -> RunRecord {
    use toposense::federation::Federation;
    let p = federation_params(spec.profile).0;
    let layer_spec = LayerSpec::paper_default();
    let cfg = spec.base_config();
    let (domains, leaves) = largetree::federated_domains(p.domains, p.fanout, p.depth, cfg, seed);
    let receivers = p.domains * leaves.len();
    let mut fed = Federation::new(cfg, seed, domains, layer_spec.clone())
        .with_telemetry(spec.telemetry.clone());
    let fits: Vec<u8> = (0..p.domains)
        .map(|d| {
            layer_spec.level_fitting(FEDERATION_GW_KBPS[d % FEDERATION_GW_KBPS.len()] * 1000.0)
        })
        .collect();
    let mut levels = vec![vec![1u8; leaves.len()]; p.domains];
    // Per-domain count of late rounds spent fully at the border fit, and
    // the worst wall-clock interval (gate only — never an artifact value,
    // so reruns stay byte-identical).
    let late_window = 5u64.min(p.rounds / 2);
    let mut settled = vec![0u64; p.domains];
    let mut worst_interval = std::time::Duration::ZERO;
    let mut final_caps: Vec<u8> = Vec::new();
    for round in 1..=p.rounds {
        let reports: Vec<Vec<toposense::algorithm::ReceiverReport>> = (0..p.domains)
            .map(|d| {
                largetree::reports_behind_border(
                    0,
                    &leaves,
                    &levels[d],
                    FEDERATION_GW_KBPS[d % FEDERATION_GW_KBPS.len()] * 1000.0,
                    &layer_spec,
                    SimDuration::from_secs(2),
                )
            })
            .collect();
        let started = std::time::Instant::now();
        let out =
            fed.run_interval(SimTime::from_secs(2 * round), SimDuration::from_secs(2), reports);
        worst_interval = worst_interval.max(started.elapsed());
        for d in 0..p.domains {
            for s in &out.domain_outputs[d].suggestions {
                levels[d][(s.receiver.0 - 1000) as usize] = s.level;
            }
            if round > p.rounds - late_window && levels[d].iter().all(|&l| l == fits[d]) {
                settled[d] += 1;
            }
        }
        final_caps = out.caps;
    }
    // A domain converged if most of the late window sat exactly at its
    // fit (capacity-creep probes one layer up are the paper's behavior).
    let converged = settled.iter().filter(|&&s| s * 2 > late_window).count();
    let convergence = converged as f64 / p.domains as f64;
    let cap_dev = final_caps
        .iter()
        .zip(&fits)
        .map(|(&c, &f)| (c as f64 - f as f64).abs())
        .fold(0.0f64, f64::max);
    let budget_ok = worst_interval <= std::time::Duration::from_secs(2);
    let gates = vec![
        Gate::at_least("cross_domain_convergence", Some(convergence), 1.0, ""),
        Gate::at_most("border_cap_deviation", Some(cap_dev), 1.0, ""),
        // Wall-clock stays out of the artifact (value: None, static
        // reason) so a rerun at the same seed is byte-identical; only the
        // pass/fail verdict reflects the measured time.
        Gate {
            name: "interval_wall_budget_2s".into(),
            status: if budget_ok { GateStatus::Pass } else { GateStatus::Fail },
            value: None,
            threshold: 2.0,
            reason: if budget_ok {
                String::new()
            } else {
                "a federated control interval overran the 2 s budget".into()
            },
        },
    ];
    RunRecord {
        id,
        workload: "federation".into(),
        axes,
        seed,
        metrics: vec![
            ("domains".into(), p.domains.to_string()),
            ("receivers".into(), receivers.to_string()),
            ("rounds".into(), p.rounds.to_string()),
            ("summaries_sent".into(), fed.summaries_sent().to_string()),
            ("border_folds".into(), fed.border_folds().to_string()),
            (
                "final_caps".into(),
                final_caps.iter().map(u8::to_string).collect::<Vec<_>>().join(","),
            ),
        ],
        gates,
    }
}

/// Federation-packet dimensions per profile.
struct FederationPacketParams {
    domains: usize,
    fanout: usize,
    depth: usize,
    rate_pps: u64,
    sim_millis: u64,
    wall_budget_s: u64,
}

fn federation_packet_params(profile: Profile) -> (FederationPacketParams, Option<String>) {
    match profile {
        Profile::Full => (
            // 10 domains x 10^5 leaves: the 1M-receiver packet-level world
            // (every leaf hosts a sink, sink_stride 1).
            FederationPacketParams {
                domains: 10,
                fanout: 10,
                depth: 5,
                rate_pps: 40,
                sim_millis: 1500,
                wall_budget_s: 300,
            },
            None,
        ),
        Profile::Smoke => (
            FederationPacketParams {
                domains: 3,
                fanout: 3,
                depth: 2,
                rate_pps: 100,
                sim_millis: 1000,
                wall_budget_s: 30,
            },
            Some(
                "federation-packet: smoke simulates 27 receivers instead of the full profile's \
                 1000000"
                    .to_string(),
            ),
        ),
    }
}

/// Drive the 1M-receiver federation workload end-to-end at the *packet*
/// level through [`netsim::ShardedSim`] (DESIGN.md §17): a core shard feeds
/// per-domain shards across handoff links, each domain runs its own
/// calendar wheel, and barrier epochs bounded by the handoff latency keep
/// the run bit-identical to a sequential wheel (pinned by the differential
/// suite). Gates: every domain delivers media, cross-shard handoffs
/// actually flowed, the SoA multicast invariants hold in every shard after
/// the run, and the whole cell fits its wall budget. The world takes no
/// randomness, so one cell covers the workload; the derived seed is
/// recorded for matrix-id stability only.
fn run_federation_packet(
    spec: &CampaignSpec,
    seed: u64,
    id: String,
    axes: Vec<(String, String)>,
) -> RunRecord {
    let p = federation_packet_params(spec.profile).0;
    let params = largetree::FederationWorldParams {
        domains: p.domains,
        fanout: p.fanout,
        depth: p.depth,
        sink_stride: 1,
        rate_pps: p.rate_pps,
        handoff_delay: SimDuration::from_millis(20),
        backend: netsim::QueueBackend::CalendarWheel,
        trace_cap: 0,
    };
    let receivers = params.receivers();
    let started = std::time::Instant::now();
    let mut world = largetree::federated_media_sharded(params);
    world.sharded.run_until(SimTime::from_millis(p.sim_millis));
    let wall = started.elapsed();
    let delivering =
        world.delivered.iter().filter(|d| d.load(std::sync::atomic::Ordering::Relaxed) > 0).count();
    let delivered_total = world.delivered_total();
    let profile = world.sharded.profile();
    let audit = (1..world.sharded.shard_count())
        .map(|d| world.sharded.shard(d).network().multicast_audit())
        .collect::<Result<Vec<_>, _>>();
    let budget_ok = wall <= std::time::Duration::from_secs(p.wall_budget_s);
    let gates = vec![
        Gate::at_least("domains_delivering", Some(delivering as f64 / p.domains as f64), 1.0, ""),
        Gate::at_least("cross_shard_handoffs", Some(profile.shard_handoffs as f64), 1.0, ""),
        Gate {
            name: "soa_multicast_invariants".into(),
            status: if audit.is_ok() { GateStatus::Pass } else { GateStatus::Fail },
            value: None,
            threshold: 0.0,
            reason: audit.err().map(|e| e.to_string()).unwrap_or_default(),
        },
        // Wall-clock stays out of the artifact (value: None, static
        // reason) so reruns are byte-identical; only the verdict reflects
        // the measured time.
        Gate {
            name: format!("wall_budget_{}s", p.wall_budget_s),
            status: if budget_ok { GateStatus::Pass } else { GateStatus::Fail },
            value: None,
            threshold: p.wall_budget_s as f64,
            reason: if budget_ok {
                String::new()
            } else {
                "the packet-level federation run overran its wall budget".into()
            },
        },
    ];
    RunRecord {
        id,
        workload: "federation-packet".into(),
        axes,
        seed,
        metrics: vec![
            ("receivers".into(), receivers.to_string()),
            ("events".into(), world.sharded.events_processed().to_string()),
            ("media_delivered".into(), delivered_total.to_string()),
            ("cross_shard_handoffs".into(), profile.shard_handoffs.to_string()),
            ("barrier_epochs".into(), profile.shard_barrier_epochs.to_string()),
        ],
        gates,
    }
}

/// The scenario-level matrix: heterogeneous last-mile cells crossed with
/// traffic and fault axes, plus the mixed-session fairness cells. Returns
/// prepared scenarios and the per-cell gate evaluator inputs.
struct ScenarioCell {
    id: String,
    workload: &'static str,
    axes: Vec<(String, String)>,
    seed: u64,
    scenario: Scenario,
    heal_at: Option<SimTime>,
    cfg: toposense::Config,
}

fn lastmile_cells(spec: &CampaignSpec, caps: &mut Vec<String>) -> Vec<ScenarioCell> {
    let (fanout, depth, duration) = match spec.profile {
        Profile::Full => (4, 3, SimDuration::from_secs(600)),
        Profile::Smoke => {
            caps.push(
                "het-lastmile: smoke runs 9 receivers for 150 s instead of 64 for 600 s"
                    .to_string(),
            );
            (3, 2, SimDuration::from_secs(150))
        }
    };
    let lastmile = [150.0, 600.0, 2500.0];
    let traffic_axis = [TrafficModel::Cbr, TrafficModel::Vbr { p: 3.0 }];
    // Spec link 1 is the first leaf's access link (root link is 0).
    let fault_axis = [FaultAxis::None, FaultAxis::LinkFlap { link: 1 }];
    let cfg = spec.base_config();
    let mut cells = Vec::new();
    let mut cell_no = 0u64;
    for traffic in traffic_axis {
        for fault in fault_axis {
            for s_ord in 0..spec.seeds_per_cell {
                let seed = spec.cell_seed("het-lastmile", cell_no);
                cell_no += 1;
                let topo = largetree::heterogeneous_lastmile(fanout, depth, &lastmile);
                let base =
                    Scenario::new(topo, traffic, seed).with_config(cfg).with_duration(duration);
                let (scenario, heal_at) = fault.apply(base);
                cells.push(ScenarioCell {
                    id: format!(
                        "het-lastmile/{}+{}+{}/s{s_ord}",
                        traffic.label().to_lowercase().replace(['(', ')', '='], ""),
                        fault.label(),
                        if spec.config_override.is_some() { "override" } else { "default" },
                    ),
                    workload: "het-lastmile",
                    axes: vec![
                        ("topology".into(), format!("het-lastmile/{fanout}x{depth}")),
                        ("traffic".into(), traffic.label()),
                        ("fault".into(), fault.label()),
                        (
                            "config".into(),
                            if spec.config_override.is_some() {
                                "override".into()
                            } else {
                                "default".into()
                            },
                        ),
                    ],
                    seed,
                    scenario,
                    heal_at,
                    cfg,
                });
            }
        }
    }
    cells
}

fn mixed_cells(spec: &CampaignSpec, caps: &mut Vec<String>) -> Vec<ScenarioCell> {
    let (sessions, duration) = match spec.profile {
        Profile::Full => (4, SimDuration::from_secs(600)),
        Profile::Smoke => {
            caps.push(
                "mixed-sessions: smoke runs 3 sessions for 150 s instead of 4 for 600 s"
                    .to_string(),
            );
            (3, SimDuration::from_secs(150))
        }
    };
    let cfg = spec.base_config();
    let mut cells = Vec::new();
    for s_ord in 0..spec.seeds_per_cell {
        let seed = spec.cell_seed("mixed-sessions", s_ord as u64);
        let mut scenario =
            Scenario::new(generators::topology_b_default(sessions), TrafficModel::Cbr, seed)
                .with_config(cfg)
                .with_duration(duration);
        // Sessions 1.. are VBR background flows under receiver-driven RLM
        // control; session 0 stays the TopoSense CBR foreground.
        for bg in 1..sessions as u32 {
            scenario = scenario
                .with_session_control(bg, ControlMode::Rlm(RlmParams::default()))
                .with_session_traffic(bg, TrafficModel::Vbr { p: 3.0 });
        }
        cells.push(ScenarioCell {
            id: format!("mixed-sessions/cbr-vs-rlm-vbr/s{s_ord}"),
            workload: "mixed-sessions",
            axes: vec![
                ("topology".into(), format!("topology-b/{sessions}")),
                ("traffic".into(), "CBR foreground + VBR(P=3) background".into()),
                ("fault".into(), "none".into()),
                ("control".into(), "toposense + rlm background".into()),
            ],
            seed,
            scenario,
            heal_at: None,
            cfg,
        });
    }
    cells
}

/// Replicated-controller failover cells: the primary dies mid-interval and
/// the input-synced standby must take over inside the heartbeat bound and
/// resume steering with zero re-learning (ISSUE 7 / DESIGN.md §14).
fn failover_cells(spec: &CampaignSpec) -> Vec<ScenarioCell> {
    let cfg = spec.base_config();
    let mut cells = Vec::new();
    for s_ord in 0..spec.seeds_per_cell {
        let seed = spec.cell_seed("primary-crash-mid-interval", s_ord as u64);
        let (base, crash_at) = chaos::primary_crash_mid_interval(seed);
        // Re-stamp the campaign config so the broken-config regression
        // hook reaches this workload too (a config with replication off
        // is *meant* to fail the replicated-batches gate).
        let scenario = base.with_config(cfg);
        cells.push(ScenarioCell {
            id: format!("primary-crash-mid-interval/crash-41s/s{s_ord}"),
            workload: "primary-crash-mid-interval",
            axes: vec![
                ("topology".into(), "failover-a".into()),
                ("traffic".into(), "CBR".into()),
                ("fault".into(), "primary-crash@41s".into()),
                (
                    "config".into(),
                    if spec.config_override.is_some() {
                        "override".into()
                    } else {
                        "default".into()
                    },
                ),
                ("control".into(), "toposense + replicated standby".into()),
            ],
            seed,
            scenario,
            heal_at: Some(crash_at),
            cfg,
        });
    }
    cells
}

/// Evaluate the gates for one completed scenario cell.
fn judge_scenario(cell: &ScenarioCell, r: &ScenarioResult) -> RunRecord {
    let end = SimTime::ZERO + r.duration;
    let half = SimTime::ZERO + r.duration / 2;
    let mut gates = Vec::new();
    let mut metrics: Vec<(String, String)> = vec![
        ("events".into(), r.events.to_string()),
        ("total_drops".into(), r.total_drops.to_string()),
        ("control_bytes".into(), r.control_bytes.to_string()),
    ];
    match cell.workload {
        "het-lastmile" => {
            let dev = r.mean_relative_deviation(half, end);
            gates.push(Gate::at_most(
                "mean_relative_deviation",
                dev,
                0.75,
                "undefined: no receiver had a positive optimum over the window",
            ));
            if let Some(d) = dev {
                metrics.push(("mean_relative_deviation".into(), format!("{d:.6}")));
            }
            match cell.heal_at {
                Some(heal) => {
                    let ok = chaos::verify_recovery(r, &cell.cfg, heal, 10);
                    gates.push(Gate {
                        name: "recovery_within_10_intervals".into(),
                        status: if ok.is_ok() { GateStatus::Pass } else { GateStatus::Fail },
                        value: None,
                        threshold: 10.0,
                        reason: ok.err().unwrap_or_default(),
                    });
                }
                None => gates.push(Gate {
                    name: "recovery_within_10_intervals".into(),
                    status: GateStatus::Skipped,
                    value: None,
                    threshold: 10.0,
                    reason: "skipped: fault-free cell has nothing to recover from".into(),
                }),
            }
        }
        "mixed-sessions" => {
            let bytes: Vec<f64> = r.session_bytes().iter().map(|&(_, b)| b as f64).collect();
            // An RLM/VBR background is *expected* to lose ground against
            // the controller-steered foreground, so the bound is a floor
            // against outright starvation (Jain = 1/3 when one of three
            // sessions takes everything), not the paper's same-system
            // fairness claim. Observed smoke values sit at 0.42–0.49.
            let jain = if bytes.is_empty() { None } else { Some(jain_index(&bytes)) };
            gates.push(Gate::at_least("jain_fairness", jain, 0.36, "no session bytes recorded"));
            let ratio = max_min_ratio(&bytes);
            gates.push(Gate::at_most("max_min_share_ratio", Some(ratio), 25.0, ""));
            let fg: Vec<f64> = r
                .receivers
                .iter()
                .filter(|x| x.session == 0)
                .filter_map(|x| x.relative_deviation(half, end))
                .collect();
            let fg_dev =
                if fg.is_empty() { None } else { Some(fg.iter().sum::<f64>() / fg.len() as f64) };
            gates.push(Gate::at_most(
                "foreground_deviation",
                fg_dev,
                0.9,
                "undefined: foreground session has no receivers with a positive optimum",
            ));
            if let Some(j) = jain {
                metrics.push(("jain".into(), format!("{j:.6}")));
            }
            metrics.push(("max_min_ratio".into(), format!("{ratio:.6}")));
        }
        "primary-crash-mid-interval" => {
            let crash_at = cell.heal_at.expect("failover cell always records the crash instant");
            let interval = cell.cfg.interval.as_secs_f64();
            let standby = r.standby.as_ref();
            // One-interval takeover bound: the standby must declare
            // failover within failover_after + one interval of the crash
            // (heartbeat silence is only observable at the next check).
            let takeover =
                standby.and_then(|s| s.failover_at).map(|t| t.since(crash_at).as_secs_f64());
            gates.push(Gate::at_most(
                "takeover_seconds",
                takeover,
                cell.cfg.failover_after.as_secs_f64() + interval,
                "standby never took over",
            ));
            // Zero re-learning: the promoted standby's own first steering
            // interval lands within one control interval of the takeover —
            // it resumes from its replicated AlgorithmState instead of
            // re-observing the domain from scratch.
            let first_steer = standby.and_then(|s| {
                let at = s.failover_at?;
                s.suggestion_series
                    .iter()
                    .find(|(t, sugg)| *t >= at && !sugg.is_empty())
                    .map(|(t, _)| t.since(at).as_secs_f64() / interval)
            });
            gates.push(Gate::at_most(
                "first_steer_intervals",
                first_steer,
                1.0,
                "promoted standby never steered",
            ));
            // The precondition for both bounds: the standby was an
            // input-synced twin before the crash (it applied replicated
            // batches, so takeover needs no warm-up).
            let applied = standby.map(|s| s.replica_applied as f64);
            gates.push(Gate::at_least("replicated_batches", applied, 1.0, "no standby hosted"));
            if let Some(s) = standby {
                metrics.push(("replica_applied".into(), s.replica_applied.to_string()));
                metrics.push((
                    "failover_at".into(),
                    s.failover_at
                        .map(|t| format!("{:.3}", t.as_secs_f64()))
                        .unwrap_or_else(|| "never".into()),
                ));
                metrics.push(("standby_suggestions".into(), s.suggestions_sent.to_string()));
            }
        }
        other => unreachable!("unknown scenario workload {other}"),
    }
    RunRecord {
        id: cell.id.clone(),
        workload: cell.workload.into(),
        axes: cell.axes.clone(),
        seed: cell.seed,
        metrics,
        gates,
    }
}

// ------------------------------------------------------------------ runner

/// Expand and run the whole campaign. Scenario cells run concurrently via
/// the existing rayon sweep ([`runner::run_many`]); pipeline cells run
/// inline (they are single-interval-loop drives). The returned report is a
/// pure function of `(spec.name, seed_index, profile, seeds_per_cell,
/// config_override)` — nothing wall-clock-dependent leaks in.
pub fn run_campaign(spec: &CampaignSpec) -> CampaignReport {
    let tel = &spec.telemetry;
    let mut caps: Vec<String> = Vec::new();
    let mut runs: Vec<RunRecord> = Vec::new();

    // Pipeline-level zoo cells.
    if let (_, Some(cap)) = flash_params(spec.profile) {
        caps.push(cap);
    }
    for s_ord in 0..spec.seeds_per_cell {
        let seed = spec.cell_seed("flash-crowd", s_ord as u64);
        runs.push(run_flash_crowd(
            spec,
            seed,
            format!("flash-crowd/join-in-one-interval/s{s_ord}"),
            vec![
                ("topology".into(), "balanced".into()),
                ("traffic".into(), "report-level".into()),
                ("fault".into(), "none".into()),
            ],
        ));
    }
    if let (_, Some(cap)) = diurnal_params(spec.profile) {
        caps.push(cap);
    }
    for s_ord in 0..spec.seeds_per_cell {
        let seed = spec.cell_seed("diurnal-churn", s_ord as u64);
        runs.push(run_diurnal(
            spec,
            seed,
            format!("diurnal-churn/triangle-day/s{s_ord}"),
            vec![
                ("topology".into(), "balanced".into()),
                ("traffic".into(), "report-level churn".into()),
                ("fault".into(), "none".into()),
            ],
        ));
    }

    if let (_, Some(cap)) = federation_params(spec.profile) {
        caps.push(cap);
    }
    for s_ord in 0..spec.seeds_per_cell {
        let seed = spec.cell_seed("federation", s_ord as u64);
        runs.push(run_federation(
            spec,
            seed,
            format!("federation/border-aggregation/s{s_ord}"),
            vec![
                ("topology".into(), "federated balanced domains".into()),
                ("traffic".into(), "report-level border oracle".into()),
                ("fault".into(), "none".into()),
                ("control".into(), "per-domain pipelines + parent aggregator".into()),
            ],
        ));
    }

    if let (_, Some(cap)) = federation_packet_params(spec.profile) {
        caps.push(cap);
    }
    // The packet world is seed-free deterministic, so one cell covers it —
    // extra seeds would be byte-identical reruns of a heavyweight world.
    runs.push(run_federation_packet(
        spec,
        spec.cell_seed("federation-packet", 0),
        "federation-packet/sharded-1m/s0".into(),
        vec![
            ("topology".into(), "federated balanced domains".into()),
            ("traffic".into(), "packet-level CBR media".into()),
            ("fault".into(), "none".into()),
            ("control".into(), "sharded wheels + conservative barriers".into()),
        ],
    ));

    // Scenario-level matrix, swept in parallel.
    let mut cells = lastmile_cells(spec, &mut caps);
    cells.extend(mixed_cells(spec, &mut caps));
    cells.extend(failover_cells(spec));
    let scenarios: Vec<Scenario> = cells.iter().map(|c| c.scenario.clone()).collect();
    let results = runner::run_many(&scenarios);
    let mut blackboxes: Vec<(String, telemetry::Blackbox)> = Vec::new();
    for (cell, result) in cells.iter().zip(&results) {
        let rec = judge_scenario(cell, result);
        if rec.failed() {
            // Capture the failing run's last moments — flight window,
            // profile counters, seed — so the gate report is actionable
            // without a re-run.
            let bb =
                chaos::blackbox(result, &cell.cfg, cell.seed, "campaign_gate_failure", &cell.id);
            blackboxes.push((rec.id.clone(), bb));
        }
        runs.push(rec);
    }
    // Pipeline-level cells have no simulator behind them; a failed one
    // still gets a minimal dump so every red gate leaves a black box.
    for rec in runs.iter().filter(|r| r.failed()) {
        if blackboxes.iter().any(|(id, _)| id == &rec.id) {
            continue;
        }
        blackboxes.push((
            rec.id.clone(),
            telemetry::Blackbox {
                reason: "campaign_gate_failure".into(),
                label: rec.id.clone(),
                seed: rec.seed,
                config_fingerprint: format!("{:016x}", spec.base_config().fingerprint()),
                t_ns: 0,
                counters: vec![(
                    "gates_failed".into(),
                    rec.gates.iter().filter(|g| g.status == GateStatus::Fail).count() as u64,
                )],
                occurrences: Vec::new(),
                ring_dropped: 0,
            },
        ));
    }
    blackboxes.sort_by(|a, b| a.0.cmp(&b.0));

    let report = CampaignReport {
        name: spec.name.clone(),
        seed_index: spec.seed_index,
        profile: spec.profile,
        runs,
        coverage_caps: caps,
        blackboxes,
    };
    if tel.is_enabled() {
        tel.set("campaign.runs", report.runs.len() as u64);
        tel.set("campaign.gates_passed", report.gates_passed() as u64);
        tel.set("campaign.gates_failed", report.gates_failed() as u64);
        tel.set("campaign.gates_skipped", report.gates_skipped() as u64);
        tel.set("campaign.coverage_caps", report.coverage_caps.len() as u64);
        tel.set("campaign.blackboxes", report.blackboxes.len() as u64);
    }
    report
}

/// The number of caps the active profile is expected to record — the
/// binary audits `coverage_caps` against this and reports `SILENT-CAP` on
/// any mismatch, so a profile that starts truncating without logging
/// cannot slip through CI.
pub fn expected_caps(spec: &CampaignSpec) -> usize {
    let mut n = 0;
    if flash_params(spec.profile).1.is_some() {
        n += 1;
    }
    if diurnal_params(spec.profile).1.is_some() {
        n += 1;
    }
    if federation_params(spec.profile).1.is_some() {
        n += 1;
    }
    if federation_packet_params(spec.profile).1.is_some() {
        n += 1;
    }
    if spec.profile == Profile::Smoke {
        n += 2; // het-lastmile + mixed-sessions duration/size caps
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_constructors_cover_the_three_states() {
        let pass = Gate::at_most("d", Some(0.3), 0.5, "");
        assert_eq!(pass.status, GateStatus::Pass);
        let fail = Gate::at_most("d", Some(0.8), 0.5, "");
        assert_eq!(fail.status, GateStatus::Fail);
        assert!(fail.reason.contains("violates"));
        let skip = Gate::at_most("d", None, 0.5, "no receivers");
        assert_eq!(skip.status, GateStatus::Skipped);
        assert!(skip.reason.contains("no receivers"));
        let nan = Gate::at_least("j", Some(f64::NAN), 0.5, "ctx");
        assert_eq!(nan.status, GateStatus::Skipped);
    }

    #[test]
    fn report_json_counts_gates() {
        let report = CampaignReport {
            name: "t".into(),
            seed_index: 1,
            profile: Profile::Smoke,
            runs: vec![RunRecord {
                id: "w/v/s0".into(),
                workload: "w".into(),
                axes: vec![],
                seed: 9,
                metrics: vec![],
                gates: vec![
                    Gate::at_most("a", Some(0.1), 1.0, ""),
                    Gate::at_most("b", None, 1.0, "undefined"),
                ],
            }],
            coverage_caps: vec!["w: capped".into()],
            blackboxes: Vec::new(),
        };
        assert!(report.passed());
        assert_eq!(report.gates_passed(), 1);
        assert_eq!(report.gates_skipped(), 1);
        let j = serde_json::to_string(&report.to_json()).unwrap();
        assert!(j.contains("\"verdict\": \"pass\"") || j.contains("\"verdict\":\"pass\""));
        assert!(j.contains("capped"));
        let md = report.to_markdown();
        assert!(md.contains("coverage-cap: w: capped"));
        assert!(md.contains("| w/v/s0 | a |"));
    }

    #[test]
    fn cell_seeds_differ_across_workloads_and_cells() {
        let spec = CampaignSpec::new("t", 7, Profile::Smoke);
        let a = spec.cell_seed("flash-crowd", 0);
        assert_eq!(a, spec.cell_seed("flash-crowd", 0));
        assert_ne!(a, spec.cell_seed("flash-crowd", 1));
        assert_ne!(a, spec.cell_seed("diurnal-churn", 0));
    }
}
