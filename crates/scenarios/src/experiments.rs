//! The paper's experiments, one function per figure.
//!
//! Every function returns typed rows; the `fig*` binaries in the root crate
//! print them as tables, the integration tests assert the shape claims, and
//! the criterion benches time scaled-down versions. Sweeps parallelise over
//! parameter points with rayon — each point is an independent simulation.

use crate::runner::{self, ControlMode, Scenario};
use baselines::rlm::RlmParams;
use metrics::StepSeries;
use netsim::{SimDuration, SimTime};
use rayon::prelude::*;
use topology::generators;
use traffic::TrafficModel;

/// Traffic models the paper sweeps: CBR, VBR(P=3), VBR(P=6).
pub fn paper_traffic_models() -> Vec<TrafficModel> {
    vec![TrafficModel::Cbr, TrafficModel::Vbr { p: 3.0 }, TrafficModel::Vbr { p: 6.0 }]
}

/// Settling time excluded from stability counting (startup climb).
const WARMUP: SimDuration = SimDuration(5_000_000_000);

// ---------------------------------------------------------------- Fig. 6/7

/// One stability point (Figs. 6 and 7).
#[derive(Clone, Debug)]
pub struct StabilityRow {
    pub model: String,
    /// Receivers per set (Fig. 6) or number of sessions (Fig. 7).
    pub x: usize,
    /// Max subscription changes by any receiver over the run.
    pub max_changes: usize,
    /// Mean seconds between successive changes for that receiver.
    pub mean_gap_secs: f64,
}

/// Fig. 6 — stability in Topology A vs. receivers per set.
pub fn fig6_stability_a(
    receiver_counts: &[usize],
    models: &[TrafficModel],
    duration: SimDuration,
    seed: u64,
) -> Vec<StabilityRow> {
    let points: Vec<(usize, TrafficModel)> = cartesian(receiver_counts, models);
    points
        .par_iter()
        .map(|&(n, model)| {
            let s = Scenario::new(generators::topology_a_default(n), model, seed)
                .with_duration(duration);
            let r = runner::run(&s);
            let (max_changes, mean_gap_secs) =
                r.stability(SimTime::ZERO + WARMUP, SimTime::ZERO + duration);
            StabilityRow { model: model.label(), x: n, max_changes, mean_gap_secs }
        })
        .collect()
}

/// Fig. 7 — stability in Topology B vs. number of competing sessions.
pub fn fig7_stability_b(
    session_counts: &[usize],
    models: &[TrafficModel],
    duration: SimDuration,
    seed: u64,
) -> Vec<StabilityRow> {
    let points: Vec<(usize, TrafficModel)> = cartesian(session_counts, models);
    points
        .par_iter()
        .map(|&(n, model)| {
            let s = Scenario::new(generators::topology_b_default(n), model, seed)
                .with_duration(duration);
            let r = runner::run(&s);
            let (max_changes, mean_gap_secs) =
                r.stability(SimTime::ZERO + WARMUP, SimTime::ZERO + duration);
            StabilityRow { model: model.label(), x: n, max_changes, mean_gap_secs }
        })
        .collect()
}

// ------------------------------------------------------------------ Fig. 8

/// One fairness point (Fig. 8).
#[derive(Clone, Debug)]
pub struct FairnessRow {
    pub model: String,
    pub sessions: usize,
    /// Mean relative deviation over 0 – duration/2.
    pub dev_first_half: f64,
    /// Mean relative deviation over duration/2 – duration.
    pub dev_second_half: f64,
    /// Jain index over per-session received bytes.
    pub jain: f64,
}

/// Fig. 8 — inter-session fairness in Topology B.
pub fn fig8_fairness(
    session_counts: &[usize],
    models: &[TrafficModel],
    duration: SimDuration,
    seed: u64,
) -> Vec<FairnessRow> {
    let points: Vec<(usize, TrafficModel)> = cartesian(session_counts, models);
    points
        .par_iter()
        .map(|&(n, model)| {
            let s = Scenario::new(generators::topology_b_default(n), model, seed)
                .with_duration(duration);
            let r = runner::run(&s);
            let half = SimTime::ZERO + duration / 2;
            let end = SimTime::ZERO + duration;
            let bytes: Vec<f64> = r.session_bytes().iter().map(|&(_, b)| b as f64).collect();
            FairnessRow {
                model: model.label(),
                sessions: n,
                dev_first_half: r.mean_relative_deviation(SimTime::ZERO, half).unwrap_or(f64::NAN),
                dev_second_half: r.mean_relative_deviation(half, end).unwrap_or(f64::NAN),
                jain: metrics::jain_index(&bytes),
            }
        })
        .collect()
}

// ------------------------------------------------------------------ Fig. 9

/// Fig. 9 — subscription + loss time series for 4 competing VBR sessions.
#[derive(Clone, Debug)]
pub struct TimeseriesOut {
    /// Per session: `(time, level)` samples.
    pub levels: Vec<Vec<(f64, u8)>>,
    /// Per session: `(time, loss rate)` samples.
    pub losses: Vec<Vec<(f64, f64)>>,
    /// Transient over-subscription above the 4-layer optimum happened.
    pub oversubscription_seen: bool,
}

/// Fig. 9 — the raw series behind the sample plot.
pub fn fig9_timeseries(duration: SimDuration, seed: u64) -> TimeseriesOut {
    let s = Scenario::new(generators::topology_b_default(4), TrafficModel::Vbr { p: 3.0 }, seed)
        .with_duration(duration);
    let r = runner::run(&s);
    let mut levels = Vec::new();
    let mut losses = Vec::new();
    let mut over = false;
    for rec in &r.receivers {
        levels.push(
            rec.stats.level_series.iter().map(|&(t, l)| (t.as_secs_f64(), l)).collect::<Vec<_>>(),
        );
        losses.push(
            rec.stats.loss_series.iter().map(|&(t, l)| (t.as_secs_f64(), l)).collect::<Vec<_>>(),
        );
        over |= rec.stats.level_series.iter().any(|&(_, l)| l > rec.optimal);
    }
    TimeseriesOut { levels, losses, oversubscription_seen: over }
}

// ----------------------------------------------------------------- Fig. 10

/// One staleness point (Fig. 10).
#[derive(Clone, Debug)]
pub struct StalenessRow {
    pub receivers_per_set: usize,
    pub staleness_secs: u64,
    pub mean_relative_deviation: f64,
    /// Mean loss rate across receivers and report windows — where the
    /// staleness damage shows up in this implementation (see
    /// EXPERIMENTS.md): receivers sit at near-optimal levels but their
    /// mistakes go uncorrected for longer.
    pub mean_loss: f64,
}

/// Seeds averaged per Fig. 10 point (single-run deviation noise is on the
/// same order as the staleness effect).
const FIG10_SEEDS: u64 = 5;

/// Fig. 10 — impact of stale topology information on Topology A, VBR(P=3).
/// Each point is the mean over [`FIG10_SEEDS`] independent runs.
pub fn fig10_staleness(
    receiver_counts: &[usize],
    staleness_secs: &[u64],
    duration: SimDuration,
    seed: u64,
) -> Vec<StalenessRow> {
    let points: Vec<(usize, u64)> = cartesian(receiver_counts, staleness_secs);
    let runs: Vec<(usize, u64, u64)> = points
        .iter()
        .flat_map(|&(n, st)| (0..FIG10_SEEDS).map(move |k| (n, st, seed + k * 7919)))
        .collect();
    let devs: Vec<((usize, u64), f64, f64)> = runs
        .par_iter()
        .map(|&(n, st, sd)| {
            let s =
                Scenario::new(generators::topology_a_default(n), TrafficModel::Vbr { p: 3.0 }, sd)
                    .with_control(ControlMode::TopoSense { staleness: SimDuration::from_secs(st) })
                    .with_duration(duration);
            let r = runner::run(&s);
            // Measure from t=0: convergence delay is part of what staleness
            // costs (the paper's runs were measured whole).
            let dev = r
                .mean_relative_deviation(SimTime::ZERO, SimTime::ZERO + duration)
                .unwrap_or(f64::NAN);
            let loss = r
                .receivers
                .iter()
                .map(|x| x.mean_loss(SimTime::ZERO, SimTime::ZERO + duration))
                .sum::<f64>()
                / r.receivers.len() as f64;
            ((n, st), dev, loss)
        })
        .collect();
    points
        .iter()
        .map(|&(n, st)| {
            let vals: Vec<(f64, f64)> =
                devs.iter().filter(|&&(k, _, _)| k == (n, st)).map(|&(_, d, l)| (d, l)).collect();
            let count = vals.len() as f64;
            StalenessRow {
                receivers_per_set: n,
                staleness_secs: st,
                mean_relative_deviation: vals.iter().map(|v| v.0).sum::<f64>() / count,
                mean_loss: vals.iter().map(|v| v.1).sum::<f64>() / count,
            }
        })
        .collect()
}

// ------------------------------------------------------------------ Fig. 1

/// Fig. 1 — the motivating example, quantified: with topology-blind
/// control, the greedy receiver at n4 keeps probing layer 3 and its loss
/// spills onto the slow sibling at n3; TopoSense confines it.
#[derive(Clone, Debug)]
pub struct MotivationRow {
    pub mode: String,
    /// Mean loss rate at the *innocent* receiver n3 after warmup.
    pub n3_loss: f64,
    /// Mean level held by n3 (optimal 1).
    pub n3_mean_level: f64,
    /// Mean level held by the greedy n4 (optimal 2).
    pub n4_mean_level: f64,
    /// Mean level of the independent n5 (optimal 4).
    pub n5_mean_level: f64,
}

/// Run the Fig. 1 example under TopoSense and under the RLM baseline.
pub fn fig1_motivation(duration: SimDuration, seed: u64) -> Vec<MotivationRow> {
    let modes: Vec<(String, ControlMode)> = vec![
        ("TopoSense".into(), ControlMode::TopoSense { staleness: SimDuration::ZERO }),
        ("RLM".into(), ControlMode::Rlm(RlmParams::default())),
    ];
    modes
        .par_iter()
        .map(|(name, mode)| {
            let s = Scenario::new(generators::figure1(), TrafficModel::Cbr, seed)
                .with_control(*mode)
                .with_duration(duration);
            let r = runner::run(&s);
            let start = SimTime::from_secs(30);
            let end = SimTime::ZERO + duration;
            let by_set = |set: u32| {
                r.receivers.iter().find(|x| x.set == set).expect("figure1 has sets 0..3")
            };
            let mean_level = |set: u32| by_set(set).level_series().mean(start, end);
            MotivationRow {
                mode: name.clone(),
                n3_loss: by_set(0).mean_loss(start, end),
                n3_mean_level: mean_level(0),
                n4_mean_level: mean_level(1),
                n5_mean_level: mean_level(2),
            }
        })
        .collect()
}

// ------------------------------------------------------- §IV convergence

/// One receiver's convergence summary (the prior-work claims re-validated:
/// convergence to optimal subscription and intra-session fairness).
#[derive(Clone, Debug)]
pub struct ConvergenceRow {
    pub set: u32,
    pub optimal: u8,
    /// Time-weighted mean level over the second half of the run.
    pub mean_level_late: f64,
    /// Relative deviation over the second half.
    pub deviation_late: f64,
    /// Max level spread between receivers of the same set (intra-session
    /// fairness: should be small).
    pub intra_set_spread: f64,
}

/// Convergence on Topology A: per set, how close to optimal the steady
/// state sits.
pub fn convergence_topology_a(
    receivers_per_set: usize,
    model: TrafficModel,
    duration: SimDuration,
    seed: u64,
) -> Vec<ConvergenceRow> {
    let s = Scenario::new(generators::topology_a_default(receivers_per_set), model, seed)
        .with_duration(duration);
    let r = runner::run(&s);
    let half = SimTime::ZERO + duration / 2;
    let end = SimTime::ZERO + duration;
    [0u32, 1]
        .iter()
        .map(|&set| {
            let members: Vec<_> = r.receivers.iter().filter(|x| x.set == set).collect();
            assert!(!members.is_empty());
            let series: Vec<StepSeries> = members.iter().map(|m| m.level_series()).collect();
            let means: Vec<f64> = series.iter().map(|s| s.mean(half, end)).collect();
            let mean_level_late = means.iter().sum::<f64>() / means.len() as f64;
            let spread = means.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                - means.iter().copied().fold(f64::INFINITY, f64::min);
            let deviation_late = members
                .iter()
                .map(|m| m.relative_deviation(half, end).unwrap_or(f64::NAN))
                .sum::<f64>()
                / members.len() as f64;
            ConvergenceRow {
                set,
                optimal: members[0].optimal,
                mean_level_late,
                deviation_late,
                intra_set_spread: spread,
            }
        })
        .collect()
}

// ------------------------------------------------------------------ misc

fn cartesian<A: Copy + Send + Sync, B: Copy + Send + Sync>(xs: &[A], ys: &[B]) -> Vec<(A, B)> {
    xs.iter().flat_map(|&x| ys.iter().map(move |&y| (x, y))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Short-duration smoke versions of each figure sweep; the full-length
    /// shape assertions live in the root integration tests.
    #[test]
    fn fig6_smoke() {
        let rows = fig6_stability_a(&[1, 2], &[TrafficModel::Cbr], SimDuration::from_secs(60), 3);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.mean_gap_secs > 0.0);
        }
    }

    #[test]
    fn fig8_smoke() {
        let rows = fig8_fairness(&[2], &[TrafficModel::Cbr], SimDuration::from_secs(120), 3);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        // Short smoke run still includes the startup transient; the strict
        // fairness bound is asserted at full length in the integration tests.
        assert!(r.jain > 0.55, "jain {}", r.jain);
        assert!(r.dev_second_half < 1.0);
    }

    #[test]
    fn fig9_smoke() {
        let out = fig9_timeseries(SimDuration::from_secs(90), 3);
        assert_eq!(out.levels.len(), 4);
        assert!(out.levels.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn fig10_smoke() {
        let rows = fig10_staleness(&[1], &[0, 4], SimDuration::from_secs(120), 3);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.mean_relative_deviation.is_finite()));
    }

    #[test]
    fn convergence_smoke() {
        let rows = convergence_topology_a(1, TrafficModel::Cbr, SimDuration::from_secs(120), 3);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].optimal, 2);
        assert_eq!(rows[1].optimal, 4);
    }
}
