//! A receiver-driven layered-multicast baseline (RLM-style).
//!
//! Each receiver adapts **independently**, with no controller and no
//! topology knowledge: it runs *join experiments* — periodically adding the
//! next layer — and drops the top layer when a loss window exceeds a
//! threshold, doubling that layer's join timer (exponential backoff). This
//! is the class of "end-to-end information only" schemes the paper contrasts
//! with; its pathology in Fig. 1 is that one receiver's failed experiment
//! congests shared links and causes loss for topologically-related
//! neighbours.

use netsim::{App, Ctx, Packet, RngStream, SeqTracker, SimDuration};
use std::sync::{Arc, Mutex};
use toposense::receiver::{ReceiverHandle, ReceiverShared};
use traffic::session::SessionDef;

/// Tunables of the receiver-driven baseline.
#[derive(Clone, Copy, Debug)]
pub struct RlmParams {
    /// Loss-measurement window.
    pub window: SimDuration,
    /// Loss rate that triggers dropping the top layer.
    pub drop_loss: f64,
    /// Initial join-experiment timer per layer.
    pub join_timer: SimDuration,
    /// Cap on the backed-off join timer.
    pub join_timer_max: SimDuration,
    /// Multiplier applied to a layer's join timer after a failed experiment.
    pub backoff_multiplier: f64,
}

impl Default for RlmParams {
    fn default() -> Self {
        RlmParams {
            window: SimDuration::from_secs(1),
            drop_loss: 0.10,
            join_timer: SimDuration::from_secs(5),
            join_timer_max: SimDuration::from_secs(120),
            backoff_multiplier: 2.0,
        }
    }
}

const TOKEN_WINDOW: u64 = 1;

/// The receiver-driven baseline app. Reuses [`ReceiverShared`] so metrics
/// treat it identically to the TopoSense receiver.
pub struct RlmReceiver {
    def: SessionDef,
    params: RlmParams,
    level: u8,
    trackers: Vec<SeqTracker>,
    /// Per-level join timer (indexed by the level being *added*).
    timers: Vec<SimDuration>,
    /// Time of the next allowed join experiment.
    next_join_at: netsim::SimTime,
    /// Consecutive clean windows since the last change.
    clean_windows: u32,
    rng: RngStream,
    shared: ReceiverHandle,
}

impl RlmReceiver {
    pub fn new(
        def: SessionDef,
        params: RlmParams,
        seed: u64,
        label: &str,
    ) -> (Self, ReceiverHandle) {
        let shared: ReceiverHandle = Arc::new(Mutex::new(ReceiverShared::default()));
        let layers = def.spec.layer_count();
        let r = RlmReceiver {
            def,
            params,
            level: 0,
            trackers: (0..layers).map(|_| SeqTracker::new()).collect(),
            timers: vec![params.join_timer; layers + 1],
            next_join_at: netsim::SimTime::ZERO,
            clean_windows: 0,
            rng: RngStream::derive(seed, &format!("rlm/{label}")),
            shared: Arc::clone(&shared),
        };
        (r, shared)
    }

    /// Current subscription level.
    pub fn level(&self) -> u8 {
        self.level
    }

    fn set_level(&mut self, ctx: &mut Ctx<'_>, new: u8) {
        let new = new.clamp(0, self.def.spec.max_level());
        if new == self.level {
            return;
        }
        let old = self.level;
        if new > old {
            for layer in old..new {
                ctx.join(self.def.group_of_layer(layer));
                // Forget any stale counts from a previous subscription of
                // this layer: they cover a window when we were not listening
                // and would surface as phantom loss in the next report.
                let _ = self.trackers[layer as usize].take_window();
                self.trackers[layer as usize].resync();
            }
        } else {
            for layer in (new..old).rev() {
                ctx.leave(self.def.group_of_layer(layer));
                let _ = self.trackers[layer as usize].take_window();
                self.trackers[layer as usize].resync();
            }
        }
        self.level = new;
        self.shared.lock().unwrap().changes.push((ctx.now(), old, new));
    }

    fn window_tick(&mut self, ctx: &mut Ctx<'_>) {
        let mut received = 0;
        let mut lost = 0;
        let mut bytes = 0;
        for layer in 0..self.level {
            let w = self.trackers[layer as usize].take_window();
            received += w.received;
            lost += w.lost;
            bytes += w.bytes;
        }
        let expected = received + lost;
        let loss = if expected == 0 { 0.0 } else { lost as f64 / expected as f64 };
        {
            let mut s = self.shared.lock().unwrap();
            s.loss_series.push((ctx.now(), loss));
            s.level_series.push((ctx.now(), self.level));
            s.bytes_total += bytes;
        }

        if loss > self.params.drop_loss && self.level > 1 {
            // Failed experiment (or shared congestion): shed the top layer
            // and back off its join timer exponentially.
            let dropped = self.level;
            let t = &mut self.timers[dropped as usize];
            let backed = SimDuration::from_secs_f64(
                (t.as_secs_f64() * self.params.backoff_multiplier)
                    .min(self.params.join_timer_max.as_secs_f64()),
            );
            *t = backed;
            let new = self.level - 1;
            self.set_level(ctx, new);
            self.next_join_at = ctx.now() + self.timers[(self.level + 1) as usize];
            self.clean_windows = 0;
        } else if loss == 0.0 {
            self.clean_windows += 1;
            // Join experiment: enough clean windows and the timer expired.
            if self.level < self.def.spec.max_level()
                && ctx.now() >= self.next_join_at
                && self.clean_windows >= 2
            {
                let new = self.level + 1;
                self.set_level(ctx, new);
                // Jittered timer for the *next* experiment (to level + 1).
                let next = (self.level as usize + 1).min(self.def.spec.max_level() as usize);
                let base = self.timers[next];
                let jitter = self.rng.range_f64(0.8, 1.2);
                self.next_join_at =
                    ctx.now() + SimDuration::from_secs_f64(base.as_secs_f64() * jitter);
                self.clean_windows = 0;
            }
        } else {
            self.clean_windows = 0;
        }

        ctx.set_timer(self.params.window, TOKEN_WINDOW);
    }
}

impl App for RlmReceiver {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.set_level(ctx, 1);
        self.next_join_at = ctx.now() + self.params.join_timer;
        let jitter = self.rng.range_f64(0.0, self.params.window.as_secs_f64());
        ctx.set_timer(SimDuration::from_secs_f64(jitter), TOKEN_WINDOW);
    }

    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, packet: &Packet) {
        if let Some((session, layer, seq)) = packet.media_fields() {
            if session == self.def.id && layer < self.level {
                self.trackers[layer as usize].on_packet(seq, packet.size);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        debug_assert_eq!(token, TOKEN_WINDOW);
        self.window_tick(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::sim::{NetworkBuilder, SimConfig};
    use netsim::{GroupId, LinkConfig, SessionId, SimTime};
    use traffic::{LayerSpec, LayeredSource, TrafficModel};

    fn run_rlm(bottleneck_kbps: f64, secs: u64) -> ReceiverHandle {
        let mut b = NetworkBuilder::new(SimConfig::default());
        let src = b.add_node("src");
        let rcv = b.add_node("rcv");
        b.add_link(src, rcv, LinkConfig::kbps(bottleneck_kbps));
        let mut sim = b.build();
        let groups: Vec<GroupId> = (0..6).map(|_| sim.create_group(src)).collect();
        let def =
            SessionDef { id: SessionId(0), source: src, groups, spec: LayerSpec::paper_default() };
        sim.add_app(src, Box::new(LayeredSource::new(def.clone(), TrafficModel::Cbr, 2)));
        let (r, shared) = RlmReceiver::new(def, RlmParams::default(), 3, "r0");
        sim.add_app(rcv, Box::new(r));
        sim.run_until(SimTime::from_secs(secs));
        shared
    }

    #[test]
    fn climbs_on_a_clean_path() {
        let shared = run_rlm(100_000.0, 120);
        let s = shared.lock().unwrap();
        assert_eq!(s.final_level(), 6, "changes: {:?}", s.changes);
        // Purely additive climb: no drops on a clean path.
        assert!(s.changes.iter().all(|&(_, old, new)| new > old));
    }

    #[test]
    fn oscillates_around_a_bottleneck() {
        // 150 kb/s fits 2 layers; experiments to 3 must fail and back off.
        let shared = run_rlm(150.0, 600);
        let s = shared.lock().unwrap();
        let ups = s.changes.iter().filter(|&&(_, o, n)| n > o).count();
        let downs = s.changes.iter().filter(|&&(_, o, n)| n < o).count();
        assert!(downs >= 1, "some experiment must fail: {:?}", s.changes);
        assert!(ups >= downs, "cannot drop more than was added");
        // Oscillates in the bottleneck's neighbourhood, never far above it.
        assert!(
            (1..=3).contains(&s.final_level()),
            "final {} out of range; changes: {:?}",
            s.final_level(),
            s.changes
        );
        // The time-weighted level in the second half should sit around the
        // 2-layer optimum (96 kb/s through a 150 kb/s pipe).
        let half = SimTime::from_secs(300);
        let mut level = 0u8;
        let mut weighted = 0.0;
        let mut last = half;
        for &(t, _, new) in &s.changes {
            if t <= half {
                level = new;
                continue;
            }
            weighted += level as f64 * t.since(last).as_secs_f64();
            last = t;
            level = new;
        }
        weighted += level as f64 * SimTime::from_secs(600).since(last).as_secs_f64();
        let avg = weighted / 300.0;
        assert!((1.2..=3.0).contains(&avg), "mean level {avg}; changes: {:?}", s.changes);
    }

    #[test]
    fn backoff_spaces_out_failed_experiments() {
        let shared = run_rlm(150.0, 900);
        let s = shared.lock().unwrap();
        // Gaps between successive drops should grow (exponential backoff).
        let drops: Vec<SimTime> =
            s.changes.iter().filter(|&&(_, o, n)| n < o).map(|&(t, _, _)| t).collect();
        assert!(drops.len() >= 2, "need at least two failed experiments");
        let first_gap = drops[1].since(drops[0]).as_secs_f64();
        let last_gap = drops[drops.len() - 1].since(drops[drops.len() - 2]).as_secs_f64();
        assert!(
            last_gap >= first_gap * 0.9,
            "gaps should not shrink: first {first_gap}, last {last_gap}"
        );
    }
}
