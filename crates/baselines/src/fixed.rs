//! The no-adaptation strawman: subscribe `k` layers and never change.
//!
//! Useful as a floor in comparisons and as a congestion generator in
//! robustness tests (a fixed over-subscriber is a non-conforming flow from
//! the network's point of view).

use netsim::{App, Ctx, Packet, SeqTracker, SimDuration};
use std::sync::{Arc, Mutex};
use toposense::receiver::{ReceiverHandle, ReceiverShared};
use traffic::session::SessionDef;

const TOKEN_WINDOW: u64 = 1;

/// A receiver pinned at a fixed subscription level.
pub struct FixedReceiver {
    def: SessionDef,
    level: u8,
    trackers: Vec<SeqTracker>,
    window: SimDuration,
    shared: ReceiverHandle,
}

impl FixedReceiver {
    pub fn new(def: SessionDef, level: u8) -> (Self, ReceiverHandle) {
        assert!(level >= 1 && level <= def.spec.max_level());
        let shared: ReceiverHandle = Arc::new(Mutex::new(ReceiverShared::default()));
        let layers = def.spec.layer_count();
        let r = FixedReceiver {
            def,
            level,
            trackers: (0..layers).map(|_| SeqTracker::new()).collect(),
            window: SimDuration::from_secs(1),
            shared: Arc::clone(&shared),
        };
        (r, shared)
    }

    /// The pinned level.
    pub fn level(&self) -> u8 {
        self.level
    }
}

impl App for FixedReceiver {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for layer in 0..self.level {
            ctx.join(self.def.group_of_layer(layer));
        }
        self.shared.lock().unwrap().changes.push((ctx.now(), 0, self.level));
        ctx.set_timer(self.window, TOKEN_WINDOW);
    }

    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, packet: &Packet) {
        if let Some((session, layer, seq)) = packet.media_fields() {
            if session == self.def.id && layer < self.level {
                self.trackers[layer as usize].on_packet(seq, packet.size);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let mut received = 0;
        let mut lost = 0;
        let mut bytes = 0;
        for layer in 0..self.level {
            let w = self.trackers[layer as usize].take_window();
            received += w.received;
            lost += w.lost;
            bytes += w.bytes;
        }
        let expected = received + lost;
        let loss = if expected == 0 { 0.0 } else { lost as f64 / expected as f64 };
        {
            let mut s = self.shared.lock().unwrap();
            s.loss_series.push((ctx.now(), loss));
            s.level_series.push((ctx.now(), self.level));
            s.bytes_total += bytes;
        }
        ctx.set_timer(self.window, TOKEN_WINDOW);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::sim::{NetworkBuilder, SimConfig};
    use netsim::{GroupId, LinkConfig, SessionId, SimTime};
    use traffic::{LayerSpec, LayeredSource, TrafficModel};

    fn run_fixed(level: u8, kbps: f64, secs: u64) -> ReceiverHandle {
        let mut b = NetworkBuilder::new(SimConfig::default());
        let src = b.add_node("src");
        let rcv = b.add_node("rcv");
        b.add_link(src, rcv, LinkConfig::kbps(kbps));
        let mut sim = b.build();
        let groups: Vec<GroupId> = (0..6).map(|_| sim.create_group(src)).collect();
        let def =
            SessionDef { id: SessionId(0), source: src, groups, spec: LayerSpec::paper_default() };
        sim.add_app(src, Box::new(LayeredSource::new(def.clone(), TrafficModel::Cbr, 2)));
        let (r, shared) = FixedReceiver::new(def, level);
        sim.add_app(rcv, Box::new(r));
        sim.run_until(SimTime::from_secs(secs));
        shared
    }

    #[test]
    fn never_changes_level() {
        let shared = run_fixed(3, 100_000.0, 60);
        let s = shared.lock().unwrap();
        assert_eq!(s.changes.len(), 1);
        assert_eq!(s.final_level(), 3);
        // Clean path: zero loss in every window.
        assert!(s.loss_series.iter().all(|&(_, l)| l == 0.0));
    }

    #[test]
    fn oversubscription_shows_persistent_loss() {
        // Level 4 = 480 kb/s through a 150 kb/s pipe.
        let shared = run_fixed(4, 150.0, 120);
        let s = shared.lock().unwrap();
        let late: Vec<f64> = s
            .loss_series
            .iter()
            .filter(|&&(t, _)| t > SimTime::from_secs(30))
            .map(|&(_, l)| l)
            .collect();
        assert!(!late.is_empty());
        let mean = late.iter().sum::<f64>() / late.len() as f64;
        assert!(mean > 0.4, "sustained overload must lose heavily, got {mean}");
        assert_eq!(s.final_level(), 4, "and never adapt");
    }

    #[test]
    #[should_panic]
    fn zero_level_rejected() {
        let def = SessionDef {
            id: SessionId(0),
            source: netsim::NodeId(0),
            groups: vec![GroupId(0)],
            spec: LayerSpec::paper_default(),
        };
        let _ = FixedReceiver::new(def, 0);
    }
}
