//! # baselines — comparison points for TopoSense
//!
//! * [`oracle`] — the **static optimal** subscription per receiver, computed
//!   from ground-truth capacities by discrete max-min filling. This is the
//!   `y_i` in the paper's relative-deviation metric.
//! * [`rlm`] — a **receiver-driven** layered-multicast controller in the
//!   spirit of McCanne et al.: independent join experiments with exponential
//!   backoff and no topology knowledge. This is the "congestion control
//!   mechanism which is unaware of the topological relationship" that the
//!   paper's Fig. 1 example argues against.
//! * [`fixed`] — a subscribe-k-layers strawman (no adaptation at all).
//! * [`tfrc`] — an equation-based (TCP-friendly) receiver, executable form
//!   of the §VI argument that AIMD-style rates map poorly onto layers.

pub mod fixed;
pub mod oracle;
pub mod rlm;
pub mod tfrc;

pub use fixed::FixedReceiver;
pub use oracle::optimal_levels;
pub use rlm::{RlmParams, RlmReceiver};
pub use tfrc::{TfrcParams, TfrcReceiver};
