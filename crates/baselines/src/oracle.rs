//! The static optimal subscription oracle.
//!
//! Works on the [`TopoSpec`] (which, unlike the running controller, knows
//! the true link capacities) and computes per-receiver optimal levels by
//! **discrete max-min filling**: start everyone at the base layer and
//! repeatedly grant one more layer to a lowest receiver for whom the
//! resulting link loads still fit, until nobody can grow.
//!
//! Layered multicast load model: on a directed link, a session consumes the
//! cumulative rate of the *maximum* level among its downstream receivers
//! (layers are shared on the tree, not duplicated per receiver).

use topology::spec::TopoSpec;
use traffic::LayerSpec;

/// One receiver's optimum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptimalEntry {
    /// Spec node index of the receiver.
    pub node: usize,
    pub session: u32,
    pub set: u32,
    /// Optimal subscription level.
    pub level: u8,
}

/// A directed use of a spec link: `(link index, forward?)` where forward
/// means the `a -> b` direction.
type DirUse = (usize, bool);

/// Compute the optimal level for every receiver in `spec`, assuming every
/// session uses `layer_spec` (the paper's sessions are homogeneous).
///
/// `headroom` scales capacities before fitting (e.g. `0.95` leaves 5% for
/// control traffic and VBR jitter; `1.0` = exact CBR fit).
///
/// ```
/// use baselines::oracle::optimal_levels;
/// use topology::generators;
/// use traffic::LayerSpec;
/// // Topology A: 150 kb/s and 600 kb/s bottlenecks -> 2 and 4 layers.
/// let spec = generators::topology_a_default(1);
/// let optima = optimal_levels(&spec, &LayerSpec::paper_default(), 1.0);
/// let mut levels: Vec<u8> = optima.iter().map(|e| e.level).collect();
/// levels.sort();
/// assert_eq!(levels, vec![2, 4]);
/// ```
pub fn optimal_levels(spec: &TopoSpec, layer_spec: &LayerSpec, headroom: f64) -> Vec<OptimalEntry> {
    assert!(headroom > 0.0 && headroom <= 1.0);
    // Source node per session.
    let sources = spec.sources();
    let source_of = |session: u32| -> usize {
        sources
            .iter()
            .find(|&&(_, s)| s == session)
            .map(|&(i, _)| i)
            .unwrap_or_else(|| panic!("no source for session {session}"))
    };

    // Adjacency: node -> [(link index, neighbor, forward?)].
    let mut adj: Vec<Vec<(usize, usize, bool)>> = vec![Vec::new(); spec.nodes.len()];
    for (li, l) in spec.links.iter().enumerate() {
        adj[l.a].push((li, l.b, true));
        adj[l.b].push((li, l.a, false));
    }

    // BFS path from `from` to `to`, as directed link uses.
    let path = |from: usize, to: usize| -> Vec<DirUse> {
        let mut prev: Vec<Option<(usize, DirUse)>> = vec![None; spec.nodes.len()];
        let mut seen = vec![false; spec.nodes.len()];
        seen[from] = true;
        let mut q = std::collections::VecDeque::from([from]);
        while let Some(n) = q.pop_front() {
            if n == to {
                break;
            }
            for &(li, nb, fwd) in &adj[n] {
                if !seen[nb] {
                    seen[nb] = true;
                    prev[nb] = Some((n, (li, fwd)));
                    q.push_back(nb);
                }
            }
        }
        let mut out = Vec::new();
        let mut cur = to;
        while cur != from {
            let (p, du) = prev[cur].unwrap_or_else(|| panic!("no path {from} -> {to}"));
            out.push(du);
            cur = p;
        }
        out.reverse();
        out
    };

    // Receivers with their paths.
    struct R {
        node: usize,
        session: u32,
        set: u32,
        path: Vec<DirUse>,
        level: u8,
        frozen: bool,
    }
    let mut receivers: Vec<R> = spec
        .receivers()
        .into_iter()
        .map(|(node, (session, set))| R {
            node,
            session,
            set,
            path: path(source_of(session), node),
            level: 1,
            frozen: false,
        })
        .collect();

    // Link load given candidate levels: per (dir-link, session) the max
    // level downstream, converted to cumulative rate.
    let fits = |receivers: &[R]| -> bool {
        let mut max_level: std::collections::HashMap<(DirUse, u32), u8> =
            std::collections::HashMap::new();
        for r in receivers {
            for &du in &r.path {
                let e = max_level.entry((du, r.session)).or_insert(0);
                *e = (*e).max(r.level);
            }
        }
        let mut load: std::collections::HashMap<DirUse, f64> = std::collections::HashMap::new();
        for ((du, _), lvl) in &max_level {
            *load.entry(*du).or_insert(0.0) += layer_spec.cumulative_rate(*lvl);
        }
        load.iter().all(|(&(li, _), &bps)| bps <= spec.links[li].config.bandwidth_bps * headroom)
    };

    assert!(fits(&receivers), "even base layers do not fit this topology");

    // Discrete max-min filling: lowest unfrozen receiver first (ties by
    // node index for determinism).
    while let Some(idx) = receivers
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.frozen && r.level < layer_spec.max_level())
        .min_by_key(|(i, r)| (r.level, *i))
        .map(|(i, _)| i)
    {
        receivers[idx].level += 1;
        if !fits(&receivers) {
            receivers[idx].level -= 1;
            receivers[idx].frozen = true;
        }
    }

    receivers
        .into_iter()
        .map(|r| OptimalEntry { node: r.node, session: r.session, set: r.set, level: r.level })
        .collect()
}

/// Convenience: the optimal level of the receiver at spec node `node`.
pub fn optimal_for_node(entries: &[OptimalEntry], node: usize) -> u8 {
    entries
        .iter()
        .find(|e| e.node == node)
        .map(|e| e.level)
        .unwrap_or_else(|| panic!("node {node} is not a receiver"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::generators;

    fn spec6() -> LayerSpec {
        LayerSpec::paper_default()
    }

    #[test]
    fn topology_a_optima_are_2_and_4() {
        let spec = generators::topology_a_default(3);
        let opt = optimal_levels(&spec, &spec6(), 1.0);
        assert_eq!(opt.len(), 6);
        for e in &opt {
            let expect = if e.set == 0 { 2 } else { 4 };
            assert_eq!(e.level, expect, "set {} receiver at node {}", e.set, e.node);
        }
    }

    #[test]
    fn topology_b_everyone_gets_4() {
        for n in [1usize, 4, 16] {
            let spec = generators::topology_b_default(n);
            let opt = optimal_levels(&spec, &spec6(), 1.0);
            assert_eq!(opt.len(), n);
            for e in &opt {
                assert_eq!(e.level, 4, "n={n} session {}", e.session);
            }
        }
    }

    #[test]
    fn figure1_optima_match_the_paper_story() {
        let spec = generators::figure1();
        let opt = optimal_levels(&spec, &spec6(), 1.0);
        // Receivers: n3 (set 0) -> 1 layer, n4 (set 1) -> 2, n5 (set 2) -> 4.
        let by_set = |set: u32| opt.iter().find(|e| e.set == set).unwrap().level;
        assert_eq!(by_set(0), 1);
        assert_eq!(by_set(1), 2);
        assert_eq!(by_set(2), 4);
    }

    #[test]
    fn headroom_tightens_the_fit() {
        // Topology B at headroom 0.9: 4 layers = 480 > 450 allowed -> 3.
        let spec = generators::topology_b_default(1);
        let opt = optimal_levels(&spec, &spec6(), 0.9);
        assert_eq!(opt[0].level, 3);
    }

    #[test]
    fn chain_bottleneck() {
        let spec = generators::chain(3, 250.0);
        let opt = optimal_levels(&spec, &spec6(), 1.0);
        // 250 kb/s fits 3 layers (224k), not 4 (480k).
        assert_eq!(opt[0].level, 3);
    }

    #[test]
    fn star_with_heterogeneous_legs() {
        let spec = generators::star(&[40.0, 100.0, 2100.0]);
        let opt = optimal_levels(&spec, &spec6(), 1.0);
        let by_node: Vec<u8> = opt.iter().map(|e| e.level).collect();
        assert_eq!(by_node, vec![1, 2, 6]);
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn infeasible_base_layer_panics() {
        // 10 kb/s leg cannot even carry the 32 kb/s base layer.
        let spec = generators::star(&[10.0]);
        let _ = optimal_levels(&spec, &spec6(), 1.0);
    }

    #[test]
    fn shared_link_sums_across_sessions_but_not_within() {
        // Two sessions of one receiver each via one shared 600 kb/s link:
        // each gets 3 layers (224+224=448 <= 600) but not 4 (480+224=704).
        let spec = generators::topology_b(2, 300.0);
        let opt = optimal_levels(&spec, &spec6(), 1.0);
        assert_eq!(opt.iter().map(|e| e.level).collect::<Vec<_>>(), vec![3, 3]);
    }
}
