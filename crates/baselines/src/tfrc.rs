//! An equation-based (TFRC-style) receiver baseline.
//!
//! The paper's §VI surveys attempts to apply the TCP-friendly rate
//! equation (Mathis et al. / Padhye et al.) to multicast and argues they
//! "run into an intuitive roadblock" — RTT is nebulous with many receivers
//! and AIMD-style rates map poorly onto discrete layers. This baseline
//! makes that argument executable: each receiver computes the TCP-friendly
//! rate `T = (packet_size / (rtt * sqrt(2p/3)))` from its measured loss
//! rate and a configured RTT, then subscribes the highest level fitting
//! that rate.
//!
//! With zero loss the equation prescribes an infinite rate, so (as in real
//! equation-based protocols) the rate is capped by a slow-start-like
//! doubling of the previous rate — which still produces the layer-hunting
//! oscillation the paper predicts.

use netsim::{App, Ctx, Packet, RngStream, SeqTracker, SimDuration};
use std::sync::{Arc, Mutex};
use toposense::receiver::{ReceiverHandle, ReceiverShared};
use traffic::session::SessionDef;

/// Tunables of the equation-based baseline.
#[derive(Clone, Copy, Debug)]
pub struct TfrcParams {
    /// Loss-measurement window.
    pub window: SimDuration,
    /// Assumed round-trip time for the rate equation (the paper's point:
    /// there is no principled multicast value to put here).
    pub rtt: SimDuration,
    /// Wire packet size used in the equation.
    pub packet_size: u32,
    /// EWMA weight for the loss estimate (new sample weight).
    pub loss_ewma: f64,
    /// Minimum windows between subscription changes (damping).
    pub hold_windows: u32,
}

impl Default for TfrcParams {
    fn default() -> Self {
        TfrcParams {
            window: SimDuration::from_secs(1),
            rtt: SimDuration::from_millis(600),
            packet_size: 1000,
            loss_ewma: 0.25,
            hold_windows: 3,
        }
    }
}

const TOKEN_WINDOW: u64 = 1;

/// The equation-based receiver.
pub struct TfrcReceiver {
    def: SessionDef,
    params: TfrcParams,
    level: u8,
    trackers: Vec<SeqTracker>,
    /// Smoothed loss estimate.
    loss_hat: f64,
    /// Last computed allowed rate (b/s); doubles when lossless.
    rate_hat: f64,
    windows_since_change: u32,
    rng: RngStream,
    shared: ReceiverHandle,
}

impl TfrcReceiver {
    pub fn new(
        def: SessionDef,
        params: TfrcParams,
        seed: u64,
        label: &str,
    ) -> (Self, ReceiverHandle) {
        let shared: ReceiverHandle = Arc::new(Mutex::new(ReceiverShared::default()));
        let layers = def.spec.layer_count();
        let base = def.spec.base_rate();
        let r = TfrcReceiver {
            def,
            params,
            level: 0,
            trackers: (0..layers).map(|_| SeqTracker::new()).collect(),
            loss_hat: 0.0,
            rate_hat: base,
            windows_since_change: 0,
            rng: RngStream::derive(seed, &format!("tfrc/{label}")),
            shared: Arc::clone(&shared),
        };
        (r, shared)
    }

    /// The TCP-friendly rate for loss `p` (Mathis et al. simplified form).
    fn tcp_rate(&self, p: f64) -> f64 {
        let rtt = self.params.rtt.as_secs_f64();
        let s = self.params.packet_size as f64 * 8.0;
        if p <= 0.0 {
            f64::INFINITY
        } else {
            s / (rtt * (2.0 * p / 3.0).sqrt())
        }
    }

    fn set_level(&mut self, ctx: &mut Ctx<'_>, new: u8) {
        let new = new.clamp(1, self.def.spec.max_level());
        if new == self.level {
            return;
        }
        let old = self.level;
        if new > old {
            for layer in old..new {
                ctx.join(self.def.group_of_layer(layer));
                let _ = self.trackers[layer as usize].take_window();
                self.trackers[layer as usize].resync();
            }
        } else {
            for layer in (new..old).rev() {
                ctx.leave(self.def.group_of_layer(layer));
                let _ = self.trackers[layer as usize].take_window();
                self.trackers[layer as usize].resync();
            }
        }
        self.level = new;
        self.windows_since_change = 0;
        self.shared.lock().unwrap().changes.push((ctx.now(), old, new));
    }

    fn window_tick(&mut self, ctx: &mut Ctx<'_>) {
        let mut received = 0;
        let mut lost = 0;
        let mut bytes = 0;
        for layer in 0..self.level {
            let w = self.trackers[layer as usize].take_window();
            received += w.received;
            lost += w.lost;
            bytes += w.bytes;
        }
        let expected = received + lost;
        let loss = if expected == 0 { 0.0 } else { lost as f64 / expected as f64 };
        self.loss_hat =
            self.loss_hat * (1.0 - self.params.loss_ewma) + loss * self.params.loss_ewma;
        {
            let mut s = self.shared.lock().unwrap();
            s.loss_series.push((ctx.now(), loss));
            s.level_series.push((ctx.now(), self.level));
            s.bytes_total += bytes;
        }

        // Rate update: the equation under loss, slow-start doubling without.
        let eq = self.tcp_rate(self.loss_hat);
        self.rate_hat = if eq.is_finite() {
            eq
        } else {
            (self.rate_hat * 2.0).min(self.def.spec.cumulative_rate(self.def.spec.max_level()))
        };

        self.windows_since_change += 1;
        if self.windows_since_change >= self.params.hold_windows {
            let target = self.def.spec.level_fitting(self.rate_hat).max(1);
            self.set_level(ctx, target);
        }
        ctx.set_timer(self.params.window, TOKEN_WINDOW);
    }
}

impl App for TfrcReceiver {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.set_level(ctx, 1);
        let jitter = self.rng.range_f64(0.0, self.params.window.as_secs_f64());
        ctx.set_timer(SimDuration::from_secs_f64(jitter), TOKEN_WINDOW);
    }

    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, packet: &Packet) {
        if let Some((session, layer, seq)) = packet.media_fields() {
            if session == self.def.id && layer < self.level {
                self.trackers[layer as usize].on_packet(seq, packet.size);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        debug_assert_eq!(token, TOKEN_WINDOW);
        self.window_tick(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::sim::{NetworkBuilder, SimConfig};
    use netsim::{GroupId, LinkConfig, SessionId, SimTime};
    use traffic::{LayerSpec, LayeredSource, TrafficModel};

    fn run_tfrc(bottleneck_kbps: f64, secs: u64) -> ReceiverHandle {
        let mut b = NetworkBuilder::new(SimConfig::default());
        let src = b.add_node("src");
        let rcv = b.add_node("rcv");
        b.add_link(src, rcv, LinkConfig::kbps(bottleneck_kbps));
        let mut sim = b.build();
        let groups: Vec<GroupId> = (0..6).map(|_| sim.create_group(src)).collect();
        let def =
            SessionDef { id: SessionId(0), source: src, groups, spec: LayerSpec::paper_default() };
        sim.add_app(src, Box::new(LayeredSource::new(def.clone(), TrafficModel::Cbr, 2)));
        let (r, shared) = TfrcReceiver::new(def, TfrcParams::default(), 3, "t0");
        sim.add_app(rcv, Box::new(r));
        sim.run_until(SimTime::from_secs(secs));
        shared
    }

    #[test]
    fn equation_rate_shapes() {
        let (r, _) = TfrcReceiver::new(
            SessionDef {
                id: SessionId(0),
                source: netsim::NodeId(0),
                groups: (0..6).map(GroupId).collect(),
                spec: LayerSpec::paper_default(),
            },
            TfrcParams::default(),
            1,
            "x",
        );
        assert!(r.tcp_rate(0.0).is_infinite());
        // Higher loss -> lower rate.
        assert!(r.tcp_rate(0.01) > r.tcp_rate(0.1));
        // 1% loss at 600 ms RTT: 8000 / (0.6 * sqrt(0.00667)) ~ 163 kb/s.
        let t = r.tcp_rate(0.01);
        assert!((150_000.0..180_000.0).contains(&t), "got {t}");
    }

    #[test]
    fn climbs_on_clean_path() {
        let shared = run_tfrc(100_000.0, 120);
        let s = shared.lock().unwrap();
        assert!(s.final_level() >= 5, "final {}; changes {:?}", s.final_level(), s.changes);
    }

    #[test]
    fn oscillates_at_a_bottleneck_as_the_paper_predicts() {
        // The equation maps loss onto a rate that rarely matches a layer
        // boundary: expect visible hunting around the 150 kb/s bottleneck.
        let shared = run_tfrc(150.0, 600);
        let s = shared.lock().unwrap();
        let downs = s.changes.iter().filter(|&&(_, o, n)| n < o).count();
        assert!(downs >= 2, "expected hunting; changes {:?}", s.changes);
        // But it must not run away: levels stay <= 4.
        assert!(s.changes.iter().all(|&(_, _, n)| n <= 4));
    }
}
