//! # topology — multicast tree structures and discovery
//!
//! Everything TopoSense knows about the network comes through this crate:
//!
//! * [`tree::Tree`] — a rooted tree over simulator nodes with the BFS
//!   top-down and bottom-up passes every stage of the algorithm uses.
//! * [`session_tree::SessionTree`] — the per-session overlay of the
//!   per-layer multicast distribution trees ("the multicast session topology
//!   will be a tree" because layers are cumulative).
//! * [`discovery`] — the topology-discovery tool abstraction: ground-truth
//!   snapshots of the simulator's multicast state, aged by a configurable
//!   **staleness** (the knob behind the paper's Fig. 10).
//! * [`spec`] / [`generators`] — declarative topology descriptions and the
//!   paper's evaluation topologies (Fig. 5 A and B, the Fig. 1 example, and
//!   tiered Fig. 2-style random trees).

pub mod discovery;
pub mod generators;
pub mod session_tree;
pub mod spec;
pub mod tree;

pub use discovery::{DiscoveryTool, LinkView, SnapshotError, TopologyView};
pub use session_tree::SessionTree;
pub use spec::{LinkSpec, NodeRole, TopoSpec};
pub use tree::{DirtySet, Tree};
