//! Per-session overlay trees.
//!
//! A *multicast session* is a set of layers on different multicast groups;
//! its *session topology* is the overlay of the per-layer distribution
//! trees. Because layers are cumulative (a receiver of layer *i* also
//! receives layers `0..i`), the overlay is itself a tree, rooted at the
//! source — the structure every TopoSense stage operates on.

use crate::discovery::TopologyView;
use crate::tree::{DirtySet, Tree, TreeError};
use netsim::{DirLinkId, GroupId, NodeId, SessionId};
use std::collections::HashMap;

/// The overlay of one session's per-layer trees.
///
/// Per-edge attributes are stored densely by tree *slot* (see
/// [`Tree::slot_of`]): every non-root node enters the overlay through
/// exactly one edge, so `in_link`/`max_layer_in` are plain `Vec`s indexed
/// by slot, with the root's entries unused.
#[derive(Clone, Debug)]
pub struct SessionTree {
    session: SessionId,
    tree: Tree,
    /// Highest layer index crossing the edge *into* each slot's node
    /// (root slot unused).
    max_layer_in: Vec<u8>,
    /// The directed link carrying the session into each slot's node (root
    /// slot holds a dummy id and must not be read).
    in_link: Vec<DirLinkId>,
}

impl SessionTree {
    /// Build from a discovery snapshot.
    ///
    /// `groups[k]` must be the group carrying layer `k` of `session`; the
    /// session root is taken from the base-layer group. Links active for a
    /// higher layer but not the base layer still enter the overlay (this can
    /// happen transiently while prunes are in flight).
    pub fn build(
        view: &TopologyView,
        session: SessionId,
        groups: &[GroupId],
    ) -> Result<Self, TreeError> {
        assert!(!groups.is_empty(), "a session needs at least a base layer");
        let root = view
            .group(groups[0])
            .map(|g| g.root)
            .expect("base-layer group missing from topology view");

        let mut max_layer_in: HashMap<NodeId, u8> = HashMap::new();
        let mut in_link: HashMap<NodeId, DirLinkId> = HashMap::new();
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for (layer, &gid) in groups.iter().enumerate() {
            let Some(snap) = view.group(gid) else { continue };
            for &lid in &snap.active_links {
                let lv = view.link(lid).expect("group active on unknown link");
                match max_layer_in.entry(lv.to) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(layer as u8);
                        in_link.insert(lv.to, lid);
                        edges.push((lv.from, lv.to));
                    }
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let cur = e.get_mut();
                        *cur = (*cur).max(layer as u8);
                    }
                }
            }
        }
        let tree = Tree::from_edges(root, &edges)?;
        // Re-key the per-edge attributes by dense slot. Every key has a
        // matching edge, so every key is in the tree.
        let mut max_layer_v = vec![0u8; tree.len()];
        let mut in_link_v = vec![DirLinkId(u32::MAX); tree.len()];
        for (&node, &layer) in &max_layer_in {
            let s = tree.slot_of(node).expect("attributed node missing from tree");
            max_layer_v[s] = layer;
            in_link_v[s] = in_link[&node];
        }
        Ok(SessionTree { session, tree, max_layer_in: max_layer_v, in_link: in_link_v })
    }

    /// Which session this tree describes.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// The overlay tree.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Highest layer crossing the edge into `node` (`None` for the root).
    pub fn max_layer_into(&self, node: NodeId) -> Option<u8> {
        let s = self.tree.slot_of(node)?;
        (s != 0).then(|| self.max_layer_in[s])
    }

    /// The directed link carrying the session into `node` (`None` for the
    /// root).
    pub fn in_link(&self, node: NodeId) -> Option<DirLinkId> {
        let s = self.tree.slot_of(node)?;
        (s != 0).then(|| self.in_link[s])
    }

    /// Highest layer crossing the edge into the node at `slot` (must be a
    /// non-root slot).
    pub fn max_layer_at(&self, slot: usize) -> u8 {
        debug_assert_ne!(slot, 0, "the root has no incoming edge");
        self.max_layer_in[slot]
    }

    /// The directed link into the node at `slot` (must be a non-root slot).
    pub fn in_link_at(&self, slot: usize) -> DirLinkId {
        debug_assert_ne!(slot, 0, "the root has no incoming edge");
        self.in_link[slot]
    }

    /// Iterate `(node, incoming link, max layer)` over all non-root nodes,
    /// top-down.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, DirLinkId, u8)> + '_ {
        (1..self.tree.len())
            .map(move |s| (self.tree.node_at(s), self.in_link[s], self.max_layer_in[s]))
    }

    /// Routing equality: the underlying tree (see [`Tree::structure_eq`])
    /// plus the per-edge links — everything slot-indexed caches depend on
    /// *except* the per-edge layer attributes. Two trees that compare
    /// equal here have identical slot assignments and link attribution;
    /// only the no-report fallback level (`max_layer_in`) may differ.
    /// This is the check the incremental recomputation path runs each
    /// interval: subscription-level churn alone (receivers moving a layer
    /// up or down under steering — the steady-state common case) keeps
    /// the caches valid, with the changed slots re-decided from the new
    /// layers.
    pub fn routing_eq(&self, other: &SessionTree) -> bool {
        self.session == other.session
            && self.tree.structure_eq(&other.tree)
            && self.in_link == other.in_link
    }

    /// Structural equality of the whole overlay: [`Self::routing_eq`] plus
    /// the per-edge layer attributes. Two session trees that compare equal
    /// here produce identical results from every slot-indexed stage given
    /// identical per-slot inputs.
    pub fn structure_eq(&self, other: &SessionTree) -> bool {
        self.routing_eq(other) && self.max_layer_in == other.max_layer_in
    }

    /// Mark `slot` and its ancestors in `dirty` (see
    /// [`Tree::mark_ancestors`]): the propagation pattern of the bottom-up
    /// stages, where a changed observation at a slot can only affect the
    /// states on its root path.
    pub fn mark_ancestors(&self, slot: usize, dirty: &mut DirtySet) {
        self.tree.mark_ancestors(slot, dirty);
    }

    /// Mark `slot` and its whole subtree in `dirty` (see
    /// [`Tree::mark_subtree`]): the propagation pattern of top-down
    /// effects such as backoff timers, which block every descendant.
    pub fn mark_subtree(&self, slot: usize, dirty: &mut DirtySet) {
        self.tree.mark_subtree(slot, dirty);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::LinkView;
    use netsim::{GroupSnapshot, SimTime};

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }
    fn l(i: u32) -> DirLinkId {
        DirLinkId(i)
    }

    /// Chain src(0) -> a(1) -> b(2); directed links 0: 0->1, 2: 1->2 (odd
    /// ids are the reverse directions).
    fn view(groups: Vec<GroupSnapshot>) -> TopologyView {
        TopologyView {
            time: SimTime::ZERO,
            links: vec![
                LinkView { id: l(0), from: n(0), to: n(1) },
                LinkView { id: l(1), from: n(1), to: n(0) },
                LinkView { id: l(2), from: n(1), to: n(2) },
                LinkView { id: l(3), from: n(2), to: n(1) },
            ],
            groups,
        }
    }

    fn snap(g: u32, links: Vec<DirLinkId>, members: Vec<NodeId>) -> GroupSnapshot {
        GroupSnapshot { group: GroupId(g), root: n(0), active_links: links, member_nodes: members }
    }

    #[test]
    fn overlay_takes_max_layer_per_edge() {
        // Layer 0 reaches node 2; layer 1 stops at node 1.
        let v = view(vec![
            snap(0, vec![l(0), l(2)], vec![n(1), n(2)]),
            snap(1, vec![l(0)], vec![n(1)]),
        ]);
        let st = SessionTree::build(&v, SessionId(0), &[GroupId(0), GroupId(1)]).unwrap();
        assert_eq!(st.tree().len(), 3);
        assert_eq!(st.max_layer_into(n(1)), Some(1));
        assert_eq!(st.max_layer_into(n(2)), Some(0));
        assert_eq!(st.max_layer_into(n(0)), None);
        assert_eq!(st.in_link(n(2)), Some(l(2)));
    }

    #[test]
    fn empty_session_is_root_only() {
        let v = view(vec![snap(0, vec![], vec![])]);
        let st = SessionTree::build(&v, SessionId(0), &[GroupId(0)]).unwrap();
        assert_eq!(st.tree().len(), 1);
        assert_eq!(st.tree().root(), n(0));
        assert_eq!(st.edges().count(), 0);
    }

    #[test]
    fn higher_layer_only_link_still_enters_overlay() {
        // Transient state: layer 1 active on 1->2 while layer 0 already
        // pruned there.
        let v = view(vec![snap(0, vec![l(0)], vec![n(1)]), snap(1, vec![l(0), l(2)], vec![n(1)])]);
        let st = SessionTree::build(&v, SessionId(0), &[GroupId(0), GroupId(1)]).unwrap();
        assert_eq!(st.max_layer_into(n(2)), Some(1));
        assert_eq!(st.tree().len(), 3);
    }

    #[test]
    fn missing_higher_group_is_tolerated() {
        let v = view(vec![snap(0, vec![l(0)], vec![n(1)])]);
        // Group 9 not in the view at all (e.g. never announced).
        let st = SessionTree::build(&v, SessionId(0), &[GroupId(0), GroupId(9)]).unwrap();
        assert_eq!(st.max_layer_into(n(1)), Some(0));
    }

    #[test]
    fn routing_eq_ignores_layer_changes_structure_eq_does_not() {
        // Same shape and links; node 1's max layer differs (a receiver
        // there dropped from layer 1 to layer 0 between snapshots).
        let a = SessionTree::build(
            &view(vec![snap(0, vec![l(0), l(2)], vec![n(2)]), snap(1, vec![l(0)], vec![n(1)])]),
            SessionId(0),
            &[GroupId(0), GroupId(1)],
        )
        .unwrap();
        let b = SessionTree::build(
            &view(vec![snap(0, vec![l(0), l(2)], vec![n(2)])]),
            SessionId(0),
            &[GroupId(0), GroupId(1)],
        )
        .unwrap();
        assert!(a.routing_eq(&b), "layer-only change must keep routing equality");
        assert!(!a.structure_eq(&b), "layer change must break full structural equality");
        assert!(a.structure_eq(&a.clone()));
    }

    #[test]
    fn edges_iterates_top_down() {
        let v = view(vec![snap(0, vec![l(0), l(2)], vec![n(2)])]);
        let st = SessionTree::build(&v, SessionId(0), &[GroupId(0)]).unwrap();
        let es: Vec<(NodeId, DirLinkId, u8)> = st.edges().collect();
        assert_eq!(es, vec![(n(1), l(0), 0), (n(2), l(2), 0)]);
    }
}
